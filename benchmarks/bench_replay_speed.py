"""Replay-speed benchmark: scalar oracle vs batched trace replay.

Captures the exact post-VRF memory trace of seeded SpMM/SDDMM runs
(the trace is mode-independent — the PE pipeline is deterministic),
then replays it through two fresh :class:`MemorySystem` instances:

* **scalar** — one :meth:`dense_access`/:meth:`stream_access` call per
  access plus the per-access service-level counter tally, exactly as
  ``ProcessingElement`` does in ``replay="scalar"`` mode;
* **batched** — one :meth:`replay_trace` call per PE chunk plus the
  ``np.bincount`` tally, exactly as ``ProcessingElement.flush_trace``
  does in ``replay="batched"`` mode.

Every run asserts bit-identical counters, per-level LRU/dirty state,
and per-level tallies between the two paths before timing is reported,
so the benchmark doubles as an end-to-end parity check.  Results land
in ``BENCH_replay.json`` (see README) to track the perf trajectory.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_replay_speed.py
    PYTHONPATH=src python benchmarks/bench_replay_speed.py --smoke

This is a standalone script, not a pytest-benchmark module (the
``bench_*`` siblings are run via ``pytest benchmarks``).
"""

from __future__ import annotations

import argparse
import dataclasses
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, List, Tuple

import numpy as np

from repro.bench.harness import write_bench_json
from repro.config import scaled_config
from repro.core.accelerator import SpadeSystem
from repro.core.engine import DEFAULT_CHUNK_NNZ
from repro.memory.hierarchy import (
    OP_DENSE_BYPASS,
    OP_PATH_MASK,
    OP_REGION_SHIFT,
    OP_STREAM,
    OP_WRITE,
    TRACE_REGIONS,
    MemorySystem,
    ServiceLevel,
)
from repro.sparse.generators import banded, rmat_graph, uniform_random

_NUM_LEVELS = len(ServiceLevel)
_R_SPARSE = TRACE_REGIONS.index("sparse")

Chunk = Tuple[int, np.ndarray, np.ndarray]
Tally = Tuple[List[int], List[int], List[int]]


def capture_trace(cfg, a, k: int, kernel: str) -> List[Chunk]:
    """Run the full system once and capture every per-chunk trace the
    engine hands to ``MemorySystem.replay_trace``."""
    system = SpadeSystem(cfg)
    rng = np.random.default_rng(7)
    chunks: List[Chunk] = []
    orig = MemorySystem.replay_trace

    def cap(self, pe_id, lines, ops, region_names=TRACE_REGIONS):
        chunks.append((pe_id, np.array(lines), np.array(ops)))
        return orig(self, pe_id, lines, ops, region_names)

    MemorySystem.replay_trace = cap
    try:
        if kernel == "spmm":
            b = rng.random((a.num_cols, k), dtype=np.float32)
            system.spmm(a, b)
        else:
            b = rng.random((a.num_rows, k), dtype=np.float32)
            c = rng.random((a.num_cols, k), dtype=np.float32)
            system.sddmm(a, b, c)
    finally:
        MemorySystem.replay_trace = orig
    return chunks


def run_scalar(ms: MemorySystem, chunks: List[Chunk]) -> Tally:
    """Scalar-mode replay: per-access call + per-access level tally."""
    regions = TRACE_REGIONS
    stores = [0] * _NUM_LEVELS
    sparse = [0] * _NUM_LEVELS
    dense_r = [0] * _NUM_LEVELS
    for pe_id, lines, ops in chunks:
        dense = ms.dense_access
        stream = ms.stream_access
        for line, op in zip(lines.tolist(), ops.tolist()):
            w = op & OP_WRITE
            path = op & OP_PATH_MASK
            rid = op >> OP_REGION_SHIFT
            if path == OP_STREAM:
                lvl = stream(pe_id, line, bool(w), region=regions[rid])
            else:
                lvl = dense(
                    pe_id, line, bool(w),
                    bypass=(path == OP_DENSE_BYPASS), region=regions[rid],
                )
            if w:
                stores[lvl] += 1
            elif rid == _R_SPARSE:
                sparse[lvl] += 1
            else:
                dense_r[lvl] += 1
    return stores, sparse, dense_r


def run_batched(ms: MemorySystem, chunks: List[Chunk]) -> Tally:
    """Batched-mode replay: one replay_trace call per chunk + bincount
    tally (mirrors ``ProcessingElement.flush_trace``)."""
    stores = [0] * _NUM_LEVELS
    sparse = [0] * _NUM_LEVELS
    dense_r = [0] * _NUM_LEVELS
    for pe_id, lines, ops in chunks:
        levels = ms.replay_trace(pe_id, lines, ops)
        writes = (ops & OP_WRITE) != 0
        sp = (ops >> OP_REGION_SHIFT) == _R_SPARSE
        dn = ~writes & ~sp
        for mask, tally in ((writes, stores), (sp, sparse), (dn, dense_r)):
            if mask.any():
                counts = np.bincount(
                    levels[mask], minlength=_NUM_LEVELS
                ).tolist()
                for i in range(_NUM_LEVELS):
                    tally[i] += counts[i]
    return stores, sparse, dense_r


def lru_state(ms: MemorySystem):
    """Order-sensitive snapshot of every LRU structure (insertion order
    in the dicts IS the LRU order, so plain item lists pin it)."""
    return (
        [[list(s.items()) for s in c._sets] for c in ms.l1s],
        [[list(s.items()) for s in c._sets] for c in ms.l2s],
        [list(s.items()) for s in ms.llc._sets],
        [list(b._buffer.items()) for b in ms.bbfs],
        [[list(s.items()) for s in b.victim._sets] for b in ms.bbfs],
        [list(t._tlb.items()) for t in ms.stlbs],
    )


def bench_one(cfg, name: str, chunks: List[Chunk], reps: int) -> dict:
    accesses = sum(len(lines) for _, lines, _ in chunks)
    scalar_times: List[float] = []
    batched_times: List[float] = []
    ms_s = ms_b = None
    tally_s = tally_b = None
    for _ in range(reps):
        ms_s = MemorySystem(cfg)
        t0 = time.perf_counter()
        tally_s = run_scalar(ms_s, chunks)
        scalar_times.append(time.perf_counter() - t0)
        ms_b = MemorySystem(cfg)
        t0 = time.perf_counter()
        tally_b = run_batched(ms_b, chunks)
        batched_times.append(time.perf_counter() - t0)

    stats_s = dataclasses.asdict(ms_s.collect_stats())
    stats_b = dataclasses.asdict(ms_b.collect_stats())
    assert tally_s == tally_b, f"{name}: per-level tallies diverged"
    assert stats_s == stats_b, f"{name}: AccessStats diverged"
    assert lru_state(ms_s) == lru_state(ms_b), f"{name}: LRU state diverged"

    st = ms_b.collect_stats()
    # Median of reps: robust to one-off scheduler noise in either
    # direction, unlike min (best case only) or mean (outlier-skewed).
    scalar_s = statistics.median(scalar_times)
    batched_s = statistics.median(batched_times)
    return {
        "name": name,
        "accesses": accesses,
        "chunks": len(chunks),
        "scalar_s": round(scalar_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(scalar_s / batched_s, 2),
        "scalar_us_per_access": round(scalar_s / accesses * 1e6, 3),
        "batched_us_per_access": round(batched_s / accesses * 1e6, 3),
        "l1_hit_rate": round(st.l1.hit_rate, 4),
        "l2_hit_rate": round(st.l2.hit_rate, 4),
        "parity": True,
    }


def workloads(smoke: bool) -> List[Tuple[str, Callable, int, str]]:
    if smoke:
        return [
            ("smoke-unif-sddmm",
             lambda: uniform_random(512, 256, nnz=20_000, seed=11),
             16, "sddmm"),
            ("smoke-rmat-spmm",
             lambda: rmat_graph(9, edge_factor=8, seed=5), 16, "spmm"),
        ]
    return [
        # Headline: >= 1M-access SDDMM whose dense working set is
        # L2-resident — the regime SPADE targets and where batching
        # pays most (see DESIGN.md on replay paths).
        ("unif-sddmm-1m",
         lambda: uniform_random(8192, 1024, nnz=900_000, seed=11),
         16, "sddmm"),
        ("rmat13-spmm-k64",
         lambda: rmat_graph(13, edge_factor=16, seed=5), 64, "spmm"),
        ("banded64k-sddmm-k16",
         lambda: banded(65_536, bandwidth=24, seed=3), 16, "sddmm"),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny traces, 1 rep: CI-sized parity + plumbing check",
    )
    parser.add_argument(
        "--reps", type=int, default=3,
        help="timing repetitions per workload (median is reported)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default: repo-root BENCH_replay.json, "
        "or BENCH_replay_smoke.json in --smoke mode so smoke runs "
        "never clobber the tracked full-mode results)",
    )
    parser.add_argument(
        "--pes", type=int, default=8, help="scaled_config PE count"
    )
    args = parser.parse_args(argv)
    if args.out is None:
        name = "BENCH_replay_smoke.json" if args.smoke else "BENCH_replay.json"
        args.out = Path(__file__).resolve().parent.parent / name
    reps = 1 if args.smoke else max(1, args.reps)

    cfg = dataclasses.replace(scaled_config(args.pes), replay="batched")
    results = []
    for name, gen, k, kernel in workloads(args.smoke):
        chunks = capture_trace(cfg, gen(), k, kernel)
        row = bench_one(cfg, name, chunks, reps)
        results.append(row)
        print(
            f"{row['name']:22s} accesses={row['accesses']:>9,d}  "
            f"scalar {row['scalar_s']:.3f}s  batched {row['batched_s']:.3f}s  "
            f"speedup {row['speedup']:.2f}x  parity=OK"
        )

    payload = {
        "benchmark": "replay_speed",
        "mode": "smoke" if args.smoke else "full",
        "config": {
            "pes": args.pes,
            "reps": reps,
            "chunk_nnz": DEFAULT_CHUNK_NNZ,
            "execution": cfg.execution,
            "replay": cfg.replay,
        },
        "workloads": results,
        "headline_speedup": results[0]["speedup"],
    }
    write_bench_json(
        args.out, payload,
        config=cfg,
        workload={
            "benchmark": "replay_speed",
            "mode": payload["mode"],
            "workloads": [name for name, _, _, _ in workloads(args.smoke)],
        },
        extra={"argv": argv if argv is not None else sys.argv[1:]},
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
