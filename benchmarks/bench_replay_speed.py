"""Replay-speed benchmark: scalar oracle vs batched vs array replay.

Captures the exact post-VRF memory trace of seeded SpMM/SDDMM runs
(the trace is mode-independent — the PE pipeline is deterministic),
then replays it through fresh :class:`MemorySystem` instances, one per
replay backend:

* **scalar** — one :meth:`dense_access`/:meth:`stream_access` call per
  access plus the per-access service-level counter tally, exactly as
  ``ProcessingElement`` does in ``replay="scalar"`` mode;
* **batched** — one :meth:`replay_trace` call per PE chunk plus the
  ``np.bincount`` tally, exactly as ``ProcessingElement.flush_trace``
  does in ``replay="batched"`` mode;
* **array** — the same call shape under ``replay="array"``: whole-
  partition stack-distance replay (see ``memory/replay_array.py`` and
  DESIGN.md section 10).

Every run asserts bit-identical per-level tallies, AccessStats, and
per-level LRU/dirty state across all three backends before timing is
reported, so the benchmark doubles as an end-to-end parity check.
Results land in ``BENCH_replay.json`` (see README) to track the perf
trajectory; the headline is the array backend's replay-only speedup
over the scalar oracle on the >= 1M-access workload.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_replay_speed.py
    PYTHONPATH=src python benchmarks/bench_replay_speed.py --quick

This is a standalone script, not a pytest-benchmark module (the
``bench_*`` siblings are run via ``pytest benchmarks``).
"""

from __future__ import annotations

import argparse
import dataclasses
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, List, Tuple

import numpy as np

from repro.bench.harness import write_bench_json
from repro.config import scaled_config
from repro.core.accelerator import SpadeSystem
from repro.core.engine import DEFAULT_CHUNK_NNZ
from repro.memory.hierarchy import (
    OP_DENSE_BYPASS,
    OP_PATH_MASK,
    OP_REGION_SHIFT,
    OP_STREAM,
    OP_WRITE,
    TRACE_REGIONS,
    MemorySystem,
    ServiceLevel,
)
from repro.sparse.generators import banded, rmat_graph, uniform_random

_NUM_LEVELS = len(ServiceLevel)
_R_SPARSE = TRACE_REGIONS.index("sparse")

Chunk = Tuple[int, np.ndarray, np.ndarray]
Tally = Tuple[List[int], List[int], List[int]]

#: (name, matrix generator, k, kernel, replay chunk_nnz).  The chunk
#: size is a replay-window knob, not a workload property: all backends
#: replay the identical chunk sequence, so parity is unaffected, but
#: larger windows amortize the array solver's per-call costs.
Workload = Tuple[str, Callable, int, str, int]


def capture_trace(
    cfg, a, k: int, kernel: str, chunk_nnz: int = DEFAULT_CHUNK_NNZ
) -> List[Chunk]:
    """Run the full system once and capture every per-chunk trace the
    engine hands to ``MemorySystem.replay_trace``."""
    system = SpadeSystem(cfg, chunk_nnz=chunk_nnz)
    rng = np.random.default_rng(7)
    chunks: List[Chunk] = []
    orig = MemorySystem.replay_trace

    def cap(self, pe_id, lines, ops, region_names=TRACE_REGIONS):
        chunks.append((pe_id, np.array(lines), np.array(ops)))
        return orig(self, pe_id, lines, ops, region_names)

    MemorySystem.replay_trace = cap
    try:
        if kernel == "spmm":
            b = rng.random((a.num_cols, k), dtype=np.float32)
            system.spmm(a, b)
        else:
            b = rng.random((a.num_rows, k), dtype=np.float32)
            c = rng.random((a.num_cols, k), dtype=np.float32)
            system.sddmm(a, b, c)
    finally:
        MemorySystem.replay_trace = orig
    return chunks


def run_scalar(ms: MemorySystem, chunks: List[Chunk]) -> Tally:
    """Scalar-mode replay: per-access call + per-access level tally."""
    regions = TRACE_REGIONS
    stores = [0] * _NUM_LEVELS
    sparse = [0] * _NUM_LEVELS
    dense_r = [0] * _NUM_LEVELS
    for pe_id, lines, ops in chunks:
        dense = ms.dense_access
        stream = ms.stream_access
        for line, op in zip(lines.tolist(), ops.tolist()):
            w = op & OP_WRITE
            path = op & OP_PATH_MASK
            rid = op >> OP_REGION_SHIFT
            if path == OP_STREAM:
                lvl = stream(pe_id, line, bool(w), region=regions[rid])
            else:
                lvl = dense(
                    pe_id, line, bool(w),
                    bypass=(path == OP_DENSE_BYPASS), region=regions[rid],
                )
            if w:
                stores[lvl] += 1
            elif rid == _R_SPARSE:
                sparse[lvl] += 1
            else:
                dense_r[lvl] += 1
    return stores, sparse, dense_r


def run_batched(ms: MemorySystem, chunks: List[Chunk]) -> Tally:
    """Chunked replay: one replay_trace call per chunk + bincount tally
    (mirrors ``ProcessingElement.flush_trace``).  The backend actually
    used is whatever ``ms`` was configured with (batched or array)."""
    stores = [0] * _NUM_LEVELS
    sparse = [0] * _NUM_LEVELS
    dense_r = [0] * _NUM_LEVELS
    for pe_id, lines, ops in chunks:
        levels = ms.replay_trace(pe_id, lines, ops)
        writes = (ops & OP_WRITE) != 0
        sp = (ops >> OP_REGION_SHIFT) == _R_SPARSE
        dn = ~writes & ~sp
        for mask, tally in ((writes, stores), (sp, sparse), (dn, dense_r)):
            if mask.any():
                counts = np.bincount(
                    levels[mask], minlength=_NUM_LEVELS
                ).tolist()
                for i in range(_NUM_LEVELS):
                    tally[i] += counts[i]
    return stores, sparse, dense_r


def lru_state(ms: MemorySystem):
    """Order-sensitive snapshot of every LRU structure (insertion order
    in the dicts IS the LRU order, so plain item lists pin it)."""
    return (
        [[list(s.items()) for s in c._sets] for c in ms.l1s],
        [[list(s.items()) for s in c._sets] for c in ms.l2s],
        [list(s.items()) for s in ms.llc._sets],
        [list(b._buffer.items()) for b in ms.bbfs],
        [[list(s.items()) for s in b.victim._sets] for b in ms.bbfs],
        [list(t._tlb.items()) for t in ms.stlbs],
    )


def bench_one(
    cfg_batched, cfg_array, name: str, chunks: List[Chunk], reps: int
) -> dict:
    accesses = sum(len(lines) for _, lines, _ in chunks)
    times = {"scalar": [], "batched": [], "array": []}
    systems = {}
    tallies = {}
    for _ in range(reps):
        for mode, cfg, runner in (
            ("scalar", cfg_batched, run_scalar),
            ("batched", cfg_batched, run_batched),
            ("array", cfg_array, run_batched),
        ):
            ms = MemorySystem(cfg)
            t0 = time.perf_counter()
            tallies[mode] = runner(ms, chunks)
            times[mode].append(time.perf_counter() - t0)
            systems[mode] = ms

    stats = {
        m: dataclasses.asdict(systems[m].collect_stats())
        for m in systems
    }
    states = {m: lru_state(systems[m]) for m in systems}
    for mode in ("batched", "array"):
        assert tallies[mode] == tallies["scalar"], (
            f"{name}: {mode} per-level tallies diverged"
        )
        assert stats[mode] == stats["scalar"], (
            f"{name}: {mode} AccessStats diverged"
        )
        assert states[mode] == states["scalar"], (
            f"{name}: {mode} LRU state diverged"
        )

    st = systems["array"].collect_stats()
    # Median of reps: robust to one-off scheduler noise in either
    # direction, unlike min (best case only) or mean (outlier-skewed).
    med = {m: statistics.median(times[m]) for m in times}
    return {
        "name": name,
        "accesses": accesses,
        "chunks": len(chunks),
        "scalar_s": round(med["scalar"], 4),
        "batched_s": round(med["batched"], 4),
        "array_s": round(med["array"], 4),
        "speedup_batched": round(med["scalar"] / med["batched"], 2),
        "speedup_array": round(med["scalar"] / med["array"], 2),
        "scalar_us_per_access": round(med["scalar"] / accesses * 1e6, 3),
        "batched_us_per_access": round(med["batched"] / accesses * 1e6, 3),
        "array_us_per_access": round(med["array"] / accesses * 1e6, 3),
        "l1_hit_rate": round(st.l1.hit_rate, 4),
        "l2_hit_rate": round(st.l2.hit_rate, 4),
        "parity": True,
    }


def workloads(quick: bool) -> List[Workload]:
    if quick:
        return [
            ("smoke-unif-sddmm",
             lambda: uniform_random(512, 256, nnz=20_000, seed=11),
             16, "sddmm", DEFAULT_CHUNK_NNZ),
            ("smoke-rmat-spmm",
             lambda: rmat_graph(9, edge_factor=8, seed=5),
             16, "spmm", DEFAULT_CHUNK_NNZ),
        ]
    return [
        # Headline: >= 1M-access SDDMM whose dense working set is
        # L1-resident per set — the high-reuse regime SPADE targets,
        # and the one where the array solver's small-footprint fast
        # path pays most.  The 32k replay window amortizes the
        # solver's per-call costs (identical chunks are replayed by
        # every backend, so parity is chunk-size independent).
        ("unif-sddmm-1m",
         lambda: uniform_random(8192, 256, nnz=1_000_000, seed=11),
         16, "sddmm", 32768),
        # The former headline: wide dense operand whose working set is
        # only L2-resident, so the L1 miss cascade stays hot.
        ("unif-sddmm-1m-wide",
         lambda: uniform_random(8192, 1024, nnz=900_000, seed=11),
         16, "sddmm", DEFAULT_CHUNK_NNZ),
        ("rmat13-spmm-k64",
         lambda: rmat_graph(13, edge_factor=16, seed=5),
         64, "spmm", DEFAULT_CHUNK_NNZ),
        ("banded64k-sddmm-k16",
         lambda: banded(65_536, bandwidth=24, seed=3),
         16, "sddmm", DEFAULT_CHUNK_NNZ),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", "--smoke", dest="quick", action="store_true",
        help="tiny traces, 1 rep: CI-sized parity + plumbing check",
    )
    parser.add_argument(
        "--reps", type=int, default=3,
        help="timing repetitions per workload (median is reported)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default: repo-root BENCH_replay.json, "
        "or BENCH_replay_smoke.json in --quick mode so quick runs "
        "never clobber the tracked full-mode results)",
    )
    parser.add_argument(
        "--pes", type=int, default=8, help="scaled_config PE count"
    )
    args = parser.parse_args(argv)
    if args.out is None:
        name = "BENCH_replay_smoke.json" if args.quick else "BENCH_replay.json"
        args.out = Path(__file__).resolve().parent.parent / name
    reps = 1 if args.quick else max(1, args.reps)

    cfg_batched = dataclasses.replace(scaled_config(args.pes), replay="batched")
    cfg_array = dataclasses.replace(scaled_config(args.pes), replay="array")
    results = []
    rows = workloads(args.quick)
    for name, gen, k, kernel, chunk_nnz in rows:
        chunks = capture_trace(cfg_batched, gen(), k, kernel, chunk_nnz)
        row = bench_one(cfg_batched, cfg_array, name, chunks, reps)
        row["chunk_nnz"] = chunk_nnz
        results.append(row)
        print(
            f"{row['name']:22s} accesses={row['accesses']:>9,d}  "
            f"scalar {row['scalar_s']:.3f}s  batched {row['batched_s']:.3f}s "
            f"({row['speedup_batched']:.2f}x)  array {row['array_s']:.3f}s "
            f"({row['speedup_array']:.2f}x)  parity=OK"
        )

    payload = {
        "benchmark": "replay_speed",
        "mode": "smoke" if args.quick else "full",
        "config": {
            "pes": args.pes,
            "reps": reps,
            "chunk_nnz": [r["chunk_nnz"] for r in results],
            "execution": cfg_batched.execution,
            "replay": ["scalar", "batched", "array"],
        },
        "workloads": results,
        "headline_speedup": results[0]["speedup_array"],
        "headline_speedup_batched": results[0]["speedup_batched"],
    }
    write_bench_json(
        args.out, payload,
        config=cfg_array,
        workload={
            "benchmark": "replay_speed",
            "mode": payload["mode"],
            "workloads": [w[0] for w in rows],
        },
        extra={"argv": argv if argv is not None else sys.argv[1:]},
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
