"""Figure 14 benchmark: SPADE-mode power breakdown (SpMM, K=32)."""

import pytest
from conftest import report, run_once

from repro.bench import fig14


def test_fig14_power_breakdown(benchmark, env):
    rows = run_once(benchmark, fig14.run, env)
    report("fig14", fig14.format_result(rows))

    # Shape assertions from the paper:
    # 1. fractions are a valid decomposition;
    for r in rows:
        assert sum(r.fractions.values()) == pytest.approx(1.0)
    # 2. the PE array (with L1s/BBFs/victim caches) is a modest share
    #    even at maximum dynamic power (paper: ~14% mean);
    assert fig14.mean_fraction(rows, "pe") < 0.45
    # 3. DRAM dominates (paper: >50% mean).
    assert fig14.mean_fraction(rows, "dram") > max(
        fig14.mean_fraction(rows, "l2"),
        fig14.mean_fraction(rows, "llc"),
    )

