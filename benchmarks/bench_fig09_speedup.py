"""Figure 9 benchmark: SPADE Base / Opt / SPADE2 Base and GPU speedups
over the CPU baseline.

The default run covers both kernels at K=32 (REPRO_FULL=1 adds K=128).
Paper reference averages: Base 1.67x, Opt 2.32x, SPADE2 3.52x over the
CPU; 1.03x / 1.34x / 2.00x over the GPU.
"""

from conftest import full_mode, report, run_once

from repro.bench import fig09
from repro.sparse.suite import RU


def test_fig09_speedups(benchmark, env):
    k_values = (32, 128) if full_mode() else (32,)
    rows = run_once(
        benchmark, fig09.run, env,
        kernels=("spmm", "sddmm"), k_values=k_values,
    )
    report("fig09", fig09.format_result(rows))

    s = fig09.summary(rows)
    # Shape assertions from the paper:
    # 1. ordering Base < Opt <= SPADE2 on average;
    assert s["spade_base_vs_cpu"] < s["spade_opt_vs_cpu"]
    assert s["spade_opt_vs_cpu"] < s["spade2_base_vs_cpu"]
    # 2. SPADE wins on average over both CPU and (roughly) the GPU;
    assert s["spade_opt_vs_cpu"] > 1.3
    assert s["spade_opt_vs_gpu"] > 0.9
    # 3. flexibility matters most for high-RU matrices: their mean
    #    Opt/Base gain exceeds the low-RU mean gain.
    def mean_gain(ru):
        sel = [r.spade_opt / r.spade_base for r in rows if r.ru is ru]
        return sum(sel) / len(sel)

    assert mean_gain(RU.HIGH) > mean_gain(RU.LOW)
