"""End-to-end smoke for the simulation service (CI ``service-smoke`` lane).

Boots the real ``repro serve`` CLI as a subprocess, fires 32 concurrent
HTTP requests spanning 8 distinct job keys at it, and asserts the
service's whole contract from the outside:

* every request answers 200 with a result;
* requests for the same key get identical results, whether they were
  executed, coalesced, or memoized;
* the run ledger shows **exactly one** simulator execution per key
  (``sweep_job completed`` events — the coalescing/at-most-once audit);
* a warm rerun of all 32 bodies is answered 100% from the memo cache
  with zero new executions.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py \
        --artifacts service-artifacts --out service-artifacts/smoke.json
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.obs.ledger import read_events
from repro.service.client import ServiceClient

POINT = {"matrix": "ASI", "scale": "tiny", "pes": 2}
REPEATS = 4


def _bodies() -> list[dict]:
    bodies = []
    for k in (4, 8, 12, 16):
        for kernel in ("spmm", "sddmm"):
            bodies.append(dict(POINT, k=k, kernel=kernel))
    return bodies


def _start_server(artifacts: Path, workers: int) -> tuple[subprocess.Popen, int]:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--workers", str(workers),
            "--cache-dir", str(artifacts / "cache"),
            "--ledger", str(artifacts / "ledger"),
            # The smoke fires 32 requests in one burst from one tenant;
            # the default per-tenant quota (4/s, burst 16) would 429 the
            # back half, which is the admission suite's job to test.
            "--max-queue", "64", "--quota-rate", "1000",
            "--quota-burst", "1000",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 60.0
    port = None
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        sys.stdout.write(f"[serve] {line}")
        match = re.search(r"serving\s*: http://[^:]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        raise SystemExit("server never announced its port")
    # Drain the remaining banner lines in the background so the server
    # process cannot block on a full stdout pipe.
    threading.Thread(
        target=lambda: [sys.stdout.write(f"[serve] {ln}")
                        for ln in proc.stdout],
        daemon=True,
    ).start()
    return proc, port


def _fire_concurrently(client: ServiceClient, bodies: list[dict]) -> list[dict]:
    answers: list[dict | None] = [None] * len(bodies)
    errors: list[str] = []

    def _one(i: int) -> None:
        try:
            answers[i] = client.simulate(**bodies[i])
        except Exception as exc:  # noqa: BLE001 - collected and reported
            errors.append(f"request {i}: {exc!r}")

    threads = [
        threading.Thread(target=_one, args=(i,)) for i in range(len(bodies))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    if errors:
        raise SystemExit("requests failed:\n" + "\n".join(errors))
    missing = [i for i, a in enumerate(answers) if a is None]
    if missing:
        raise SystemExit(f"requests never completed: {missing}")
    return answers  # type: ignore[return-value]


def _audit_ledger(ledger_dir: Path) -> dict[str, int]:
    completed: dict[str, int] = {}
    for path in sorted(ledger_dir.glob("*.jsonl")):
        for event in read_events(path):
            if event.get("e") == "sweep_job" and event["status"] == "completed":
                key = event["key"]
                completed[key] = completed.get(key, 0) + 1
    return completed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifacts", default="service-artifacts")
    parser.add_argument("--out", default=None)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    artifacts = Path(args.artifacts)
    artifacts.mkdir(parents=True, exist_ok=True)

    distinct = _bodies()
    bodies = distinct * REPEATS
    proc, port = _start_server(artifacts, args.workers)
    client = ServiceClient(port=port)
    try:
        t0 = time.monotonic()
        answers = _fire_concurrently(client, bodies)
        cold_s = time.monotonic() - t0

        by_key: dict[str, list[dict]] = {}
        for answer in answers:
            by_key.setdefault(answer["key"], []).append(answer)
        assert len(by_key) == len(distinct), (
            f"expected {len(distinct)} distinct keys, saw {len(by_key)}"
        )
        for key, group in by_key.items():
            assert len(group) == REPEATS, (key, len(group))
            baseline = group[0]["result"]
            for answer in group[1:]:
                assert answer["result"] == baseline, (
                    f"divergent results for key {key[:16]}"
                )
        sources = {}
        for answer in answers:
            sources[answer["source"]] = sources.get(answer["source"], 0) + 1

        # Warm rerun: every body answers from the memo cache.
        t0 = time.monotonic()
        warm = [client.simulate(**body) for body in bodies]
        warm_s = time.monotonic() - t0
        not_memo = [a["source"] for a in warm if a["source"] != "memo"]
        assert not not_memo, f"warm rerun was not 100% memo: {not_memo}"

        stats = client.stats()
        client.shutdown()
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    # The ledger is flushed on shutdown; audit exactly-once execution.
    completed = _audit_ledger(artifacts / "ledger")
    doubles = {k: n for k, n in completed.items() if n != 1}
    assert not doubles, f"double executions: {doubles}"
    assert sorted(completed) == sorted(by_key), (
        "ledger keys do not match served keys"
    )

    summary = {
        "requests": len(bodies),
        "distinct_keys": len(by_key),
        "executions": len(completed),
        "cold_sources": sources,
        "cold_wall_s": round(cold_s, 3),
        "warm_wall_s": round(warm_s, 3),
        "warm_memo": len(warm),
        "server_stats": stats,
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
    print(
        f"ok: {len(bodies)} concurrent requests over {len(by_key)} keys -> "
        f"{len(completed)} executions (exactly-once), warm rerun 100% memo"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
