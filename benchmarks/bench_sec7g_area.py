"""Section 7.G benchmark: area and power of the SPADE add-on at 10 nm."""

from conftest import report, run_once

from repro.bench import sec7g


def test_sec7g_area_power(benchmark):
    result = run_once(benchmark, sec7g.run)
    report("sec7g", sec7g.format_result(result))

    # The modelled totals must land on the paper's numbers (the model
    # is calibrated, so this is a regression check on the flow):
    assert result.area_error < 0.10
    assert result.power_error < 0.10
    m = result.modelled
    # 4.3% of host TDP and 2.5% of host area.
    assert 0.02 < m.power_fraction_of_host < 0.07
    assert 0.015 < m.area_fraction_of_host < 0.04
