"""Figure 13 benchmark: SPADE Opt versus the ideal Sextans accelerator."""

from conftest import report, run_once

from repro.bench import fig13


def test_fig13_vs_ideal_sextans(benchmark, env):
    rows = run_once(benchmark, fig13.run, env)
    report("fig13", fig13.format_result(rows))

    s = fig13.summary(rows)
    # Shape assertions from the paper:
    # 1. SPADE Opt beats ideal Sextans on average (paper: 2.4x);
    assert s["mean_speedup"] > 1.3
    # 2. SPADE issues fewer memory accesses (paper: ~0.68x);
    assert s["mean_access_ratio"] < 1.0
    # 3. SPADE achieves higher bandwidth utilization (paper: ~1.4x);
    assert s["mean_bandwidth_ratio"] > 1.0
    # 4. including PCIe transfers, the gap becomes an order of
    #    magnitude or more (paper: 52.4x).
    assert s["mean_speedup_with_transfer"] > 5 * s["mean_speedup"]
