"""Table 5 benchmark: effect of scheduling barriers on execution time."""

from conftest import full_mode, report, run_once

from repro.bench import table5
from repro.sparse.suite import RU


def test_table5_scheduling_barriers(benchmark, env):
    k_values = (32, 128) if full_mode() else (32,)
    kernels = ("spmm", "sddmm") if full_mode() else ("spmm",)
    rows = run_once(
        benchmark, table5.run, env, kernels=kernels, k_values=k_values
    )
    report("table5", table5.format_result(rows))

    # Shape assertions from the paper: the effect is matrix-dependent —
    # barriers must help at least one high-RU matrix (the concurrent
    # LLC working set shrinks) and the spread across matrices is wide.
    changes = {r.matrix: r.pct_change for r in rows if r.k == 32}
    high_ru = [
        r.pct_change for r in rows
        if r.ru is RU.HIGH and r.k == 32 and r.kernel == "spmm"
    ]
    assert min(high_ru) < 0, "barriers should help some high-RU matrix"
    assert max(changes.values()) - min(changes.values()) > 5.0
