"""Figure 10 benchmark: progressive configurations CFG0-CFG5 at link
latencies 60/480/960 ns."""

from conftest import report, run_once

from repro.bench import fig10


def _points_by(points, cfg=None, ll=None):
    return [
        p for p in points
        if (cfg is None or p.config == cfg)
        and (ll is None or p.link_latency_ns == ll)
    ]


def test_fig10_progressive_features(benchmark, env):
    points = run_once(benchmark, fig10.run, env)
    report("fig10", fig10.format_result(points))

    at60 = {p.config: p for p in _points_by(points, ll=60.0)}

    # Shape assertions from the paper:
    # 1. progressive features never slow the system at LL=60 overall
    #    (CFG5 = Opt is the fastest point);
    assert at60["CFG5"].execution_time <= at60["CFG0"].execution_time
    # 2. CFG4 (sparse bypass) cuts LLC traffic vs CFG3 (pollution gone);
    assert at60["CFG4"].llc_accesses < at60["CFG3"].llc_accesses
    # 3. CFG4/CFG5 also cut DRAM+LLC accesses vs CFG1 (same traffic
    #    class) while CFG1 vs CFG0 changes traffic little (<15%): the
    #    early CFGs are pure latency tolerance;
    assert abs(at60["CFG1"].dram_accesses - at60["CFG0"].dram_accesses) < 0.15
    # 4. higher link latency hurts: every config is slower at 960 ns
    #    than at 60 ns;
    for cfg in ("CFG0", "CFG1", "CFG2", "CFG3", "CFG4"):
        t60 = _points_by(points, cfg=cfg, ll=60.0)[0].execution_time
        t960 = _points_by(points, cfg=cfg, ll=960.0)[0].execution_time
        assert t960 >= t60
    # 5. the benefit of the full feature set grows with link latency:
    #    CFG4/CFG0 improves more at 960 ns than at 60 ns.
    gain_60 = (
        _points_by(points, "CFG0", 60.0)[0].execution_time
        / _points_by(points, "CFG4", 60.0)[0].execution_time
    )
    gain_960 = (
        _points_by(points, "CFG0", 960.0)[0].execution_time
        / _points_by(points, "CFG4", 960.0)[0].execution_time
    )
    assert gain_960 >= gain_60
