"""Trace-generation benchmark: scalar vs vectorized vs pipelined engines.

Runs the same seeded SpMM/SDDMM workloads end to end under every
execution backend (``SpadeConfig.execution``):

* **scalar** — the PR 1 oracle: per-nonzero Python loops drive the VRF
  and emit the post-VRF trace access by access;
* **vectorized** — whole-epoch fused NumPy derivation of each PE's
  ``(lines, ops)`` trace with protected-run elision plus array
  functional kernels (see DESIGN.md sections 7 and 12);
* **pipelined** — the vectorized generator feeding coalesced
  whole-epoch replay partitions.

Every run asserts bit-identical outputs, simulated time, AccessStats
and PECounters across the three backends before timing is reported, so
the benchmark doubles as an end-to-end differential check.  Results
land in ``BENCH_gen.json`` (see README) to track the perf trajectory.

Methodology: repetitions are **interleaved** (rep loop outside, mode
loop inside) so each scalar/vectorized/pipelined triple samples the
same machine phase — on busy hosts the phase drift between back-to-back
blocks is larger than the effect being measured.  Speedups are computed
from the per-mode **minimum** across reps, the standard noise-robust
estimator for a deterministic workload (same rationale as ``timeit``);
medians are recorded alongside.  Each timed run also records the
per-epoch host phase split (``gen_s`` / ``merge_s`` / ``replay_s``)
through a throwaway run ledger, so BENCH_gen.json shows *where* the
time went, not just the totals.

The trace-cache section runs the headline workload twice against a
content-addressed :class:`~repro.memory.trace_store.TraceStore`: the
cold pass generates and publishes every epoch trace, the warm pass must
replay with **zero generation invocations** and bit-identical results.
``--trace-cache-dir`` persists the store across invocations (the CI
gen-smoke job runs the benchmark twice against one directory and
byte-compares the ``trace_cache.deterministic`` section).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_gen_speed.py
    PYTHONPATH=src python benchmarks/bench_gen_speed.py --smoke

This is a standalone script, not a pytest-benchmark module (the
``bench_*`` siblings are run via ``pytest benchmarks``).
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.bench.harness import write_bench_json
from repro.config import EXECUTION_MODES, scaled_config
from repro.core.accelerator import SpadeSystem
from repro.core.engine import DEFAULT_CHUNK_NNZ
from repro.memory.trace_store import TraceStore
from repro.obs.ledger import RunLedger, read_events
from repro.sparse.generators import banded, rmat_graph, uniform_random

_PHASES = ("gen_s", "merge_s", "replay_s")


def run_once(cfg, execution: str, a, b, c, kernel: str,
             chunk_nnz: int = DEFAULT_CHUNK_NNZ, trace_store=None):
    """One timed end-to-end engine run.

    Returns ``(seconds, report, phases, cache)`` where ``phases`` sums
    the per-epoch host phase split recorded by a throwaway run ledger
    (plus the fused-generation chunk count) and ``cache`` is the
    system's trace-cache counter dict.
    """
    with tempfile.TemporaryDirectory(prefix="bench-gen-ledger-") as tmp:
        ledger = RunLedger(Path(tmp) / "ledger.jsonl")
        system = SpadeSystem(
            cfg, chunk_nnz=chunk_nnz, execution=execution,
            ledger=ledger, trace_store=trace_store,
        )
        t0 = time.perf_counter()
        if kernel == "spmm":
            report = system.spmm(a, b)
        else:
            report = system.sddmm(a, b, c)
        elapsed = time.perf_counter() - t0
        ledger.close()
        phases = {p: 0.0 for p in _PHASES}
        phases["fused_chunks"] = 0
        for ev in read_events(ledger.path):
            if ev.get("e") == "epoch":
                for p in _PHASES:
                    phases[p] += ev.get(p, 0.0)
                phases["fused_chunks"] += int(ev.get("fused_chunks") or 0)
    return elapsed, report, phases, dict(system.trace_cache)


def assert_parity(name: str, oracle, candidate, mode: str) -> None:
    if not np.array_equal(oracle.output, candidate.output):
        raise AssertionError(f"{name}: {mode} output diverged from scalar")
    if oracle.result.time_ns != candidate.result.time_ns:
        raise AssertionError(
            f"{name}: {mode} simulated time diverged "
            f"({oracle.result.time_ns} != {candidate.result.time_ns})"
        )
    if dataclasses.asdict(oracle.stats) != dataclasses.asdict(
        candidate.stats
    ):
        raise AssertionError(f"{name}: {mode} AccessStats diverged")
    if oracle.counters != candidate.counters:
        raise AssertionError(f"{name}: {mode} PECounters diverged")


def _operands(gen, k: int, kernel: str):
    a = gen()
    rng = np.random.default_rng(7)
    if kernel == "spmm":
        return a, rng.random((a.num_cols, k), dtype=np.float32), None
    return (
        a,
        rng.random((a.num_rows, k), dtype=np.float32),
        rng.random((a.num_cols, k), dtype=np.float32),
    )


def bench_one(cfg, name: str, a, b, c, k: int, kernel: str, reps: int,
              chunk_nnz: int = DEFAULT_CHUNK_NNZ) -> dict:
    times = {mode: [] for mode in EXECUTION_MODES}
    phases = {mode: [] for mode in EXECUTION_MODES}
    reports = {}
    for _ in range(reps):
        # Interleaved: every rep samples all three modes back to back,
        # so each scalar/vectorized/pipelined ratio is a paired
        # measurement from the same machine phase.
        for mode in EXECUTION_MODES:
            dt, report, ph, _ = run_once(
                cfg, mode, a, b, c, kernel, chunk_nnz
            )
            times[mode].append(dt)
            phases[mode].append(ph)
            reports[mode] = report

    for mode in EXECUTION_MODES[1:]:
        assert_parity(name, reports["scalar"], reports[mode], mode)

    requests = reports["scalar"].counters.total_requests
    row = {
        "name": name,
        "kernel": kernel,
        "nnz": int(a.nnz),
        "k": k,
        "requests": int(requests),
        "parity": True,
    }
    best = {}
    for mode in EXECUTION_MODES:
        i = int(np.argmin(times[mode]))
        best[mode] = times[mode][i]
        row[f"{mode}_s"] = round(times[mode][i], 4)
        row[f"{mode}_median_s"] = round(statistics.median(times[mode]), 4)
        # Phase split of the best rep: where its seconds actually went.
        row[f"{mode}_phases"] = {
            key: (round(val, 4) if isinstance(val, float) else val)
            for key, val in phases[mode][i].items()
        }
    for mode in EXECUTION_MODES[1:]:
        row[f"{mode}_speedup"] = round(best["scalar"] / best[mode], 2)
    return row


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _deterministic_facts(report) -> dict:
    """The simulation facts a trace-cache rerun must reproduce exactly
    (everything except host wall-clock)."""
    return {
        "output_sha256": _sha256(
            np.ascontiguousarray(report.output).tobytes()
        ),
        "time_ns": int(report.result.time_ns),
        "requests": int(report.counters.total_requests),
        "stats_sha256": _sha256(
            json.dumps(
                dataclasses.asdict(report.stats), sort_keys=True
            ).encode()
        ),
        "counters_sha256": _sha256(
            json.dumps(
                dataclasses.asdict(report.counters), sort_keys=True
            ).encode()
        ),
    }


def bench_trace_cache(cfg, name: str, a, b, c, kernel: str,
                      chunk_nnz: int, scalar_s: float, reps: int,
                      cache_dir: Optional[Path]) -> dict:
    """Cold-then-warm headline runs against a content-addressed trace
    store; the warm pass must execute zero generation invocations and
    reproduce every simulated fact bit for bit."""
    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="bench-gen-tcache-")
        cache_dir = Path(tmp.name)
    try:
        t_cold, rep_cold, ph_cold, cc_cold = run_once(
            cfg, "pipelined", a, b, c, kernel, chunk_nnz,
            trace_store=TraceStore(cache_dir),
        )
        warm = []
        for _ in range(reps):
            # A fresh TraceStore per warm rep keeps hit/miss counters
            # per-run; the on-disk entries persist across them.
            warm.append(run_once(
                cfg, "pipelined", a, b, c, kernel, chunk_nnz,
                trace_store=TraceStore(cache_dir),
            ))
        i = int(np.argmin([w[0] for w in warm]))
        t_warm, rep_warm, ph_warm, cc_warm = warm[i]

        if cc_warm["gen_invocations"] != 0:
            raise AssertionError(
                f"{name}: warm trace-cache run generated "
                f"{cc_warm['gen_invocations']} epochs instead of 0"
            )
        if cc_warm["misses"] != 0 or cc_warm["hits"] < 1:
            raise AssertionError(
                f"{name}: warm trace-cache counters {cc_warm}"
            )
        assert_parity(name, rep_cold, rep_warm, "trace-cache warm")
        facts = _deterministic_facts(rep_cold)
        if facts != _deterministic_facts(rep_warm):
            raise AssertionError(
                f"{name}: warm run diverged from cold in simulated facts"
            )
        return {
            "workload": name,
            "dir": str(cache_dir) if tmp is None else None,
            "persistent": tmp is None,
            "cold_s": round(t_cold, 4),
            "warm_s": round(t_warm, 4),
            "warm_speedup_vs_scalar": round(scalar_s / t_warm, 2),
            "warm_vs_cold": round(t_cold / t_warm, 2),
            "cold": cc_cold,
            "warm": cc_warm,
            "cold_phases": {
                key: (round(val, 4) if isinstance(val, float) else val)
                for key, val in ph_cold.items()
            },
            "warm_phases": {
                key: (round(val, 4) if isinstance(val, float) else val)
                for key, val in ph_warm.items()
            },
            "deterministic": facts,
            "parity": True,
        }
    finally:
        if tmp is not None:
            tmp.cleanup()


def workloads(smoke: bool) -> List[Tuple[str, Callable, int, str, int]]:
    if smoke:
        return [
            ("smoke-unif-sddmm",
             lambda: uniform_random(512, 256, nnz=20_000, seed=11),
             16, "sddmm", DEFAULT_CHUNK_NNZ),
            ("smoke-rmat-spmm",
             lambda: rmat_graph(9, edge_factor=8, seed=5),
             16, "spmm", DEFAULT_CHUNK_NNZ),
        ]
    return [
        # Headline: the same >= 1M-access SDDMM (and replay window) as
        # BENCH_replay.json, so generation- and replay-stage gains are
        # tracked on one workload across PRs.
        ("unif-sddmm-1m",
         lambda: uniform_random(8192, 256, nnz=1_000_000, seed=11),
         16, "sddmm", 32768),
        ("unif-sddmm-1m-wide",
         lambda: uniform_random(8192, 1024, nnz=900_000, seed=11),
         16, "sddmm", DEFAULT_CHUNK_NNZ),
        ("rmat13-spmm-k64",
         lambda: rmat_graph(13, edge_factor=16, seed=5),
         64, "spmm", DEFAULT_CHUNK_NNZ),
        ("banded64k-sddmm-k16",
         lambda: banded(65_536, bandwidth=24, seed=3),
         16, "sddmm", DEFAULT_CHUNK_NNZ),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workloads, 1 rep: CI-sized parity + plumbing check",
    )
    parser.add_argument(
        "--reps", type=int, default=5,
        help="timing repetitions per workload (interleaved across "
        "modes; min is the headline, median recorded alongside)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default: repo-root BENCH_gen.json, or "
        "BENCH_gen_smoke.json in --smoke mode so smoke runs never "
        "clobber the tracked full-mode results)",
    )
    parser.add_argument(
        "--pes", type=int, default=8, help="scaled_config PE count"
    )
    parser.add_argument(
        "--trace-cache-dir", type=Path, default=None,
        help="persistent content-addressed trace store for the "
        "cold/warm section (default: a throwaway temp dir).  Rerunning "
        "against the same directory makes even the 'cold' pass warm — "
        "the CI gen-smoke job uses exactly that to prove cross-process "
        "reuse.",
    )
    args = parser.parse_args(argv)
    if args.out is None:
        name = "BENCH_gen_smoke.json" if args.smoke else "BENCH_gen.json"
        args.out = Path(__file__).resolve().parent.parent / name
    reps = 1 if args.smoke else max(1, args.reps)

    # Benchmark under the array replay backend: batched replay was the
    # Amdahl bottleneck of the vectorized engine (the ~1.9x cap this
    # headline used to sit at), so the end-to-end speedups now track
    # generation gains with replay off the critical path.
    cfg = dataclasses.replace(scaled_config(args.pes), replay="array")
    results = []
    operands = {}
    for name, gen, k, kernel, chunk_nnz in workloads(args.smoke):
        a, b, c = _operands(gen, k, kernel)
        operands[name] = (a, b, c, k, kernel, chunk_nnz)
        row = bench_one(cfg, name, a, b, c, k, kernel, reps, chunk_nnz)
        row["chunk_nnz"] = chunk_nnz
        results.append(row)
        gen_share = (
            row["pipelined_phases"]["gen_s"] / row["pipelined_s"]
            if row["pipelined_s"] else 0.0
        )
        print(
            f"{row['name']:22s} requests={row['requests']:>9,d}  "
            f"scalar {row['scalar_s']:.3f}s  "
            f"vectorized {row['vectorized_s']:.3f}s "
            f"({row['vectorized_speedup']:.2f}x)  "
            f"pipelined {row['pipelined_s']:.3f}s "
            f"({row['pipelined_speedup']:.2f}x, "
            f"gen {gen_share:.0%})  parity=OK"
        )

    head = results[0]
    a, b, c, k, kernel, chunk_nnz = operands[head["name"]]
    cache_row = bench_trace_cache(
        cfg, head["name"], a, b, c, kernel, chunk_nnz,
        head["scalar_s"], reps, args.trace_cache_dir,
    )
    print(
        f"{'trace-cache warm':22s} cold {cache_row['cold_s']:.3f}s  "
        f"warm {cache_row['warm_s']:.3f}s "
        f"({cache_row['warm_speedup_vs_scalar']:.2f}x vs scalar, "
        f"{cache_row['warm_vs_cold']:.2f}x vs cold)  "
        f"gen_invocations={cache_row['warm']['gen_invocations']}  "
        f"parity=OK"
    )

    payload = {
        "benchmark": "gen_speed",
        "mode": "smoke" if args.smoke else "full",
        "config": {
            "pes": args.pes,
            "reps": reps,
            "timing": "interleaved reps; min headline, median recorded",
            "chunk_nnz": [r["chunk_nnz"] for r in results],
            "execution": list(EXECUTION_MODES),
            "replay": cfg.replay,
            "pipeline": {
                "lookahead": cfg.pipeline.lookahead,
                "pool": cfg.pipeline.pool,
                "workers": cfg.pipeline.workers,
            },
        },
        "workloads": results,
        "trace_cache": cache_row,
        "headline_speedup": head["pipelined_speedup"],
    }
    write_bench_json(
        args.out, payload,
        config=cfg,
        workload={
            "benchmark": "gen_speed",
            "mode": payload["mode"],
            "workloads": [w[0] for w in workloads(args.smoke)],
        },
        extra={"argv": argv if argv is not None else sys.argv[1:]},
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
