"""Trace-generation benchmark: scalar vs vectorized vs pipelined engines.

Runs the same seeded SpMM/SDDMM workloads end to end under every
execution backend (``SpadeConfig.execution``):

* **scalar** — the PR 1 oracle: per-nonzero Python loops drive the VRF
  and emit the post-VRF trace access by access;
* **vectorized** — per-chunk NumPy derivation of the ``(lines, ops)``
  trace arrays with protected-run elision plus array functional
  kernels (see DESIGN.md section 7);
* **pipelined** — the vectorized generator running in a bounded
  producer/consumer pipeline overlapped with shared-memory replay.

Every run asserts bit-identical outputs, simulated time, AccessStats
and PECounters across the three backends before timing is reported, so
the benchmark doubles as an end-to-end differential check.  Results
land in ``BENCH_gen.json`` (see README) to track the perf trajectory.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_gen_speed.py
    PYTHONPATH=src python benchmarks/bench_gen_speed.py --smoke

This is a standalone script, not a pytest-benchmark module (the
``bench_*`` siblings are run via ``pytest benchmarks``).
"""

from __future__ import annotations

import argparse
import dataclasses
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, List, Tuple

import numpy as np

from repro.bench.harness import write_bench_json
from repro.config import EXECUTION_MODES, scaled_config
from repro.core.accelerator import SpadeSystem
from repro.core.engine import DEFAULT_CHUNK_NNZ
from repro.sparse.generators import banded, rmat_graph, uniform_random


def run_once(cfg, execution: str, a, b, c, kernel: str,
             chunk_nnz: int = DEFAULT_CHUNK_NNZ):
    """One timed end-to-end engine run; returns (seconds, report)."""
    system = SpadeSystem(cfg, chunk_nnz=chunk_nnz, execution=execution)
    t0 = time.perf_counter()
    if kernel == "spmm":
        report = system.spmm(a, b)
    else:
        report = system.sddmm(a, b, c)
    return time.perf_counter() - t0, report


def assert_parity(name: str, oracle, candidate, mode: str) -> None:
    if not np.array_equal(oracle.output, candidate.output):
        raise AssertionError(f"{name}: {mode} output diverged from scalar")
    if oracle.result.time_ns != candidate.result.time_ns:
        raise AssertionError(
            f"{name}: {mode} simulated time diverged "
            f"({oracle.result.time_ns} != {candidate.result.time_ns})"
        )
    if dataclasses.asdict(oracle.stats) != dataclasses.asdict(
        candidate.stats
    ):
        raise AssertionError(f"{name}: {mode} AccessStats diverged")
    if oracle.counters != candidate.counters:
        raise AssertionError(f"{name}: {mode} PECounters diverged")


def bench_one(cfg, name: str, gen, k: int, kernel: str, reps: int,
              chunk_nnz: int = DEFAULT_CHUNK_NNZ) -> dict:
    a = gen()
    rng = np.random.default_rng(7)
    if kernel == "spmm":
        b = rng.random((a.num_cols, k), dtype=np.float32)
        c = None
    else:
        b = rng.random((a.num_rows, k), dtype=np.float32)
        c = rng.random((a.num_cols, k), dtype=np.float32)

    times = {}
    reports = {}
    for mode in EXECUTION_MODES:
        mode_times = []
        for _ in range(reps):
            dt, report = run_once(cfg, mode, a, b, c, kernel, chunk_nnz)
            mode_times.append(dt)
        # Median of reps: robust to one-off scheduler noise in either
        # direction, unlike min (best case only) or mean.
        times[mode] = statistics.median(mode_times)
        reports[mode] = report

    for mode in EXECUTION_MODES[1:]:
        assert_parity(name, reports["scalar"], reports[mode], mode)

    requests = reports["scalar"].counters.total_requests
    scalar_s = times["scalar"]
    row = {
        "name": name,
        "kernel": kernel,
        "nnz": int(a.nnz),
        "k": k,
        "requests": int(requests),
        "parity": True,
    }
    for mode in EXECUTION_MODES:
        row[f"{mode}_s"] = round(times[mode], 4)
    for mode in EXECUTION_MODES[1:]:
        row[f"{mode}_speedup"] = round(scalar_s / times[mode], 2)
    return row


def workloads(smoke: bool) -> List[Tuple[str, Callable, int, str, int]]:
    if smoke:
        return [
            ("smoke-unif-sddmm",
             lambda: uniform_random(512, 256, nnz=20_000, seed=11),
             16, "sddmm", DEFAULT_CHUNK_NNZ),
            ("smoke-rmat-spmm",
             lambda: rmat_graph(9, edge_factor=8, seed=5),
             16, "spmm", DEFAULT_CHUNK_NNZ),
        ]
    return [
        # Headline: the same >= 1M-access SDDMM (and replay window) as
        # BENCH_replay.json, so generation- and replay-stage gains are
        # tracked on one workload across PRs.
        ("unif-sddmm-1m",
         lambda: uniform_random(8192, 256, nnz=1_000_000, seed=11),
         16, "sddmm", 32768),
        ("unif-sddmm-1m-wide",
         lambda: uniform_random(8192, 1024, nnz=900_000, seed=11),
         16, "sddmm", DEFAULT_CHUNK_NNZ),
        ("rmat13-spmm-k64",
         lambda: rmat_graph(13, edge_factor=16, seed=5),
         64, "spmm", DEFAULT_CHUNK_NNZ),
        ("banded64k-sddmm-k16",
         lambda: banded(65_536, bandwidth=24, seed=3),
         16, "sddmm", DEFAULT_CHUNK_NNZ),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workloads, 1 rep: CI-sized parity + plumbing check",
    )
    parser.add_argument(
        "--reps", type=int, default=3,
        help="timing repetitions per workload (median is reported)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default: repo-root BENCH_gen.json, or "
        "BENCH_gen_smoke.json in --smoke mode so smoke runs never "
        "clobber the tracked full-mode results)",
    )
    parser.add_argument(
        "--pes", type=int, default=8, help="scaled_config PE count"
    )
    args = parser.parse_args(argv)
    if args.out is None:
        name = "BENCH_gen_smoke.json" if args.smoke else "BENCH_gen.json"
        args.out = Path(__file__).resolve().parent.parent / name
    reps = 1 if args.smoke else max(1, args.reps)

    # Benchmark under the array replay backend: batched replay was the
    # Amdahl bottleneck of the vectorized engine (the ~1.9x cap this
    # headline used to sit at), so the end-to-end speedups now track
    # generation gains with replay off the critical path.
    cfg = dataclasses.replace(scaled_config(args.pes), replay="array")
    results = []
    for name, gen, k, kernel, chunk_nnz in workloads(args.smoke):
        row = bench_one(cfg, name, gen, k, kernel, reps, chunk_nnz)
        row["chunk_nnz"] = chunk_nnz
        results.append(row)
        print(
            f"{row['name']:22s} requests={row['requests']:>9,d}  "
            f"scalar {row['scalar_s']:.3f}s  "
            f"vectorized {row['vectorized_s']:.3f}s "
            f"({row['vectorized_speedup']:.2f}x)  "
            f"pipelined {row['pipelined_s']:.3f}s "
            f"({row['pipelined_speedup']:.2f}x)  parity=OK"
        )

    payload = {
        "benchmark": "gen_speed",
        "mode": "smoke" if args.smoke else "full",
        "config": {
            "pes": args.pes,
            "reps": reps,
            "chunk_nnz": [r["chunk_nnz"] for r in results],
            "execution": list(EXECUTION_MODES),
            "replay": cfg.replay,
            "pipeline": {
                "lookahead": cfg.pipeline.lookahead,
                "pool": cfg.pipeline.pool,
                "workers": cfg.pipeline.workers,
            },
        },
        "workloads": results,
        "headline_speedup": results[0]["vectorized_speedup"],
    }
    write_bench_json(
        args.out, payload,
        config=cfg,
        workload={
            "benchmark": "gen_speed",
            "mode": payload["mode"],
            "workloads": [w[0] for w in workloads(args.smoke)],
        },
        extra={"argv": argv if argv is not None else sys.argv[1:]},
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
