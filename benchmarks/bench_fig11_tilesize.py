"""Figure 11 benchmark: row/column panel size sensitivity for KRO, DEL,
and MYC."""

from conftest import report, run_once

from repro.bench import fig11


def test_fig11_tile_sensitivity(benchmark, env):
    maps = run_once(benchmark, fig11.run, env)
    report("fig11", fig11.format_result(maps))
    by_name = {m.matrix: m for m in maps}

    # Shape assertions from the paper:
    # 1. KRO (high RU) prefers a small column panel over all-columns;
    kro = by_name["KRO"]
    best_rp, best_cp = kro.best_cell()
    assert best_cp is not None, "KRO should not pick CP=all_columns"
    kro_spread = max(kro.normalized_time.values()) / min(
        kro.normalized_time.values()
    )
    assert kro_spread > 1.3, "KRO should be strongly tile-sensitive"

    # 2. DEL (low RU) is near-insensitive, with all-columns competitive
    #    (within 10% of its best cell).
    del_ = by_name["DEL"]
    best = min(del_.normalized_time.values())
    all_cols_best = min(
        v for (rp, cp), v in del_.normalized_time.items() if cp is None
    )
    assert all_cols_best <= best * 1.10

    # 3. MYC (few rows) benefits from small row panels: its best row
    #    panel is below the largest tried.
    myc = by_name["MYC"]
    best_rp_myc, _ = myc.best_cell()
    assert best_rp_myc < max(myc.row_panels)
