"""Run-ledger overhead benchmark: flight recorder on vs off.

Times the same seeded SDDMM workload end to end twice — once with the
ledger disabled (the default null writer) and once recording the full
event stream including the per-partition replay dispatch audit — and
asserts three things:

* **parity** — outputs, simulated time, stats, and counters are
  bit-identical with the recorder on and off (observability must never
  perturb the simulation);
* **coverage** — the enabled run's ledger is schema-valid and its
  dispatch audit is non-empty, while the disabled run records zero
  events and writes no file;
* **overhead** — the enabled median wall time stays within
  ``--max-overhead`` of the disabled median (3% by default on the full
  1M-access headline; the smoke workload is too small to time stably,
  so smoke mode uses a loose plumbing-only bound).

Results land in ``BENCH_obs.json``; the manifest cross-links the
recorded ledger (run id, event count, content digest) and the process
peak RSS.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import dataclasses
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import write_bench_json
from repro.config import scaled_config
from repro.core.accelerator import SpadeSystem
from repro.core.engine import DEFAULT_CHUNK_NNZ
from repro.obs import open_run_ledger, read_events, validate_ledgers
from repro.sparse.generators import uniform_random


def run_once(cfg, a, b, c, chunk_nnz, ledger=None):
    """One timed end-to-end SDDMM run; returns (seconds, report)."""
    system = SpadeSystem(cfg, chunk_nnz=chunk_nnz, ledger=ledger)
    t0 = time.perf_counter()
    report = system.sddmm(a, b, c)
    return time.perf_counter() - t0, report


def assert_parity(oracle, candidate) -> None:
    if not np.array_equal(oracle.output, candidate.output):
        raise AssertionError("ledger-on output diverged from ledger-off")
    if oracle.result.time_ns != candidate.result.time_ns:
        raise AssertionError(
            f"ledger-on simulated time diverged "
            f"({oracle.result.time_ns} != {candidate.result.time_ns})"
        )
    if dataclasses.asdict(oracle.stats) != dataclasses.asdict(
        candidate.stats
    ):
        raise AssertionError("ledger-on AccessStats diverged")
    if oracle.counters != candidate.counters:
        raise AssertionError("ledger-on PECounters diverged")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload, 1 rep: CI-sized parity + plumbing check",
    )
    parser.add_argument(
        "--reps", type=int, default=5,
        help="timing repetitions per side (median is compared)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=None,
        help="maximum allowed on/off wall-time ratio (default 1.03 "
        "full, 2.0 smoke — tiny runs are timing noise)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default: repo-root BENCH_obs.json, or "
        "BENCH_obs_smoke.json in --smoke mode)",
    )
    parser.add_argument(
        "--pes", type=int, default=8, help="scaled_config PE count"
    )
    args = parser.parse_args(argv)
    if args.out is None:
        name = "BENCH_obs_smoke.json" if args.smoke else "BENCH_obs.json"
        args.out = Path(__file__).resolve().parent.parent / name
    reps = 1 if args.smoke else max(1, args.reps)
    max_overhead = args.max_overhead or (2.0 if args.smoke else 1.03)

    # The BENCH_gen/BENCH_replay headline workload, so the overhead
    # number is measured exactly where the dispatch audit is busiest.
    if args.smoke:
        name = "smoke-unif-sddmm"
        a = uniform_random(512, 256, nnz=20_000, seed=11)
        chunk_nnz = DEFAULT_CHUNK_NNZ
    else:
        name = "unif-sddmm-1m"
        a = uniform_random(8192, 256, nnz=1_000_000, seed=11)
        chunk_nnz = 32768
    k = 16
    rng = np.random.default_rng(7)
    b = rng.random((a.num_rows, k), dtype=np.float32)
    c = rng.random((a.num_cols, k), dtype=np.float32)
    cfg = dataclasses.replace(scaled_config(args.pes), replay="array")

    ledger_dir = Path(tempfile.mkdtemp(prefix="bench-obs-"))
    try:
        off_times, on_times = [], []
        off_report = on_report = None
        ledger = None
        for rep in range(reps):
            dt, off_report = run_once(cfg, a, b, c, chunk_nnz)
            off_times.append(dt)
            rep_ledger = open_run_ledger(
                ledger_dir / f"rep{rep}", run_id=f"bench{rep:02d}"
            )
            dt, on_report = run_once(
                cfg, a, b, c, chunk_nnz, ledger=rep_ledger
            )
            rep_ledger.close()
            on_times.append(dt)
            ledger = rep_ledger

        assert_parity(off_report, on_report)

        events = read_events(ledger.path)
        dispatch = [e for e in events if e["e"] == "dispatch"]
        if not dispatch:
            raise AssertionError(
                "ledger-on run recorded no dispatch audit events"
            )
        validate_ledgers([ledger.path], require_dispatch=True)
        chosen = {}
        for ev in dispatch:
            chosen[ev["chosen"]] = chosen.get(ev["chosen"], 0) + 1

        # Disabled side: the null writer must leave no trace at all.
        off_system = SpadeSystem(cfg, chunk_nnz=chunk_nnz)
        if off_system.ledger is not None:
            raise AssertionError("ledger-off system carries a ledger")

        off_s = statistics.median(off_times)
        on_s = statistics.median(on_times)
        ratio = on_s / off_s if off_s > 0 else 1.0
        print(
            f"{name:22s} off {off_s:.3f}s  on {on_s:.3f}s  "
            f"ratio {ratio:.3f}  events={len(events)} "
            f"dispatch={len(dispatch)} chosen={chosen}  parity=OK"
        )
        if ratio > max_overhead:
            raise AssertionError(
                f"ledger overhead {ratio:.3f}x exceeds the "
                f"{max_overhead:.2f}x budget "
                f"(off {off_s:.3f}s, on {on_s:.3f}s)"
            )

        payload = {
            "benchmark": "obs_overhead",
            "mode": "smoke" if args.smoke else "full",
            "config": {
                "pes": args.pes,
                "reps": reps,
                "chunk_nnz": chunk_nnz,
                "replay": cfg.replay,
                "max_overhead": max_overhead,
            },
            "workload": {"name": name, "nnz": int(a.nnz), "k": k},
            "off_s": round(off_s, 4),
            "on_s": round(on_s, 4),
            "overhead_ratio": round(ratio, 4),
            "events": len(events),
            "dispatch_events": len(dispatch),
            "dispatch_chosen": chosen,
            "parity": True,
        }
        write_bench_json(
            args.out, payload,
            config=cfg,
            workload={
                "benchmark": "obs_overhead",
                "mode": payload["mode"],
                "name": name,
            },
            extra={"argv": argv if argv is not None else sys.argv[1:]},
            ledger=ledger,
        )
        print(f"wrote {args.out}")
    finally:
        shutil.rmtree(ledger_dir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
