"""Sweep-orchestrator benchmark: serial vs process-parallel vs cached.

Runs representative experiment grids (fig09, table5) three ways:

* **serial** — ``sweep=None``, the plain in-process loop;
* **parallel** — a :class:`~repro.sweep.SweepRunner` with ``--jobs N``
  worker processes and a cold content-addressed result cache;
* **warm** — the same sweep again over the now-populated cache, which
  must execute **zero** simulator invocations.

Every run asserts the parallel and cached outputs are equal to the
serial rows before timing is reported, so the benchmark doubles as an
end-to-end parity check.  Two speedups land in ``BENCH_sweep.json``:

* ``parallel_speedup`` — hardware-dependent; scales with physical
  cores (recorded alongside ``cpu_count`` so a 1-core CI box and an
  N-core workstation are comparable on their own terms);
* ``warm_cache_speedup`` — machine-independent: cached reruns replace
  simulation with file reads regardless of core count.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_sweep_speed.py
    PYTHONPATH=src python benchmarks/bench_sweep_speed.py --smoke

This is a standalone script, not a pytest-benchmark module (the
``bench_*`` siblings are run via ``pytest benchmarks``).
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time
from pathlib import Path
from typing import List

from repro.bench import fig09, table5
from repro.bench.harness import BenchEnvironment, write_bench_json
from repro.sweep import SweepRunner, open_cache


def _env(smoke: bool) -> BenchEnvironment:
    if smoke:
        return BenchEnvironment(
            scale="tiny", num_pes=2, opt_mode="quick",
            cache_shrink=8.0, row_panel_divisor=8,
        )
    return BenchEnvironment(
        scale="small", num_pes=4, opt_mode="quick",
        cache_shrink=16.0, row_panel_divisor=8,
    )


def _drivers(smoke: bool):
    matrices = ["KRO", "DEL", "MYC"] if smoke else None
    return [("fig09", fig09, matrices), ("table5", table5, matrices)]


def _timed(fn) -> tuple:
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def bench_driver(
    name: str, module, matrices, env: BenchEnvironment,
    jobs: int, cache_dir: str, reps: int,
) -> dict:
    # Untimed warm-up: populates the process-wide workload caches
    # (suite_matrix/dense_input lru_caches) that forked workers inherit,
    # so the serial leg is not charged for first-touch construction the
    # parallel leg gets for free.
    module.run(env, matrices=matrices)

    serial_times: List[float] = []
    serial_rows = None
    for _ in range(reps):
        serial_rows, dt = _timed(
            lambda: module.run(env, matrices=matrices)
        )
        serial_times.append(dt)

    cold = SweepRunner(jobs=jobs, cache=open_cache(cache_dir))
    parallel_rows, parallel_s = _timed(
        lambda: module.run(env, matrices=matrices, sweep=cold)
    )
    assert parallel_rows == serial_rows, f"{name}: parallel != serial"
    assert cold.report.completed == cold.report.total

    warm_times: List[float] = []
    warm_rows = None
    warm = None
    for _ in range(reps):
        warm = SweepRunner(jobs=jobs, cache=open_cache(cache_dir))
        warm_rows, dt = _timed(
            lambda: module.run(env, matrices=matrices, sweep=warm)
        )
        warm_times.append(dt)
    assert warm_rows == serial_rows, f"{name}: cached != serial"
    assert warm.report.cached == warm.report.total, (
        f"{name}: warm rerun executed "
        f"{warm.report.completed} simulator invocations, expected 0"
    )

    serial_s = statistics.median(serial_times)
    warm_s = statistics.median(warm_times)
    return {
        "name": name,
        "grid_jobs": cold.report.total,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "warm_s": round(warm_s, 4),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "warm_cache_speedup": round(serial_s / warm_s, 2),
        "warm_cache_hit_fraction": warm.report.cached_fraction,
        "warm_simulator_invocations": warm.report.completed,
        "parity": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny grids for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="worker processes for the parallel leg (default 4)",
    )
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default: repo-root BENCH_sweep.json, or "
        "BENCH_sweep_smoke.json in --smoke mode so smoke runs never "
        "overwrite tracked full-mode results)",
    )
    parser.add_argument("--cache-dir", type=Path, default=None)
    args = parser.parse_args(argv)

    out = args.out
    if out is None:
        name = "BENCH_sweep_smoke.json" if args.smoke else "BENCH_sweep.json"
        out = Path(__file__).resolve().parent.parent / name
    reps = 1 if args.smoke else max(1, args.reps)
    env = _env(args.smoke)

    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        cache_root = Path(args.cache_dir or scratch)
        results = []
        for name, module, matrices in _drivers(args.smoke):
            results.append(
                bench_driver(
                    name, module, matrices, env,
                    args.jobs, str(cache_root / name), reps,
                )
            )
            print(
                f"{name}: {results[-1]['grid_jobs']} jobs  "
                f"serial {results[-1]['serial_s']}s  "
                f"parallel(x{args.jobs}) {results[-1]['parallel_s']}s "
                f"({results[-1]['parallel_speedup']}x)  "
                f"warm cache {results[-1]['warm_s']}s "
                f"({results[-1]['warm_cache_speedup']}x)"
            )

    payload = {
        "benchmark": "sweep_speed",
        "mode": "smoke" if args.smoke else "full",
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "reps": reps,
        "results": results,
    }
    write_bench_json(
        out,
        payload,
        workload={
            "drivers": [name for name, _, _ in _drivers(args.smoke)],
            "environment": env.scale,
            "jobs": args.jobs,
        },
    )
    print(f"results written: {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
