"""Shared benchmark configuration.

Each benchmark runs its experiment exactly once (``benchmark.pedantic``
with one round): the measured quantity is the simulated system, and the
experiment output — the paper's rows/series — is printed to stdout.

Environment knobs (see ``repro.bench.harness``): REPRO_SCALE,
REPRO_PES, REPRO_OPT, REPRO_CACHE_SHRINK, REPRO_RP_DIVISOR.  Set
``REPRO_FULL=1`` to run the K=128 and SDDMM variants everywhere.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def env():
    from repro.bench.harness import get_environment

    return get_environment()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


def report(name: str, text: str) -> None:
    """Print an experiment's formatted output and persist it under
    benchmarks/results/ (pytest hides stdout of passing tests)."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
