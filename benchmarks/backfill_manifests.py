"""Backfill provenance manifests into existing benchmark result files.

Result JSONs written before the telemetry layer (PR 1's
``BENCH_replay.json``) carry measured numbers but no provenance; this
helper re-emits them with the ``manifest`` field added so the whole
``BENCH_*.json`` trajectory validates against the manifest schema.
**Measured numbers are never touched**: every pre-existing key is
preserved byte-for-byte at the JSON level, and ``--check`` verifies
files without writing anything.

Run from the repo root::

    PYTHONPATH=src python benchmarks/backfill_manifests.py           # stamp
    PYTHONPATH=src python benchmarks/backfill_manifests.py --check   # verify
    PYTHONPATH=src python benchmarks/backfill_manifests.py path.json ...
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.telemetry.provenance import (
    run_manifest,
    validate_manifest,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def default_targets() -> List[Path]:
    """Every tracked benchmark result JSON at the repo root."""
    return sorted(REPO_ROOT.glob("BENCH_*.json"))


def backfill_file(path: Path, write: bool = True) -> str:
    """Stamp one result file in place.

    Returns one of ``"ok"`` (already has a valid manifest),
    ``"stamped"`` (manifest added), or — in check mode — ``"missing"``.
    """
    payload = json.loads(path.read_text())
    manifest = payload.get("manifest")
    if manifest is not None:
        validate_manifest(manifest)
        return "ok"
    if not write:
        return "missing"
    # Re-emit with provenance; everything measured passes through
    # unchanged (the manifest only *adds* a key).
    payload["manifest"] = run_manifest(
        workload={"source": path.name},
        extra={
            "backfilled": True,
            "note": "manifest added after the fact; config/host "
            "describe the backfill run, not the original measurement",
        },
    )
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return "stamped"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="result JSONs to stamp (default: repo-root BENCH_*.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="verify manifests exist and validate; write nothing",
    )
    args = parser.parse_args(argv)
    targets = args.paths or default_targets()
    if not targets:
        print("no benchmark result files found")
        return 0
    missing = 0
    for path in targets:
        status = backfill_file(path, write=not args.check)
        print(f"{path.name:30s} {status}")
        if status == "missing":
            missing += 1
    if missing:
        print(f"{missing} file(s) lack a manifest", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
