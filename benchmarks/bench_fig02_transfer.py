"""Figure 2 benchmark: GPU single-iteration SpMM time vs CPU, with
host-device transfer overhead."""

from conftest import report, run_once

from repro.bench import fig02


def test_fig02_transfer_overhead(benchmark, env):
    rows = run_once(benchmark, fig02.run, env)
    report("fig02", fig02.format_result(rows))

    s = fig02.summary(rows)
    # Shape assertions from the paper:
    # 1. kernel-only, the GPU is on average faster than the CPU;
    assert s["geomean_gpu_vs_cpu_kernel"] < 1.0
    # 2. with transfers, the GPU is always much slower;
    assert all(r.normalized_total > 1.0 for r in rows)
    # 3. transfers dominate the GPU's single-iteration time.
    assert s["mean_transfer_fraction"] > 0.80
