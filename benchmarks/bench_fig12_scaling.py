"""Figure 12 benchmark: strong scaling of SPADE2/4/8 Base over SPADE1."""

from conftest import report, run_once

from repro.bench import fig12


def test_fig12_strong_scaling(benchmark, env):
    rows = run_once(benchmark, fig12.run, env)
    report("fig12", fig12.format_result(rows))

    by_name = {r.matrix: r for r in rows}

    # Shape assertions from the paper:
    # 1. scaled systems are faster; speedup keeps growing with the
    #    factor except on the few-row matrices (MYC, KRO), whose
    #    load imbalance is the paper's own exception;
    for r in rows:
        assert r.speedups[2] > 1.0
        if r.matrix not in ("MYC", "KRO"):
            assert r.speedups[8] >= r.speedups[2]
    # 2. SPADE scales well for regular matrices (>=50% of linear at 2x
    #    for the road/mesh graphs);
    for name in ("ASI", "DEL", "ROA"):
        assert fig12.scaling_efficiency(by_name[name], 2) > 0.5
    # 3. the few-row matrices (MYC, KRO) scale worst at 8x — load
    #    imbalance, exactly the paper's exception.
    eff8 = {name: fig12.scaling_efficiency(r, 8) for name, r in by_name.items()}
    worst_two = sorted(eff8, key=eff8.get)[:2]
    assert set(worst_two) & {"MYC", "KRO"}
