"""Section 7.D benchmark: CPU <-> SPADE mode-transition overheads."""

from conftest import report, run_once

from repro.bench import sec7d


def test_sec7d_mode_transitions(benchmark, env):
    rows = run_once(benchmark, sec7d.run, env)
    report("sec7d", sec7d.format_result(rows))

    spmm = [r for r in rows if r.kernel == "spmm"]
    sddmm = [r for r in rows if r.kernel == "sddmm"]
    mean = lambda xs: sum(xs) / len(xs)

    # Shape assertions from the paper:
    # 1. SPADE->CPU transitions are tiny (paper ~0.2%);
    assert mean([r.spade_to_cpu_pct for r in rows]) < 2.0
    # 2. CPU->SPADE costs more for SDDMM than SpMM (rMatrix writeback);
    assert mean([r.cpu_to_spade_pct for r in sddmm]) > mean(
        [r.cpu_to_spade_pct for r in spmm]
    )
    # 3. all overheads stay a small fraction of SPADE-mode time.
    assert mean([r.cpu_to_spade_pct for r in sddmm]) < 25.0
