"""Ablation benchmarks: the design choices DESIGN.md calls out.

Not a paper figure — these quantify the one-line design justifications
of Sections 5.1-5.2 (Write-back Manager hysteresis, VRF capacity,
victim-cache capacity, barrier granularity) in the simulated model.
"""

from conftest import report, run_once

from repro.bench import ablations


def test_ablation_writeback_thresholds(benchmark, env):
    points = run_once(benchmark, ablations.writeback_thresholds, env)
    report(
        "ablation_writeback",
        ablations.format_points(
            "Write-back Manager thresholds (normalised to 25%/15%)",
            points,
        ),
    )
    eager, paper, lazy = points
    # Eager writeback floods the store path: more stores than the
    # paper's hysteresis by a clear margin.
    assert eager.stores > 1.5 * paper.stores
    # The paper's setting is not slower than either extreme by more
    # than a whisker (it was chosen as the balanced point).
    assert paper.time <= min(eager.time, lazy.time) * 1.05


def test_ablation_vrf_size(benchmark, env):
    points = run_once(benchmark, ablations.vrf_sizes, env)
    report(
        "ablation_vrf",
        ablations.format_points("VRF size (normalised to 64 VRs)", points),
    )
    # Finding: with a write-back L1 behind the VRF, register capacity
    # barely moves end-to-end time or traffic (the L1 absorbs tag-CAM
    # misses) — evidence that Table 1's modest 64 registers suffice.
    for p in points:
        assert 0.9 < p.time < 1.1
        assert 0.9 < p.dram_accesses < 1.1


def test_ablation_victim_cache(benchmark, env):
    points = run_once(benchmark, ablations.victim_cache_sizes, env)
    report(
        "ablation_victim",
        ablations.format_points(
            "Victim cache size under rMatrix bypass (normalised to 32KB)",
            points,
        ),
    )
    # Shrinking the victim cache under bypass costs DRAM spills — the
    # mechanism behind the paper's KRO outlier (Table 6).
    smallest, largest = points[0], points[-1]
    assert smallest.dram_accesses >= largest.dram_accesses


def test_ablation_barrier_granularity(benchmark, env):
    points = run_once(benchmark, ablations.barrier_granularity, env)
    report(
        "ablation_barriers",
        ablations.format_points(
            "Barrier epoch granularity (normalised to 1 panel/epoch)",
            points,
        ),
    )
    # Coarser epochs trade reuse for slack: times stay within a sane
    # band (no pathological blow-up) across granularities.
    assert all(0.3 < p.time < 3.0 for p in points)
