"""Table 6 benchmark: effect of rMatrix cache bypassing on top of each
matrix's best tile/barrier setting."""

from conftest import full_mode, report, run_once

from repro.bench import table6


def test_table6_rmatrix_bypass(benchmark, env):
    k_values = (32, 128) if full_mode() else (32,)
    kernels = ("spmm", "sddmm") if full_mode() else ("spmm",)
    rows = run_once(
        benchmark, table6.run, env, kernels=kernels, k_values=k_values
    )
    report("table6", table6.format_result(rows))

    changes = [r.pct_change for r in rows]
    # Shape assertions from the paper:
    # 1. bypassing helps a majority of the benchmarks (negative = faster);
    helped = sum(1 for c in changes if c < 0)
    assert helped >= len(changes) // 2
    # 2. but it is not universally good — some matrix pays a penalty
    #    when its row-panel working set spills the victim cache (the
    #    paper's KRO outlier), or at least the effect is not uniform.
    assert max(changes) > min(changes)
