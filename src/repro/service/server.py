"""Simulation-as-a-service: the asyncio HTTP front end.

Two layers, separable for testing:

- :class:`SimulationService` — the transport-agnostic request path.
  ``begin(body)`` classifies one request (400 / memo hit / rejected /
  leader / coalesced waiter) and either returns a finished
  :class:`Reply` or a :class:`PendingReply` whose future the caller
  awaits; ``finish(pending, ...)`` turns the awaited outcome into the
  final :class:`Reply`.  ``begin`` must be called from **one** thread
  (the asyncio loop) — single-threaded classification is what makes
  the leader/waiter split race-free; the heavy lifting happens on the
  pool's worker processes.
- :class:`ServiceServer` — a hand-rolled HTTP/1.1 server on
  ``asyncio.start_server`` (stdlib only — the container has no web
  framework, and the protocol surface is five routes with
  ``Connection: close`` semantics).

Request path (``POST /v1/simulate``), cheapest exit first::

    parse+validate ── 400
      └─ memo probe (ResultCache) ── 200 source="memo"
           └─ coalesce join: waiter? ── quota check ── await leader
                └─ leader: admission (queue bound, tenant quota)
                     ├─ 429 / 503 (+ Retry-After)
                     └─ pool.submit → await → 200 source="executed"
                                             (5xx on quarantine/failure)

Every transition writes a ``service`` ledger event and bumps a
``spade_service_*`` counter, so ``repro obs report`` can reconstruct
the memo-hit ratio and the coalescing fan-in after the fact.

Routes: ``POST /v1/simulate``, ``POST /v1/sweep`` (a grid body fans
out through the same per-key path), ``GET /healthz``, ``GET
/v1/stats``, ``GET /metrics`` (Prometheus text), ``POST
/v1/shutdown``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import SpadeError, WorkloadError
from repro.jobmodel import JobResult
from repro.obs.ledger import NULL_LEDGER
from repro.service.admission import (
    DEFAULT_TENANT,
    PRIORITIES,
    AdmissionController,
    AdmissionPolicy,
)
from repro.service.coalesce import Coalescer
from repro.service.pool import (
    ServiceExecutionError,
    ServicePool,
    ServiceQuarantined,
)
from repro.service.simulate import (
    RUN_POINT_FIELDS,
    request_point,
    run_cell,
    run_jobspec,
    to_plain,
)
from repro.sweep.cache import ResultCache
from repro.telemetry import ensure

SERVICE_SCHEMA_VERSION = 1
MAX_BODY_BYTES = 1 << 20  # a request is a small JSON object


@dataclass
class Reply:
    """One finished HTTP answer (transport-agnostic)."""

    status: int
    payload: Dict[str, Any]
    retry_after_s: float = 0.0


@dataclass
class PendingReply:
    """A request awaiting an in-flight execution's future."""

    future: Any  # concurrent.futures.Future[JobResult]
    key: str
    point: Tuple
    tenant: str
    priority: str
    is_leader: bool
    t0: float


class SimulationService:
    """The request path shared by the HTTP server and in-process tests."""

    def __init__(
        self,
        cache: ResultCache,
        pool: ServicePool,
        policy: Optional[AdmissionPolicy] = None,
        telemetry=None,
        ledger=None,
        clock=None,
    ) -> None:
        self.cache = cache
        self.pool = pool
        self.admission = AdmissionController(policy, clock=clock)
        self.coalescer = Coalescer()
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        self.telemetry = ensure(telemetry)
        metrics = self.telemetry.metrics
        self._m_requests = metrics.counter(
            "spade_service_requests",
            help="simulation requests received",
        )
        self._m_memo = metrics.counter(
            "spade_service_memo_hits",
            help="requests answered from the result cache without queuing",
        )
        self._m_coalesced = metrics.counter(
            "spade_service_coalesced",
            help="requests attached to an already-in-flight execution",
        )
        self._m_rejected = metrics.counter(
            "spade_service_rejected",
            help="requests refused by admission control (429/503)",
        )
        self._m_served = metrics.counter(
            "spade_service_served",
            help="requests answered successfully (any source)",
        )
        self.requests = 0
        self.memo_hits = 0
        self.served = 0

    # -- request classification (single-threaded) ------------------------

    def begin(self, body: Any) -> Union[Reply, PendingReply]:
        self.requests += 1
        self._m_requests.inc()
        t0 = time.perf_counter()
        tenant = DEFAULT_TENANT
        priority = "interactive"
        if isinstance(body, Mapping):
            tenant = str(body.get("tenant") or DEFAULT_TENANT)
            priority = str(body.get("priority") or "interactive")
        try:
            if priority not in PRIORITIES:
                raise WorkloadError(
                    f"priority must be one of {PRIORITIES}, "
                    f"got {priority!r}"
                )
            point = request_point(body)
        except WorkloadError as exc:
            self._emit("failed", code=400, reason=str(exc),
                       tenant=tenant)
            return Reply(400, {"error": str(exc)})
        spec = run_jobspec(point)
        key = spec.key
        self._emit("request_received", key=key, tenant=tenant,
                   priority=priority)
        hit, value = self.cache.get(key)
        if hit:
            self.memo_hits += 1
            self._m_memo.inc()
            return self._serve(
                Outcome(key, point, tenant, "memo", value, 1, t0)
            )
        is_leader, entry = self.coalescer.join(key)
        if not is_leader:
            # Coalesced: charged quota (popularity is not free) but no
            # queue slot (the execution is already accounted for).
            self._m_coalesced.inc()
            self._emit("coalesced", key=key, tenant=tenant,
                       priority=priority)
            decision = self.admission.admit(
                tenant, priority, needs_slot=False
            )
            if not decision.ok:
                return self._reject(key, tenant, priority, decision)
            self._emit("admitted", key=key, tenant=tenant,
                       priority=priority)
            return PendingReply(
                entry.future, key, point, tenant, priority,
                is_leader=False, t0=t0,
            )
        decision = self.admission.admit(tenant, priority,
                                        needs_slot=True)
        if not decision.ok:
            # Retire the in-flight entry we just created: the next
            # request for this key must become a fresh leader.
            self.coalescer.fail(
                key, SpadeError("leader rejected by admission")
            )
            return self._reject(key, tenant, priority, decision)
        self._emit("admitted", key=key, tenant=tenant,
                   priority=priority)
        pool_future = self.pool.submit(
            spec, run_cell, priority=priority
        )
        pool_future.add_done_callback(
            self._make_leader_callback(key)
        )
        return PendingReply(
            entry.future, key, point, tenant, priority,
            is_leader=True, t0=t0,
        )

    def _make_leader_callback(self, key: str):
        """Fan the pool's outcome out to every coalesced waiter and
        return the admission slot.  Runs on the pool dispatcher thread;
        Coalescer and AdmissionController are thread-safe."""
        def _done(fut) -> None:
            self.admission.release()
            exc = fut.exception()
            if exc is not None:
                self.coalescer.fail(key, exc)
            else:
                self.coalescer.resolve(key, fut.result())
        return _done

    # -- outcome rendering ----------------------------------------------

    def finish(self, pending: PendingReply,
               result: Optional[JobResult],
               exc: Optional[BaseException] = None) -> Reply:
        if exc is not None:
            return self._serve_error(pending, exc)
        source = result.source
        if not pending.is_leader and source in ("executed", "cached"):
            source = "coalesced"
        return self._serve(Outcome(
            pending.key, pending.point, pending.tenant, source,
            result.value, result.attempt, pending.t0,
        ))

    def _serve(self, outcome: "Outcome") -> Reply:
        wall_s = time.perf_counter() - outcome.t0
        self.served += 1
        self._m_served.inc()
        self._emit(
            "served", key=outcome.key, tenant=outcome.tenant,
            source=outcome.source, wall_s=round(wall_s, 6),
            attempt=outcome.attempt,
        )
        fields = dict(zip(RUN_POINT_FIELDS, outcome.point))
        return Reply(200, {
            "schema_version": SERVICE_SCHEMA_VERSION,
            "key": outcome.key,
            "source": outcome.source,
            "attempt": outcome.attempt,
            "point": to_plain(fields),
            "result": to_plain(outcome.value),
        })

    def _serve_error(self, pending: PendingReply,
                     exc: BaseException) -> Reply:
        if isinstance(exc, ServiceQuarantined):
            self._emit("failed", key=pending.key,
                       tenant=pending.tenant, code=503,
                       reason=str(exc))
            return Reply(503, {
                "error": str(exc),
                "key": pending.key,
                "quarantine_manifest": exc.manifest_path,
            })
        code = 500 if isinstance(exc, ServiceExecutionError) else 502
        self._emit("failed", key=pending.key, tenant=pending.tenant,
                   code=code, reason=str(exc))
        return Reply(code, {"error": str(exc), "key": pending.key})

    def _reject(self, key: str, tenant: str, priority: str,
                decision) -> Reply:
        self._m_rejected.inc()
        self._emit(
            "rejected", key=key, tenant=tenant, priority=priority,
            code=decision.code, reason=decision.reason,
        )
        return Reply(
            decision.code,
            {"error": decision.reason, "key": key},
            retry_after_s=decision.retry_after_s,
        )

    def _emit(self, status: str, **fields: Any) -> None:
        if self.ledger.enabled:
            self.ledger.emit("service", status=status, **fields)

    # -- inspection ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "schema_version": SERVICE_SCHEMA_VERSION,
            "requests": self.requests,
            "memo_hits": self.memo_hits,
            "served": self.served,
            "admission": self.admission.stats(),
            "coalescing": self.coalescer.stats(),
            "pool": self.pool.stats(),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "writes": self.cache.writes,
            },
        }


@dataclass
class Outcome:
    """Internal: one successful answer ready to render."""

    key: str
    point: Tuple
    tenant: str
    source: str
    value: Any
    attempt: int
    t0: float


# -- sweep fan-out ----------------------------------------------------------


def sweep_points(body: Any) -> List[Tuple]:
    """Expand a ``/v1/sweep`` grid body into validated points.

    The grid is a simulate body whose fields may be lists; the cross
    product is taken in :data:`RUN_POINT_FIELDS` order, each combination
    validated through the standard single-request path."""
    if not isinstance(body, Mapping) or not isinstance(
        body.get("grid"), Mapping
    ):
        raise WorkloadError(
            'sweep body must be {"grid": {...}} with list-valued fields'
        )
    grid = body["grid"]
    axes: List[List[Any]] = []
    for name in RUN_POINT_FIELDS:
        if name not in grid:
            axes.append([None])
            continue
        value = grid[name]
        if isinstance(value, list):
            if not value:
                raise WorkloadError(f"grid field {name!r} is an empty list")
            axes.append(value)
        else:
            axes.append([value])
    points = []
    for combo in itertools.product(*axes):
        request = {
            name: value
            for name, value in zip(RUN_POINT_FIELDS, combo)
            if value is not None
        }
        points.append(request_point(request))
    return points


MAX_SWEEP_POINTS = 256


# -- the HTTP layer ---------------------------------------------------------


class ServiceServer:
    """Minimal HTTP/1.1 front end for one :class:`SimulationService`."""

    def __init__(self, service: SimulationService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = None  # asyncio.Event, created on the loop
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    # -- plumbing --------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            reply, extra_headers = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            reply = Reply(500, {"error": f"internal error: {exc}"})
            extra_headers = {}
        if "__raw_text__" in reply.payload:
            body = str(reply.payload["__raw_text__"]).encode()
            content_type = "text/plain; version=0.0.4"
        else:
            body = json.dumps(reply.payload, sort_keys=True).encode()
            content_type = "application/json"
        status_line = {
            200: "200 OK", 400: "400 Bad Request",
            404: "404 Not Found", 405: "405 Method Not Allowed",
            413: "413 Payload Too Large",
            429: "429 Too Many Requests",
            500: "500 Internal Server Error", 502: "502 Bad Gateway",
            503: "503 Service Unavailable",
        }.get(reply.status, f"{reply.status} Status")
        headers = [
            f"HTTP/1.1 {status_line}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if reply.retry_after_s > 0:
            headers.append(
                f"Retry-After: {max(1, int(reply.retry_after_s + 0.999))}"
            )
        for name, value in extra_headers.items():
            headers.append(f"{name}: {value}")
        writer.write(
            "\r\n".join(headers).encode() + b"\r\n\r\n" + body
        )
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[Reply, Dict[str, str]]:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=30.0
            )
        except asyncio.TimeoutError:
            return Reply(400, {"error": "request timed out"}), {}
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return Reply(400, {"error": "malformed request line"}), {}
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return Reply(
                        400, {"error": "bad Content-Length"}
                    ), {}
        if content_length > MAX_BODY_BYTES:
            return Reply(413, {
                "error": f"body exceeds {MAX_BODY_BYTES} bytes"
            }), {}
        raw = await reader.readexactly(content_length) \
            if content_length else b""
        return await self._route(method, path, raw), {}

    async def _route(self, method: str, path: str,
                     raw: bytes) -> Reply:
        if method == "GET":
            if path == "/healthz":
                return Reply(200, {"ok": True})
            if path == "/v1/stats":
                return Reply(200, self.service.stats())
            if path == "/metrics":
                return self._metrics_reply()
            return Reply(404, {"error": f"no route {method} {path}"})
        if method != "POST":
            return Reply(405, {"error": f"method {method} not allowed"})
        if path == "/v1/shutdown":
            if self._stop is not None:
                self._stop.set()
            return Reply(200, {"ok": True, "stopping": True})
        if path not in ("/v1/simulate", "/v1/sweep"):
            return Reply(404, {"error": f"no route {method} {path}"})
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError) as exc:
            return Reply(400, {"error": f"invalid JSON body: {exc}"})
        if path == "/v1/simulate":
            return await self._simulate(body)
        return await self._sweep(body)

    def _metrics_reply(self) -> Reply:
        # /metrics must be Prometheus text, not JSON; the sentinel
        # payload key makes _handle emit the body verbatim.
        from repro.telemetry import to_prometheus

        text = to_prometheus(self.service.telemetry.metrics)
        return Reply(200, {"__raw_text__": text})

    async def _simulate(self, body: Any) -> Reply:
        outcome = self.service.begin(body)
        if isinstance(outcome, Reply):
            return outcome
        return await self._await_pending(outcome)

    async def _await_pending(self, pending: PendingReply) -> Reply:
        try:
            result = await asyncio.wrap_future(pending.future)
        except BaseException as exc:  # noqa: BLE001 - rendered as 5xx
            return self.service.finish(pending, None, exc)
        return self.service.finish(pending, result)

    async def _sweep(self, body: Any) -> Reply:
        try:
            points = sweep_points(body)
        except WorkloadError as exc:
            return Reply(400, {"error": str(exc)})
        if len(points) > MAX_SWEEP_POINTS:
            return Reply(400, {
                "error": f"sweep expands to {len(points)} points; "
                         f"limit is {MAX_SWEEP_POINTS}"
            })
        tenant = body.get("tenant")
        priority = body.get("priority") or "batch"
        replies: List[Optional[Reply]] = [None] * len(points)
        waits: List[Tuple[int, PendingReply]] = []
        for i, point in enumerate(points):
            request = dict(zip(RUN_POINT_FIELDS, point))
            if tenant is not None:
                request["tenant"] = tenant
            request["priority"] = priority
            outcome = self.service.begin(request)
            if isinstance(outcome, Reply):
                replies[i] = outcome
            else:
                waits.append((i, outcome))
        for i, pending in waits:
            replies[i] = await self._await_pending(pending)
        items = [
            {"status": reply.status, **reply.payload}
            for reply in replies
        ]
        worst = max((r.status for r in replies), default=200)
        return Reply(200 if worst < 400 else worst, {
            "schema_version": SERVICE_SCHEMA_VERSION,
            "points": len(points),
            "items": items,
        })

    # -- lifecycle -------------------------------------------------------

    async def serve(self) -> None:
        """Run until ``/v1/shutdown`` (or :meth:`stop`)."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_safe, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self._started.set()
        async with self._server:
            await self._stop.wait()

    async def _handle_safe(self, reader, writer) -> None:
        try:
            await self._handle(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass

    def start_background(self, timeout_s: float = 10.0) -> None:
        """Run the loop on a daemon thread; returns once the socket is
        bound (``self.port`` then holds the real port)."""
        def _runner() -> None:
            asyncio.run(self.serve())

        self._thread = threading.Thread(
            target=_runner, name="service-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise SpadeError("service failed to start listening")

    def stop(self, timeout_s: float = 10.0) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
