"""Request coalescing: identical in-flight questions share one answer.

Simulation requests are content-addressed (:class:`repro.jobmodel
.JobSpec` keys), so "identical" is exact: same key, same result.  When
N clients ask for a key that is already executing, the first becomes
the **leader** (it owns the execution slot and the pool submission) and
the rest become **waiters** on the same :class:`concurrent.futures
.Future`.  The leader resolves the future once; every waiter's HTTP
response materialises from that single outcome.

Correctness leans on the PR 9 publish-before-release ordering: the
pool writes the result to the :class:`~repro.sweep.cache.ResultCache`
*before* the lease is released and the future resolves.  A request
that arrives after the leader's entry was removed therefore probes the
cache and hits — there is no window where a key is neither in-flight
nor cached yet already executed, so each key runs **at most once per
cache lifetime** (pinned by the ledger exactly-once audit in
``tests/test_service_parity.py``).

Futures are :mod:`concurrent.futures` (thread-safe, resolvable from
the pool thread); the asyncio server bridges with
:func:`asyncio.wrap_future`.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class InFlight:
    """One key's shared execution: the future every waiter awaits."""

    key: str
    future: Future = field(default_factory=Future)
    waiters: int = 1  # leader included


class Coalescer:
    """Thread-safe registry of in-flight keys."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, InFlight] = {}
        self.leaders = 0
        self.coalesced = 0

    def join(self, key: str) -> Tuple[bool, InFlight]:
        """Attach to ``key``'s execution; returns ``(is_leader,
        entry)``.  The leader must eventually :meth:`resolve` or
        :meth:`fail` the key, or every waiter hangs."""
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None:
                entry.waiters += 1
                self.coalesced += 1
                return False, entry
            entry = InFlight(key=key)
            self._inflight[key] = entry
            self.leaders += 1
            return True, entry

    def resolve(self, key: str, value: object) -> None:
        """Publish the outcome to every waiter and retire the key.
        The entry is removed *before* the future resolves so a racing
        ``join`` either becomes a waiter (entry still present) or a
        fresh cache probe (result already published by the pool)."""
        entry = self._pop(key)
        if entry is not None and not entry.future.done():
            entry.future.set_result(value)

    def fail(self, key: str, exc: BaseException) -> None:
        entry = self._pop(key)
        if entry is not None and not entry.future.done():
            entry.future.set_exception(exc)

    def _pop(self, key: str) -> Optional[InFlight]:
        with self._lock:
            return self._inflight.pop(key, None)

    # -- inspection ------------------------------------------------------

    def peek(self, key: str) -> Optional[InFlight]:
        with self._lock:
            return self._inflight.get(key)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "in_flight": len(self._inflight),
                "leaders": self.leaders,
                "coalesced": self.coalesced,
            }
