"""The ``run`` cell: one simulation request as a pure, cacheable job.

This is the shared vocabulary between ``repro run`` (CLI), ``repro
submit`` (service client), and the service itself: a *request* (a JSON
object or CLI flags) normalises to a *point* tuple, the point binds to
a :class:`~repro.jobmodel.JobSpec` with ``driver="run"`` and a ``None``
environment, and the cell computes a plain summary dict.  Because all
three paths share the same driver name, environment fingerprint, and
point shape, they share **one content-addressed key space**: a result
cached by ``repro run --cache-dir`` is a service memo hit, and a served
answer replayed through :func:`format_run_summary` is byte-identical to
the CLI's stdout (pinned by ``tests/test_service_parity.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Tuple

from repro.errors import WorkloadError
from repro.jobmodel import JobSpec, build_jobs

RUN_DRIVER = "run"

RUN_POINT_FIELDS = (
    "matrix", "scale", "kernel", "k", "pes", "cache_shrink", "seed",
    "replay", "execution",
)
"""Point tuple order — must match the CLI ``run`` sweep path (the tuple
*is* the workload hash input, so order changes would re-key the cache)."""

RUN_DEFAULTS: Dict[str, Any] = {
    "scale": "small",
    "kernel": "spmm",
    "k": 32,
    "pes": 8,
    "cache_shrink": 32.0,
    "seed": 0,
    "replay": None,
    "execution": None,
}

_SCALES = ("tiny", "small", "default", "large")
_KERNELS = ("spmm", "sddmm")


def request_point(body: Mapping[str, Any]) -> Tuple:
    """Normalise a service request body to a ``run`` point tuple.

    Raises :class:`~repro.errors.WorkloadError` on anything malformed —
    the service maps that to HTTP 400.  Matrices are restricted to
    Table 2 suite short names: a served system must not let clients
    name arbitrary filesystem paths.
    """
    from repro.config import EXECUTION_MODES, replay_modes
    from repro.sparse.suite import SUITE

    if not isinstance(body, Mapping):
        raise WorkloadError("request body must be a JSON object")
    unknown = set(body) - set(RUN_POINT_FIELDS) - {"tenant", "priority"}
    if unknown:
        raise WorkloadError(
            f"unknown request fields {sorted(unknown)}; expected "
            f"{list(RUN_POINT_FIELDS)} (+ tenant, priority)"
        )
    matrix = body.get("matrix")
    suite_names = tuple(bench.name for bench in SUITE)
    if not isinstance(matrix, str) or matrix not in suite_names:
        raise WorkloadError(
            f"matrix must be one of the suite names "
            f"{', '.join(suite_names)}; got {matrix!r}"
        )
    merged = dict(RUN_DEFAULTS)
    for name in RUN_DEFAULTS:
        if name in body and body[name] is not None:
            merged[name] = body[name]
    if merged["scale"] not in _SCALES:
        raise WorkloadError(
            f"scale must be one of {_SCALES}, got {merged['scale']!r}"
        )
    if merged["kernel"] not in _KERNELS:
        raise WorkloadError(
            f"kernel must be one of {_KERNELS}, got {merged['kernel']!r}"
        )
    for name in ("k", "pes"):
        value = merged[name]
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 1:
            raise WorkloadError(
                f"{name} must be a positive integer, got {value!r}"
            )
    seed = merged["seed"]
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise WorkloadError(
            f"seed must be a non-negative integer, got {seed!r}"
        )
    shrink = merged["cache_shrink"]
    if isinstance(shrink, bool) or not isinstance(shrink, (int, float)) \
            or shrink <= 0:
        raise WorkloadError(
            f"cache_shrink must be a positive number, got {shrink!r}"
        )
    merged["cache_shrink"] = float(shrink)
    if merged["replay"] is not None \
            and merged["replay"] not in replay_modes():
        raise WorkloadError(
            f"replay must be one of {tuple(replay_modes())} or null, "
            f"got {merged['replay']!r}"
        )
    if merged["execution"] is not None \
            and merged["execution"] not in EXECUTION_MODES:
        raise WorkloadError(
            f"execution must be one of {tuple(EXECUTION_MODES)} or "
            f"null, got {merged['execution']!r}"
        )
    return (matrix,) + tuple(
        merged[name] for name in RUN_POINT_FIELDS[1:]
    )


def run_jobspec(point: Tuple) -> JobSpec:
    """The content-addressed job for one ``run`` point (``env=None`` —
    every determining parameter is in the point, exactly like the CLI
    ``run`` sweep path)."""
    return build_jobs(RUN_DRIVER, None, [point])[0]


def run_cell(env: Any, point: Tuple) -> dict:
    """One ``repro run`` invocation as a pure sweep/service cell.

    Returns the printed summary (plain dict, cheap to cache) rather
    than the full execution report.  Every parameter that determines
    the result is in the point, so ``env`` is None.
    """
    import numpy as np

    from repro.config import ResilienceConfig, scaled_config
    from repro.resilience import RunSupervisor

    (
        matrix, scale, kernel, k, pes, cache_shrink, seed, replay,
        execution,
    ) = point
    from repro.cli import _load_matrix

    a = _load_matrix(matrix, scale)
    cfg = scaled_config(pes, cache_shrink=cache_shrink)
    if replay is not None:
        cfg = dataclasses.replace(cfg, replay=replay)
    if execution is not None:
        cfg = dataclasses.replace(cfg, execution=execution)
    supervisor = RunSupervisor(resilience=ResilienceConfig())
    rng = np.random.default_rng(seed)
    b = rng.random((a.num_cols, k), dtype=np.float32)
    if kernel == "spmm":
        report = supervisor.run_kernel(cfg, "spmm", a, b)
    else:
        b_r = rng.random((a.num_rows, k), dtype=np.float32)
        report = supervisor.run_kernel(cfg, "sddmm", a, b_r, b)
    return {
        "matrix": str(a),
        "system": cfg.name,
        "num_pes": cfg.num_pes,
        "time_ms": report.time_ms,
        "dram_accesses": report.dram_accesses,
        "bandwidth_utilization": report.bandwidth_utilization,
        "requests_per_cycle": report.requests_per_cycle,
        "load_imbalance": report.load_imbalance,
        "stats_summary": report.stats.summary(),
    }


def format_run_summary(summary: Mapping[str, Any], kernel: str,
                       k: int) -> str:
    """Render a ``run`` summary exactly as ``repro run`` prints it —
    the byte-identity contract between the CLI and a served answer."""
    return "\n".join([
        f"matrix              : {summary['matrix']}",
        f"kernel              : {kernel} (K={k})",
        f"system              : {summary['system']} "
        f"({summary['num_pes']} PEs)",
        f"simulated time      : {summary['time_ms']:.4f} ms",
        f"DRAM accesses       : {summary['dram_accesses']}",
        f"bandwidth utilization: "
        f"{summary['bandwidth_utilization']:.1%}",
        f"requests per cycle  : "
        f"{summary['requests_per_cycle']:.2f}",
        f"load imbalance      : {summary['load_imbalance']:.2f}",
        summary["stats_summary"],
    ])


def to_plain(value: Any) -> Any:
    """Recursively fold numpy scalars/arrays to plain Python so a
    summary survives the JSON wire format losslessly (Python floats
    round-trip exactly through ``json``; numpy int64 does not dump at
    all)."""
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (str, bytes)):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)
    if tolist is not None and not isinstance(value, (str, bytes)):
        return tolist()
    if isinstance(value, Mapping):
        return {str(k): to_plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_plain(v) for v in value]
    return value
