"""Blocking HTTP client for the simulation service (stdlib only).

Used by ``repro submit``, the tests, and the CI ``service-smoke`` lane.
One :class:`ServiceClient` per endpoint; connections are per-request
(the server speaks ``Connection: close``), so a client instance is
safe to share across threads — the smoke lane fires 32 concurrent
requests through one of these via a thread pool.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import SpadeError


class ServiceError(SpadeError):
    """A non-2xx service answer, carrying the decoded payload."""

    def __init__(self, status: int, payload: Dict[str, Any],
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(
            f"service returned {status}: "
            f"{payload.get('error', 'unknown error')}"
        )
        self.status = status
        self.payload = payload
        self.retry_after_s = retry_after_s


class ServiceClient:
    """Talk to one ``repro serve`` endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout_s: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- raw transport ---------------------------------------------------

    def request(
        self, method: str, path: str, body: Optional[Mapping] = None
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """One HTTP exchange; returns (status, json payload, headers)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            raw = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if raw else {}
            conn.request(method, path, body=raw, headers=headers)
            response = conn.getresponse()
            data = response.read()
            header_map = {
                k.lower(): v for k, v in response.getheaders()
            }
            if header_map.get("content-type", "").startswith(
                "application/json"
            ):
                payload = json.loads(data.decode("utf-8")) if data else {}
            else:
                payload = {"text": data.decode("utf-8", "replace")}
            return response.status, payload, header_map
        finally:
            conn.close()

    def _checked(self, method: str, path: str,
                 body: Optional[Mapping] = None) -> Dict[str, Any]:
        status, payload, headers = self.request(method, path, body)
        if status >= 400:
            retry_after = headers.get("retry-after")
            raise ServiceError(
                status, payload,
                float(retry_after) if retry_after else None,
            )
        return payload

    # -- API -------------------------------------------------------------

    def simulate(self, **fields: Any) -> Dict[str, Any]:
        """POST /v1/simulate; returns the answer payload (``result``
        holds the summary dict, ``source`` says where it came from)."""
        return self._checked("POST", "/v1/simulate", fields)

    def sweep(self, grid: Mapping[str, Any],
              tenant: Optional[str] = None,
              priority: str = "batch") -> Dict[str, Any]:
        body: Dict[str, Any] = {"grid": dict(grid), "priority": priority}
        if tenant is not None:
            body["tenant"] = tenant
        return self._checked("POST", "/v1/sweep", body)

    def healthy(self) -> bool:
        try:
            status, payload, _ = self.request("GET", "/healthz")
        except (OSError, ValueError):
            return False
        return status == 200 and payload.get("ok") is True

    def stats(self) -> Dict[str, Any]:
        return self._checked("GET", "/v1/stats")

    def metrics_text(self) -> str:
        status, payload, _ = self.request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, payload)
        return payload.get("text", "")

    def shutdown(self) -> None:
        self._checked("POST", "/v1/shutdown", {})
