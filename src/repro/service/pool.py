"""The service's persistent worker pool: streaming, supervised, leased.

:class:`~repro.sweep.runner.SweepRunner` drains a *batch* (a grid) and
returns; a service needs the same machinery — long-lived ``fork``
workers with private duplex pipes, sentinel-multiplexed death
detection, lease-bumped requeue, poison-job quarantine — but fed by a
*stream* of single jobs arriving at arbitrary times, each answered
through its own :class:`concurrent.futures.Future`.  This module reuses
the runner's worker primitives (:class:`~repro.sweep.runner._Worker`,
:class:`~repro.sweep.runner._JobPayload`,
:func:`~repro.sweep.runner._execute_job`) verbatim and replaces only
the orchestration:

- a **priority heap** orders pending jobs by (priority rank, arrival
  sequence) — interactive before batch, FIFO within a class;
- a **wakeup pipe** joins the ``multiprocessing.connection.wait``
  select set, so a submission from the HTTP thread unblocks the pool
  thread without polling;
- **foreign leases defer** rather than block: a key held by another
  process (a concurrent ``repro sweep --shard`` on the same cache)
  is retried on a poll interval, and resolves from the cache the
  moment the peer publishes;
- results **publish to the cache before the lease releases and before
  the future resolves** — the ordering that makes coalescing's
  at-most-once-per-key argument airtight (see
  :mod:`repro.service.coalesce`).

Worker death handling is the PR 9 ladder: sentinel fires with no
buffered result → lease attempt bump → requeue (priority preserved) →
after ``max_attempts`` a quarantine manifest is written and the future
fails with :class:`ServiceQuarantined` (the server maps it to a 5xx
carrying the manifest path).
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SpadeError
from repro.jobmodel import JobResult, JobSpec
from repro.obs.ledger import NULL_LEDGER, merge_shards
from repro.sweep.cache import ResultCache
from repro.sweep.lease import open_leases
from repro.sweep.runner import (
    _JobPayload,
    _Worker,
    _execute_job,
    _mp_wait,
    _pool_context,
)
from repro.telemetry import ensure

_PRIORITY_RANK = {"interactive": 0, "batch": 1}


class ServiceQuarantined(SpadeError):
    """A job exhausted its attempts; the manifest has the post-mortem."""

    def __init__(self, key: str, error: str,
                 manifest_path: Optional[str]) -> None:
        super().__init__(error)
        self.key = key
        self.manifest_path = manifest_path


class ServiceExecutionError(SpadeError):
    """The cell raised inside a worker (simulation bug, bad point)."""


@dataclass(order=True)
class _Submission:
    """One leader's execution request, heap-ordered by priority."""

    rank: Tuple[int, int]
    spec: JobSpec = field(compare=False)
    cell: Callable[[Any, Tuple], Any] = field(compare=False)
    resilience: Any = field(compare=False)
    future: Future = field(compare=False)
    attempt: int = field(compare=False, default=1)
    claimed: bool = field(compare=False, default=False)


class ServicePool:
    """Supervised worker pool consuming a stream of leader submissions.

    Runs its own dispatcher thread; ``submit`` is callable from any
    thread and returns immediately.  Exactly one of these exists per
    service process, sharing the service's cache/lease directories with
    any concurrent sweep runners.
    """

    def __init__(
        self,
        cache: ResultCache,
        workers: int = 2,
        telemetry=None,
        ledger=None,
        chaos=None,
        max_attempts: int = 3,
        lease_dir: Optional[str] = None,
        lease_ttl_s: float = 30.0,
        foreign_poll_s: float = 0.05,
    ) -> None:
        if workers < 1:
            raise SpadeError(
                f"service pool needs >= 1 worker, got {workers}"
            )
        self.cache = cache
        self.workers = workers
        self.max_attempts = max_attempts
        self.foreign_poll_s = foreign_poll_s
        self.chaos = chaos
        self.leases = open_leases(
            lease_dir or cache.default_lease_dir(), ttl_s=lease_ttl_s
        )
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        self.telemetry = ensure(telemetry)
        metrics = self.telemetry.metrics
        self._m_executed = metrics.counter(
            "spade_service_executions",
            help="simulations executed by the service pool",
        )
        self._m_requeued = metrics.counter(
            "spade_service_requeued",
            help="service jobs requeued after their worker died",
        )
        self._m_quarantined = metrics.counter(
            "spade_service_quarantined",
            help="poison service jobs quarantined after attempt exhaustion",
        )
        self._m_restarted = metrics.counter(
            "spade_service_workers_restarted",
            help="service pool workers replaced after dying",
        )
        self._m_depth = metrics.gauge(
            "spade_service_queue_depth",
            help="service jobs waiting for a worker",
        )
        self._ctx = _pool_context()
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._inbox: List[_Submission] = []
        self._heap: List[_Submission] = []
        self._deferred: List[Tuple[float, _Submission]] = []
        self._halt = threading.Event()
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        self._pool: List[_Worker] = []
        self.executed = 0
        self.requeued = 0
        self.quarantined = 0
        self.failed = 0
        self._thread = threading.Thread(
            target=self._run, name="service-pool", daemon=True
        )
        self._thread.start()

    # -- submission (any thread) ----------------------------------------

    def submit(
        self,
        spec: JobSpec,
        cell: Callable[[Any, Tuple], Any],
        resilience: Any = None,
        priority: str = "interactive",
    ) -> Future:
        """Queue one leader execution; the future resolves to a
        :class:`~repro.jobmodel.JobResult` (source ``"executed"`` or
        ``"cached"`` if a peer published first) or fails with
        :class:`ServiceQuarantined` / :class:`ServiceExecutionError`."""
        if self._halt.is_set():
            raise SpadeError("service pool is shut down")
        sub = _Submission(
            rank=(_PRIORITY_RANK.get(priority, 1), next(self._seq)),
            spec=spec,
            cell=cell,
            resilience=resilience,
            future=Future(),
        )
        with self._lock:
            self._inbox.append(sub)
        self._wake()
        return sub.future

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"x")
        except (OSError, ValueError):
            pass

    # -- dispatcher thread ----------------------------------------------

    def _run(self) -> None:
        for _ in range(self.workers):
            self._pool.append(_Worker(self._ctx))
        try:
            while True:
                self._absorb_inbox()
                self._revive_deferred()
                self._dispatch_ready()
                if self._halt.is_set() and self._idle():
                    break
                self._select()
        finally:
            self._shutdown_workers()
            self._fail_remaining()

    def _idle(self) -> bool:
        with self._lock:
            empty_inbox = not self._inbox
        return (
            empty_inbox
            and not self._heap
            and not self._deferred
            and all(w.state is None for w in self._pool)
        )

    def _absorb_inbox(self) -> None:
        with self._lock:
            incoming, self._inbox = self._inbox, []
        for sub in incoming:
            heapq.heappush(self._heap, sub)
        if incoming:
            self._m_depth.set(len(self._heap))

    def _revive_deferred(self) -> None:
        now = time.monotonic()
        still: List[Tuple[float, _Submission]] = []
        for retry_at, sub in self._deferred:
            if now >= retry_at:
                heapq.heappush(self._heap, sub)
            else:
                still.append((retry_at, sub))
        self._deferred = still

    def _dispatch_ready(self) -> None:
        for worker in self._pool:
            if worker.state is not None:
                continue
            sub = self._next_runnable()
            if sub is None:
                break
            self._dispatch(worker, sub)
        self._m_depth.set(len(self._heap))

    def _next_runnable(self) -> Optional[_Submission]:
        """Pop the next submission that holds (or just won) its lease.

        Mirrors the runner's claim-at-dispatch walk: quarantined keys
        fail fast, foreign-held keys defer, and the cache is re-probed
        under a fresh claim so a peer's published result short-circuits
        execution."""
        while self._heap:
            sub = heapq.heappop(self._heap)
            if sub.future.cancelled():
                if sub.claimed:
                    self.leases.release(sub.spec.key)
                continue
            if sub.claimed:
                return sub  # requeued after a death, lease retained
            key = sub.spec.key
            manifest = self.leases.is_quarantined(key)
            if manifest is not None:
                self.quarantined += 1
                sub.future.set_exception(ServiceQuarantined(
                    key,
                    f"quarantined: {manifest.get('error', 'unknown')}",
                    str(self.leases.quarantine_path(key)),
                ))
                continue
            attempt = self.leases.try_claim(key)
            if attempt is None:
                # A live foreign runner holds it; check back shortly —
                # its published result will satisfy the cache re-probe.
                hit, value = self.cache.get(key)
                if hit:
                    sub.future.set_result(
                        JobResult(key=key, value=value, source="cached")
                    )
                    continue
                self._deferred.append(
                    (time.monotonic() + self.foreign_poll_s, sub)
                )
                continue
            hit, value = self.cache.get(key)
            if hit:
                self.leases.release(key)
                sub.future.set_result(
                    JobResult(key=key, value=value, source="cached")
                )
                continue
            if attempt > self.max_attempts:
                self._poison(
                    sub,
                    f"attempts exhausted: lease records {attempt - 1} "
                    f"prior attempt(s) by dead owners",
                )
                continue
            sub.attempt = attempt
            sub.claimed = True
            return sub
        return None

    def _dispatch(self, worker: _Worker, sub: _Submission) -> None:
        shard = None
        if self.ledger.enabled:
            shard = (str(self.ledger.path.parent), sub.spec.key, "serve")
        payload = _JobPayload(
            index=sub.spec.index,
            cell=sub.cell,
            env=None,
            point=sub.spec.point,
            seed=sub.spec.seed,
            resilience=sub.resilience,
            shard=shard,
            attempt=sub.attempt,
            chaos=self.chaos,
            lease_path=self.leases.path_for(sub.spec.key),
            lease_interval_s=self.leases.ttl_s / 4.0,
            in_worker=True,
        )
        try:
            worker.conn.send(payload)
        except (OSError, ValueError):
            # Worker died idle: replace it, requeue without burning an
            # attempt (the job never reached the dead process).
            heapq.heappush(self._heap, sub)
            self._replace(worker)
            return
        worker.state = sub  # type: ignore[assignment]

    def _select(self) -> None:
        busy = [w for w in self._pool if w.state is not None]
        conn_map = {w.conn: w for w in busy}
        sentinel_map = {w.proc.sentinel: w for w in busy}
        timeout = 1.0
        if self._deferred:
            now = time.monotonic()
            soonest = min(at for at, _ in self._deferred)
            timeout = min(timeout, max(0.0, soonest - now))
        ready = _mp_wait(
            [self._wake_r] + list(conn_map) + list(sentinel_map),
            timeout=timeout,
        )
        dead: List[_Worker] = []
        for obj in ready:
            if obj is self._wake_r:
                try:
                    while self._wake_r.poll(0):
                        self._wake_r.recv()
                except (EOFError, OSError):
                    pass
                continue
            worker = conn_map.get(obj)
            if worker is not None:
                if worker.state is None:
                    continue
                try:
                    result = worker.conn.recv()
                except (EOFError, OSError):
                    if worker not in dead:
                        dead.append(worker)
                    continue
                sub, worker.state = worker.state, None
                self._finish(sub, result)
            else:
                worker = sentinel_map[obj]
                if worker.state is None:
                    continue
                try:
                    has_result = worker.conn.poll(0)
                except (OSError, ValueError):
                    has_result = False
                if not has_result and worker not in dead:
                    dead.append(worker)
        for worker in dead:
            self._handle_death(worker)

    # -- outcomes --------------------------------------------------------

    def _finish(self, sub: _Submission,
                result: Tuple[int, bool, Any, int]) -> None:
        _, ok, value, pid = result
        key = sub.spec.key
        if ok:
            # Publish before releasing the lease and before resolving
            # the future: peers and late joiners must find the result.
            self.cache.put(key, value)
            self.leases.release(key)
            self.executed += 1
            self._m_executed.inc()
            sub.future.set_result(JobResult(
                key=key, value=value, source="executed",
                attempt=sub.attempt, worker_pid=pid,
            ))
        else:
            self.leases.release(key)
            self.failed += 1
            sub.future.set_exception(
                ServiceExecutionError(f"job {key[:16]} failed: {value}")
            )
        if self.ledger.enabled:
            merge_shards(self.ledger.path.parent, self.ledger)

    def _handle_death(self, worker: _Worker) -> None:
        sub = worker.state
        if sub is None:
            self._replace(worker)
            return
        worker.state = None
        worker.proc.join(timeout=5.0)
        error = (
            f"worker died (pid={worker.proc.pid}, "
            f"exitcode={worker.proc.exitcode}) while executing "
            f"attempt {sub.attempt}"
        )
        next_attempt = self.leases.bump(sub.spec.key)
        if next_attempt is None:
            next_attempt = sub.attempt + 1
        sub.attempt = next_attempt
        self._replace(worker)
        if next_attempt > self.max_attempts:
            self._poison(sub, error)
            return
        self.requeued += 1
        self._m_requeued.inc()
        if self.ledger.enabled:
            self.ledger.emit(
                "sweep_job",
                index=sub.spec.index,
                status="requeued",
                key=sub.spec.key,
                driver="serve",
                error=error,
                pid=os.getpid(),
                attempt=next_attempt,
            )
        heapq.heappush(self._heap, sub)

    def _poison(self, sub: _Submission, error: str) -> None:
        key = sub.spec.key
        executed = sub.attempt - 1
        manifest_path = self.leases.quarantine(key, {
            "driver": "serve",
            "index": sub.spec.index,
            "point": repr(sub.spec.point),
            "attempts": executed,
            "error": error,
        })
        self.quarantined += 1
        self._m_quarantined.inc()
        if self.ledger.enabled:
            self.ledger.emit(
                "sweep_job",
                index=sub.spec.index,
                status="quarantined",
                key=key,
                driver="serve",
                error=error,
                pid=os.getpid(),
                attempt=executed,
            )
        sub.future.set_exception(
            ServiceQuarantined(key, error, str(manifest_path))
        )

    def _replace(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join(timeout=1.0)
        if worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(timeout=2.0)
        self._pool[self._pool.index(worker)] = _Worker(self._ctx)
        self._m_restarted.inc()

    # -- shutdown --------------------------------------------------------

    def _shutdown_workers(self) -> None:
        for worker in self._pool:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
        for worker in self._pool:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=2.0)
        self._pool = []

    def _fail_remaining(self) -> None:
        leftovers = list(self._heap) + [s for _, s in self._deferred]
        with self._lock:
            leftovers += self._inbox
            self._inbox = []
        self._heap = []
        self._deferred = []
        for sub in leftovers:
            if sub.claimed:
                self.leases.release(sub.spec.key)
            if not sub.future.done():
                sub.future.set_exception(
                    SpadeError("service pool shut down before execution")
                )

    def close(self, timeout_s: float = 30.0) -> None:
        """Drain in-flight work, stop workers, join the dispatcher."""
        self._halt.set()
        self._wake()
        self._thread.join(timeout=timeout_s)
        try:
            self._wake_w.close()
            self._wake_r.close()
        except OSError:
            pass

    # -- inspection ------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            inbox = len(self._inbox)
        return {
            "workers": self.workers,
            "queued": len(self._heap) + inbox,
            "deferred": len(self._deferred),
            "executed": self.executed,
            "requeued": self.requeued,
            "quarantined": self.quarantined,
            "failed": self.failed,
        }
