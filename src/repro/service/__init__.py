"""repro.service: simulation-as-a-service over the sweep substrate.

The PR 5–9 sweep stack made simulations *content-addressed jobs*:
hashable keys, a durable result cache, a crash-safe worker pool, and a
lease protocol for concurrent runners.  This package puts an HTTP front
end on that substrate so the simulator runs as a long-lived shared
service instead of a per-invocation CLI:

- :mod:`~repro.service.simulate` — the request ↔ point ↔ JobSpec
  vocabulary shared with ``repro run`` (one key space: CLI cache
  entries are service memo hits and vice versa);
- :mod:`~repro.service.admission` — queue bound, interactive reserve,
  and per-tenant token-bucket quotas (429/503 + Retry-After);
- :mod:`~repro.service.coalesce` — identical in-flight keys share one
  execution; every waiter's answer comes from the leader's future;
- :mod:`~repro.service.pool` — the PR 9 supervised worker pool rebuilt
  as a stream consumer: priority heap, wakeup pipe, lease-bumped
  requeue after worker death, poison-job quarantine;
- :mod:`~repro.service.server` — hand-rolled asyncio HTTP/1.1 server
  (stdlib only): ``POST /v1/simulate``, ``POST /v1/sweep``,
  ``GET /healthz``, ``GET /v1/stats``, ``GET /metrics``,
  ``POST /v1/shutdown``;
- :mod:`~repro.service.client` — the blocking client behind
  ``repro submit`` and the CI smoke lane.

Exposed via ``repro serve`` / ``repro submit``; see DESIGN.md
section 14 for the correctness argument (memoization, at-most-once
execution per key, overload policy).
"""

from repro.service.admission import (
    Admission,
    AdmissionController,
    AdmissionPolicy,
    TokenBucket,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.coalesce import Coalescer
from repro.service.pool import (
    ServiceExecutionError,
    ServicePool,
    ServiceQuarantined,
)
from repro.service.server import (
    Reply,
    ServiceServer,
    SimulationService,
)
from repro.service.simulate import (
    format_run_summary,
    request_point,
    run_cell,
    run_jobspec,
)

__all__ = [
    "Admission",
    "AdmissionController",
    "AdmissionPolicy",
    "Coalescer",
    "Reply",
    "ServiceClient",
    "ServiceError",
    "ServiceExecutionError",
    "ServicePool",
    "ServiceQuarantined",
    "ServiceServer",
    "SimulationService",
    "TokenBucket",
    "format_run_summary",
    "request_point",
    "run_cell",
    "run_jobspec",
]
