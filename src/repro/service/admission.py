"""Admission control: who gets in when the simulator is the bottleneck.

A simulation is seconds-to-minutes of CPU; an HTTP request is
microseconds.  Without a gate, a burst of cold-key requests turns the
service into an unbounded queue with unbounded latency.  The controller
applies three policies, cheapest first:

1. **Queue bound** — at most ``max_queue`` *executions* may be queued
   or running.  Coalesced joiners don't occupy slots (they ride an
   execution that is already accounted for), so the bound tracks real
   work, not popularity.  Overflow → 503 + Retry-After.
2. **Interactive reserve** — ``batch`` priority sees a smaller queue
   bound (``max_queue - interactive_reserve``), so background sweeps
   can never starve interactive requests.  The reserve is admission
   headroom, not a separate queue.
3. **Per-tenant token bucket** — each tenant accrues ``quota_rate``
   request tokens per second up to ``quota_burst``.  *Every* admitted
   request spends a token, including coalesced joiners: coalescing is
   an efficiency win for the service, not a quota loophole for clients
   who all ask the same question.  Empty bucket → 429 + Retry-After
   (time until one token accrues).

The clock is injectable so tests (and the Hypothesis property suite)
drive time deterministically.  Invariant, pinned by
``tests/test_service_admission.py``: over any window a tenant is
admitted at most ``quota_burst + quota_rate * window`` times, and
queued + running executions never exceed ``max_queue``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

PRIORITIES = ("interactive", "batch")
DEFAULT_TENANT = "anonymous"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Tunable limits; the defaults fit a single-host service."""

    max_queue: int = 64
    interactive_reserve: int = 8
    quota_rate: float = 4.0
    quota_burst: float = 16.0

    def queue_limit(self, priority: str) -> int:
        if priority == "batch":
            return max(0, self.max_queue - self.interactive_reserve)
        return self.max_queue


@dataclass(frozen=True)
class Admission:
    """One admission decision, ready to serialise into a response."""

    ok: bool
    code: int = 200
    reason: str = ""
    retry_after_s: float = 0.0


class TokenBucket:
    """Continuous-refill token bucket (floats, no discrete ticks)."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.stamp)
        self.stamp = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)

    def take(self, now: float) -> Tuple[bool, float]:
        """Spend one token; returns ``(granted, retry_after_s)``."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        if self.rate <= 0.0:
            return False, math.inf
        return False, (1.0 - self.tokens) / self.rate


class AdmissionController:
    """Thread-safe gate in front of the execution queue.

    ``admit`` is called on every request that missed the memo cache;
    ``release`` when an execution leaves the system (served, failed, or
    quarantined).  Slot accounting is leader-only — a coalesced joiner
    passes ``needs_slot=False`` and is charged quota but not queue.
    """

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        import time

        self.policy = policy or AdmissionPolicy()
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self._in_system = 0
        self.admitted = 0
        self.rejected_quota = 0
        self.rejected_overload = 0

    # -- decisions -------------------------------------------------------

    def admit(
        self,
        tenant: str = DEFAULT_TENANT,
        priority: str = "interactive",
        needs_slot: bool = True,
    ) -> Admission:
        if priority not in PRIORITIES:
            return Admission(
                False, 400,
                f"priority must be one of {PRIORITIES}, got {priority!r}",
            )
        now = self._clock()
        with self._lock:
            # Overload first: it consumes no state, so a rejected
            # burst cannot drain anyone's quota as a side effect.
            limit = self.policy.queue_limit(priority)
            if needs_slot and self._in_system >= limit:
                self.rejected_overload += 1
                return Admission(
                    False, 503,
                    f"execution queue full ({self._in_system}/{limit} "
                    f"for {priority} priority)",
                    retry_after_s=1.0,
                )
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(
                    self.policy.quota_rate, self.policy.quota_burst, now
                )
                self._buckets[tenant] = bucket
            granted, retry_after = bucket.take(now)
            if not granted:
                self.rejected_quota += 1
                return Admission(
                    False, 429,
                    f"tenant {tenant!r} is over quota "
                    f"({self.policy.quota_rate}/s, "
                    f"burst {self.policy.quota_burst:g})",
                    retry_after_s=retry_after,
                )
            if needs_slot:
                self._in_system += 1
            self.admitted += 1
            return Admission(True)

    def release(self) -> None:
        """One execution left the system (leader-side only)."""
        with self._lock:
            if self._in_system > 0:
                self._in_system -= 1

    # -- inspection ------------------------------------------------------

    @property
    def in_system(self) -> int:
        with self._lock:
            return self._in_system

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "in_system": self._in_system,
                "admitted": self.admitted,
                "rejected_quota": self.rejected_quota,
                "rejected_overload": self.rejected_overload,
                "tenants": len(self._buckets),
            }
