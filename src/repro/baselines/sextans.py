"""Idealized Sextans SpMM accelerator (Sections 6.A and 7.F).

Sextans [Song et al., FPGA'22] is an FPGA streaming accelerator for
SpMM.  Following the paper's methodology, we model a *scaled-up,
idealized* version: 16 PEGs x 16 PEs at 0.8 GHz, 170 MB of on-chip
scratchpad, compute fully idealized (only memory time counts), AXI
limitations and intra-PEG imbalance ignored, sparse tuples compressed
to 8 B each.  The idealization leaves exactly the behaviours Section
7.F attributes to its one-size-fits-all streaming model:

- **Sparse re-reads with K**: each pass covers ``k_chunk`` dense
  columns, so the sparse stream is read ``ceil(K / k_chunk)`` times.
- **Dense re-reads for large matrices**: the output is produced in
  row batches sized to the scratchpad; every batch re-streams the dense
  input rows it needs (no inter-batch reuse).
- **50% bandwidth utilization cap**: the idealized memory engine
  sustains half of peak, "significantly higher than the 15% reported"
  for the real FPGA.

Sextans supports only SpMM (not SDDMM).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.gpu import TransferModel, PCIE_GBPS
from repro.memory.address import padded_row_bytes
from repro.sparse.coo import COOMatrix

SEXTANS_NUM_PEGS = 16
SEXTANS_PES_PER_PEG = 16
SEXTANS_FREQ_GHZ = 0.8
SEXTANS_SCRATCHPAD_BYTES = 170 * 1024 * 1024
SEXTANS_BANDWIDTH_UTILIZATION = 0.50
SEXTANS_BYTES_PER_NNZ = 8  # compressed {row, col, val} tuple
SEXTANS_K_CHUNK = 16
"""Dense columns covered per streaming pass (512-bit PU datapath)."""

OUTPUT_SCRATCH_FRACTION = 0.5
"""Fraction of the scratchpad holding the output batch (the rest
buffers the streamed dense input)."""


@dataclass(frozen=True)
class SextansResult:
    """Modelled Sextans execution of one SpMM."""

    kernel_ns: float
    transfer_ns: float
    dram_bytes: int
    sparse_passes: int
    output_batches: int
    bandwidth_utilization: float

    @property
    def total_ns(self) -> float:
        return self.kernel_ns + self.transfer_ns

    @property
    def dram_accesses(self) -> int:
        return self.dram_bytes // 64


class SextansModel:
    """Scaled-up idealized Sextans, sharing SPADE's DRAM parameters so
    the Figure 13 comparison is apples-to-apples."""

    def __init__(
        self,
        dram_peak_gbps: float,
        scale_ratio: float = 1.0,
        cache_shrink: float = 1.0,
    ) -> None:
        if scale_ratio <= 0:
            raise ValueError("scale_ratio must be positive")
        if cache_shrink < 1:
            raise ValueError("cache_shrink must be >= 1")
        self.dram_peak_gbps = dram_peak_gbps
        self.scratchpad_bytes = (
            SEXTANS_SCRATCHPAD_BYTES * scale_ratio / cache_shrink
        )
        self.pcie_gbps = PCIE_GBPS * scale_ratio

    @property
    def effective_gbps(self) -> float:
        return self.dram_peak_gbps * SEXTANS_BANDWIDTH_UTILIZATION

    def spmm(self, a: COOMatrix, k: int) -> SextansResult:
        """One SpMM iteration: streaming traffic at 50% of peak."""
        row_bytes = padded_row_bytes(k)
        out_bytes = a.num_rows * row_bytes
        out_capacity = self.scratchpad_bytes * OUTPUT_SCRATCH_FRACTION
        output_batches = max(1, int(np.ceil(out_bytes / out_capacity)))
        sparse_passes = max(1, -(-k // SEXTANS_K_CHUNK))

        sparse_traffic = sparse_passes * a.nnz * SEXTANS_BYTES_PER_NNZ
        touched_cols = int(np.count_nonzero(a.col_nnz_counts()))
        # Every output batch re-streams the dense input rows it needs;
        # with graph-like column reuse that is nearly all of B per batch.
        b_traffic = output_batches * touched_cols * row_bytes
        d_traffic = out_bytes  # written once, accumulated on-chip
        total = sparse_traffic + b_traffic + d_traffic

        kernel_ns = total / self.effective_gbps
        transfer = TransferModel(
            bytes_to_device=a.nnz * SEXTANS_BYTES_PER_NNZ
            + a.num_cols * row_bytes,
            bytes_to_host=out_bytes,
            pcie_gbps=self.pcie_gbps,
        )
        return SextansResult(
            kernel_ns=kernel_ns,
            transfer_ns=transfer.time_ns,
            dram_bytes=total,
            sparse_passes=sparse_passes,
            output_batches=output_batches,
            bandwidth_utilization=SEXTANS_BANDWIDTH_UTILIZATION,
        )
