"""CPU baseline: dual-socket Ice Lake running MKL IE / TACO (Section 6.C).

A roofline model over the shared traffic estimator.  Calibration
constants reflect the paper's observations:

- ``bandwidth_efficiency``: multicore SpMM sustains well under the
  STREAM-achievable bandwidth because each core's MSHRs limit MLP on
  irregular gathers.  SPADE's whole premise (Section 7.B) is that its
  deep queues tolerate latency better than CPU cores; 0.62 reproduces
  the ~1.67x SPADE-Base-over-CPU average of Figure 9.
- ``gather_efficiency``: AVX-512 gather/scatter sustains a fraction of
  peak FMA throughput on sparse operands.
- For SDDMM the paper uses TACO, which is not input-aware and runs
  noticeably below MKL IE; ``sddmm_penalty`` captures that gap.

The model's *shape* is what matters: low-RU matrices are purely
bandwidth-bound, high-RU matrices get LLC filtering, exactly like the
simulated machines it is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import HostCPUConfig
from repro.baselines.traffic import (
    TrafficEstimate,
    kernel_flops,
    sddmm_traffic,
    spmm_traffic,
)
from repro.sparse.coo import COOMatrix

CPU_BANDWIDTH_EFFICIENCY = 0.62
CPU_GATHER_EFFICIENCY = 0.30
TACO_SDDMM_PENALTY = 1.25
CSR_BYTES_PER_NNZ = 8  # 4B column index + 4B value; row_ptr amortised


@dataclass(frozen=True)
class CPUResult:
    """Modelled CPU execution of one kernel."""

    time_ns: float
    compute_ns: float
    memory_ns: float
    traffic: TrafficEstimate

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    @property
    def bound(self) -> str:
        return "memory" if self.memory_ns >= self.compute_ns else "compute"


class CPUModel:
    """Roofline model of the Ice Lake host."""

    def __init__(self, host: HostCPUConfig) -> None:
        self.host = host

    @property
    def peak_flops_per_ns(self) -> float:
        """Peak single-precision FMA throughput (FLOP/ns)."""
        h = self.host
        return (
            h.num_cores
            * h.simd_fp_units
            * h.simd_width_elems
            * 2  # FMA = 2 FLOPs
            * h.frequency_ghz
        )

    @property
    def effective_bandwidth(self) -> float:
        """Sustained GB/s on sparse kernels."""
        return self.host.dram_achievable_gbps * CPU_BANDWIDTH_EFFICIENCY

    def _roofline(
        self, flops: int, traffic: TrafficEstimate, penalty: float = 1.0
    ) -> CPUResult:
        compute_ns = (
            flops / (self.peak_flops_per_ns * CPU_GATHER_EFFICIENCY)
        ) * penalty
        memory_ns = (traffic.total_bytes / self.effective_bandwidth) * penalty
        return CPUResult(
            time_ns=max(compute_ns, memory_ns),
            compute_ns=compute_ns,
            memory_ns=memory_ns,
            traffic=traffic,
        )

    def spmm(self, a: COOMatrix, k: int) -> CPUResult:
        """MKL Inspector-Executor SpMM (CSR, tiled execution)."""
        traffic = spmm_traffic(
            a, k, self.host.llc_total_bytes,
            sparse_bytes_per_nnz=CSR_BYTES_PER_NNZ,
        )
        return self._roofline(kernel_flops(a, k), traffic)

    def sddmm(self, a: COOMatrix, k: int) -> CPUResult:
        """TACO SDDMM (CSR, not input-aware)."""
        traffic = sddmm_traffic(
            a, k, self.host.llc_total_bytes,
            sparse_bytes_per_nnz=CSR_BYTES_PER_NNZ,
        )
        return self._roofline(
            kernel_flops(a, k), traffic, penalty=TACO_SDDMM_PENALTY
        )
