"""GPU baseline: NVIDIA V100 + PCIe transfer model (Sections 3, 6.C).

Two components:

- **Kernel model** — a roofline over the V100's 900 GB/s HBM with a
  cuSPARSE/dgSPARSE efficiency factor and the V100's small (6 MB) L2
  filtering dense reuse.
- **Transfer model** — the host-device overhead Figure 2 measures: both
  directions over PCIe 3.0 x16, plus the address mapping/pinning
  overhead that the paper's CUDA-event measurements cannot separate
  ("we report the value of the combined overhead").  On average this is
  97% of single-iteration execution time, which emerges here because
  effective PCIe bandwidth is ~50x smaller than HBM bandwidth.

``scale_ratio`` shrinks all bandwidths/capacities proportionally when
comparing against a scaled-down SPADE system, keeping relative results
identical to the full-size comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.traffic import (
    TrafficEstimate,
    kernel_flops,
    sddmm_traffic,
    spmm_traffic,
)
from repro.memory.address import padded_row_bytes
from repro.sparse.coo import COOMatrix

V100_HBM_GBPS = 900.0
V100_CACHE_BYTES = 16 * 1024 * 1024
"""Effective on-chip reuse capacity: 6 MB L2 plus aggregate SM-local
storage (L1/shared memory/register tiling) that cuSPARSE exploits."""
V100_GLOBAL_MEMORY_BYTES = 16 * 1024**3
V100_PEAK_SP_TFLOPS = 15.7
GPU_BANDWIDTH_EFFICIENCY = 0.60
GPU_GATHER_EFFICIENCY = 0.25
PCIE_GBPS = 12.0
PCIE_LATENCY_NS = 10_000.0
ADDRESS_MAP_NS_PER_MB = 60_000.0
"""Pinning + address mapping cost per MB moved (folded into transfer,
as in the paper's combined measurement)."""


@dataclass(frozen=True)
class TransferModel:
    """Host <-> device data movement for one kernel invocation."""

    bytes_to_device: int
    bytes_to_host: int
    pcie_gbps: float = PCIE_GBPS

    @property
    def total_bytes(self) -> int:
        return self.bytes_to_device + self.bytes_to_host

    @property
    def time_ns(self) -> float:
        wire = self.total_bytes / self.pcie_gbps
        mapping = (self.total_bytes / 1024**2) * (
            ADDRESS_MAP_NS_PER_MB * self.pcie_gbps / PCIE_GBPS
        )
        return wire + mapping + 2 * PCIE_LATENCY_NS


@dataclass(frozen=True)
class GPUResult:
    """Modelled GPU execution of one kernel."""

    kernel_ns: float
    transfer_ns: float
    traffic: TrafficEstimate
    fits_in_memory: bool

    @property
    def total_ns(self) -> float:
        return self.kernel_ns + self.transfer_ns

    @property
    def transfer_fraction(self) -> float:
        return self.transfer_ns / self.total_ns if self.total_ns else 0.0


class GPUModel:
    """V100 kernel + transfer model, optionally scaled down."""

    def __init__(
        self, scale_ratio: float = 1.0, cache_shrink: float = 1.0
    ) -> None:
        if scale_ratio <= 0:
            raise ValueError("scale_ratio must be positive")
        if cache_shrink < 1:
            raise ValueError("cache_shrink must be >= 1")
        self.ratio = scale_ratio
        self.hbm_gbps = V100_HBM_GBPS * scale_ratio
        self.l2_bytes = V100_CACHE_BYTES * scale_ratio / cache_shrink
        self.memory_bytes = V100_GLOBAL_MEMORY_BYTES * scale_ratio
        self.pcie_gbps = PCIE_GBPS * scale_ratio
        self.peak_flops_per_ns = V100_PEAK_SP_TFLOPS * 1000 * scale_ratio

    # -- capacity ---------------------------------------------------------

    def device_footprint_bytes(
        self, a: COOMatrix, k: int, needs_c: bool = False
    ) -> int:
        row_bytes = padded_row_bytes(k)
        dense = (a.num_rows + a.num_cols) * row_bytes
        if needs_c:
            dense += a.nnz * 4  # sparse output values
        return a.footprint_bytes() + dense

    def fits_in_memory(
        self, a: COOMatrix, k: int, needs_c: bool = False
    ) -> bool:
        return self.device_footprint_bytes(a, k, needs_c) <= self.memory_bytes

    # -- kernels ------------------------------------------------------------

    def _kernel_ns(self, flops: int, traffic: TrafficEstimate) -> float:
        compute_ns = flops / (
            self.peak_flops_per_ns * GPU_GATHER_EFFICIENCY
        )
        memory_ns = traffic.total_bytes / (
            self.hbm_gbps * GPU_BANDWIDTH_EFFICIENCY
        )
        return max(compute_ns, memory_ns)

    def spmm(self, a: COOMatrix, k: int) -> GPUResult:
        """cuSPARSE SpMM: kernel + both-direction transfers."""
        traffic = spmm_traffic(a, k, self.l2_bytes, sparse_bytes_per_nnz=8)
        row_bytes = padded_row_bytes(k)
        transfer = TransferModel(
            bytes_to_device=a.footprint_bytes() + a.num_cols * row_bytes,
            bytes_to_host=a.num_rows * row_bytes,
            pcie_gbps=self.pcie_gbps,
        )
        return GPUResult(
            kernel_ns=self._kernel_ns(kernel_flops(a, k), traffic),
            transfer_ns=transfer.time_ns,
            traffic=traffic,
            fits_in_memory=self.fits_in_memory(a, k),
        )

    def sddmm(self, a: COOMatrix, k: int) -> GPUResult:
        """dgSPARSE SDDMM: kernel + both-direction transfers."""
        traffic = sddmm_traffic(a, k, self.l2_bytes, sparse_bytes_per_nnz=8)
        row_bytes = padded_row_bytes(k)
        transfer = TransferModel(
            bytes_to_device=a.footprint_bytes()
            + (a.num_rows + a.num_cols) * row_bytes,
            bytes_to_host=a.nnz * 4,
            pcie_gbps=self.pcie_gbps,
        )
        return GPUResult(
            kernel_ns=self._kernel_ns(kernel_flops(a, k), traffic),
            transfer_ns=transfer.time_ns,
            traffic=traffic,
            fits_in_memory=self.fits_in_memory(a, k, needs_c=True),
        )
