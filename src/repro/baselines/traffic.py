"""Shared analytic traffic estimation for the baseline machines.

The baselines (CPU, GPU, Sextans) are roofline models: execution time is
the larger of the compute time and the memory time, where the memory
time is (estimated DRAM traffic) / (effective bandwidth).  The traffic
estimate here is the standard capacity-based one: a dense operand whose
touched footprint fits in the machine's last-level cache is read once;
beyond that, the excess requests miss in proportion to how far the
footprint exceeds capacity.

This deliberately mirrors what drives the paper's results: low-RU
matrices are bandwidth-bound everywhere, while high-RU matrices reward
machines whose cache can hold the hot dense rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CACHE_LINE_BYTES
from repro.memory.address import padded_row_bytes
from repro.sparse.coo import COOMatrix


@dataclass(frozen=True)
class TrafficEstimate:
    """Estimated DRAM traffic of one kernel execution, in bytes."""

    sparse_bytes: int
    rmatrix_bytes: int
    cmatrix_bytes: int
    output_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.sparse_bytes
            + self.rmatrix_bytes
            + self.cmatrix_bytes
            + self.output_bytes
        )


def dense_operand_traffic(
    touched_rows: int,
    requests: int,
    row_bytes: int,
    cache_bytes: float,
) -> int:
    """Capacity-only traffic estimate for a gathered dense operand.

    Footprint <= cache: every row is fetched exactly once (compulsory
    misses only).  Beyond capacity, the fraction of the footprint that
    does not fit misses again on reuse.  Prefer
    :func:`gathered_traffic`, which also credits *local* reuse.
    """
    footprint = touched_rows * row_bytes
    compulsory = footprint
    if footprint <= cache_bytes or requests <= touched_rows:
        return compulsory
    miss_rate = 1.0 - cache_bytes / footprint
    reuse_requests = requests - touched_rows
    return int(compulsory + reuse_requests * row_bytes * miss_rate)


def gathered_traffic(
    access_rows: np.ndarray,
    gather_ids: np.ndarray,
    row_bytes: int,
    cache_bytes: float,
) -> int:
    """Windowed-LRU traffic estimate for a gathered dense operand.

    A row-ordered kernel (CSR CPU, batched GPU) gathers
    ``gather_ids[i]`` while processing output row ``access_rows[i]``.
    An LRU cache of ``cache_bytes`` captures any repeat of a gather id
    whose reuse distance fits in the cache.  We approximate LRU by
    windowing: split execution into windows of ``w`` consecutive output
    rows and charge one fetch per *distinct* gather id per window,
    picking the largest ``w`` whose per-window distinct footprint still
    fits the cache.  This credits the community/banded local reuse that
    a pure capacity model misses.
    """
    n = len(gather_ids)
    if n == 0:
        return 0
    access_rows = np.asarray(access_rows, dtype=np.int64)
    gather_ids = np.asarray(gather_ids, dtype=np.int64)
    num_rows = int(access_rows.max()) + 1
    max_gather = int(gather_ids.max()) + 1
    capacity_rows = max(1, int(cache_bytes // row_bytes))

    best_traffic = None
    w = 1
    while True:
        window = access_rows // w
        key = window * max_gather + gather_ids
        distinct = len(np.unique(key))
        num_windows = int(window.max()) + 1
        avg_per_window = distinct / num_windows
        if avg_per_window <= capacity_rows or best_traffic is None:
            best_traffic = distinct * row_bytes
        else:
            break
        if w >= num_rows:
            break
        w *= 4
    return int(best_traffic)


def spmm_traffic(
    a: COOMatrix,
    k: int,
    cache_bytes: float,
    sparse_bytes_per_nnz: int = 12,
) -> TrafficEstimate:
    """DRAM traffic of one SpMM on a cache of ``cache_bytes``.

    The sparse stream is read once.  B (the cMatrix) is gathered by
    column index and filtered by the cache; D (the rMatrix) has strong
    row locality under row-ordered execution, so it is written once
    (write-allocate: one read + one write per line).
    """
    row_bytes = padded_row_bytes(k)
    order = np.argsort(a.r_ids, kind="stable")
    b_traffic = gathered_traffic(
        a.r_ids[order], a.c_ids[order], row_bytes, cache_bytes
    )
    d_rows = a.num_rows
    d_traffic = 2 * d_rows * row_bytes  # read-modify-write once per row
    return TrafficEstimate(
        sparse_bytes=a.nnz * sparse_bytes_per_nnz,
        rmatrix_bytes=d_traffic,
        cmatrix_bytes=b_traffic,
        output_bytes=0,
    )


def sddmm_traffic(
    a: COOMatrix,
    k: int,
    cache_bytes: float,
    sparse_bytes_per_nnz: int = 12,
) -> TrafficEstimate:
    """DRAM traffic of one SDDMM on a cache of ``cache_bytes``.

    Both dense operands are gathered (B by r_id with good locality in
    row order, C by c_id irregularly); the output vals stream out once.
    """
    row_bytes = padded_row_bytes(k)
    touched_rows = int(np.count_nonzero(a.row_nnz_counts()))
    # Row-ordered execution gives B near-perfect reuse within a row.
    b_traffic = touched_rows * row_bytes
    order = np.argsort(a.r_ids, kind="stable")
    c_traffic = gathered_traffic(
        a.r_ids[order], a.c_ids[order], row_bytes, cache_bytes
    )
    out_lines = -(-a.nnz * 4 // CACHE_LINE_BYTES)
    return TrafficEstimate(
        sparse_bytes=a.nnz * sparse_bytes_per_nnz,
        rmatrix_bytes=b_traffic,
        cmatrix_bytes=c_traffic,
        output_bytes=out_lines * CACHE_LINE_BYTES,
    )


def kernel_flops(a: COOMatrix, k: int) -> int:
    """Floating-point operations of SpMM or SDDMM: one multiply and one
    add per nonzero per dense column."""
    return 2 * a.nnz * k
