"""Baseline machines the paper compares SPADE against (Section 6).

- :mod:`repro.baselines.cpu` — the dual-socket Ice Lake server running
  MKL Inspector-Executor SpMM / TACO SDDMM,
- :mod:`repro.baselines.gpu` — the NVIDIA V100 running cuSPARSE SpMM /
  dgSPARSE SDDMM, including the PCIe host-device transfer model that
  Figure 2 measures,
- :mod:`repro.baselines.sextans` — the scaled-up, idealized Sextans
  SpMM accelerator of Sections 6.A and 7.F.

All models are analytic roofline models over the same operand traffic
the SPADE simulator sees, calibrated so that *relative* behaviour
matches the paper (Fig 9 normalises everything to the CPU).
"""

from repro.baselines.cpu import CPUModel, CPUResult
from repro.baselines.gpu import GPUModel, GPUResult, TransferModel
from repro.baselines.sextans import SextansModel, SextansResult

__all__ = [
    "CPUModel",
    "CPUResult",
    "GPUModel",
    "GPUResult",
    "TransferModel",
    "SextansModel",
    "SextansResult",
]
