"""Typed error taxonomy for the SPADE reproduction.

Every error the toolkit raises deliberately derives from
:class:`SpadeError`, so callers (the CLI, the run supervisor, the bench
harness) can catch one base class and map it to an exit code or a retry
decision.  The concrete classes split along the axis that matters for
resilience — *who can fix it*:

- :class:`ConfigError` — the system description is wrong (bad cache
  geometry, unknown execution mode, schedule/system mismatch).  Fixing
  it requires changing the configuration; retrying is pointless.
- :class:`WorkloadError` — the kernel operands are wrong (shape
  mismatches, unknown suite benchmark).  Also permanent.
- :class:`EngineExecutionError` — a run failed *while executing* (e.g.
  a pipelined generation worker died).  Potentially transient: the run
  supervisor retries these and degrades the execution backend.
- :class:`WatchdogTimeout` — a supervised run exceeded its watchdog.
  Transient by classification (the retry may hit a warmer cache or a
  degraded-but-reliable backend).
- :class:`CheckpointError` — a snapshot could not be written, read, or
  trusted (truncated payload, foreign config fingerprint).  Permanent:
  silently resuming from a bad snapshot would violate the bit-exactness
  guarantee, so the supervisor surfaces these instead of retrying.

``ConfigError`` and ``WorkloadError`` subclass :class:`ValueError` (and
the others :class:`RuntimeError` / :class:`TimeoutError`) so existing
``except ValueError`` call sites and tests keep working.
"""

from __future__ import annotations

from typing import Optional


class SpadeError(Exception):
    """Base class of every deliberate error raised by this package."""


class ConfigError(SpadeError, ValueError):
    """The system configuration is invalid or internally inconsistent."""


class WorkloadError(SpadeError, ValueError):
    """The kernel operands / workload description are invalid."""


class EngineExecutionError(SpadeError, RuntimeError):
    """A kernel execution failed mid-run.

    Carries the failure coordinates so a log line is actionable without
    digging through the chained traceback: ``pe_id`` is the processing
    element whose work failed and ``chunk_index`` the per-epoch ordinal
    of the chunk it was generating or replaying.
    """

    def __init__(
        self,
        message: str,
        pe_id: Optional[int] = None,
        chunk_index: Optional[int] = None,
    ) -> None:
        detail = message
        coords = []
        if pe_id is not None:
            coords.append(f"pe={pe_id}")
        if chunk_index is not None:
            coords.append(f"chunk={chunk_index}")
        if coords:
            detail = f"{message} [{', '.join(coords)}]"
        super().__init__(detail)
        self.pe_id = pe_id
        self.chunk_index = chunk_index


class WatchdogTimeout(SpadeError, TimeoutError):
    """A supervised run exceeded its watchdog timeout."""


class CheckpointError(SpadeError, RuntimeError):
    """A checkpoint could not be written, read, or trusted."""


class SweepError(SpadeError, RuntimeError):
    """A parallel sweep could not be orchestrated."""


class SweepJobError(SweepError):
    """One or more sweep jobs failed.

    Carries the coordinates of every failed job so a partially-failed
    sweep is actionable: completed jobs are already in the result cache,
    and re-running the same sweep retries only the jobs listed here.
    """

    def __init__(self, driver: str, failures) -> None:
        self.driver = driver
        self.failures = list(failures)
        lines = ", ".join(
            f"{point!r}: {message}" for point, message in self.failures
        )
        super().__init__(
            f"{len(self.failures)} sweep job(s) failed in {driver!r} "
            f"({lines}); completed jobs are cached — rerun to retry "
            "only the failures"
        )
