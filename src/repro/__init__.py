"""repro: a from-scratch Python reproduction of SPADE (ISCA 2023).

SPADE is a flexible, scalable hardware accelerator for SpMM and SDDMM
that tightly couples accelerator PEs with the cores of a multicore.
This package simulates the full system — tile ISA, CPE scheduler, PE
pipelines, the shared cache/DRAM hierarchy — plus the paper's baselines
(CPU, GPU, ideal Sextans), an area/power model, and a benchmark harness
that regenerates every table and figure of the evaluation.

Quick start::

    import numpy as np
    from repro import SpadeSystem, KernelSettings
    from repro.sparse.generators import rmat_graph

    a = rmat_graph(scale=10)
    b = np.random.rand(a.num_cols, 32).astype(np.float32)
    report = SpadeSystem.scaled(num_pes=8).spmm(a, b)
    print(f"{report.time_ms:.3f} ms, {report.dram_accesses} DRAM accesses")
"""

from repro.config import (
    SpadeConfig,
    TelemetryConfig,
    mini_config,
    paper_config,
    scaled_config,
)
from repro.core.accelerator import (
    ExecutionReport,
    KernelSettings,
    SpadeSystem,
    sddmm_output_to_coo,
)
from repro.core.extensions import sddvv, spmv
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.telemetry import Telemetry

__version__ = "1.0.0"

__all__ = [
    "SpadeSystem",
    "KernelSettings",
    "ExecutionReport",
    "SpadeConfig",
    "TelemetryConfig",
    "Telemetry",
    "paper_config",
    "scaled_config",
    "mini_config",
    "COOMatrix",
    "CSRMatrix",
    "sddmm_output_to_coo",
    "spmv",
    "sddvv",
    "__version__",
]
