"""Golden numpy implementations of SpMM and SDDMM (Section 2.1).

SpMM:   D = A @ B          (A sparse MxN, B dense NxK, D dense MxK)
SDDMM:  D = A o (B @ C^T)  (A sparse MxN, B dense MxK, C dense NxK;
                            o = elementwise product on A's nonzeros)

In the paper's terminology: for SpMM the *rMatrix* is D (indexed by
r_id) and the *cMatrix* is B (indexed by c_id); for SDDMM the rMatrix is
B and the cMatrix is C^T.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def _check_operands(a: COOMatrix, b: np.ndarray, name: str) -> None:
    if b.ndim != 2:
        raise ValueError(f"{name} must be 2-D")


def spmm_reference(a: COOMatrix, b: np.ndarray) -> np.ndarray:
    """Dense result of ``a @ b``.

    Accumulates in float64 and returns float32, so the result is a
    stable reference regardless of nonzero ordering (the simulator's
    out-of-order accumulation is associativity-tolerant, Section 5.1).
    """
    b = np.asarray(b, dtype=np.float32)
    _check_operands(a, b, "B")
    if b.shape[0] != a.num_cols:
        raise ValueError(
            f"B has {b.shape[0]} rows; expected {a.num_cols}"
        )
    out = np.zeros((a.num_rows, b.shape[1]), dtype=np.float64)
    np.add.at(
        out,
        a.r_ids,
        a.vals[:, None].astype(np.float64) * b[a.c_ids].astype(np.float64),
    )
    return out.astype(np.float32)


def sddmm_reference(
    a: COOMatrix, b: np.ndarray, c: np.ndarray
) -> COOMatrix:
    """Sparse result of ``A o (B @ C^T)`` with A's nonzero structure.

    ``b`` is MxK (rMatrix, indexed by r_id); ``c`` is NxK, so ``c.T`` is
    the KxN cMatrix indexed by c_id, matching Figure 1.
    """
    b = np.asarray(b, dtype=np.float32)
    c = np.asarray(c, dtype=np.float32)
    _check_operands(a, b, "B")
    _check_operands(a, c, "C")
    if b.shape[0] != a.num_rows:
        raise ValueError(f"B has {b.shape[0]} rows; expected {a.num_rows}")
    if c.shape[0] != a.num_cols:
        raise ValueError(f"C has {c.shape[0]} rows; expected {a.num_cols}")
    if b.shape[1] != c.shape[1]:
        raise ValueError("B and C must share the dense row size K")
    inner = np.einsum(
        "ij,ij->i",
        b[a.r_ids].astype(np.float64),
        c[a.c_ids].astype(np.float64),
    )
    vals = (a.vals.astype(np.float64) * inner).astype(np.float32)
    return COOMatrix(a.num_rows, a.num_cols, a.r_ids, a.c_ids, vals)


def spmm_chunk_update(
    d_accum: np.ndarray,
    r_ids: np.ndarray,
    c_ids: np.ndarray,
    vals: np.ndarray,
    b64: np.ndarray,
) -> None:
    """Scatter-accumulate one chunk of SpMM nonzeros into ``d_accum``
    (float64, in place).

    This is the engine's per-chunk functional kernel: ``np.add.at``
    applies the chunk's products in nonzero order, so accumulation
    order — and therefore the float32 result — is identical whichever
    execution backend generated the chunk's trace, as long as chunks
    are applied in the round-robin schedule order.
    """
    np.add.at(
        d_accum, r_ids, vals[:, None].astype(np.float64) * b64[c_ids]
    )


def sddmm_chunk_vals(
    out_vals: np.ndarray,
    out_offsets: np.ndarray,
    r_ids: np.ndarray,
    c_ids: np.ndarray,
    vals: np.ndarray,
    b64: np.ndarray,
    c64: np.ndarray,
) -> None:
    """Segment dot products for one chunk of SDDMM nonzeros, written
    into ``out_vals`` (float64, in place) at the chunk's padded output
    offsets.  Offsets are unique per nonzero, so chunk application
    order cannot change the result."""
    inner = np.einsum("ij,ij->i", b64[r_ids], c64[c_ids])
    out_vals[out_offsets] = vals.astype(np.float64) * inner


def spmm_reference_csr(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Row-by-row CSR SpMM, as a CPU-baseline-shaped reference."""
    b = np.asarray(b, dtype=np.float32)
    out = np.zeros((a.num_rows, b.shape[1]), dtype=np.float64)
    for row in range(a.num_rows):
        cols, vals = a.row_slice(row)
        if len(cols):
            out[row] = (vals[:, None].astype(np.float64)
                        * b[cols].astype(np.float64)).sum(axis=0)
    return out.astype(np.float32)
