"""Reference (golden) kernels for SpMM and SDDMM.

These numpy implementations define the correct output against which the
simulator's functional execution is verified.
"""

from repro.kernels.reference import (
    sddmm_reference,
    spmm_reference,
    spmm_reference_csr,
)

__all__ = ["spmm_reference", "sddmm_reference", "spmm_reference_csr"]
