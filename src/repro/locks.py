"""Cross-process file locking primitives for shared directories.

Two subsystems write content-addressed files into directories that may
be shared by many workers at once: the sweep result cache
(:mod:`repro.sweep.cache`) and the epoch checkpoint store
(:mod:`repro.resilience.checkpoint`).  Both publish files with the
atomic temp-file + ``os.replace`` idiom, which is only atomic when each
writer owns its *own* temp file.  A fixed ``path + ".tmp"`` name breaks
that: two workers racing on the same key open the same temp file and
interleave their writes, so the eventual rename publishes a spliced,
corrupt payload.

This module provides the two fixes:

- :func:`exclusive_tmp_path` — a per-writer temp name (pid + per-process
  counter) opened with ``O_CREAT | O_EXCL``, so no two writers can ever
  share a temp file, on any filesystem, even across processes that
  happen to recycle pids.
- :class:`FileLock` — an advisory ``O_EXCL`` lockfile for critical
  sections that need full mutual exclusion rather than last-writer-wins
  (e.g. read-modify-write maintenance of a shared directory).

Both are dependency-free and safe on POSIX and NFS-like filesystems
(``O_EXCL`` file creation is the one primitive NFSv3+ guarantees).
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Optional

_TMP_COUNTER = itertools.count()


def exclusive_tmp_path(path: str) -> str:
    """Create and return a writer-unique temp file next to ``path``.

    The file is created with ``O_CREAT | O_EXCL`` so its existence is
    claimed atomically; the caller writes into it and publishes with
    ``os.replace(tmp, path)``.  Concurrent writers of the same ``path``
    each get distinct temp files, so renames can race but never
    interleave partial writes; ``os.replace`` keeps the last completed
    writer, which is a valid file.
    """
    directory = os.path.dirname(path) or "."
    base = os.path.basename(path)
    while True:
        tmp = os.path.join(
            directory,
            f".{base}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp",
        )
        try:
            fd = os.open(tmp, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            continue  # pid recycling landed on a leftover; pick another
        os.close(fd)
        return tmp


class LockTimeout(TimeoutError):
    """Raised when a :class:`FileLock` cannot be acquired in time."""


class FileLock:
    """Advisory exclusive lock backed by an ``O_EXCL`` lockfile.

    Usage::

        with FileLock(path + ".lock"):
            ...  # critical section

    The lock is *advisory*: only cooperating FileLock users are
    excluded.  A crashed holder leaves the lockfile behind; holders
    write their pid into it and :meth:`acquire` breaks locks older than
    ``stale_s`` seconds so one dead worker cannot wedge a sweep forever.
    """

    def __init__(
        self,
        path: str,
        timeout_s: float = 30.0,
        poll_s: float = 0.01,
        stale_s: Optional[float] = 300.0,
    ) -> None:
        self.path = path
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self.stale_s = stale_s
        self._held = False

    def _try_acquire(self) -> bool:
        try:
            fd = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(str(os.getpid()))
        return True

    def _break_if_stale(self) -> None:
        if self.stale_s is None:
            return
        try:
            # Clamp: a future mtime (clock skew, touched file) must read
            # as a fresh lock, not a negative age that can wrap weirdly
            # in comparisons downstream.
            age = max(0.0, time.time() - os.stat(self.path).st_mtime)
        except OSError:
            return  # already released
        if age > self.stale_s:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def acquire(self) -> "FileLock":
        deadline = time.monotonic() + self.timeout_s
        while True:
            if self._try_acquire():
                self._held = True
                return self
            self._break_if_stale()
            if time.monotonic() >= deadline:
                raise LockTimeout(
                    f"could not acquire lock {self.path} within "
                    f"{self.timeout_s:g}s"
                )
            time.sleep(self.poll_s)

    def release(self) -> None:
        if self._held:
            self._held = False
            try:
                os.unlink(self.path)
            except OSError:
                pass

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()
