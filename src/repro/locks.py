"""Cross-process file locking primitives for shared directories.

Two subsystems write content-addressed files into directories that may
be shared by many workers at once: the sweep result cache
(:mod:`repro.sweep.cache`) and the epoch checkpoint store
(:mod:`repro.resilience.checkpoint`).  Both publish files with the
atomic temp-file + ``os.replace`` idiom, which is only atomic when each
writer owns its *own* temp file.  A fixed ``path + ".tmp"`` name breaks
that: two workers racing on the same key open the same temp file and
interleave their writes, so the eventual rename publishes a spliced,
corrupt payload.

This module provides the two fixes:

- :func:`exclusive_tmp_path` — a per-writer temp name (pid + per-process
  counter) opened with ``O_CREAT | O_EXCL``, so no two writers can ever
  share a temp file, on any filesystem, even across processes that
  happen to recycle pids.
- :class:`FileLock` — an advisory ``O_EXCL`` lockfile for critical
  sections that need full mutual exclusion rather than last-writer-wins
  (e.g. read-modify-write maintenance of a shared directory).

Both are dependency-free and safe on POSIX and NFS-like filesystems
(``O_EXCL`` file creation is the one primitive NFSv3+ guarantees).
"""

from __future__ import annotations

import itertools
import os
import random
import time
from typing import Optional

_TMP_COUNTER = itertools.count()

# Test seam: lets the backoff schedule be observed without patching the
# global time module.
_sleep = time.sleep


def exclusive_tmp_path(path: str) -> str:
    """Create and return a writer-unique temp file next to ``path``.

    The file is created with ``O_CREAT | O_EXCL`` so its existence is
    claimed atomically; the caller writes into it and publishes with
    ``os.replace(tmp, path)``.  Concurrent writers of the same ``path``
    each get distinct temp files, so renames can race but never
    interleave partial writes; ``os.replace`` keeps the last completed
    writer, which is a valid file.
    """
    directory = os.path.dirname(path) or "."
    base = os.path.basename(path)
    while True:
        tmp = os.path.join(
            directory,
            f".{base}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp",
        )
        try:
            fd = os.open(tmp, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            continue  # pid recycling landed on a leftover; pick another
        os.close(fd)
        return tmp


class LockTimeout(TimeoutError):
    """Raised when a :class:`FileLock` cannot be acquired in time."""


class FileLock:
    """Advisory exclusive lock backed by an ``O_EXCL`` lockfile.

    Usage::

        with FileLock(path + ".lock"):
            ...  # critical section

    The lock is *advisory*: only cooperating FileLock users are
    excluded.  A crashed holder leaves the lockfile behind; holders
    write an owner token (pid plus a random nonce) into it and
    :meth:`acquire` breaks locks older than ``stale_s`` seconds so one
    dead worker cannot wedge a sweep forever.  :meth:`release` verifies
    the token before unlinking: a holder whose lock was stale-broken and
    re-acquired by another process must *not* delete the new holder's
    lockfile.

    Contended acquires poll with jittered exponential backoff — the
    first probe is immediate (uncontended latency is unchanged), then
    the sleep doubles from ``poll_s`` up to ``max_poll_s`` with each
    failed probe, jittered into ``[delay/2, delay]`` so a herd of shard
    runners racing on one claim file desynchronises instead of hammering
    the directory in lockstep.
    """

    def __init__(
        self,
        path: str,
        timeout_s: float = 30.0,
        poll_s: float = 0.01,
        stale_s: Optional[float] = 300.0,
        max_poll_s: float = 0.25,
    ) -> None:
        self.path = path
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self.stale_s = stale_s
        self.max_poll_s = max(poll_s, max_poll_s)
        self._held = False
        self._token: Optional[str] = None

    def _try_acquire(self) -> bool:
        try:
            fd = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        # pid first for human diagnosis; the nonce makes the token
        # unforgeable across pid recycling and stale-break races.
        token = f"{os.getpid()}:{os.urandom(8).hex()}"
        with os.fdopen(fd, "w") as fh:
            fh.write(token)
        self._token = token
        return True

    def _break_if_stale(self) -> None:
        if self.stale_s is None:
            return
        try:
            # Clamp: a future mtime (clock skew, touched file) must read
            # as a fresh lock, not a negative age that can wrap weirdly
            # in comparisons downstream.
            age = max(0.0, time.time() - os.stat(self.path).st_mtime)
        except OSError:
            return  # already released
        if age > self.stale_s:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def acquire(self) -> "FileLock":
        deadline = time.monotonic() + self.timeout_s
        delay = self.poll_s
        while True:
            if self._try_acquire():
                self._held = True
                return self
            self._break_if_stale()
            now = time.monotonic()
            if now >= deadline:
                raise LockTimeout(
                    f"could not acquire lock {self.path} within "
                    f"{self.timeout_s:g}s"
                )
            sleep_for = min(delay, max(0.0, deadline - now))
            _sleep(sleep_for * (0.5 + 0.5 * random.random()))
            delay = min(delay * 2.0, self.max_poll_s)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        token, self._token = self._token, None
        try:
            with open(self.path, "r") as fh:
                current = fh.read()
        except OSError:
            return  # already broken/released by someone else
        if current != token:
            # The lock was stale-broken and re-acquired by another
            # process; its lockfile is not ours to delete.
            return
        try:
            os.unlink(self.path)
        except OSError:
            pass

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()
