"""Ledger event taxonomy and schema validation.

Every line of a run ledger is one JSON object with three envelope
fields — ``e`` (event type), ``t`` (monotonic seconds since the ledger
opened), ``run`` (correlation id) — plus the type's own payload.  The
taxonomy below is the contract ``repro obs report`` aggregates against
and the CI ``obs-smoke`` job validates against; extending it means
adding a spec here, not sprinkling ad-hoc dicts at emit sites.

Validation is dependency-free on purpose (no ``jsonschema`` in the
container): each event type carries a field table of ``(type, required)``
pairs checked by :func:`validate_event`.  :func:`as_json_schema`
renders the same tables as a draft-07-style JSON Schema document so
external tooling can consume the contract.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

LEDGER_SCHEMA_VERSION = 1
"""Bump when envelope fields or event payloads change meaning."""

_NUM = (int, float)
_STR = (str,)
_INT = (int,)
_BOOL = (bool,)
_OPT_NUM = (int, float, type(None))


class LedgerSchemaError(ValueError):
    """An event does not conform to the ledger taxonomy."""


# Field tables: name -> (accepted types, required).  The envelope
# (e / t / run) is checked for every event before its table applies;
# unknown extra fields are rejected so the taxonomy stays closed.
EVENT_TYPES: Dict[str, Dict[str, Tuple[tuple, bool]]] = {
    # One per supervised run (or per attempt's outer envelope).
    "run_start": {
        "kernel": (_STR, True),
        "execution": (_STR, True),
        "replay": (_STR, True),
        "config_fingerprint": (_STR, True),
        "pid": (_INT, True),
    },
    "run_end": {
        "status": (_STR, True),        # "ok" | "failed"
        "wall_s": (_NUM, True),
        "time_ns": (_OPT_NUM, False),  # simulated time, ok runs only
        "error": (_STR, False),
    },
    # One per barrier epoch: host-side phase split + simulated facts.
    "epoch": {
        "epoch": (_INT, True),
        "gen_s": (_NUM, True),
        "merge_s": (_NUM, True),
        "replay_s": (_NUM, True),
        "epoch_time_ns": (_NUM, True),
        "dram_lines": (_INT, True),
        "critical_pe": (_INT, True),
    },
    "checkpoint": {
        "epoch": (_INT, True),
        "wall_s": (_NUM, True),
    },
    # Supervisor lifecycle: bounded retry and ladder transitions.
    "retry": {
        "attempt": (_INT, True),
        "execution": (_STR, True),
        "replay": (_STR, True),
        "cause": (_STR, True),
        "backoff_s": (_NUM, True),
    },
    "degradation": {
        "from_execution": (_STR, True),
        "from_replay": (_STR, True),
        "to_execution": (_STR, True),
        "to_replay": (_STR, True),
        "cause": (_STR, True),
    },
    # Sweep lifecycle: one started/finished pair per executed job
    # (written by the worker into its shard), one cache_hit per job
    # served from the result cache (written by the parent).
    "sweep_job": {
        "index": (_INT, True),
        "status": (_STR, True),        # "started" | "completed" | "failed"
        "key": (_STR, True),
        "driver": (_STR, True),
        "wall_s": (_NUM, False),       # completed / failed only
        "error": (_STR, False),
        "pid": (_INT, False),
    },
    "cache_hit": {
        "index": (_INT, True),
        "key": (_STR, True),
        "driver": (_STR, True),
    },
    # The replay dispatch audit: one event per partition the array
    # backend considered, at every cache level.  "chosen" is the code
    # path actually taken: "array" (stack-distance solver), "dict"
    # (per-level Python walk), or "batched" (whole-partition fused
    # cascade fallback when L1 planning rejects the solver).
    "dispatch": {
        "cache": (_STR, True),         # e.g. "l1[3]", "l2[0]", "llc"
        "level": (_STR, True),         # "l1" | "l2" | "llc"
        "events": (_INT, True),        # partition event count (n)
        "miss_rate": (_NUM, True),     # smoothed running estimate
        "hint": (_BOOL, True),         # hysteresis fast-hint state
        "predicted_py_us": (_NUM, True),
        "predicted_array_us": (_OPT_NUM, True),  # None below min-events
        "chosen": (_STR, True),        # "array" | "dict" | "batched"
        "measured_us": (_NUM, True),
        "sets": (_INT, False),         # touched sets, when planned
        "reason": (_STR, False),       # "min_events" | "cost_model" | ...
        "bailed": (_BOOL, False),      # mid-solve hint bail re-dispatch
    },
}

_CHOSEN = ("array", "dict", "batched")
_RUN_STATUS = ("ok", "failed")
_JOB_STATUS = ("started", "completed", "failed")
_LEVELS = ("l1", "l2", "llc")


def validate_event(event: Mapping[str, Any]) -> None:
    """Raise :class:`LedgerSchemaError` unless ``event`` conforms."""
    etype = event.get("e")
    if etype not in EVENT_TYPES:
        raise LedgerSchemaError(f"unknown event type {etype!r}")
    t = event.get("t")
    if not isinstance(t, _NUM) or isinstance(t, bool) or t < 0:
        raise LedgerSchemaError(
            f"{etype}: 't' must be a non-negative number, got {t!r}"
        )
    run = event.get("run")
    if not isinstance(run, str) or not run:
        raise LedgerSchemaError(
            f"{etype}: 'run' must be a non-empty string, got {run!r}"
        )
    fields = EVENT_TYPES[etype]
    for name, (types, required) in fields.items():
        if name not in event:
            if required:
                raise LedgerSchemaError(
                    f"{etype}: missing required field {name!r}"
                )
            continue
        value = event[name]
        if isinstance(value, bool) and bool not in types:
            raise LedgerSchemaError(
                f"{etype}: field {name!r} has bool value {value!r}, "
                f"expected {tuple(t.__name__ for t in types)}"
            )
        if not isinstance(value, types):
            raise LedgerSchemaError(
                f"{etype}: field {name!r} is {type(value).__name__}, "
                f"expected {tuple(t.__name__ for t in types)}"
            )
    extras = set(event) - set(fields) - {"e", "t", "run"}
    if extras:
        raise LedgerSchemaError(
            f"{etype}: unknown fields {sorted(extras)}"
        )
    # Enum constraints ride on top of the type tables.
    if etype == "dispatch" and event["chosen"] not in _CHOSEN:
        raise LedgerSchemaError(
            f"dispatch: chosen must be one of {_CHOSEN}, "
            f"got {event['chosen']!r}"
        )
    if etype == "dispatch" and event["level"] not in _LEVELS:
        raise LedgerSchemaError(
            f"dispatch: level must be one of {_LEVELS}, "
            f"got {event['level']!r}"
        )
    if etype == "run_end" and event["status"] not in _RUN_STATUS:
        raise LedgerSchemaError(
            f"run_end: status must be one of {_RUN_STATUS}, "
            f"got {event['status']!r}"
        )
    if etype == "sweep_job" and event["status"] not in _JOB_STATUS:
        raise LedgerSchemaError(
            f"sweep_job: status must be one of {_JOB_STATUS}, "
            f"got {event['status']!r}"
        )


def as_json_schema() -> Dict[str, Any]:
    """The taxonomy rendered as a draft-07-style JSON Schema (one
    ``oneOf`` branch per event type), for external validators."""
    def type_name(t: type) -> str:
        return {
            int: "integer", float: "number", str: "string",
            bool: "boolean", type(None): "null",
        }[t]

    branches = []
    for etype, fields in sorted(EVENT_TYPES.items()):
        props: Dict[str, Any] = {
            "e": {"const": etype},
            "t": {"type": "number", "minimum": 0},
            "run": {"type": "string", "minLength": 1},
        }
        required = ["e", "t", "run"]
        for name, (types, req) in fields.items():
            names = sorted({type_name(t) for t in types})
            props[name] = {
                "type": names[0] if len(names) == 1 else names
            }
            if req:
                required.append(name)
        branches.append({
            "type": "object",
            "properties": props,
            "required": required,
            "additionalProperties": False,
        })
    return {
        "$schema": "http://json-schema.org/draft-07/schema#",
        "title": f"repro run ledger v{LEDGER_SCHEMA_VERSION}",
        "oneOf": branches,
    }
