"""The run ledger: an append-only JSONL flight recorder.

One :class:`RunLedger` records one run's (or one sweep job's) lifecycle
as a stream of typed events (see :mod:`repro.obs.schema`): what the
supervisor retried and why, where each epoch's host time went, and —
the part no counter can reconstruct after the fact — every dispatch
decision the array replay backend took, with the cost model's inputs
and prediction next to the measured wall time.

Design points:

- **Append-only JSONL**, one event per line: crash-tolerant (a torn
  final line loses one event, not the file), streamable, and mergeable
  by concatenation — which is exactly how sweep worker shards fold into
  the parent ledger, in job-index order.
- **Buffered writer**: events accumulate as pre-serialised lines and
  hit the file every ``flush_every`` events (or at close), so the hot
  dispatch sites pay a dict build + ``json.dumps``, never a syscall.
- **Monotonic timestamps**: ``t`` is ``time.monotonic()`` relative to
  ledger open — immune to wall-clock adjustment, comparable within one
  ledger, and meaningless across ledgers by construction (cross-ledger
  ordering uses run ids, not clocks).
- **Null object**: :data:`NULL_LEDGER` answers the same surface with
  no-ops and ``enabled = False``, so instrumented code guards the
  *argument build* with one attribute check and disabled runs write
  zero events at unmeasurable cost.

Correlation ids: a run ledger derives ``run_id`` from entropy at open;
sweep job shards reuse the job's sha256 content key (first 16 hex), so
a job's events correlate with its result-cache entry by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.schema import LEDGER_SCHEMA_VERSION, validate_event


def _jsonable(value: Any) -> Any:
    """Fold numpy scalars (and anything with ``.item()``) to plain
    Python so events serialise and validate type-stably."""
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (str, bytes)):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return value


def derive_run_id(*parts: str) -> str:
    """A 16-hex correlation id.  With ``parts`` (e.g. a job's sha256
    key) the id is a pure function of them; without, it mixes pid and
    wall clock for uniqueness across concurrent runs."""
    if not parts:
        parts = (str(os.getpid()), str(time.time_ns()))
    h = hashlib.sha256("\x1f".join(parts).encode())
    return h.hexdigest()[:16]


class NullLedger:
    """Shared no-op ledger: the disabled path costs one attribute read."""

    __slots__ = ()

    enabled = False
    run_id = ""
    path: Optional[Path] = None

    def emit(self, etype: str, **fields: Any) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def summary(self) -> Optional[Dict[str, Any]]:
        return None

    def __enter__(self) -> "NullLedger":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


NULL_LEDGER = NullLedger()


class RunLedger:
    """Buffered append-only JSONL event writer for one run."""

    enabled = True

    def __init__(
        self,
        path,
        run_id: Optional[str] = None,
        flush_every: int = 256,
        validate: bool = False,
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id or derive_run_id()
        self._flush_every = max(1, flush_every)
        self._validate = validate
        self._t0 = time.monotonic()
        self._buf: List[str] = []
        self._events = 0
        self._closed = False
        # Serialises buffer mutation against flush: the service emits
        # from its HTTP loop and its pool thread concurrently, and two
        # racing flushes must not write overlapping buffer snapshots.
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------

    def emit(self, etype: str, **fields: Any) -> None:
        """Record one event; see :mod:`repro.obs.schema` for types."""
        event: Dict[str, Any] = {
            k: _jsonable(v) for k, v in fields.items()
        }
        event["e"] = etype
        event["t"] = round(time.monotonic() - self._t0, 9)
        event["run"] = self.run_id
        if self._validate:
            validate_event(event)
        line = json.dumps(event, sort_keys=True)
        with self._lock:
            self._buf.append(line)
            self._events += 1
            full = len(self._buf) >= self._flush_every
        if full:
            self.flush()

    def append_raw(self, lines: Iterable[str]) -> None:
        """Append already-serialised event lines (shard merge path)."""
        with self._lock:
            for line in lines:
                line = line.strip()
                if line:
                    self._buf.append(line)
                    self._events += 1
            full = len(self._buf) >= self._flush_every
        if full:
            self.flush()

    # -- persistence -----------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            if not self._buf:
                return
            pending, self._buf = self._buf, []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write("\n".join(pending) + "\n")

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._closed = True

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @property
    def events_recorded(self) -> int:
        return self._events

    def summary(self) -> Dict[str, Any]:
        """Provenance cross-link: where the ledger is and what it holds.
        Flushes first so the digest covers every recorded event."""
        self.flush()
        return {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "path": str(self.path),
            "run_id": self.run_id,
            "events": self._events,
            "digest": file_digest(self.path),
        }


# -- files and shards -------------------------------------------------------


def open_run_ledger(
    directory, run_id: Optional[str] = None, validate: bool = False
) -> RunLedger:
    """The conventional per-run ledger file inside ``directory``."""
    run_id = run_id or derive_run_id()
    path = Path(directory) / f"run-{run_id}.jsonl"
    return RunLedger(path, run_id=run_id, validate=validate)


def shard_path(directory, index: int, key: str) -> Path:
    """Worker-side shard file for sweep job ``index``; the name embeds
    the index so the parent can merge deterministically."""
    return Path(directory) / f"shard-{index:06d}-{key[:16]}.jsonl"


def merge_shards(directory, ledger: RunLedger) -> int:
    """Fold every ``shard-*.jsonl`` under ``directory`` into ``ledger``
    in ascending job-index order (the lexicographic order of the
    zero-padded names), deleting merged shards.  Returns the number of
    event lines merged.  Deterministic: independent of pool completion
    order because merging happens after the drain, from sorted names.
    """
    merged = 0
    for shard in sorted(Path(directory).glob("shard-*.jsonl")):
        lines = shard.read_text(encoding="utf-8").splitlines()
        ledger.append_raw(lines)
        merged += sum(1 for ln in lines if ln.strip())
        shard.unlink()
    return merged


def read_events(path) -> List[Dict[str, Any]]:
    """All events of one ledger file, in file order."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def iter_ledger_files(paths: Iterable) -> List[Path]:
    """Expand files/directories into a sorted list of ledger files.
    Nonexistent paths expand to nothing — callers report an empty
    expansion rather than tripping over a FileNotFoundError mid-read."""
    out: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(sorted(p.glob("*.jsonl")))
        elif p.exists():
            out.append(p)
    return out


def file_digest(path) -> Optional[str]:
    """sha256 of the ledger file, or None if nothing was written."""
    p = Path(path)
    if not p.exists():
        return None
    h = hashlib.sha256()
    with open(p, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            h.update(chunk)
    return h.hexdigest()


def peak_rss_bytes() -> Optional[int]:
    """This process's peak resident set size, or None where the
    ``resource`` module is unavailable (non-POSIX)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only container
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    import sys

    return rss if sys.platform == "darwin" else rss * 1024
