"""Ledger aggregation: ``repro obs report``.

Folds one or many ledger files (run ledgers, merged sweep ledgers, or
whole directories of either) into a single rollup:

- **phase hotspots** — host seconds per engine phase (generation,
  merge, replay) summed over every epoch event, plus checkpoint and
  whole-run wall time, the whole-epoch fused-generation chunk count,
  and the trace-cache hit/miss/store tally when a content-addressed
  trace store was attached;
- **cost-model accuracy** — per cache level: partitions considered,
  backend chosen, the misprediction rate (the chosen path measured
  slower than the model's estimate for the alternative), and the mean
  relative error of the chosen path's own prediction;
- **cache/sweep hit rates** — result-cache hits vs executed jobs;
- **retry/degradation timeline** — every supervisor transition with
  its cause, in recorded order.

The JSON form is the aggregate dict verbatim; the text form renders
the same numbers as aligned tables for terminals.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.ledger import iter_ledger_files, read_events

_PHASES = ("gen", "merge", "replay")
_TRACE_CACHE_BUCKETS = {"hit": "hits", "miss": "misses", "stored": "stored"}


def _level_bucket() -> Dict[str, Any]:
    return {
        "considered": 0,
        "chosen": {"array": 0, "dict": 0, "batched": 0},
        "events": 0,
        "measured_us": 0.0,
        "comparable": 0,        # both-sides prediction available
        "mispredictions": 0,
        "rel_error_sum": 0.0,
        "rel_error_n": 0,
        "bailed": 0,
    }


def aggregate(paths) -> Dict[str, Any]:
    """Fold ledger files/directories into one rollup dict."""
    files = iter_ledger_files(paths)
    agg: Dict[str, Any] = {
        "files": [str(f) for f in files],
        "events": 0,
        "events_by_type": {},
        "runs": {"started": 0, "ok": 0, "failed": 0},
        "phases": {p: {"seconds": 0.0, "epochs": 0} for p in _PHASES},
        "fused_chunks": 0,
        "trace_cache": {
            "hits": 0, "misses": 0, "stored": 0, "seconds": 0.0,
        },
        "checkpoints": {"count": 0, "seconds": 0.0},
        "run_wall_s": 0.0,
        "sim_time_ns": 0.0,
        "dispatch": {"total": 0, "by_level": {}},
        "sweep": {
            "jobs": 0, "completed": 0, "failed": 0, "cache_hits": 0,
            "requeued": 0, "quarantined": 0,
        },
        "service": {
            "requests": 0, "memo_hits": 0, "coalesced": 0,
            "admitted": 0, "rejected": 0, "served": 0, "failed": 0,
            "served_by_source": {},
        },
        "retries": 0,
        "degradations": 0,
        "timeline": [],
    }
    by_type = agg["events_by_type"]
    levels: Dict[str, Dict[str, Any]] = agg["dispatch"]["by_level"]
    for path in files:
        for ev in read_events(path):
            agg["events"] += 1
            etype = ev.get("e", "?")
            by_type[etype] = by_type.get(etype, 0) + 1
            if etype == "epoch":
                for p in _PHASES:
                    agg["phases"][p]["seconds"] += ev.get(f"{p}_s", 0.0)
                    agg["phases"][p]["epochs"] += 1
                agg["fused_chunks"] += int(ev.get("fused_chunks") or 0)
            elif etype == "trace_cache":
                tc = agg["trace_cache"]
                bucket = _TRACE_CACHE_BUCKETS.get(ev.get("status"))
                if bucket:
                    tc[bucket] += 1
                tc["seconds"] += ev.get("wall_s", 0.0)
            elif etype == "checkpoint":
                agg["checkpoints"]["count"] += 1
                agg["checkpoints"]["seconds"] += ev.get("wall_s", 0.0)
            elif etype == "run_start":
                agg["runs"]["started"] += 1
            elif etype == "run_end":
                status = ev.get("status", "failed")
                agg["runs"]["ok" if status == "ok" else "failed"] += 1
                agg["run_wall_s"] += ev.get("wall_s", 0.0)
                agg["sim_time_ns"] += ev.get("time_ns") or 0.0
                if status != "ok":
                    agg["timeline"].append(_timeline_row(ev, path))
            elif etype == "dispatch":
                _fold_dispatch(agg, levels, ev)
            elif etype == "sweep_job":
                status = ev.get("status")
                if status == "started":
                    agg["sweep"]["jobs"] += 1
                elif status == "completed":
                    agg["sweep"]["completed"] += 1
                elif status == "failed":
                    agg["sweep"]["failed"] += 1
                    agg["timeline"].append(_timeline_row(ev, path))
                elif status == "requeued":
                    agg["sweep"]["requeued"] += 1
                    agg["timeline"].append(_timeline_row(ev, path))
                elif status == "quarantined":
                    agg["sweep"]["quarantined"] += 1
                    agg["timeline"].append(_timeline_row(ev, path))
            elif etype == "cache_hit":
                agg["sweep"]["cache_hits"] += 1
            elif etype == "service":
                svc = agg["service"]
                status = ev.get("status")
                if status == "request_received":
                    svc["requests"] += 1
                elif status == "coalesced":
                    svc["coalesced"] += 1
                elif status == "admitted":
                    svc["admitted"] += 1
                elif status == "rejected":
                    svc["rejected"] += 1
                    agg["timeline"].append(_timeline_row(ev, path))
                elif status == "served":
                    svc["served"] += 1
                    source = ev.get("source", "?")
                    if source == "memo":
                        svc["memo_hits"] += 1
                    by_source = svc["served_by_source"]
                    by_source[source] = by_source.get(source, 0) + 1
                elif status == "failed":
                    svc["failed"] += 1
                    agg["timeline"].append(_timeline_row(ev, path))
            elif etype == "retry":
                agg["retries"] += 1
                agg["timeline"].append(_timeline_row(ev, path))
            elif etype == "degradation":
                agg["degradations"] += 1
                agg["timeline"].append(_timeline_row(ev, path))
    _finalise(agg, levels)
    return agg


def _timeline_row(ev: Dict[str, Any], path: Path) -> Dict[str, Any]:
    etype = ev["e"]
    if etype == "retry":
        desc = (
            f"retry attempt {ev.get('attempt')} on "
            f"{ev.get('execution')}/{ev.get('replay')}: "
            f"{ev.get('cause')}"
        )
    elif etype == "degradation":
        desc = (
            f"degraded {ev.get('from_execution')}/{ev.get('from_replay')}"
            f" -> {ev.get('to_execution')}/{ev.get('to_replay')}: "
            f"{ev.get('cause')}"
        )
    elif etype == "sweep_job":
        status = ev.get("status", "failed")
        desc = f"job {ev.get('index')} {status}: {ev.get('error')}"
        if ev.get("attempt") is not None:
            desc += f" (attempt {ev.get('attempt')})"
    elif etype == "service":
        status = ev.get("status", "failed")
        key = (ev.get("key") or "")[:16]
        desc = (
            f"request {key or '?'} {status} "
            f"({ev.get('code', '?')}): {ev.get('reason')}"
        )
    else:  # run_end failure
        desc = f"run failed: {ev.get('error')}"
    return {
        "t": ev.get("t"),
        "run": ev.get("run"),
        "event": etype,
        "description": desc,
        "file": path.name,
    }


def _fold_dispatch(
    agg: Dict[str, Any],
    levels: Dict[str, Dict[str, Any]],
    ev: Dict[str, Any],
) -> None:
    agg["dispatch"]["total"] += 1
    bucket = levels.setdefault(ev.get("level", "?"), _level_bucket())
    bucket["considered"] += 1
    chosen = ev.get("chosen", "?")
    if chosen in bucket["chosen"]:
        bucket["chosen"][chosen] += 1
    bucket["events"] += ev.get("events", 0)
    measured = ev.get("measured_us", 0.0)
    bucket["measured_us"] += measured
    if ev.get("bailed"):
        bucket["bailed"] += 1
    pred_py = ev.get("predicted_py_us")
    pred_arr = ev.get("predicted_array_us")
    # Misprediction: the chosen path measured slower than the model's
    # estimate for the *alternative* — i.e. the model's own numbers say
    # the other path would have been the better pick in hindsight.
    own = pred_arr if chosen == "array" else pred_py
    alt = pred_py if chosen == "array" else pred_arr
    if alt is not None:
        bucket["comparable"] += 1
        if measured > alt:
            bucket["mispredictions"] += 1
    if own is not None and measured > 0:
        bucket["rel_error_sum"] += abs(measured - own) / measured
        bucket["rel_error_n"] += 1


def _finalise(
    agg: Dict[str, Any], levels: Dict[str, Dict[str, Any]]
) -> None:
    total_comparable = 0
    total_mispredicted = 0
    for bucket in levels.values():
        comp = bucket["comparable"]
        total_comparable += comp
        total_mispredicted += bucket["mispredictions"]
        bucket["misprediction_rate"] = (
            bucket["mispredictions"] / comp if comp else 0.0
        )
        n = bucket.pop("rel_error_n")
        s = bucket.pop("rel_error_sum")
        bucket["mean_rel_error"] = s / n if n else 0.0
    agg["dispatch"]["comparable"] = total_comparable
    agg["dispatch"]["mispredictions"] = total_mispredicted
    agg["dispatch"]["misprediction_rate"] = (
        total_mispredicted / total_comparable if total_comparable else 0.0
    )
    sweep = agg["sweep"]
    total_jobs = sweep["jobs"] + sweep["cache_hits"]
    sweep["hit_rate"] = (
        sweep["cache_hits"] / total_jobs if total_jobs else 0.0
    )
    svc = agg["service"]
    svc["memo_rate"] = (
        svc["memo_hits"] / svc["served"] if svc["served"] else 0.0
    )


# -- rendering ---------------------------------------------------------------


def _table(headers, rows) -> str:
    from repro.bench.harness import format_table

    return format_table(headers, rows)


def format_report(agg: Dict[str, Any], top: int = 10) -> str:
    """The aggregate as aligned terminal text."""
    lines: List[str] = []
    runs = agg["runs"]
    lines.append(
        f"ledger files : {len(agg['files'])}  "
        f"events {agg['events']}  "
        f"runs {runs['started']} started / {runs['ok']} ok / "
        f"{runs['failed']} failed"
    )
    by_type = ", ".join(
        f"{k}={v}" for k, v in sorted(agg["events_by_type"].items())
    )
    lines.append(f"event types  : {by_type or '(none)'}")
    lines.append("")

    lines.append("phase hotspots (host seconds over all epochs)")
    phase_rows = sorted(
        (
            (p, d["seconds"], d["epochs"])
            for p, d in agg["phases"].items()
        ),
        key=lambda r: -r[1],
    )
    rows = [
        (p, f"{s:.4f}", n) for p, s, n in phase_rows
    ] + [
        (
            "checkpoint",
            f"{agg['checkpoints']['seconds']:.4f}",
            agg["checkpoints"]["count"],
        )
    ]
    lines.append(_table(("phase", "seconds", "samples"), rows))
    if agg["fused_chunks"]:
        lines.append(
            f"whole-epoch fused generation: {agg['fused_chunks']} chunks"
        )
    tc = agg["trace_cache"]
    if tc["hits"] or tc["misses"] or tc["stored"]:
        lines.append(
            f"trace cache  : {tc['hits']} hits / {tc['misses']} misses / "
            f"{tc['stored']} stored ({tc['seconds']:.4f}s probe+publish)"
        )
    lines.append("")

    disp = agg["dispatch"]
    lines.append(
        f"replay dispatch audit: {disp['total']} partitions considered, "
        f"misprediction rate "
        f"{disp['misprediction_rate']:.1%} "
        f"({disp['mispredictions']}/{disp['comparable']} comparable)"
    )
    if disp["by_level"]:
        rows = []
        for level in sorted(disp["by_level"]):
            b = disp["by_level"][level]
            c = b["chosen"]
            rows.append((
                level, b["considered"],
                c["array"], c["dict"], c["batched"], b["bailed"],
                f"{b['misprediction_rate']:.1%}",
                f"{b['mean_rel_error']:.2f}",
                f"{b['measured_us'] / 1e3:.2f}",
            ))
        lines.append(_table(
            ("level", "considered", "array", "dict", "batched",
             "bailed", "mispredict", "rel err", "total ms"),
            rows,
        ))
    lines.append("")

    sweep = agg["sweep"]
    if sweep["jobs"] or sweep["cache_hits"]:
        line = (
            f"sweep: {sweep['jobs']} executed "
            f"({sweep['completed']} completed, {sweep['failed']} failed), "
            f"{sweep['cache_hits']} cache hits "
            f"(hit rate {sweep['hit_rate']:.1%})"
        )
        if sweep.get("requeued"):
            line += f", {sweep['requeued']} requeued"
        if sweep.get("quarantined"):
            line += f", {sweep['quarantined']} quarantined"
        lines.append(line)
        lines.append("")

    svc = agg["service"]
    if svc["requests"]:
        by_source = ", ".join(
            f"{k}={v}"
            for k, v in sorted(svc["served_by_source"].items())
        )
        lines.append(
            f"service: {svc['requests']} requests, {svc['served']} "
            f"served (memo rate {svc['memo_rate']:.1%}; {by_source}), "
            f"{svc['coalesced']} coalesced, {svc['rejected']} rejected, "
            f"{svc['failed']} failed"
        )
        lines.append("")

    lines.append(
        f"resilience: {agg['retries']} retries, "
        f"{agg['degradations']} degradations"
    )
    timeline = agg["timeline"]
    if timeline:
        lines.append("timeline (recorded order)")
        rows = [
            (
                f"{row['t']:.3f}" if row["t"] is not None else "?",
                row["run"], row["event"], row["description"],
            )
            for row in timeline[:top]
        ]
        lines.append(_table(("t (s)", "run", "event", "what"), rows))
        if len(timeline) > top:
            lines.append(f"... {len(timeline) - top} more")
    return "\n".join(lines)


def validate_ledgers(
    paths, require_dispatch: bool = False
) -> Dict[str, Any]:
    """Validate every event in ``paths`` against the schema; returns
    counts.  Raises :class:`~repro.obs.schema.LedgerSchemaError` on the
    first violation (with file and line context) and :class:`ValueError`
    when ``require_dispatch`` finds no dispatch events."""
    from repro.obs.schema import LedgerSchemaError, validate_event

    files = iter_ledger_files(paths)
    if not files:
        raise ValueError(
            f"no ledger files found under {[str(p) for p in paths]}"
        )
    counts: Dict[str, int] = {}
    total = 0
    for path in files:
        for lineno, ev in enumerate(read_events(path), start=1):
            try:
                validate_event(ev)
            except LedgerSchemaError as exc:
                raise LedgerSchemaError(
                    f"{path}:{lineno}: {exc}"
                ) from exc
            counts[ev["e"]] = counts.get(ev["e"], 0) + 1
            total += 1
    if require_dispatch and not counts.get("dispatch"):
        raise ValueError(
            f"no dispatch events found across {len(files)} ledger "
            f"file(s) ({total} events) — the replay dispatch audit "
            f"is empty"
        )
    return {"files": len(files), "events": total, "by_type": counts}
