"""repro.obs: the run-ledger flight recorder and its reporting.

- :class:`RunLedger` / :data:`NULL_LEDGER` (``ledger``): buffered
  append-only JSONL event writer with monotonic timestamps and run/job
  correlation ids; the shared null object makes disabled runs free.
- :mod:`~repro.obs.schema`: the typed event taxonomy (run / epoch /
  checkpoint / retry / degradation / sweep-job / cache-hit / dispatch)
  and its dependency-free validator.
- :mod:`~repro.obs.report`: ``repro obs report`` aggregation — phase
  hotspots, cost-model accuracy and misprediction rates per cache
  level, sweep hit rates, retry/degradation timeline.

The headline consumer is the replay dispatch audit: with a ledger
attached, ``replay="array"`` records every partition it considers —
cost-model inputs, predicted cost, chosen backend, measured wall time —
so the cost model's mispredictions are measurable instead of folklore.
"""

from repro.obs.ledger import (
    NULL_LEDGER,
    NullLedger,
    RunLedger,
    derive_run_id,
    file_digest,
    iter_ledger_files,
    merge_shards,
    open_run_ledger,
    peak_rss_bytes,
    read_events,
    shard_path,
)
from repro.obs.report import aggregate, format_report, validate_ledgers
from repro.obs.schema import (
    EVENT_TYPES,
    LEDGER_SCHEMA_VERSION,
    LedgerSchemaError,
    as_json_schema,
    validate_event,
)

__all__ = [
    "NULL_LEDGER",
    "NullLedger",
    "RunLedger",
    "derive_run_id",
    "file_digest",
    "iter_ledger_files",
    "merge_shards",
    "open_run_ledger",
    "peak_rss_bytes",
    "read_events",
    "shard_path",
    "aggregate",
    "format_report",
    "validate_ledgers",
    "EVENT_TYPES",
    "LEDGER_SCHEMA_VERSION",
    "LedgerSchemaError",
    "as_json_schema",
    "validate_event",
]
