"""The stable Job/Result boundary shared by every execution substrate.

A *job* is one hashable unit of simulation work — a (driver, point)
pair bound to an environment fingerprint and a schema version — and a
*result* is its answer plus the provenance of how it was obtained.
Three consumers speak this vocabulary:

- the **sweep runner** (:mod:`repro.sweep.runner`) fans grids of
  :class:`JobSpec` over a supervised worker pool and merges by index;
- the **sharded runner** (``repro sweep --shard i/N``) exchanges
  results between hosts keyed by :attr:`JobSpec.key`;
- the **simulation service** (:mod:`repro.service`) resolves client
  requests to the same keys, so a served answer, a sweep cell, and a
  ``repro run`` invocation all address one content-addressed result.

Each grid point becomes a :class:`JobSpec` whose ``key`` is a content
hash over everything that determines the cell's result:

- the **schema version** (bumped when cell semantics change, so a code
  change can never resurface stale cached results),
- the **driver** name (``fig09``, ``table5``, ``run``, ...),
- the **config hash** — the PR 2 provenance fingerprint of the resolved
  :class:`~repro.bench.harness.BenchEnvironment` (which determines
  every system config a driver builds),
- the **workload hash** — the canonical-JSON digest of the grid point.

Equal jobs hash equal regardless of process, host, or grid position, so
the key doubles as the result-cache address; distinct jobs collide only
if sha256 collides.  Each job also derives a deterministic per-job seed
from its key so any seed-sensitive code inside a cell behaves
identically no matter which worker runs the job or in what order.

Formerly ``repro.sweep.jobs``; that module remains as a re-export shim
so existing imports (and pickled references) keep resolving.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, is_dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

SWEEP_SCHEMA_VERSION = 1
"""Bump when cell-function semantics change: invalidates every cached
sweep/service result at once (cache keys embed this version)."""

JOB_SCHEMA_VERSION = SWEEP_SCHEMA_VERSION
"""Alias: the service speaks of jobs, the sweep of sweeps; one version."""


def canonical_blob(value: Any) -> bytes:
    """Deterministic byte serialisation of a (nested) grid value.

    Canonical JSON with sorted keys; tuples and lists are equivalent,
    anything non-JSON falls back to ``repr`` (stable for the enums,
    dataclasses, and numbers that appear in grid points).
    """
    return json.dumps(
        value, sort_keys=True, default=repr, separators=(",", ":")
    ).encode()


def value_fingerprint(value: Any) -> str:
    """sha256 hex digest of :func:`canonical_blob`."""
    return hashlib.sha256(canonical_blob(value)).hexdigest()


_EXCLUDED_ENV_KEYS = (
    "jobs", "cache_dir", "timeout_s", "max_retries", "trace_cache_dir",
    "max_attempts", "keep_going", "lease_dir",
)
"""Environment fields that orchestrate *how* a job runs but cannot
change what a cell computes (all execution paths are bit-identical, per
the PR 3/4 parity suites, and trace-cache replay is bit-identical to
live generation per the PR 8 trace-store suites) — excluded from the
fingerprint so changing worker count, supervision policy or trace-cache
location never invalidates cached results."""


def environment_fingerprint(env: Any) -> str:
    """Content hash of a job's environment.

    ``None`` (environment-free drivers like ``sec7g`` and the service's
    ``run`` cells) hashes to a fixed sentinel; dataclasses reuse the
    PR 2 provenance fingerprint (modulo :data:`_EXCLUDED_ENV_KEYS`) so
    the result cache and the BENCH manifest agree on what "same config"
    means.
    """
    if env is None:
        return value_fingerprint("no-environment")
    if is_dataclass(env) and not isinstance(env, type):
        from repro.telemetry.provenance import config_fingerprint

        fields = dataclasses.asdict(env)
        for key in _EXCLUDED_ENV_KEYS:
            fields.pop(key, None)
        return config_fingerprint(fields)
    return value_fingerprint(env)


def expand_grid(axes: Mapping[str, Sequence[Any]]) -> List[Tuple]:
    """Cartesian product of named axes as a list of point tuples.

    Expansion order is a pure function of the spec: axes vary in
    *insertion order* with the last axis fastest (odometer order), which
    is exactly the nesting order of the serial ``for`` loops the sweep
    replaces.  The property suite pins this determinism.
    """
    points: List[Tuple] = [()]
    for name in axes:
        pool = list(axes[name])
        points = [p + (v,) for p in points for v in pool]
    return points


@dataclass(frozen=True)
class JobSpec:
    """One hashable unit of work: a (driver, point) pair bound to an
    environment fingerprint and the job schema version."""

    driver: str
    index: int
    point: Tuple
    config_hash: str
    schema_version: int = SWEEP_SCHEMA_VERSION

    @property
    def workload_hash(self) -> str:
        """Content hash of the grid point alone."""
        return value_fingerprint(list(self.point))

    @property
    def key(self) -> str:
        """Content address of this job's result.

        Deliberately excludes ``index``: the same (driver, config,
        point) job has the same result wherever it sits in the grid, so
        reshaped or filtered grids still hit the cache.
        """
        blob = canonical_blob(
            {
                "schema_version": self.schema_version,
                "driver": self.driver,
                "config": self.config_hash,
                "workload": self.workload_hash,
            }
        )
        return hashlib.sha256(blob).hexdigest()

    @property
    def seed(self) -> int:
        """Deterministic per-job seed derived from the job key."""
        return int(self.key[:16], 16)


RESULT_SOURCES = ("executed", "cached", "coalesced")
"""Where a :class:`JobResult` came from: a worker ran the cell, the
content-addressed cache answered, or an identical in-flight execution
fanned its answer out."""


@dataclass(frozen=True)
class JobResult:
    """One job's answer plus the provenance of how it was obtained.

    The *value* is exactly what the cell returned (or the cached bytes
    of a previous identical execution — the cache stores pickled cell
    output, so a cached value *is* the executed value).  The envelope
    records how the answer was produced, which the service reports to
    clients and the exactly-once audits reason about.
    """

    key: str
    value: Any
    source: str = "executed"
    attempt: int = 1
    wall_s: float = 0.0
    worker_pid: Optional[int] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.source not in RESULT_SOURCES:
            raise ValueError(
                f"JobResult source must be one of {RESULT_SOURCES}, "
                f"got {self.source!r}"
            )

    def with_source(self, source: str) -> "JobResult":
        """The same answer re-labelled (e.g. a coalesced waiter's view
        of the leader's executed result)."""
        return dataclasses.replace(self, source=source)

    def to_wire(self) -> Dict[str, Any]:
        """JSON-safe envelope (the service's response body core)."""
        wire: Dict[str, Any] = {
            "key": self.key,
            "source": self.source,
            "attempt": self.attempt,
            "wall_s": self.wall_s,
        }
        if self.extra:
            wire.update(self.extra)
        return wire


def build_jobs(
    driver: str, env: Any, points: Sequence[Tuple]
) -> List[JobSpec]:
    """Materialise the :class:`JobSpec` list for one grid, in grid
    order (the order results are merged back in)."""
    config_hash = environment_fingerprint(env)
    return [
        JobSpec(
            driver=driver,
            index=index,
            point=tuple(point),
            config_hash=config_hash,
        )
        for index, point in enumerate(points)
    ]
