"""Figure 13: SPADE Opt versus the ideal Sextans accelerator (SpMM K=32).

Three metrics per matrix, all normalised to Sextans: DRAM bandwidth
utilization, DRAM accesses, and speedup.  Paper results: SPADE Opt
achieves ~40% higher bandwidth utilization, issues ~32% fewer memory
accesses (up to 73% fewer on ROA), and is 2.4x faster on average (up to
5.1x); Sextans wins marginally only on ORK and LIV, whose barrier-like
batching its execution model resembles.  Including PCIe transfers, the
paper reports a 52.4x average SPADE advantage for one iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import (
    BenchEnvironment,
    dense_input,
    format_table,
    geomean,
    get_environment,
    suite_benchmarks,
    suite_matrix,
)
from repro.sweep import sweep_map
from repro.tuning.autotune import autotune

K = 32


@dataclass(frozen=True)
class Fig13Row:
    """SPADE Opt metrics normalised to ideal Sextans for one matrix."""

    matrix: str
    num_rows: int
    bandwidth_utilization_ratio: float
    memory_access_ratio: float
    speedup: float
    speedup_with_transfer: float


def _cell(env: BenchEnvironment, point) -> Fig13Row:
    """One matrix's SPADE-Opt-vs-Sextans comparison — pure and picklable
    for the sweep orchestrator."""
    (name,) = point
    sextans = env.sextans_model()
    a = suite_matrix(name, env.scale)
    sx = sextans.spmm(a, K)
    tuned = autotune(
        env.spade_system(), a, "spmm", K,
        quick=(env.opt_mode == "quick"),
        row_panel_divisor=env.row_panel_divisor,
    )
    rep = tuned.best_report
    return Fig13Row(
        matrix=name,
        num_rows=a.num_rows,
        bandwidth_utilization_ratio=(
            rep.bandwidth_utilization / sx.bandwidth_utilization
        ),
        memory_access_ratio=rep.dram_accesses / sx.dram_accesses,
        speedup=sx.kernel_ns / rep.time_ns,
        speedup_with_transfer=sx.total_ns / rep.time_ns,
    )


def run(
    env: BenchEnvironment | None = None,
    matrices: Optional[Sequence[str]] = None,
    sweep=None,
) -> List[Fig13Row]:
    env = env or get_environment()
    points = [
        (bench.name,)
        for bench in suite_benchmarks()
        if not matrices or bench.name in matrices
    ]
    rows = sweep_map(sweep, "fig13", env, _cell, points)
    rows.sort(key=lambda r: r.num_rows)
    return rows


def summary(rows: List[Fig13Row]) -> Dict[str, float]:
    return {
        "mean_bandwidth_ratio": geomean(
            r.bandwidth_utilization_ratio for r in rows
        ),
        "mean_access_ratio": geomean(r.memory_access_ratio for r in rows),
        "mean_speedup": geomean(r.speedup for r in rows),
        "max_speedup": max(r.speedup for r in rows),
        "mean_speedup_with_transfer": geomean(
            r.speedup_with_transfer for r in rows
        ),
    }


def format_result(rows: List[Fig13Row]) -> str:
    table = format_table(
        ["matrix", "rows", "BW util ratio", "mem accesses ratio", "speedup",
         "speedup w/ PCIe"],
        [
            (
                r.matrix, r.num_rows, r.bandwidth_utilization_ratio,
                r.memory_access_ratio, r.speedup, r.speedup_with_transfer,
            )
            for r in rows
        ],
        title=(
            "Figure 13: SPADE Opt vs ideal Sextans (SpMM K=32, "
            "in increasing number of rows)"
        ),
    )
    s = summary(rows)
    return table + (
        f"\n\nbandwidth utilization: {s['mean_bandwidth_ratio']:.2f}x "
        f"Sextans (paper ~1.4x)\n"
        f"memory accesses: {s['mean_access_ratio']:.2f}x Sextans "
        f"(paper ~0.68x)\n"
        f"speedup: {s['mean_speedup']:.2f}x mean, {s['max_speedup']:.1f}x "
        f"max (paper 2.4x mean, 5.1x max)\n"
        f"speedup incl. PCIe transfer: "
        f"{s['mean_speedup_with_transfer']:.1f}x (paper 52.4x)"
    )


if __name__ == "__main__":
    print(format_result(run()))
