"""Figure 11: tile row-panel / column-panel sensitivity heatmaps.

For KRO, DEL, and MYC (SpMM, K=32, no bypassing, no barriers) the paper
sweeps row panels {64, 256, 1024} (plus 16 for MYC) against column
panels {8k, 500k, MAX} and normalises execution time to the worst cell.
Expected shape:

- KRO (high RU): best with small CP and large RP (maximises cMatrix
  reuse),
- DEL (low RU): best with CP spanning all columns,
- MYC (few rows): small RPs mitigate load imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import (
    BenchEnvironment,
    dense_input,
    format_table,
    get_environment,
    suite_matrix,
)
from repro.core.accelerator import KernelSettings
from repro.sweep import sweep_map
from repro.tuning.space import paper_row_panels, scaled_col_panels

MATRICES = ("KRO", "DEL", "MYC")
K = 32


@dataclass
class Heatmap:
    """One matrix's normalised RP x CP execution-time grid."""

    matrix: str
    row_panels: List[int]
    col_panels: List[Optional[int]]
    normalized_time: Dict[Tuple[int, Optional[int]], float]

    def best_cell(self) -> Tuple[int, Optional[int]]:
        return min(self.normalized_time, key=self.normalized_time.get)

    def worst_cell(self) -> Tuple[int, Optional[int]]:
        return max(self.normalized_time, key=self.normalized_time.get)


def _cell(env: BenchEnvironment, point) -> Heatmap:
    """One matrix's full RP x CP grid — pure and picklable for the
    sweep orchestrator.  The inner panel loop stays inside the cell: it
    reuses one system and operand, so a matrix is the natural job
    granule here."""
    (name,) = point
    a = suite_matrix(name, env.scale)
    row_panels = list(paper_row_panels(env.row_panel_divisor))
    if name == "MYC":
        row_panels = [max(2, 16 // env.row_panel_divisor)] + row_panels
    col_panels = scaled_col_panels(a.num_cols)
    system = env.spade_system()
    b = dense_input(a.num_cols, K)
    times: Dict[Tuple[int, Optional[int]], float] = {}
    for rp in row_panels:
        for cp in col_panels:
            settings = KernelSettings(row_panel_size=rp, col_panel_size=cp)
            times[(rp, cp)] = system.spmm(a, b, settings).time_ns
    worst = max(times.values())
    return Heatmap(
        matrix=name,
        row_panels=row_panels,
        col_panels=col_panels,
        normalized_time={k: v / worst for k, v in times.items()},
    )


def run(
    env: BenchEnvironment | None = None, matrices=MATRICES, sweep=None
) -> List[Heatmap]:
    env = env or get_environment()
    points = [(name,) for name in matrices]
    return sweep_map(sweep, "fig11", env, _cell, points)


def format_result(maps: List[Heatmap]) -> str:
    blocks = []
    for hm in maps:
        headers = ["RP \\ CP"] + [
            str(cp) if cp else "MAX" for cp in hm.col_panels
        ]
        rows = [
            [rp] + [hm.normalized_time[(rp, cp)] for cp in hm.col_panels]
            for rp in hm.row_panels
        ]
        best = hm.best_cell()
        blocks.append(
            format_table(
                headers,
                rows,
                title=(
                    f"Figure 11 ({hm.matrix}): time normalised to worst; "
                    f"best = RP={best[0]}, CP={best[1] or 'MAX'}"
                ),
            )
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(format_result(run()))
