"""Figure 10 / Table 4: progressive SPADE configurations CFG0-CFG5.

Starting from CFG0 (tile instructions, 3-entry sparse load queue,
sparse/dense request overlap, 16 vOp RS entries, quarter as many PEs at
3.2 GHz, sparse data through the caches) the experiment adds one feature
at a time:

- CFG1: 32 vOp reservation-station entries,
- CFG2: full PE count at 0.8 GHz,
- CFG3: 6-entry sparse load queue,
- CFG4: sparse stream bypasses the cache hierarchy (= SPADE Base),
- CFG5: flexible execution (= SPADE Opt; link latency 60 ns only).

Each configuration runs at link latencies of 60, 480, and 960 ns;
reported metrics (geomean over the suite, normalised to CFG0@60ns) are
DRAM accesses, LLC accesses, pipeline requests per cycle, and execution
time.  Expected shape: CFG1-3 raise requests/cycle *without* lowering
DRAM/LLC traffic (pure latency tolerance); CFG4-5 raise requests/cycle
*and* cut traffic; benefits grow with link latency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import (
    BenchEnvironment,
    dense_input,
    format_table,
    geomean,
    get_environment,
    suite_benchmarks,
    suite_matrix,
)
from repro.config import SpadeConfig
from repro.core.accelerator import KernelSettings, SpadeSystem
from repro.sweep import sweep_map
from repro.tuning.autotune import autotune

LINK_LATENCIES_NS = (60.0, 480.0, 960.0)
CFG_NAMES = ("CFG0", "CFG1", "CFG2", "CFG3", "CFG4", "CFG5")
K = 32


@dataclass(frozen=True)
class CfgPoint:
    """Metrics of one (configuration, link latency) cell, geomean'd
    across the suite and normalised to CFG0 at 60 ns."""

    config: str
    link_latency_ns: float
    dram_accesses: float
    llc_accesses: float
    requests_per_cycle: float
    execution_time: float


def _cfg_system(
    env: BenchEnvironment, cfg_name: str, link_latency_ns: float
) -> SpadeSystem:
    base = env.spade_config()
    pe = base.pe
    num_pes = base.num_pes
    if cfg_name in ("CFG0", "CFG1"):
        # Quarter the PEs, CPU-like 3.2 GHz clock (Table 4's "56 SPADE
        # PEs at 3.2GHz" against the full system's 224 at 0.8 GHz).
        num_pes = max(1, base.num_pes // 4)
        pe = replace(pe, frequency_ghz=3.2)
    if cfg_name == "CFG0":
        pe = replace(pe, vop_rs_entries=16)
    if cfg_name in ("CFG0", "CFG1", "CFG2"):
        pe = replace(pe, sparse_load_queue_entries=3)
    mem = replace(base.memory, link_latency_ns=link_latency_ns)
    cfg = replace(base, num_pes=num_pes, pe=pe, memory=mem)
    return SpadeSystem(cfg)


def _cfg_settings(
    env: BenchEnvironment, cfg_name: str, matrix_name: str
) -> KernelSettings:
    sparse_bypass = cfg_name in ("CFG4", "CFG5")
    if cfg_name == "CFG5":
        a = suite_matrix(matrix_name, env.scale)
        tuned = autotune(
            env.spade_system(), a, "spmm", K,
            quick=(env.opt_mode == "quick"),
            row_panel_divisor=env.row_panel_divisor,
        ).best_settings
        return replace(tuned, sparse_stream_bypass=True)
    return env.base_settings(sparse_stream_bypass=sparse_bypass)


def _cell(env: BenchEnvironment, point) -> Dict[str, float]:
    """One (configuration, link latency, matrix) grid cell — pure and
    picklable for the sweep orchestrator.  Geomean grouping across the
    suite happens after the merge, in :func:`run`."""
    cfg_name, ll, name = point
    a = suite_matrix(name, env.scale)
    system = _cfg_system(env, cfg_name, ll)
    settings = _cfg_settings(env, cfg_name, name)
    b = dense_input(a.num_cols, K)
    rep = system.spmm(a, b, settings)
    return {
        "dram": rep.dram_accesses,
        "llc": max(rep.llc_accesses, 1),
        "rpc": rep.requests_per_cycle,
        "time": rep.time_ns,
    }


def run(
    env: BenchEnvironment | None = None,
    matrices: Optional[Sequence[str]] = None,
    sweep=None,
) -> List[CfgPoint]:
    env = env or get_environment()
    names = [b.name for b in suite_benchmarks()]
    if matrices:
        names = [n for n in names if n in matrices]

    points = [
        (cfg_name, ll, name)
        for cfg_name in CFG_NAMES
        for ll in ((60.0,) if cfg_name == "CFG5" else LINK_LATENCIES_NS)
        for name in names
    ]
    cells = sweep_map(sweep, "fig10", env, _cell, points)

    raw: Dict[tuple, Dict[str, float]] = {}
    for (cfg_name, ll, _), cell in zip(points, cells):
        group = raw.setdefault(
            (cfg_name, ll), {"dram": [], "llc": [], "rpc": [], "time": []}
        )
        for metric, value in cell.items():
            group[metric].append(value)
    raw = {
        key: {metric: geomean(vals) for metric, vals in group.items()}
        for key, group in raw.items()
    }

    ref = raw[("CFG0", 60.0)]
    points = [
        CfgPoint(
            config=cfg_name,
            link_latency_ns=ll,
            dram_accesses=vals["dram"] / ref["dram"],
            llc_accesses=vals["llc"] / ref["llc"],
            requests_per_cycle=vals["rpc"] / ref["rpc"],
            execution_time=vals["time"] / ref["time"],
        )
        for (cfg_name, ll), vals in raw.items()
    ]
    return points


def format_result(points: List[CfgPoint]) -> str:
    return format_table(
        ["config", "LL(ns)", "DRAM acc", "LLC acc", "req/cycle", "exec time"],
        [
            (
                p.config,
                int(p.link_latency_ns),
                p.dram_accesses,
                p.llc_accesses,
                p.requests_per_cycle,
                p.execution_time,
            )
            for p in sorted(
                points, key=lambda p: (p.link_latency_ns, p.config)
            )
        ],
        title=(
            "Figure 10: progressive SPADE features "
            "(geomean over suite, normalised to CFG0 @ 60ns)"
        ),
    )


if __name__ == "__main__":
    print(format_result(run()))
