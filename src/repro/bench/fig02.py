"""Figure 2: single-iteration GPU time (transfer + kernel) vs CPU.

The paper measures one SpMM iteration on the Ice Lake server and on a
V100 whose time includes host-device transfers and address mapping.
Result: kernel-only the GPU always wins; end-to-end it always loses,
with transfers ~97% of GPU time on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bench.harness import (
    BenchEnvironment,
    format_table,
    geomean,
    get_environment,
    suite_benchmarks,
    suite_matrix,
)
from repro.sweep import sweep_map

K_VALUES = (32, 128)


@dataclass(frozen=True)
class Fig02Row:
    """One bar of Figure 2."""

    matrix: str
    k: int
    cpu_ns: float
    gpu_kernel_ns: float
    gpu_transfer_ns: float

    @property
    def gpu_total_ns(self) -> float:
        return self.gpu_kernel_ns + self.gpu_transfer_ns

    @property
    def normalized_total(self) -> float:
        """GPU total time / CPU time (the bar height)."""
        return self.gpu_total_ns / self.cpu_ns

    @property
    def normalized_kernel(self) -> float:
        return self.gpu_kernel_ns / self.cpu_ns

    @property
    def transfer_fraction(self) -> float:
        return self.gpu_transfer_ns / self.gpu_total_ns


def _cell(env: BenchEnvironment, point) -> Fig02Row:
    """One (matrix, K) grid cell — pure and picklable for the sweep."""
    name, k = point
    a = suite_matrix(name, env.scale)
    cpu_res = env.cpu_model().spmm(a, k)
    gpu_res = env.gpu_model().spmm(a, k)
    return Fig02Row(
        matrix=name,
        k=k,
        cpu_ns=cpu_res.time_ns,
        gpu_kernel_ns=gpu_res.kernel_ns,
        gpu_transfer_ns=gpu_res.transfer_ns,
    )


def run(
    env: BenchEnvironment | None = None, sweep=None
) -> List[Fig02Row]:
    env = env or get_environment()
    points = [
        (bench.name, k)
        for bench in suite_benchmarks()
        for k in K_VALUES
    ]
    return sweep_map(sweep, "fig02", env, _cell, points)


def summary(rows: List[Fig02Row]) -> Dict[str, float]:
    return {
        "mean_transfer_fraction": sum(
            r.transfer_fraction for r in rows
        ) / len(rows),
        "geomean_gpu_vs_cpu_total": geomean(
            r.normalized_total for r in rows
        ),
        "geomean_gpu_vs_cpu_kernel": geomean(
            r.normalized_kernel for r in rows
        ),
    }


def format_result(rows: List[Fig02Row]) -> str:
    table = format_table(
        ["matrix", "K", "GPU total/CPU", "GPU kernel/CPU", "transfer %"],
        [
            (
                r.matrix,
                r.k,
                r.normalized_total,
                r.normalized_kernel,
                f"{r.transfer_fraction:.1%}",
            )
            for r in rows
        ],
        title="Figure 2: GPU single-iteration SpMM time normalized to CPU",
    )
    s = summary(rows)
    return (
        table
        + f"\n\nmean transfer fraction: {s['mean_transfer_fraction']:.1%}"
        f" (paper: ~97%)\n"
        f"geomean GPU/CPU with transfers: "
        f"{s['geomean_gpu_vs_cpu_total']:.2f}x slower "
        f"(paper: GPU always much slower)\n"
        f"geomean GPU/CPU kernel-only: "
        f"{s['geomean_gpu_vs_cpu_kernel']:.2f}x (paper: always faster, <1)"
    )


if __name__ == "__main__":
    print(format_result(run()))
