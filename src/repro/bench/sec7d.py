"""Section 7.D: overheads of CPU <-> SPADE mode transitions.

The paper measures, across the suite: SPADE -> CPU transitions (write
back + invalidate the PEs' L1s, BBFs, and victim caches) at ~0.2% of
SPADE-mode duration; CPU -> SPADE transitions at negligible cost for
SpMM and ~3.4% for SDDMM (whose rMatrix must be written back from the
CPU caches under the GNN interleaving assumption); and a cold-cache
start-up overhead of ~0.9%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bench.harness import (
    BenchEnvironment,
    dense_input,
    format_table,
    get_environment,
    suite_benchmarks,
    suite_matrix,
)
from repro.core.instructions import Primitive
from repro.core.modes import cpu_to_spade_cost, spade_to_cpu_cost
from repro.memory.address import padded_row_bytes
from repro.sweep import sweep_map

K = 32
KERNELS = ("spmm", "sddmm")


@dataclass(frozen=True)
class Sec7dRow:
    """Mode-transition overheads for one (matrix, kernel)."""

    matrix: str
    kernel: str
    spade_mode_ns: float
    spade_to_cpu_ns: float
    cpu_to_spade_ns: float
    startup_ns: float

    @property
    def spade_to_cpu_pct(self) -> float:
        return 100.0 * self.spade_to_cpu_ns / self.spade_mode_ns

    @property
    def cpu_to_spade_pct(self) -> float:
        return 100.0 * self.cpu_to_spade_ns / self.spade_mode_ns

    @property
    def startup_pct(self) -> float:
        return 100.0 * self.startup_ns / self.spade_mode_ns


def _cell(env: BenchEnvironment, point) -> Sec7dRow:
    """One (matrix, kernel) grid cell — pure and picklable for the
    sweep orchestrator.  Cold and warm runs share the cell because the
    warm run must reuse the cold run's cache state."""
    name, kernel = point
    a = suite_matrix(name, env.scale)
    system = env.spade_system()
    b = dense_input(a.num_cols, K)
    b_r = dense_input(a.num_rows, K, seed=5)
    if kernel == "spmm":
        run_once = lambda: system.spmm(a, b, env.base_settings())
        primitive = Primitive.SPMM
    else:
        run_once = lambda: system.sddmm(a, b_r, b, env.base_settings())
        primitive = Primitive.SDDMM
    rmatrix_bytes = a.num_rows * padded_row_bytes(K)
    rep = run_once()
    spade_ns = rep.result.compute_time_ns
    to_cpu = spade_to_cpu_cost(
        rep.result.dirty_lines_flushed, system.config
    )
    to_spade = cpu_to_spade_cost(primitive, rmatrix_bytes, system.config)
    # Start-up: measured directly as (cold run) - (warm run).
    # A second identical run starts with the L2/LLC already
    # holding the working set, the steady state of repeatedly
    # interleaved SPADE-mode sections.
    warm = run_once()
    startup = max(0.0, spade_ns - warm.result.compute_time_ns)
    return Sec7dRow(
        matrix=name,
        kernel=kernel,
        spade_mode_ns=spade_ns,
        spade_to_cpu_ns=to_cpu,
        cpu_to_spade_ns=to_spade,
        startup_ns=startup,
    )


def run(
    env: BenchEnvironment | None = None,
    kernels: Sequence[str] = KERNELS,
    matrices: Optional[Sequence[str]] = None,
    sweep=None,
) -> List[Sec7dRow]:
    env = env or get_environment()
    points = [
        (bench.name, kernel)
        for bench in suite_benchmarks()
        if not matrices or bench.name in matrices
        for kernel in kernels
    ]
    return sweep_map(sweep, "sec7d", env, _cell, points)


def format_result(rows: List[Sec7dRow]) -> str:
    table = format_table(
        ["matrix", "kernel", "SPADE->CPU %", "CPU->SPADE %", "startup %"],
        [
            (
                r.matrix, r.kernel,
                f"{r.spade_to_cpu_pct:.2f}%",
                f"{r.cpu_to_spade_pct:.2f}%",
                f"{r.startup_pct:.2f}%",
            )
            for r in rows
        ],
        title="Section 7.D: mode-transition overheads",
    )
    spmm = [r for r in rows if r.kernel == "spmm"]
    sddmm = [r for r in rows if r.kernel == "sddmm"]
    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    return table + (
        f"\n\nmean SPADE->CPU: "
        f"{mean([r.spade_to_cpu_pct for r in rows]):.2f}% (paper ~0.2%)\n"
        f"mean CPU->SPADE (SpMM): "
        f"{mean([r.cpu_to_spade_pct for r in spmm]):.2f}% "
        f"(paper: negligible)\n"
        f"mean CPU->SPADE (SDDMM): "
        f"{mean([r.cpu_to_spade_pct for r in sddmm]):.2f}% (paper ~3.4%)"
    )


if __name__ == "__main__":
    print(format_result(run()))
