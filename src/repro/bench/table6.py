"""Table 6: percentage change in execution time from rMatrix bypassing.

For each benchmark, take the best tile/barrier setting found by the
SPADE Opt search (without bypass) and flip rMatrix cache bypassing on.
Positive numbers are slowdowns.  Expected shape: bypassing helps most
benchmarks (the rMatrix stops polluting the shared caches), but hurts
badly when the working set of rMatrix lines overflows the BBF victim
cache — the paper's KRO SpMM K=32 outlier (+169.2%), whose best row
panel is large.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.bench.harness import (
    BenchEnvironment,
    dense_input,
    format_table,
    get_environment,
    suite_benchmarks,
    suite_matrix,
)
from repro.core.accelerator import KernelSettings
from repro.sparse.suite import RU, get_benchmark
from repro.sweep import sweep_map
from repro.tuning.autotune import autotune
from repro.tuning.space import opt_search_space, quick_search_space

K_VALUES = (32, 128)
KERNELS = ("spmm", "sddmm")


@dataclass(frozen=True)
class Table6Row:
    """One cell of Table 6."""

    matrix: str
    ru: RU
    kernel: str
    k: int
    best_settings: KernelSettings
    cached_ns: float
    bypassed_ns: float

    @property
    def pct_change(self) -> float:
        """Positive = slowdown from bypassing the caches for rMatrix."""
        return 100.0 * (self.bypassed_ns / self.cached_ns - 1.0)


def _no_bypass_space(env: BenchEnvironment, a, k: int):
    space = (
        quick_search_space(a, k, env.row_panel_divisor)
        if env.opt_mode == "quick"
        else opt_search_space(
            a, k, include_bypass=False,
            row_panel_divisor=env.row_panel_divisor,
        )
    )
    return [replace(s, rmatrix_bypass=False) for s in space]


def _cell(env: BenchEnvironment, point) -> Table6Row:
    """One (matrix, kernel, K) grid cell — pure and picklable for the
    sweep orchestrator."""
    name, kernel, k = point
    bench = get_benchmark(name)
    a = suite_matrix(name, env.scale)
    system = env.spade_system()
    tuned = autotune(
        system, a, kernel, k, space=_no_bypass_space(env, a, k)
    )
    best = tuned.best_settings
    b = dense_input(a.num_cols, k)
    b_r = dense_input(a.num_rows, k, seed=5)
    bypassed = replace(best, rmatrix_bypass=True)
    if kernel == "spmm":
        bypass_ns = system.spmm(a, b, bypassed).time_ns
    else:
        bypass_ns = system.sddmm(a, b_r, b, bypassed).time_ns
    return Table6Row(
        matrix=name,
        ru=bench.ru,
        kernel=kernel,
        k=k,
        best_settings=best,
        cached_ns=tuned.best_time_ns,
        bypassed_ns=bypass_ns,
    )


def run(
    env: BenchEnvironment | None = None,
    kernels: Sequence[str] = KERNELS,
    k_values: Sequence[int] = K_VALUES,
    matrices: Optional[Sequence[str]] = None,
    sweep=None,
) -> List[Table6Row]:
    env = env or get_environment()
    points = [
        (bench.name, kernel, k)
        for bench in suite_benchmarks()
        if not matrices or bench.name in matrices
        for kernel in kernels
        for k in k_values
    ]
    return sweep_map(sweep, "table6", env, _cell, points)


def format_result(rows: List[Table6Row]) -> str:
    return format_table(
        ["matrix", "RU", "kernel", "K", "best setting",
         "% change (positive = slowdown)"],
        [
            (
                r.matrix, r.ru.value, r.kernel, r.k,
                r.best_settings.describe(), f"{r.pct_change:+.1f}%",
            )
            for r in rows
        ],
        title="Table 6: execution-time change from rMatrix cache bypassing",
    )


if __name__ == "__main__":
    print(format_result(run()))
