"""Table 5: percentage change in execution time from scheduling barriers.

Setting: medium row panel and column panel sizes, no cache bypassing;
apply barriers and measure the change (positive = slowdown).  Expected
shape: matrix-dependent — low-RU matrices slow down (barriers cost
synchronisation without creating reuse), while the big hub-reuse
matrices (ORK, KRO, MYC) speed up because the concurrent LLC working
set shrinks (the paper sees up to -57.1% on ORK and +80.5% on ASI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bench.harness import (
    BenchEnvironment,
    dense_input,
    format_table,
    get_environment,
    suite_benchmarks,
    suite_matrix,
)
from repro.core.accelerator import KernelSettings
from repro.sparse.suite import RU, get_benchmark
from repro.sweep import sweep_map
from repro.tuning.space import scaled_col_panels

MEDIUM_ROW_PANEL = 256
K_VALUES = (32, 128)
KERNELS = ("spmm", "sddmm")


@dataclass(frozen=True)
class Table5Row:
    """One cell of Table 5."""

    matrix: str
    ru: RU
    kernel: str
    k: int
    no_barrier_ns: float
    barrier_ns: float

    @property
    def pct_change(self) -> float:
        """Positive = slowdown from applying barriers."""
        return 100.0 * (self.barrier_ns / self.no_barrier_ns - 1.0)


def _cell(env: BenchEnvironment, point) -> Table5Row:
    """One (matrix, kernel, K) grid cell — pure and picklable for the
    sweep orchestrator."""
    name, kernel, k = point
    bench = get_benchmark(name)
    a = suite_matrix(name, env.scale)
    _, medium_cp, _ = scaled_col_panels(a.num_cols)
    medium_rp = max(2, MEDIUM_ROW_PANEL // env.row_panel_divisor)
    system = env.spade_system()
    b = dense_input(a.num_cols, k)
    b_r = dense_input(a.num_rows, k, seed=5)
    times = {}
    for barriers in (False, True):
        settings = KernelSettings(
            row_panel_size=medium_rp,
            col_panel_size=medium_cp,
            use_barriers=barriers,
        )
        if kernel == "spmm":
            times[barriers] = system.spmm(a, b, settings).time_ns
        else:
            times[barriers] = system.sddmm(a, b_r, b, settings).time_ns
    return Table5Row(
        matrix=name,
        ru=bench.ru,
        kernel=kernel,
        k=k,
        no_barrier_ns=times[False],
        barrier_ns=times[True],
    )


def run(
    env: BenchEnvironment | None = None,
    kernels: Sequence[str] = KERNELS,
    k_values: Sequence[int] = K_VALUES,
    matrices: Optional[Sequence[str]] = None,
    sweep=None,
) -> List[Table5Row]:
    env = env or get_environment()
    points = [
        (bench.name, kernel, k)
        for bench in suite_benchmarks()
        if not matrices or bench.name in matrices
        for kernel in kernels
        for k in k_values
    ]
    return sweep_map(sweep, "table5", env, _cell, points)


def format_result(rows: List[Table5Row]) -> str:
    return format_table(
        ["matrix", "RU", "kernel", "K", "% change (positive = slowdown)"],
        [
            (r.matrix, r.ru.value, r.kernel, r.k, f"{r.pct_change:+.1f}%")
            for r in rows
        ],
        title="Table 5: execution-time change from scheduling barriers",
    )


if __name__ == "__main__":
    print(format_result(run()))
