"""Figure 9: speedup over the CPU of GPU (kernel-only), SPADE Base,
SPADE Opt, and SPADE2 Base, for SpMM/SDDMM and K in {32, 128}.

Paper averages across all environments: SPADE Base 1.67x, SPADE Opt
2.32x, SPADE2 Base 3.52x over the CPU (1.03x / 1.34x / 2.00x over the
GPU).  Matrices group by Restructuring Utility: low-RU matrices see
small Base speedups and little Opt benefit; high/medium-RU matrices see
both grow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.bench.harness import (
    BenchEnvironment,
    dense_input,
    format_table,
    geomean,
    get_environment,
    suite_benchmarks,
    suite_matrix,
)
from repro.core.accelerator import KernelSettings
from repro.sparse.suite import RU, get_benchmark
from repro.sweep import sweep_map
from repro.tuning.autotune import autotune

K_VALUES = (32, 128)
KERNELS = ("spmm", "sddmm")


@dataclass(frozen=True)
class Fig09Row:
    """Speedups over the CPU for one (matrix, kernel, K)."""

    matrix: str
    ru: RU
    kernel: str
    k: int
    gpu_kernel: float
    spade_base: float
    spade_opt: float
    spade2_base: float
    opt_settings: KernelSettings


def _spade_time(env: BenchEnvironment, factor: int, a, kernel: str, k: int,
                settings: Optional[KernelSettings] = None) -> float:
    system = env.spade_system(factor)
    settings = settings or env.base_settings()
    b = dense_input(a.num_cols, k)
    if kernel == "spmm":
        return system.spmm(a, b, settings).time_ns
    b_r = dense_input(a.num_rows, k, seed=5)
    return system.sddmm(a, b_r, b, settings).time_ns


def _cell(env: BenchEnvironment, point) -> Fig09Row:
    """One (matrix, kernel, K) grid cell — pure and picklable, the unit
    the sweep orchestrator fans out."""
    name, kernel, k = point
    bench = get_benchmark(name)
    cpu = env.cpu_model()
    gpu = env.gpu_model()
    a = suite_matrix(name, env.scale)
    cpu_ns = (
        cpu.spmm(a, k).time_ns
        if kernel == "spmm"
        else cpu.sddmm(a, k).time_ns
    )
    gpu_res = gpu.spmm(a, k) if kernel == "spmm" else gpu.sddmm(a, k)
    # Out-of-memory rule: "for matrices that do not fit in
    # the GPU memory we assume a GPU speedup of 1".
    gpu_speedup = (
        cpu_ns / gpu_res.kernel_ns if gpu_res.fits_in_memory else 1.0
    )
    base_ns = _spade_time(env, 1, a, kernel, k)
    tune = autotune(
        env.spade_system(1), a, kernel, k,
        quick=(env.opt_mode == "quick"),
        row_panel_divisor=env.row_panel_divisor,
    )
    opt_ns = min(tune.best_time_ns, base_ns)
    spade2_ns = _spade_time(env, 2, a, kernel, k)
    return Fig09Row(
        matrix=name,
        ru=bench.ru,
        kernel=kernel,
        k=k,
        gpu_kernel=gpu_speedup,
        spade_base=cpu_ns / base_ns,
        spade_opt=cpu_ns / opt_ns,
        spade2_base=cpu_ns / spade2_ns,
        opt_settings=tune.best_settings,
    )


def run(
    env: BenchEnvironment | None = None,
    kernels=KERNELS,
    k_values=K_VALUES,
    matrices: Optional[List[str]] = None,
    sweep=None,
) -> List[Fig09Row]:
    env = env or get_environment()
    points = [
        (bench.name, kernel, k)
        for bench in suite_benchmarks()
        if not matrices or bench.name in matrices
        for kernel in kernels
        for k in k_values
    ]
    return sweep_map(sweep, "fig09", env, _cell, points)


def summary(rows: List[Fig09Row]) -> Dict[str, float]:
    out = {
        "spade_base_vs_cpu": geomean(r.spade_base for r in rows),
        "spade_opt_vs_cpu": geomean(r.spade_opt for r in rows),
        "spade2_base_vs_cpu": geomean(r.spade2_base for r in rows),
        "gpu_vs_cpu": geomean(r.gpu_kernel for r in rows),
    }
    out["spade_base_vs_gpu"] = out["spade_base_vs_cpu"] / out["gpu_vs_cpu"]
    out["spade_opt_vs_gpu"] = out["spade_opt_vs_cpu"] / out["gpu_vs_cpu"]
    out["spade2_base_vs_gpu"] = out["spade2_base_vs_cpu"] / out["gpu_vs_cpu"]
    return out


def format_result(rows: List[Fig09Row]) -> str:
    table = format_table(
        ["matrix", "RU", "kernel", "K", "GPU", "Base", "Opt", "SPADE2",
         "opt settings"],
        [
            (
                r.matrix, r.ru.value, r.kernel, r.k,
                r.gpu_kernel, r.spade_base, r.spade_opt, r.spade2_base,
                r.opt_settings.describe(),
            )
            for r in rows
        ],
        title="Figure 9: speedup over CPU",
    )
    s = summary(rows)
    return table + (
        f"\n\ngeomean vs CPU: Base {s['spade_base_vs_cpu']:.2f}x "
        f"(paper 1.67), Opt {s['spade_opt_vs_cpu']:.2f}x (paper 2.32), "
        f"SPADE2 {s['spade2_base_vs_cpu']:.2f}x (paper 3.52)\n"
        f"geomean vs GPU: Base {s['spade_base_vs_gpu']:.2f}x (paper 1.03), "
        f"Opt {s['spade_opt_vs_gpu']:.2f}x (paper 1.34), "
        f"SPADE2 {s['spade2_base_vs_gpu']:.2f}x (paper 2.00)"
    )


if __name__ == "__main__":
    print(format_result(run()))
