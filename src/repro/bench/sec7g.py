"""Section 7.G: area and power of the SPADE add-on.

Augmenting the dual-socket Ice Lake with 224 SPADE PEs, their L1s,
BBFs, and victim caches costs, per the paper's CACTI-based estimation
flow at 10 nm: 20.3 W and 24.64 mm^2 — 4.3% of the host's 470 W TDP and
2.5% of its ~1000 mm^2 combined die area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import paper_config
from repro.power.report import SpadeAreaPower, spade_area_power
from repro.sweep import sweep_map

PAPER_AREA_MM2 = 24.64
PAPER_POWER_W = 20.3
PAPER_POWER_FRACTION = 0.043
PAPER_AREA_FRACTION = 0.025


@dataclass(frozen=True)
class Sec7gResult:
    """Modelled versus paper Section 7.G numbers."""

    modelled: SpadeAreaPower

    @property
    def area_error(self) -> float:
        return abs(self.modelled.area_mm2 - PAPER_AREA_MM2) / PAPER_AREA_MM2

    @property
    def power_error(self) -> float:
        return abs(self.modelled.power_w - PAPER_POWER_W) / PAPER_POWER_W


def _cell(env, point) -> Sec7gResult:
    """The single Section 7.G cell — environment-free (area/power depend
    only on the paper configuration), pure and picklable."""
    return Sec7gResult(modelled=spade_area_power(paper_config()))


def run(sweep=None) -> Sec7gResult:
    """Evaluate the model at the paper's full 224-PE configuration
    (area/power do not depend on the benchmark scale)."""
    return sweep_map(sweep, "sec7g", None, _cell, [()])[0]


def format_result(result: Sec7gResult) -> str:
    m = result.modelled
    return (
        "Section 7.G: SPADE add-on cost at 10 nm (224 PEs)\n"
        f"area : {m.area_mm2:6.2f} mm^2 (paper {PAPER_AREA_MM2}; "
        f"error {result.area_error:.1%})\n"
        f"power: {m.power_w:6.2f} W    (paper {PAPER_POWER_W}; "
        f"error {result.power_error:.1%})\n"
        f"power fraction of host TDP : {m.power_fraction_of_host:.1%} "
        f"(paper {PAPER_POWER_FRACTION:.1%})\n"
        f"area fraction of host die  : {m.area_fraction_of_host:.1%} "
        f"(paper {PAPER_AREA_FRACTION:.1%})"
    )


if __name__ == "__main__":
    print(format_result(run()))
