"""Ablation studies of SPADE design choices.

The paper fixes several microarchitectural choices with one-line
justifications; these ablations exercise each one over the benchmark
suite so the trade-off is visible in the model:

- **Write-back Manager thresholds** (Section 5.1, step 9): eager
  (write back every dirty VR immediately), lazy (only when the VRF is
  full of dirty VRs), and the paper's 25%/15% hysteresis.
- **VRF size** (Table 1: 64 physical vector registers).
- **Victim cache size** (Table 1: 16 KB): how the rMatrix-bypass
  trade-off of Table 6 moves with capacity.
- **Barrier epoch granularity** (Figure 5b pairs column panels; the
  scheduler's ``barrier_group_cols``).

Each ablation returns per-setting geomean metrics over a matrix list.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import (
    BenchEnvironment,
    dense_input,
    format_table,
    geomean,
    get_environment,
    suite_matrix,
)
from repro.config import CacheConfig
from repro.core.accelerator import KernelSettings, SpadeSystem
from repro.sweep import sweep_map

K = 32
DEFAULT_MATRICES = ("ASI", "ORK", "KRO", "DEL", "SER")


@dataclass(frozen=True)
class AblationPoint:
    """Geomean metrics of one ablation setting."""

    label: str
    time: float
    dram_accesses: float
    stores: float

    def normalised(self, baseline: "AblationPoint") -> "AblationPoint":
        return AblationPoint(
            label=self.label,
            time=self.time / baseline.time,
            dram_accesses=self.dram_accesses / baseline.dram_accesses,
            stores=self.stores / max(baseline.stores, 1e-12),
        )


def _sweep(
    env: BenchEnvironment,
    matrices: Sequence[str],
    label: str,
    system: SpadeSystem,
    settings: Optional[KernelSettings] = None,
) -> AblationPoint:
    times, drams, stores = [], [], []
    for name in matrices:
        a = suite_matrix(name, env.scale)
        b = dense_input(a.num_cols, K)
        rep = system.spmm(a, b, settings or env.base_settings())
        times.append(rep.time_ns)
        drams.append(rep.dram_accesses)
        stores.append(max(1, sum(rep.counters.stores_by_level)))
    return AblationPoint(
        label=label,
        time=geomean(times),
        dram_accesses=geomean(drams),
        stores=geomean(stores),
    )


def _writeback_cell(env: BenchEnvironment, point) -> AblationPoint:
    """One Write-back Manager threshold variant — pure and picklable
    for the sweep orchestrator."""
    label, high, low, matrices = point
    cfg = env.spade_config()
    cfg = replace(
        cfg,
        pe=replace(
            cfg.pe,
            writeback_high_threshold=high,
            writeback_low_threshold=low,
        ),
    )
    return _sweep(env, matrices, label, SpadeSystem(cfg))


def writeback_thresholds(
    env: BenchEnvironment | None = None,
    matrices: Sequence[str] = DEFAULT_MATRICES,
    sweep=None,
) -> List[AblationPoint]:
    """Eager vs paper-hysteresis vs lazy Write-back Manager."""
    env = env or get_environment()
    variants = [
        ("eager (0%/0%)", 0.0, 0.0),
        ("paper (25%/15%)", 0.25, 0.15),
        ("lazy (95%/90%)", 0.95, 0.90),
    ]
    grid = [
        (label, high, low, tuple(matrices))
        for label, high, low in variants
    ]
    points = sweep_map(
        sweep, "ablation_writeback", env, _writeback_cell, grid
    )
    base = points[1]
    return [p.normalised(base) for p in points]


def _vrf_cell(env: BenchEnvironment, point) -> AblationPoint:
    """One VRF-capacity variant — pure and picklable for the sweep
    orchestrator."""
    size, matrices = point
    cfg = env.spade_config()
    cfg = replace(cfg, pe=replace(cfg.pe, num_vector_registers=size))
    return _sweep(env, matrices, f"{size} VRs", SpadeSystem(cfg))


def vrf_sizes(
    env: BenchEnvironment | None = None,
    matrices: Sequence[str] = DEFAULT_MATRICES,
    sizes: Sequence[int] = (16, 32, 64, 128),
    sweep=None,
) -> List[AblationPoint]:
    """Vector-register-file capacity sweep around Table 1's 64."""
    env = env or get_environment()
    grid = [(size, tuple(matrices)) for size in sizes]
    points = sweep_map(sweep, "ablation_vrf", env, _vrf_cell, grid)
    base = next(p for p, s in zip(points, sizes) if s == 64)
    return [p.normalised(base) for p in points]


def _victim_cell(env: BenchEnvironment, point) -> AblationPoint:
    """One victim-cache-capacity variant — pure and picklable for the
    sweep orchestrator."""
    size_kb, matrices = point
    settings = env.base_settings(rmatrix_bypass=True)
    cfg = env.spade_config()
    cfg = replace(
        cfg,
        pe=replace(
            cfg.pe,
            victim_cache=CacheConfig(
                size_bytes=size_kb * 1024, associativity=2
            ),
        ),
    )
    return _sweep(
        env, matrices, f"{size_kb}KB victim", SpadeSystem(cfg), settings
    )


def victim_cache_sizes(
    env: BenchEnvironment | None = None,
    matrices: Sequence[str] = DEFAULT_MATRICES,
    sizes_kb: Sequence[int] = (1, 2, 8, 32),
    sweep=None,
) -> List[AblationPoint]:
    """Victim-cache capacity under rMatrix bypassing (Section 5.2)."""
    env = env or get_environment()
    grid = [(size_kb, tuple(matrices)) for size_kb in sizes_kb]
    points = sweep_map(sweep, "ablation_victim", env, _victim_cell, grid)
    return [p.normalised(points[-1]) for p in points]


def _barrier_cell(env: BenchEnvironment, point) -> AblationPoint:
    """One barrier-epoch-granularity variant — pure and picklable for
    the sweep orchestrator."""
    group, matrices = point
    first = suite_matrix(matrices[0], env.scale)
    medium_cp = max(64, first.num_cols // 8)
    settings = env.base_settings(
        col_panel_size=medium_cp,
        use_barriers=True,
        barrier_group_cols=group,
    )
    return _sweep(
        env, matrices, f"{group} col panel(s)/epoch",
        env.spade_system(), settings,
    )


def barrier_granularity(
    env: BenchEnvironment | None = None,
    matrices: Sequence[str] = ("ORK", "KRO", "LIV"),
    group_sizes: Sequence[int] = (1, 2, 4),
    sweep=None,
) -> List[AblationPoint]:
    """Columns-per-barrier-epoch sweep on the reuse-heavy matrices."""
    env = env or get_environment()
    grid = [(group, tuple(matrices)) for group in group_sizes]
    points = sweep_map(
        sweep, "ablation_barrier", env, _barrier_cell, grid
    )
    return [p.normalised(points[0]) for p in points]


def format_points(title: str, points: List[AblationPoint]) -> str:
    return format_table(
        ["setting", "time", "DRAM accesses", "stores"],
        [(p.label, p.time, p.dram_accesses, p.stores) for p in points],
        title=title,
    )


if __name__ == "__main__":
    env = get_environment()
    print(format_points(
        "Ablation: Write-back Manager thresholds (norm. to paper)",
        writeback_thresholds(env),
    ))
    print()
    print(format_points(
        "Ablation: VRF size (norm. to 64 VRs)", vrf_sizes(env)
    ))
    print()
    print(format_points(
        "Ablation: victim cache size under rMatrix bypass "
        "(norm. to 32KB)",
        victim_cache_sizes(env),
    ))
    print()
    print(format_points(
        "Ablation: barrier epoch granularity (norm. to 1 panel/epoch)",
        barrier_granularity(env),
    ))
