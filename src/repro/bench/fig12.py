"""Figure 12: strong-scaling analysis of SPADE.

SPADE2/4/8 Base scale the PE count, DRAM bandwidth, LLC size, and link
latency by 2x/4x/8x over the baseline system and run the same matrices
(SpMM, K=32).  Expected shape: near-linear scaling for most matrices,
occasional superlinear points from the growing LLC, and poor scaling
for MYC and KRO whose small row counts starve the row-panel scheduler
(load imbalance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import (
    BenchEnvironment,
    dense_input,
    format_table,
    get_environment,
    suite_benchmarks,
    suite_matrix,
)
from repro.sweep import sweep_map

SCALE_FACTORS = (2, 4, 8)
K = 32


@dataclass(frozen=True)
class Fig12Row:
    """Speedups of scaled systems over SPADE1 Base for one matrix."""

    matrix: str
    base_ns: float
    speedups: Dict[int, float]
    load_imbalance: Dict[int, float]


def _cell(env: BenchEnvironment, point) -> Fig12Row:
    """One matrix's full scaling ladder — pure and picklable for the
    sweep orchestrator.  The factors stay inside the cell because every
    speedup is relative to the same base run."""
    name, factors = point
    settings = env.base_settings()
    a = suite_matrix(name, env.scale)
    b = dense_input(a.num_cols, K)
    base_rep = env.spade_system(1).spmm(a, b, settings)
    speedups: Dict[int, float] = {}
    imbalance: Dict[int, float] = {}
    for factor in factors:
        rep = env.spade_system(factor).spmm(a, b, settings)
        speedups[factor] = base_rep.time_ns / rep.time_ns
        imbalance[factor] = rep.load_imbalance
    return Fig12Row(
        matrix=name,
        base_ns=base_rep.time_ns,
        speedups=speedups,
        load_imbalance=imbalance,
    )


def run(
    env: BenchEnvironment | None = None,
    matrices: Optional[Sequence[str]] = None,
    factors: Sequence[int] = SCALE_FACTORS,
    sweep=None,
) -> List[Fig12Row]:
    env = env or get_environment()
    points = [
        (bench.name, tuple(factors))
        for bench in suite_benchmarks()
        if not matrices or bench.name in matrices
    ]
    return sweep_map(sweep, "fig12", env, _cell, points)


def scaling_efficiency(row: Fig12Row, factor: int) -> float:
    """Achieved fraction of linear scaling at one factor."""
    return row.speedups[factor] / factor


def format_result(rows: List[Fig12Row]) -> str:
    factors = sorted(rows[0].speedups) if rows else []
    return format_table(
        ["matrix"]
        + [f"SPADE{f} speedup" for f in factors]
        + [f"SPADE{f} efficiency" for f in factors],
        [
            [r.matrix]
            + [r.speedups[f] for f in factors]
            + [f"{scaling_efficiency(r, f):.0%}" for f in factors]
            for r in rows
        ],
        title="Figure 12: strong scaling over SPADE1 Base (SpMM, K=32)",
    )


if __name__ == "__main__":
    print(format_result(run()))
