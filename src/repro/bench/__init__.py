"""Benchmark harness: one experiment module per table/figure.

Each ``fig*/table*`` module exposes a ``run(...)`` function returning a
structured result plus a ``format_result`` helper that prints the same
rows/series the paper reports.  The ``benchmarks/`` pytest-benchmark
files are thin wrappers over these, so experiments can also be driven
directly::

    python -m repro.bench.fig09          # speedups over CPU (Figure 9)
"""

from repro.bench.harness import (
    BenchEnvironment,
    format_table,
    geomean,
    get_environment,
)

__all__ = [
    "BenchEnvironment",
    "get_environment",
    "format_table",
    "geomean",
]
