"""Shared benchmark infrastructure: environment, workload cache, tables.

The environment is controlled by environment variables so the same
bench files can run quick (CI) or thorough (full reproduction):

- ``REPRO_SCALE``  — suite matrix scale: tiny | small | default | large
  (default: small)
- ``REPRO_PES``    — PEs in the simulated SPADE1 system (default: 8)
- ``REPRO_OPT``    — SPADE Opt search: quick | full (default: quick)
- ``REPRO_CACHE_SHRINK`` — extra cache-capacity shrink so scaled-down
  matrices stress the hierarchy like the paper's full-size ones
  (default: 32; see :func:`repro.config.scaled_config`)
- ``REPRO_RP_DIVISOR`` — divide the paper's Table 3 row-panel sizes by
  this factor so that panels-per-PE matches the paper on scaled-down
  matrices (default: 8)
- ``REPRO_TIMEOUT_S`` — wall-clock watchdog per supervised attempt, in
  seconds (default: off)
- ``REPRO_MAX_RETRIES`` — transient-failure retries per supervised
  attempt (default: 0)
- ``REPRO_JOBS``   — worker processes for experiment grids (default: 1,
  serial; parallel output is byte-identical to serial)
- ``REPRO_CACHE_DIR`` — content-addressed sweep result cache directory
  so re-runs and partially-failed sweeps skip completed jobs
  (default: off)
- ``REPRO_TRACE_CACHE_DIR`` — content-addressed epoch-trace store
  directory (:mod:`repro.memory.trace_store`): generated traces are
  keyed by (workload, schedule/chunking, VRF elision config) only, so
  every cache-ablation cell and repeat run replays a cached trace
  instead of regenerating it (default: off)
- ``REPRO_MAX_ATTEMPTS`` — lease attempts per sweep job before it is
  quarantined as poison (default: 3)
- ``REPRO_KEEP_GOING`` — set to 1 to let a sweep complete around
  quarantined/failed jobs instead of raising (default: off)
- ``REPRO_LEASE_DIR`` — explicit lease/quarantine directory; defaults
  to ``<cache dir>/.leases`` when a result cache is configured
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.cpu import CPUModel
from repro.baselines.gpu import GPUModel
from repro.baselines.sextans import SextansModel
from repro.config import (
    ResilienceConfig,
    SpadeConfig,
    paper_config,
    scaled_config,
)
from repro.core.accelerator import KernelSettings, SpadeSystem
from repro.sparse.coo import COOMatrix
from repro.sparse.suite import SUITE, Benchmark, get_benchmark

PAPER_PES = 224
"""PE count of the paper's SPADE1 system."""


@dataclass(frozen=True)
class BenchEnvironment:
    """Resolved benchmark environment."""

    scale: str
    num_pes: int
    opt_mode: str
    cache_shrink: float = 32.0
    row_panel_divisor: int = 8
    timeout_s: Optional[float] = None
    max_retries: int = 0
    jobs: int = 1
    cache_dir: Optional[str] = None
    trace_cache_dir: Optional[str] = None
    max_attempts: int = 3
    keep_going: bool = False
    lease_dir: Optional[str] = None

    @property
    def ratio(self) -> float:
        """System scale ratio versus the paper's 224-PE machine."""
        return self.num_pes / PAPER_PES

    def resilience_config(self, **overrides) -> ResilienceConfig:
        """Resilience policy from the environment's watchdog/retry
        knobs; keyword overrides win."""
        overrides.setdefault("timeout_s", self.timeout_s)
        overrides.setdefault("max_retries", self.max_retries)
        return ResilienceConfig(**overrides)

    def spade_config(self, factor: int = 1) -> SpadeConfig:
        """SPADE{factor} Base system at this environment's scale."""
        cfg = scaled_config(
            self.num_pes,
            name=f"SPADE{factor}-bench",
            cache_shrink=self.cache_shrink,
        )
        cfg = dataclasses.replace(cfg, resilience=self.resilience_config())
        return cfg.scaled(factor) if factor > 1 else cfg

    def trace_store(self):
        """The environment's content-addressed epoch-trace store, or
        ``None`` when ``REPRO_TRACE_CACHE_DIR`` is unset."""
        from repro.memory.trace_store import open_trace_store

        return open_trace_store(self.trace_cache_dir)

    def spade_system(self, factor: int = 1) -> SpadeSystem:
        return SpadeSystem(
            self.spade_config(factor), trace_store=self.trace_store()
        )

    def supervisor(self, telemetry=None, chaos=None):
        """A :class:`~repro.resilience.RunSupervisor` with this
        environment's watchdog/retry policy."""
        from repro.resilience import RunSupervisor

        return RunSupervisor(
            resilience=self.resilience_config(),
            telemetry=telemetry,
            chaos=chaos,
            trace_store=self.trace_store(),
        )

    def supervised_run(
        self, kernel: str, a, b, c=None, factor: int = 1, settings=None
    ):
        """Run one kernel under supervision (watchdog + retry +
        degradation) at this environment's scale."""
        return self.supervisor().run_kernel(
            self.spade_config(factor), kernel, a, b, c, settings=settings
        )

    def sweep(self, telemetry=None):
        """A :class:`~repro.sweep.SweepRunner` for this environment's
        ``jobs``/``cache_dir`` knobs, or ``None`` when both are at their
        defaults (drivers then run their plain serial loops)."""
        if self.jobs <= 1 and not self.cache_dir:
            return None
        from repro.sweep import SweepRunner, open_cache

        return SweepRunner(
            jobs=self.jobs,
            cache=open_cache(self.cache_dir),
            telemetry=telemetry,
            resilience=self.resilience_config(),
            max_attempts=self.max_attempts,
            keep_going=self.keep_going,
            lease_dir=self.lease_dir,
        )

    def base_settings(self, **overrides) -> KernelSettings:
        """SPADE Base settings mapped onto this environment's scale:
        the paper's RP=256 divided by the row-panel scale factor."""
        overrides.setdefault(
            "row_panel_size", max(2, 256 // self.row_panel_divisor)
        )
        return KernelSettings(**overrides)

    def cpu_model(self) -> CPUModel:
        return CPUModel(self.spade_config().host)

    def gpu_model(self) -> GPUModel:
        return GPUModel(scale_ratio=self.ratio, cache_shrink=self.cache_shrink)

    def sextans_model(self) -> SextansModel:
        cfg = self.spade_config()
        return SextansModel(
            dram_peak_gbps=cfg.memory.dram_peak_gbps,
            scale_ratio=self.ratio,
            cache_shrink=self.cache_shrink,
        )


def get_environment() -> BenchEnvironment:
    """Read the benchmark environment from process env vars."""
    scale = os.environ.get("REPRO_SCALE", "small")
    num_pes = int(os.environ.get("REPRO_PES", "8"))
    opt_mode = os.environ.get("REPRO_OPT", "quick")
    cache_shrink = float(os.environ.get("REPRO_CACHE_SHRINK", "32"))
    rp_divisor = int(os.environ.get("REPRO_RP_DIVISOR", "8"))
    timeout_env = os.environ.get("REPRO_TIMEOUT_S")
    timeout_s = float(timeout_env) if timeout_env else None
    max_retries = int(os.environ.get("REPRO_MAX_RETRIES", "0"))
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    trace_cache_dir = os.environ.get("REPRO_TRACE_CACHE_DIR") or None
    max_attempts = int(os.environ.get("REPRO_MAX_ATTEMPTS", "3"))
    keep_going = os.environ.get("REPRO_KEEP_GOING", "") not in ("", "0")
    lease_dir = os.environ.get("REPRO_LEASE_DIR") or None
    if opt_mode not in ("quick", "full"):
        raise ValueError("REPRO_OPT must be 'quick' or 'full'")
    return BenchEnvironment(
        scale=scale, num_pes=num_pes, opt_mode=opt_mode,
        cache_shrink=cache_shrink, row_panel_divisor=rp_divisor,
        timeout_s=timeout_s, max_retries=max_retries,
        jobs=jobs, cache_dir=cache_dir, trace_cache_dir=trace_cache_dir,
        max_attempts=max_attempts, keep_going=keep_going,
        lease_dir=lease_dir,
    )


# -- workload construction (cached: matrices are deterministic) -----------

@lru_cache(maxsize=64)
def suite_matrix(name: str, scale: str) -> COOMatrix:
    """One suite matrix, memoised across experiments."""
    return get_benchmark(name).build(scale)


def suite_benchmarks() -> List[Benchmark]:
    return list(SUITE)


@lru_cache(maxsize=256)
def dense_input(num_rows: int, k: int, seed: int = 42) -> np.ndarray:
    """Deterministic dense operand (shared across experiments)."""
    rng = np.random.default_rng(seed + 13 * k + num_rows)
    return rng.random((num_rows, k), dtype=np.float32)


# -- numerics ----------------------------------------------------------------

def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


# -- result persistence -------------------------------------------------------

def write_bench_json(
    path,
    payload: dict,
    *,
    config=None,
    workload: Optional[dict] = None,
    extra: Optional[dict] = None,
    ledger=None,
) -> dict:
    """Stamp ``payload`` with a provenance manifest and write it as JSON.

    Every benchmark result that lands on disk goes through here so the
    ``BENCH_*.json`` trajectory stays comparable across PRs: the
    manifest records schema version, config fingerprint, git SHA, host,
    and the process's peak RSS; pass ``ledger`` to cross-link the run's
    flight-recorder file (path, run id, event count, content digest).
    The measured numbers in ``payload`` pass through unchanged.
    Returns the stamped payload.
    """
    from repro.obs.ledger import peak_rss_bytes
    from repro.telemetry.provenance import stamp

    extra = dict(extra) if extra else {}
    rss = peak_rss_bytes()
    if rss is not None and "peak_rss_bytes" not in extra:
        extra["peak_rss_bytes"] = rss
    stamped = stamp(
        payload, config=config, workload=workload,
        extra=extra or None, ledger=ledger,
    )
    Path(path).write_text(json.dumps(stamped, indent=2) + "\n")
    return stamped


# -- reporting ----------------------------------------------------------------

def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Simple aligned ASCII table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3g}" if abs(cell) < 1000 else f"{cell:.4g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
