"""Figure 14: power breakdown of SPADE-mode execution (SpMM, K=32).

The server disables the Xeon cores and L1s; the SPADE PEs use the
memory subsystem.  The paper's breakdown: PEs with their L1s, BBFs, and
victim caches consume only ~14% of total power on average (even charged
at maximum dynamic power), the shared caches are cheap because the
sparse stream (and sometimes the rMatrix) bypasses them, and DRAM
accounts for more than 50%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import (
    BenchEnvironment,
    dense_input,
    format_table,
    get_environment,
    suite_benchmarks,
    suite_matrix,
)
from repro.power.report import PowerBreakdown, power_breakdown
from repro.sweep import sweep_map

K = 32


@dataclass(frozen=True)
class Fig14Row:
    """One matrix's power breakdown fractions."""

    matrix: str
    breakdown: PowerBreakdown

    @property
    def fractions(self) -> Dict[str, float]:
        return self.breakdown.fractions()


def _cell(env: BenchEnvironment, point) -> Fig14Row:
    """One matrix's power breakdown — pure and picklable for the sweep
    orchestrator."""
    (name,) = point
    a = suite_matrix(name, env.scale)
    system = env.spade_system()
    b = dense_input(a.num_cols, K)
    rep = system.spmm(a, b, env.base_settings())
    return Fig14Row(
        matrix=name,
        breakdown=power_breakdown(rep.stats, rep.time_ns, system.config),
    )


def run(
    env: BenchEnvironment | None = None,
    matrices: Optional[Sequence[str]] = None,
    sweep=None,
) -> List[Fig14Row]:
    env = env or get_environment()
    points = [
        (bench.name,)
        for bench in suite_benchmarks()
        if not matrices or bench.name in matrices
    ]
    return sweep_map(sweep, "fig14", env, _cell, points)


def mean_fraction(rows: List[Fig14Row], component: str) -> float:
    return sum(r.fractions[component] for r in rows) / len(rows)


def format_result(rows: List[Fig14Row]) -> str:
    table = format_table(
        ["matrix", "PEs+L1+BBF+VC", "L2", "LLC", "DRAM", "total (W)"],
        [
            (
                r.matrix,
                f"{r.fractions['pe']:.1%}",
                f"{r.fractions['l2']:.1%}",
                f"{r.fractions['llc']:.1%}",
                f"{r.fractions['dram']:.1%}",
                r.breakdown.total_w,
            )
            for r in rows
        ],
        title="Figure 14: SPADE-mode power breakdown (SpMM, K=32)",
    )
    return table + (
        f"\n\nmean PE fraction: {mean_fraction(rows, 'pe'):.1%} "
        f"(paper ~14%); mean DRAM fraction: "
        f"{mean_fraction(rows, 'dram'):.1%} (paper >50%)"
    )


if __name__ == "__main__":
    print(format_result(run()))
