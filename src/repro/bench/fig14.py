"""Figure 14: power breakdown of SPADE-mode execution (SpMM, K=32).

The server disables the Xeon cores and L1s; the SPADE PEs use the
memory subsystem.  The paper's breakdown: PEs with their L1s, BBFs, and
victim caches consume only ~14% of total power on average (even charged
at maximum dynamic power), the shared caches are cheap because the
sparse stream (and sometimes the rMatrix) bypasses them, and DRAM
accounts for more than 50%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import (
    BenchEnvironment,
    dense_input,
    format_table,
    get_environment,
    suite_benchmarks,
    suite_matrix,
)
from repro.power.report import PowerBreakdown, power_breakdown

K = 32


@dataclass(frozen=True)
class Fig14Row:
    """One matrix's power breakdown fractions."""

    matrix: str
    breakdown: PowerBreakdown

    @property
    def fractions(self) -> Dict[str, float]:
        return self.breakdown.fractions()


def run(
    env: BenchEnvironment | None = None,
    matrices: Optional[Sequence[str]] = None,
) -> List[Fig14Row]:
    env = env or get_environment()
    rows: List[Fig14Row] = []
    for bench in suite_benchmarks():
        if matrices and bench.name not in matrices:
            continue
        a = suite_matrix(bench.name, env.scale)
        system = env.spade_system()
        b = dense_input(a.num_cols, K)
        rep = system.spmm(a, b, env.base_settings())
        rows.append(
            Fig14Row(
                matrix=bench.name,
                breakdown=power_breakdown(
                    rep.stats, rep.time_ns, system.config
                ),
            )
        )
    return rows


def mean_fraction(rows: List[Fig14Row], component: str) -> float:
    return sum(r.fractions[component] for r in rows) / len(rows)


def format_result(rows: List[Fig14Row]) -> str:
    table = format_table(
        ["matrix", "PEs+L1+BBF+VC", "L2", "LLC", "DRAM", "total (W)"],
        [
            (
                r.matrix,
                f"{r.fractions['pe']:.1%}",
                f"{r.fractions['l2']:.1%}",
                f"{r.fractions['llc']:.1%}",
                f"{r.fractions['dram']:.1%}",
                r.breakdown.total_w,
            )
            for r in rows
        ],
        title="Figure 14: SPADE-mode power breakdown (SpMM, K=32)",
    )
    return table + (
        f"\n\nmean PE fraction: {mean_fraction(rows, 'pe'):.1%} "
        f"(paper ~14%); mean DRAM fraction: "
        f"{mean_fraction(rows, 'dram'):.1%} (paper >50%)"
    )


if __name__ == "__main__":
    print(format_result(run()))
