"""Assembling a reproduction report from persisted bench results.

The benchmark targets write their formatted tables to
``benchmarks/results/``; this module stitches them into one document
(the raw appendix behind EXPERIMENTS.md) and extracts the headline
numbers programmatically so regression checks can compare runs.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional

EXPERIMENT_ORDER = (
    "fig02", "fig09", "fig10", "fig11", "table5", "table6",
    "fig12", "fig13", "fig14", "sec7d", "sec7g",
    "ablation_writeback", "ablation_vrf", "ablation_victim",
    "ablation_barriers",
)

_HEADLINE_PATTERNS = {
    "fig09_base_vs_cpu": r"Base ([\d.]+)x \(paper 1\.67\)",
    "fig09_opt_vs_cpu": r"Opt ([\d.]+)x \(paper 2\.32\)",
    "fig09_spade2_vs_cpu": r"SPADE2 ([\d.]+)x \(paper 3\.52\)",
    "fig02_transfer_fraction": r"mean transfer fraction: ([\d.]+)%",
    "fig13_speedup": r"speedup: ([\d.]+)x mean",
    "fig14_dram_fraction": r"mean DRAM fraction: ([\d.]+)",
    "sec7g_area_mm2": r"area :\s+([\d.]+) mm\^2",
    "sec7g_power_w": r"power:\s+([\d.]+) W",
}


def available_results(results_dir: Path) -> List[str]:
    """Experiment names with persisted results, in canonical order."""
    present = {p.stem for p in results_dir.glob("*.txt")}
    ordered = [name for name in EXPERIMENT_ORDER if name in present]
    ordered.extend(sorted(present - set(EXPERIMENT_ORDER)))
    return ordered


def assemble_report(results_dir: Path) -> str:
    """Concatenate all persisted experiment tables into one document."""
    sections = []
    for name in available_results(results_dir):
        body = (results_dir / f"{name}.txt").read_text().rstrip()
        sections.append(f"## {name}\n\n{body}")
    if not sections:
        return "(no persisted results; run pytest benchmarks/ first)"
    return "# SPADE reproduction — raw experiment results\n\n" + (
        "\n\n".join(sections) + "\n"
    )


def extract_headlines(results_dir: Path) -> Dict[str, float]:
    """Pull the headline scalar of each experiment out of its table."""
    headlines: Dict[str, float] = {}
    blob = "\n".join(
        (results_dir / f"{name}.txt").read_text()
        for name in available_results(results_dir)
    )
    for key, pattern in _HEADLINE_PATTERNS.items():
        match = re.search(pattern, blob)
        if match:
            headlines[key] = float(match.group(1))
    return headlines


def check_against_paper(
    headlines: Dict[str, float], tolerance: float = 0.5
) -> List[str]:
    """Compare extracted headlines against the paper's values.

    Returns human-readable deviation notes for anything outside
    ``tolerance`` (relative).  An empty list means every available
    headline is within tolerance.
    """
    paper = {
        "fig09_base_vs_cpu": 1.67,
        "fig09_opt_vs_cpu": 2.32,
        "fig09_spade2_vs_cpu": 3.52,
        "fig13_speedup": 2.4,
        "sec7g_area_mm2": 24.64,
        "sec7g_power_w": 20.3,
    }
    notes = []
    for key, expected in paper.items():
        if key not in headlines:
            continue
        measured = headlines[key]
        deviation = abs(measured - expected) / expected
        if deviation > tolerance:
            notes.append(
                f"{key}: measured {measured} vs paper {expected} "
                f"({deviation:.0%} off)"
            )
    return notes


def write_report(
    results_dir: Path, target: Optional[Path] = None
) -> Path:
    """Write the assembled report next to the results."""
    target = target or results_dir / "REPORT.md"
    target.write_text(assemble_report(results_dir))
    return target
