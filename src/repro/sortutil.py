"""Shared integer sorting primitives.

NumPy's ``kind="stable"`` argsort is a radix sort only for <= 16-bit
integers; wider dtypes take a comparison sort that is ~10x slower on
the key distributions this project sorts (cache-line addresses, trace
positions, tile keys).  :func:`radix_argsort` composes 16-bit stable
passes into a stable argsort for any non-negative integer keys whose
*span* fits 31 bits, which covers every hot sort in the simulator.
"""

from __future__ import annotations

import numpy as np


def radix_argsort(keys: np.ndarray) -> np.ndarray:
    """Stable argsort for non-negative integer keys.

    Keys are rebased to their minimum first (cache lines and trace
    positions carry large region bases but narrow spans), then keys
    under 2**16 sort in one 16-bit pass, keys under 2**31 in two (low
    then high half, composed stably); anything wider falls back to
    NumPy's comparison sort.
    """
    n = keys.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    lo = int(keys.min())
    m = int(keys.max()) - lo
    if lo != 0:
        keys = keys - lo
    if m < (1 << 16):
        return np.argsort(keys.astype(np.uint16), kind="stable")
    if m < (1 << 31):
        o1 = np.argsort((keys & 0xFFFF).astype(np.uint16), kind="stable")
        hi = (keys[o1] >> 16).astype(np.uint16)
        return o1[np.argsort(hi, kind="stable")]
    return np.argsort(keys, kind="stable")
