"""repro.sweep: process-parallel sweep orchestration with result caching.

The paper's evaluation is a pile of (workload x configuration) grids —
14 figure/table drivers, each a nest of serial ``for`` loops.  This
package turns any such grid into hashable jobs and fans them out:

- :mod:`repro.jobmodel` (re-exported here and via the
  :mod:`~repro.sweep.jobs` shim) — grid expansion (:func:`expand_grid`)
  and content-addressed job keys (:class:`JobSpec`) built from the PR 2
  provenance fingerprints plus a sweep schema version, plus the
  :class:`JobResult` envelope the simulation service serves;
- :mod:`~repro.sweep.cache` — :class:`ResultCache`, a durable
  content-addressed store so re-runs and partially-failed sweeps skip
  completed jobs;
- :mod:`~repro.sweep.runner` — :class:`SweepRunner`, a supervised
  worker-pool fan-out with deterministic per-job seeds and
  **grid-order merge**, so parallel output is byte-identical to serial
  (pinned by tests/test_sweep_parity.py); dead workers are detected via
  process sentinels and their in-flight jobs requeued;
- :mod:`~repro.sweep.lease` — :class:`LeaseManager`, per-job-key claim
  files with heartbeats, stale reclamation, attempt accounting, and
  poison-job quarantine, coordinating concurrent shard runners over one
  shared cache directory (``repro sweep --shard i/N``).

Every ``repro.bench`` driver accepts ``sweep=SweepRunner(...)``; the
CLI exposes it as ``--jobs N --cache-dir PATH`` on ``run`` / ``suite``
/ ``experiment``.  See DESIGN.md section 9.
"""

from repro.jobmodel import (
    SWEEP_SCHEMA_VERSION,
    JobResult,
    JobSpec,
    build_jobs,
    canonical_blob,
    environment_fingerprint,
    expand_grid,
    value_fingerprint,
)
from repro.sweep.cache import ResultCache, open_cache
from repro.sweep.lease import LeaseManager, LeaseState, open_leases
from repro.sweep.runner import SweepReport, SweepRunner, sweep_map

__all__ = [
    "SWEEP_SCHEMA_VERSION",
    "JobResult",
    "JobSpec",
    "LeaseManager",
    "LeaseState",
    "ResultCache",
    "SweepReport",
    "SweepRunner",
    "build_jobs",
    "canonical_blob",
    "environment_fingerprint",
    "expand_grid",
    "open_cache",
    "open_leases",
    "sweep_map",
    "value_fingerprint",
]
