"""repro.sweep: process-parallel sweep orchestration with result caching.

The paper's evaluation is a pile of (workload x configuration) grids —
14 figure/table drivers, each a nest of serial ``for`` loops.  This
package turns any such grid into hashable jobs and fans them out:

- :mod:`~repro.sweep.jobs` — grid expansion (:func:`expand_grid`) and
  content-addressed job keys (:class:`JobSpec`) built from the PR 2
  provenance fingerprints plus a sweep schema version;
- :mod:`~repro.sweep.cache` — :class:`ResultCache`, a durable
  content-addressed store so re-runs and partially-failed sweeps skip
  completed jobs;
- :mod:`~repro.sweep.runner` — :class:`SweepRunner`, the
  ``multiprocessing`` fan-out with deterministic per-job seeds and
  **grid-order merge**, so parallel output is byte-identical to serial
  (pinned by tests/test_sweep_parity.py).

Every ``repro.bench`` driver accepts ``sweep=SweepRunner(...)``; the
CLI exposes it as ``--jobs N --cache-dir PATH`` on ``run`` / ``suite``
/ ``experiment``.  See DESIGN.md section 9.
"""

from repro.sweep.cache import ResultCache, open_cache
from repro.sweep.jobs import (
    SWEEP_SCHEMA_VERSION,
    JobSpec,
    build_jobs,
    canonical_blob,
    environment_fingerprint,
    expand_grid,
    value_fingerprint,
)
from repro.sweep.runner import SweepReport, SweepRunner, sweep_map

__all__ = [
    "SWEEP_SCHEMA_VERSION",
    "JobSpec",
    "ResultCache",
    "SweepReport",
    "SweepRunner",
    "build_jobs",
    "canonical_blob",
    "environment_fingerprint",
    "expand_grid",
    "open_cache",
    "sweep_map",
    "value_fingerprint",
]
