"""Lease protocol over a shared sweep directory.

The :class:`~repro.sweep.cache.ResultCache` makes *results* safe to
share between concurrent runners — publishes are atomic and idempotent.
What it cannot do is stop two runners from *executing* the same job
twice, and it has no memory of how often a job has been attempted.  The
lease layer adds both, using only the ``O_EXCL``/hard-link primitives
that :mod:`repro.locks` already relies on, so it works on any shared
POSIX or NFS-like filesystem with no server-side coordinator:

- **Claim** — one small JSON *lease file* per job key
  (``<dir>/ab/<key>.lease``), created atomically via the write-temp +
  ``os.link`` mail-lock idiom: exactly one claimant wins, and readers
  never observe a partially written lease.  The payload carries the
  owner id, pid, and a 1-based **attempt count**.
- **Heartbeat** — the holder refreshes the lease's mtime
  (:meth:`LeaseManager.heartbeat`) while the job runs; liveness is the
  file's age, so a SIGKILL'd runner needs no shutdown path at all.
- **Stale reclamation** — a lease older than ``ttl_s`` is presumed
  orphaned.  Reclaiming runners serialise on a short-lived
  :class:`~repro.locks.FileLock` guard, re-verify staleness under the
  guard (the holder may have just heartbeat), then re-create the lease
  with ``attempt + 1`` — the attempt count survives owner death, which
  is what lets a *poison* job (one that kills every worker that touches
  it) be detected across crashes and runners.
- **Quarantine** — a job whose attempts are exhausted is recorded in a
  machine-readable manifest under ``<dir>/quarantine/<key>.json`` and
  its lease dropped; every runner sharing the directory skips the key
  from then on instead of re-walking the crash loop.

The protocol gives *at-most-once execution per attempt*: a key is only
executed by the runner holding its lease, a lease has exactly one
holder, and every handoff (release, reclaim) increments or preserves
the attempt counter monotonically.  See DESIGN.md section 13.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.locks import FileLock, LockTimeout, exclusive_tmp_path

LEASE_FORMAT = "spade-sweep-lease"
QUARANTINE_FORMAT = "spade-sweep-quarantine"
LEASE_SCHEMA_VERSION = 1


def default_owner() -> str:
    """A process-unique owner id: host, pid, and a random nonce (pid
    recycling across container restarts must not alias two owners)."""
    return f"{socket.gethostname()}:{os.getpid()}:{os.urandom(4).hex()}"


@dataclass(frozen=True)
class LeaseState:
    """A point-in-time view of one lease file."""

    key: str
    owner: str
    pid: int
    attempt: int
    age_s: float
    path: str
    valid: bool = True
    """False when the file could not be parsed (foreign garbage); such
    leases are treated as stale regardless of age."""


class LeaseManager:
    """Claim/heartbeat/reclaim/quarantine over one shared directory.

    One manager instance represents one *owner* (a sweep runner
    process).  All methods are crash-safe: no operation leaves a state
    another runner cannot recover from by aging alone.
    """

    def __init__(
        self,
        directory: str,
        owner: Optional[str] = None,
        ttl_s: float = 30.0,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError("lease ttl_s must be positive")
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.owner = owner or default_owner()
        self.ttl_s = float(ttl_s)
        self.claims = 0
        self.reclaims = 0
        self.releases = 0

    # -- addressing ------------------------------------------------------

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.lease")

    def quarantine_path(self, key: str) -> str:
        return os.path.join(self.directory, "quarantine", f"{key}.json")

    # -- reading ---------------------------------------------------------

    def read(self, key: str) -> Optional[LeaseState]:
        """The current lease for ``key``, or ``None`` when unclaimed."""
        path = self.path_for(key)
        try:
            mtime = os.stat(path).st_mtime
            with open(path, "r") as fh:
                raw = fh.read()
        except OSError:
            return None
        age = max(0.0, time.time() - mtime)
        try:
            data = json.loads(raw)
            if data.get("format") != LEASE_FORMAT:
                raise ValueError("foreign lease file")
            return LeaseState(
                key=key,
                owner=str(data["owner"]),
                pid=int(data["pid"]),
                attempt=int(data["attempt"]),
                age_s=age,
                path=path,
            )
        except (ValueError, KeyError, TypeError):
            return LeaseState(
                key=key, owner="", pid=0, attempt=0, age_s=age,
                path=path, valid=False,
            )

    # -- claiming --------------------------------------------------------

    def _try_create(self, path: str, key: str, attempt: int) -> bool:
        """Atomically create the lease file with full content visible.

        ``os.link(tmp, path)`` is the NFS-era mail-lock idiom: it fails
        with ``FileExistsError`` when another claimant won, and — unlike
        open-then-write — a concurrent reader can never observe an
        empty or torn lease.
        """
        payload = json.dumps({
            "format": LEASE_FORMAT,
            "schema_version": LEASE_SCHEMA_VERSION,
            "key": key,
            "owner": self.owner,
            "pid": os.getpid(),
            "attempt": attempt,
            "claimed_at": time.time(),
        })
        tmp = exclusive_tmp_path(path)
        try:
            with open(tmp, "w") as fh:
                fh.write(payload)
            try:
                os.link(tmp, path)
            except FileExistsError:
                return False
            except OSError:
                # Filesystem without hard links: fall back to O_EXCL
                # (readers may transiently see a torn lease, which reads
                # as invalid → stale, and heals via reclamation).
                try:
                    fd = os.open(
                        path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                    )
                except FileExistsError:
                    return False
                with os.fdopen(fd, "w") as fh:
                    fh.write(payload)
            return True
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def try_claim(self, key: str) -> Optional[int]:
        """Attempt to claim ``key``; return the 1-based attempt number
        on success, ``None`` while another live owner holds it.

        Already holding the lease is idempotent (returns the current
        attempt).  A stale or corrupt lease is reclaimed with the
        attempt count bumped, so crash loops are visible to whichever
        runner picks the job up next.
        """
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        if self._try_create(path, key, 1):
            self.claims += 1
            return 1
        state = self.read(key)
        if state is None:
            # Released between our create attempt and read; retry once.
            if self._try_create(path, key, 1):
                self.claims += 1
                return 1
            return None
        if state.valid and state.owner == self.owner:
            return state.attempt
        if state.valid and state.age_s <= self.ttl_s:
            return None  # held by a live foreign owner
        attempt = self._reclaim(path, key)
        if attempt is not None:
            self.claims += 1
            self.reclaims += 1
        return attempt

    def _reclaim(self, path: str, key: str) -> Optional[int]:
        """Break a stale lease and re-claim it with ``attempt + 1``.

        Reclaimers serialise on a guard FileLock so two runners cannot
        both unlink-and-recreate (which could lose an attempt bump);
        staleness is re-verified under the guard because the original
        holder may have heartbeat in the meantime.
        """
        guard = FileLock(
            path + ".break",
            timeout_s=5.0,
            poll_s=0.005,
            stale_s=max(self.ttl_s, 5.0),
        )
        try:
            guard.acquire()
        except LockTimeout:
            return None
        try:
            state = self.read(key)
            if state is None:
                return 1 if self._try_create(path, key, 1) else None
            if state.valid and state.owner == self.owner:
                return state.attempt
            if state.valid and state.age_s <= self.ttl_s:
                return None  # holder woke up; lease is fresh again
            attempt = state.attempt + 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return attempt if self._try_create(path, key, attempt) else None
        finally:
            guard.release()

    # -- lifecycle -------------------------------------------------------

    def heartbeat(self, key: str) -> bool:
        """Refresh the lease's mtime; returns False when it is gone."""
        return heartbeat_path(self.path_for(key))

    def bump(self, key: str) -> Optional[int]:
        """Increment the attempt count on a lease *we* hold (within-host
        requeue after a worker death).  Returns the new attempt."""
        state = self.read(key)
        if state is None or not state.valid or state.owner != self.owner:
            return None
        attempt = state.attempt + 1
        path = self.path_for(key)
        payload = json.dumps({
            "format": LEASE_FORMAT,
            "schema_version": LEASE_SCHEMA_VERSION,
            "key": key,
            "owner": self.owner,
            "pid": os.getpid(),
            "attempt": attempt,
            "claimed_at": time.time(),
        })
        tmp = exclusive_tmp_path(path)
        try:
            with open(tmp, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return None
        return attempt

    def release(self, key: str) -> bool:
        """Drop a lease we own.  Never unlinks a foreign holder's lease
        (mirrors the :class:`FileLock` ownership fix)."""
        state = self.read(key)
        if state is None or not state.valid or state.owner != self.owner:
            return False
        try:
            os.unlink(state.path)
        except OSError:
            return False
        self.releases += 1
        return True

    # -- quarantine ------------------------------------------------------

    def quarantine(self, key: str, info: Dict[str, Any]) -> str:
        """Record ``key`` as poison in a machine-readable manifest and
        drop our lease; returns the manifest path."""
        path = self.quarantine_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        manifest = {
            "format": QUARANTINE_FORMAT,
            "schema_version": LEASE_SCHEMA_VERSION,
            "key": key,
            "owner": self.owner,
            "quarantined_at": time.time(),
        }
        manifest.update(info)
        tmp = exclusive_tmp_path(path)
        try:
            with open(tmp, "w") as fh:
                fh.write(json.dumps(manifest, indent=2, default=repr) + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.release(key)
        return path

    def is_quarantined(self, key: str) -> Optional[Dict[str, Any]]:
        """The quarantine manifest for ``key``, or ``None``."""
        try:
            with open(self.quarantine_path(key), "r") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        return data if data.get("format") == QUARANTINE_FORMAT else None

    def quarantined(self) -> List[Dict[str, Any]]:
        """All quarantine manifests in the directory, sorted by key."""
        qdir = os.path.join(self.directory, "quarantine")
        try:
            names = sorted(os.listdir(qdir))
        except OSError:
            return []
        found = []
        for name in names:
            if not name.endswith(".json"):
                continue
            manifest = self.is_quarantined(name[: -len(".json")])
            if manifest is not None:
                found.append(manifest)
        return found

    def clear_quarantine(self, key: str) -> bool:
        """Remove a quarantine manifest (operator override)."""
        try:
            os.unlink(self.quarantine_path(key))
        except OSError:
            return False
        return True


def heartbeat_path(path: str) -> bool:
    """Refresh a lease file's mtime by path (used by workers that hold
    only the path, not a manager).  Returns False when it is gone."""
    try:
        os.utime(path, None)
    except OSError:
        return False
    return True


def open_leases(
    directory: Optional[str],
    owner: Optional[str] = None,
    ttl_s: float = 30.0,
) -> Optional[LeaseManager]:
    """``None``-propagating constructor, mirroring :func:`open_cache`."""
    if not directory:
        return None
    return LeaseManager(directory, owner=owner, ttl_s=ttl_s)
