"""Content-addressed on-disk store for sweep job results.

Layout: one file per job key under a two-character shard directory
(``<dir>/ab/<key>.res``), mirroring git's object store so huge sweeps
do not pile 10^5 files into one directory.  Each file is a JSON header
line followed by a pickled payload — the same self-validating format as
the PR 4 checkpoints:

.. code-block:: text

    {"format": "spade-sweep-result", "version": 1, "key": "…",
     "schema_version": 1, "payload_bytes": N, "payload_sha256": "…"}\\n
    <N bytes of pickle>

A result is only trusted when the magic, version, key, payload length,
and payload hash all match; anything else (truncation, interleaved
writers on a pre-lock layout, foreign files) reads as a cache *miss*
and the offending file is removed so the slot heals itself.

Writes are crash- and concurrency-safe: each writer serialises into its
own ``O_EXCL`` temp file (:func:`repro.locks.exclusive_tmp_path`) and
publishes with ``os.replace``.  Two workers completing the same job
race benignly — both wrote identical bytes, the last rename wins, and
no interleaving is possible because no temp file is ever shared.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import Any, Iterator, List, Optional, Tuple

from repro.jobmodel import SWEEP_SCHEMA_VERSION
from repro.locks import exclusive_tmp_path

RESULT_FORMAT = "spade-sweep-result"
RESULT_VERSION = 1


class ResultCache:
    """Content-addressed result store shared by sweep workers."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- addressing ------------------------------------------------------

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.res")

    def default_lease_dir(self) -> str:
        """Where the lease protocol lives when no explicit lease dir is
        configured: a dot-directory inside the cache, so one shared path
        carries both results and coordination state.  The name is not a
        two-character hex shard, so :meth:`keys` never sees it."""
        return os.path.join(self.directory, ".leases")

    # -- reading ---------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; corrupt or foreign entries are
        treated as misses and evicted."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                header_line = fh.readline()
                payload = fh.read()
        except OSError:
            self.misses += 1
            return False, None
        if not self._valid(key, header_line, payload):
            self._evict(path)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, pickle.loads(payload)

    def _valid(self, key: str, header_line: bytes, payload: bytes) -> bool:
        try:
            header = json.loads(header_line)
        except (ValueError, UnicodeDecodeError):
            return False
        return (
            header.get("format") == RESULT_FORMAT
            and header.get("version") == RESULT_VERSION
            and header.get("key") == key
            and header.get("payload_bytes") == len(payload)
            and header.get("payload_sha256")
            == hashlib.sha256(payload).hexdigest()
        )

    def _evict(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- writing ---------------------------------------------------------

    def put(self, key: str, value: Any) -> str:
        """Atomically store ``value`` under ``key``; returns the path."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "format": RESULT_FORMAT,
            "version": RESULT_VERSION,
            "key": key,
            "schema_version": SWEEP_SCHEMA_VERSION,
            "payload_bytes": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        tmp = exclusive_tmp_path(path)
        try:
            with open(tmp, "wb") as fh:
                fh.write(json.dumps(header).encode() + b"\n")
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # -- maintenance -----------------------------------------------------

    def keys(self) -> List[str]:
        """Every key currently stored, sorted (for tests/inspection)."""
        found = []
        for shard in self._shards():
            for name in os.listdir(shard):
                if name.endswith(".res"):
                    found.append(name[: -len(".res")])
        return sorted(found)

    def _shards(self) -> Iterator[str]:
        try:
            entries = sorted(os.listdir(self.directory))
        except OSError:
            return
        for entry in entries:
            shard = os.path.join(self.directory, entry)
            # Only two-character hex shard dirs hold results; this also
            # hides the ``.leases`` coordination dir from key listings.
            if len(entry) == 2 and os.path.isdir(shard):
                yield shard

    def __len__(self) -> int:
        return len(self.keys())


def open_cache(directory: Optional[str]) -> Optional[ResultCache]:
    """``None``-propagating constructor for CLI/driver plumbing."""
    return ResultCache(directory) if directory else None
