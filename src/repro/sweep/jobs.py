"""Back-compat shim: the Job/Result boundary moved to
:mod:`repro.jobmodel`.

The sweep package, the sharded runner, and the simulation service all
consume the same job vocabulary; it now lives at the top level so the
service does not have to reach into ``repro.sweep`` for its request
keys.  Import from :mod:`repro.jobmodel` in new code — this module
re-exports the full surface so existing imports keep resolving.
"""

from repro.jobmodel import (  # noqa: F401
    JOB_SCHEMA_VERSION,
    RESULT_SOURCES,
    SWEEP_SCHEMA_VERSION,
    JobResult,
    JobSpec,
    build_jobs,
    canonical_blob,
    environment_fingerprint,
    expand_grid,
    value_fingerprint,
)

__all__ = [
    "JOB_SCHEMA_VERSION",
    "RESULT_SOURCES",
    "SWEEP_SCHEMA_VERSION",
    "JobResult",
    "JobSpec",
    "build_jobs",
    "canonical_blob",
    "environment_fingerprint",
    "expand_grid",
    "value_fingerprint",
]
