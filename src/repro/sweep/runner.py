"""Process-parallel sweep orchestration with deterministic merge.

:class:`SweepRunner` evaluates a benchmark grid — a list of hashable
points plus one pure cell function — across a ``multiprocessing`` pool
and merges the results back **in grid order**, so the output list (and
any ``BENCH_*.json`` serialised from it) is byte-identical to a serial
run.  The determinism argument (DESIGN.md section 9) rests on three
facts:

1. cells are pure functions of ``(env, point)`` — every RNG they touch
   is explicitly seeded, and the runner additionally seeds the global
   ``random`` / ``numpy.random`` state per job from the job key, so a
   job computes identical bytes on any worker in any order;
2. results are indexed by grid position and reassembled by index, so
   pool completion order is irrelevant;
3. cached results are the pickled bytes of a previous identical job,
   addressed by a content hash over (schema version, driver, config
   fingerprint, workload fingerprint) — a cache hit *is* the serial
   result.

Each worker wraps its cell in the PR 4 :class:`RunSupervisor`, so
watchdog/retry/degradation policies apply per job; failed jobs are
collected (not raised mid-drain) so completed work still lands in the
cache, then surfaced as one :class:`~repro.errors.SweepJobError`.
Progress is published through the PR 2 telemetry registry:
``spade_sweep_jobs_{completed,cached,failed}`` counters and the
``spade_sweep_queue_depth`` gauge.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import SweepError, SweepJobError
from repro.obs.ledger import (
    NULL_LEDGER,
    RunLedger,
    merge_shards,
    shard_path,
)
from repro.sweep.cache import ResultCache
from repro.sweep.jobs import JobSpec, build_jobs
from repro.telemetry import ensure


@dataclass
class SweepReport:
    """Job accounting for one or more ``map_grid`` calls."""

    total: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0

    @property
    def executed_fraction(self) -> float:
        return self.completed / self.total if self.total else 0.0

    @property
    def cached_fraction(self) -> float:
        return self.cached / self.total if self.total else 0.0

    def merge(self, other: "SweepReport") -> None:
        self.total += other.total
        self.completed += other.completed
        self.cached += other.cached
        self.failed += other.failed

    def summary(self) -> str:
        return (
            f"{self.total} jobs: {self.completed} executed, "
            f"{self.cached} cached, {self.failed} failed"
        )


def _seed_job_rngs(seed: int) -> None:
    """Pin the *global* RNGs before a cell runs.

    Cells are expected to seed their own generators; this guards the
    ones they don't own (library code reaching for module-level state),
    making every job's RNG view a function of its key alone — identical
    under any worker count.
    """
    random.seed(seed)
    try:
        import numpy as np

        np.random.seed(seed % 2**32)
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass


def _execute_job(payload) -> Tuple[int, bool, Any, int]:
    """Run one job (in a worker process or inline).

    Returns ``(index, ok, value_or_message, pid)``; exceptions are
    folded into strings so a failed job cannot poison the pool's result
    pipe with an unpicklable traceback object.  When the sweep carries a
    ledger, each job writes its lifecycle events to a private shard file
    (one writer per file — no cross-process lock needed); the parent
    merges shards back in grid order after the drain.
    """
    index, cell, env, point, seed, resilience, shard = payload
    from repro.resilience import RunSupervisor

    _seed_job_rngs(seed)
    pid = os.getpid()
    ledger = NULL_LEDGER
    if shard is not None:
        shard_dir, key, driver = shard
        ledger = RunLedger(
            shard_path(shard_dir, index, key), run_id=key[:16]
        )
        ledger.emit(
            "sweep_job",
            index=index,
            status="started",
            key=key,
            driver=driver,
            pid=pid,
        )
    supervisor = RunSupervisor(resilience=resilience, ledger=ledger)
    t0 = time.perf_counter()
    try:
        value = supervisor.call(lambda: cell(env, point))
    except BaseException as exc:  # noqa: BLE001 - reported, then raised
        if ledger.enabled:
            ledger.emit(
                "sweep_job",
                index=index,
                status="failed",
                key=key,
                driver=driver,
                wall_s=time.perf_counter() - t0,
                error=f"{type(exc).__name__}: {exc}",
            )
            ledger.close()
        return index, False, f"{type(exc).__name__}: {exc}", pid
    if ledger.enabled:
        ledger.emit(
            "sweep_job",
            index=index,
            status="completed",
            key=key,
            driver=driver,
            wall_s=time.perf_counter() - t0,
        )
        ledger.close()
    return index, True, value, pid


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class SweepRunner:
    """Fans a grid of jobs over a process pool; merges in grid order."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        telemetry=None,
        resilience=None,
        ledger=None,
    ) -> None:
        if jobs < 1:
            raise SweepError(f"sweep jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.resilience = resilience
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        self.telemetry = ensure(telemetry)
        self.report = SweepReport()
        metrics = self.telemetry.metrics
        self._completed = metrics.counter(
            "spade_sweep_jobs_completed",
            help="sweep jobs executed by a worker",
        )
        self._cached = metrics.counter(
            "spade_sweep_jobs_cached",
            help="sweep jobs served from the result cache",
        )
        self._failed = metrics.counter(
            "spade_sweep_jobs_failed",
            help="sweep jobs that raised in a worker",
        )
        self._queue_depth = metrics.gauge(
            "spade_sweep_queue_depth",
            help="sweep jobs waiting for a worker",
        )

    # -- policy ----------------------------------------------------------

    def _job_resilience(self, env):
        """Per-job supervision policy: explicit override first, then the
        environment's watchdog/retry knobs, then all-off."""
        if self.resilience is not None:
            return self.resilience
        if hasattr(env, "resilience_config"):
            return env.resilience_config()
        from repro.config import ResilienceConfig

        return ResilienceConfig()

    # -- orchestration ---------------------------------------------------

    def map_grid(
        self,
        driver: str,
        env: Any,
        cell: Callable[[Any, Tuple], Any],
        points: Sequence[Tuple],
    ) -> List[Any]:
        """Evaluate ``cell(env, point)`` for every point, in parallel,
        returning results in grid order.

        ``cell`` must be a module-level function (workers import it by
        reference) and its results must be picklable.
        """
        specs = build_jobs(driver, env, points)
        report = SweepReport(total=len(specs))
        results: dict = {}
        pending: List[JobSpec] = []
        for spec in specs:
            if self.cache is not None:
                hit, value = self.cache.get(spec.key)
                if hit:
                    results[spec.index] = value
                    report.cached += 1
                    self._cached.inc()
                    self.ledger.emit(
                        "cache_hit",
                        index=spec.index,
                        key=spec.key,
                        driver=driver,
                    )
                    continue
            pending.append(spec)
        self._queue_depth.set(len(pending))

        failures: List[Tuple[Tuple, str]] = []
        if pending:
            resilience = self._job_resilience(env)
            shard_dir = (
                str(self.ledger.path.parent)
                if self.ledger.enabled else None
            )
            payloads = [
                (
                    spec.index, cell, env, spec.point, spec.seed,
                    resilience,
                    None if shard_dir is None
                    else (shard_dir, spec.key, driver),
                )
                for spec in pending
            ]
            by_index = {spec.index: spec for spec in pending}
            worker_pids: dict = {}
            for index, ok, value, pid in self._drain(payloads):
                spec = by_index[index]
                worker_pids.setdefault(pid, index)
                if ok:
                    results[index] = value
                    report.completed += 1
                    self._completed.inc()
                    if self.cache is not None:
                        self.cache.put(spec.key, value)
                else:
                    failures.append((spec.point, value))
                    report.failed += 1
                    self._failed.inc()
                self._queue_depth.inc(-1)
            tracer = getattr(self.telemetry, "tracer", None)
            if tracer is not None:
                for sort_index, pid in enumerate(sorted(worker_pids)):
                    tracer.set_process_name(
                        pid,
                        f"sweep worker {pid}",
                        sort_index=sort_index + 1,
                    )
            if self.ledger.enabled:
                merge_shards(self.ledger.path.parent, self.ledger)
        self._queue_depth.set(0)

        self.report.merge(report)
        if failures:
            failures.sort(key=lambda f: repr(f[0]))
            raise SweepJobError(driver, failures)
        return [results[i] for i in range(len(specs))]

    def _drain(self, payloads):
        """Yield ``(index, ok, value)`` for each payload, either inline
        (1 worker / 1 job: no pool overhead, no fork) or from a
        process pool as workers finish."""
        if self.jobs == 1 or len(payloads) == 1:
            for payload in payloads:
                yield _execute_job(payload)
            return
        workers = min(self.jobs, len(payloads))
        ctx = _pool_context()
        with ctx.Pool(processes=workers) as pool:
            for result in pool.imap_unordered(_execute_job, payloads):
                yield result


def sweep_map(
    sweep: Optional[SweepRunner],
    driver: str,
    env: Any,
    cell: Callable[[Any, Tuple], Any],
    points: Sequence[Tuple],
) -> List[Any]:
    """Driver-side entry point: run a grid through ``sweep`` when one is
    configured, else evaluate serially in-process (the pre-sweep code
    path, kept for embedding and tests)."""
    if sweep is None:
        return [cell(env, point) for point in points]
    return sweep.map_grid(driver, env, cell, points)
