"""Crash-safe process-parallel sweep orchestration with deterministic merge.

:class:`SweepRunner` evaluates a benchmark grid — a list of hashable
points plus one pure cell function — across a **supervised worker
pool** and merges the results back **in grid order**, so the output
list (and any ``BENCH_*.json`` serialised from it) is byte-identical to
a serial run.  The determinism argument (DESIGN.md section 9) rests on
three facts:

1. cells are pure functions of ``(env, point)`` — every RNG they touch
   is explicitly seeded, and the runner additionally seeds the global
   ``random`` / ``numpy.random`` state per job from the job key, so a
   job computes identical bytes on any worker in any order;
2. results are indexed by grid position and reassembled by index, so
   pool completion order is irrelevant;
3. cached results are the pickled bytes of a previous identical job,
   addressed by a content hash over (schema version, driver, config
   fingerprint, workload fingerprint) — a cache hit *is* the serial
   result.

Unlike the PR 5 ``multiprocessing.Pool`` drain, the pool survives
worker *death* (SIGKILL, OOM): each long-lived ``ctx.Process`` worker
has a private duplex pipe (a shared queue's internal lock would be
poisoned by a holder dying mid-``put``), and the parent multiplexes
result pipes with each worker's process **sentinel** via
``multiprocessing.connection.wait``.  A sentinel firing with no
buffered result means the worker died mid-job; the in-flight job is
requeued with its attempt count bumped and a replacement worker is
spawned.  A job whose attempts exhaust ``max_attempts`` is **poison**:
under ``keep_going`` it is quarantined (machine-readable manifest +
``sweep_job status="quarantined"`` ledger event +
``spade_sweep_jobs_quarantined`` counter) and the rest of the grid
completes; otherwise the sweep fails with the usual
:class:`~repro.errors.SweepJobError`.

When a result cache is configured the runner layers the
:mod:`~repro.sweep.lease` protocol over it: every job is *claimed*
before execution, claims are heartbeat while the job runs (by the
worker) or waits (by the parent), and attempt counts live in the lease
file so they survive runner death.  ``shard=(i, N)`` runs the same grid
concurrently from N processes or hosts sharing one cache+lease
directory: each runner executes the keys it wins, polls the cache for
keys a live foreign runner holds, and reclaims stale leases from dead
runners — every runner returns the complete grid-order result list,
byte-identical to serial.  See DESIGN.md section 13.

Each worker wraps its cell in the PR 4 :class:`RunSupervisor`, so
watchdog/retry/degradation policies apply per job; failed jobs are
collected (not raised mid-drain) so completed work still lands in the
cache, then surfaced as one :class:`~repro.errors.SweepJobError`.
Progress is published through the PR 2 telemetry registry:
``spade_sweep_jobs_{completed,cached,failed,requeued,quarantined}``
counters, ``spade_sweep_workers_restarted``, and the
``spade_sweep_queue_depth`` gauge.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _mp_wait
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import SweepError, SweepJobError
from repro.obs.ledger import (
    NULL_LEDGER,
    RunLedger,
    merge_shards,
    shard_path,
)
from repro.jobmodel import JobSpec, build_jobs
from repro.sweep.cache import ResultCache
from repro.sweep.lease import LeaseManager, heartbeat_path, open_leases
from repro.telemetry import ensure


@dataclass
class SweepReport:
    """Job accounting for one or more ``map_grid`` calls."""

    total: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0
    requeued: int = 0
    quarantined: int = 0

    @property
    def executed_fraction(self) -> float:
        return self.completed / self.total if self.total else 0.0

    @property
    def cached_fraction(self) -> float:
        return self.cached / self.total if self.total else 0.0

    def merge(self, other: "SweepReport") -> None:
        self.total += other.total
        self.completed += other.completed
        self.cached += other.cached
        self.failed += other.failed
        self.requeued += other.requeued
        self.quarantined += other.quarantined

    def summary(self) -> str:
        text = (
            f"{self.total} jobs: {self.completed} executed, "
            f"{self.cached} cached, {self.failed} failed"
        )
        # Only surface the crash-recovery columns when they fired, so
        # the common no-fault summary line stays stable for tooling.
        if self.requeued:
            text += f", {self.requeued} requeued"
        if self.quarantined:
            text += f", {self.quarantined} quarantined"
        return text


def _seed_job_rngs(seed: int) -> None:
    """Pin the *global* RNGs before a cell runs.

    Cells are expected to seed their own generators; this guards the
    ones they don't own (library code reaching for module-level state),
    making every job's RNG view a function of its key alone — identical
    under any worker count.
    """
    random.seed(seed)
    try:
        import numpy as np

        np.random.seed(seed % 2**32)
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass


@dataclass
class _JobPayload:
    """Everything a worker needs to run one job attempt."""

    index: int
    cell: Callable[[Any, Tuple], Any]
    env: Any
    point: Tuple
    seed: int
    resilience: Any
    shard: Optional[Tuple[str, str, str]]  # (ledger dir, key, driver)
    attempt: int = 1
    chaos: Any = None  # ChaosConfig (picklable frozen dataclass)
    lease_path: Optional[str] = None
    lease_interval_s: float = 0.0
    in_worker: bool = False
    """Process-level chaos (SIGKILL) only arms in a pool worker — an
    inline job shares the runner's process and must not kill it."""


class _LeaseHeartbeat(threading.Thread):
    """Refreshes one lease file's mtime while its job runs."""

    def __init__(self, path: str, interval_s: float) -> None:
        super().__init__(name="sweep-lease-heartbeat", daemon=True)
        self._path = path
        self._interval_s = max(0.05, interval_s)
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval_s):
            heartbeat_path(self._path)

    def stop(self) -> None:
        self._halt.set()


def _execute_job(payload: _JobPayload) -> Tuple[int, bool, Any, int]:
    """Run one job attempt (in a worker process or inline).

    Returns ``(index, ok, value_or_message, pid)``; exceptions are
    folded into strings so a failed job cannot poison the pool's result
    pipe with an unpicklable traceback object.  When the sweep carries a
    ledger, each job writes its lifecycle events to a private shard file
    (one writer per file — no cross-process lock needed); the parent
    merges shards back in grid order after the drain.
    """
    from repro.resilience import ChaosMonkey, RunSupervisor

    index = payload.index
    _seed_job_rngs(payload.seed)
    pid = os.getpid()
    monkey = (
        ChaosMonkey(payload.chaos) if payload.chaos is not None else None
    )
    ledger = NULL_LEDGER
    key = driver = None
    if payload.shard is not None:
        shard_dir, key, driver = payload.shard
        ledger = RunLedger(
            shard_path(shard_dir, index, key), run_id=key[:16]
        )
        ledger.emit(
            "sweep_job",
            index=index,
            status="started",
            key=key,
            driver=driver,
            pid=pid,
            attempt=payload.attempt,
        )
        # Flush immediately: if this attempt dies to a SIGKILL the
        # started-with-no-completed event is the post-mortem evidence.
        ledger.flush()
    heartbeat = None
    if (
        payload.lease_path is not None
        and payload.lease_interval_s > 0
        and not (monkey is not None and monkey.stall_lease_heartbeat())
    ):
        heartbeat = _LeaseHeartbeat(
            payload.lease_path, payload.lease_interval_s
        )
        heartbeat.start()
    if monkey is not None and payload.in_worker:
        # Real process death: when selected, this call does not return.
        monkey.sweep_kill(index, payload.attempt)
    supervisor = RunSupervisor(
        resilience=payload.resilience, ledger=ledger, chaos=monkey
    )
    t0 = time.perf_counter()
    try:
        value = supervisor.call(
            lambda: payload.cell(payload.env, payload.point)
        )
    except BaseException as exc:  # noqa: BLE001 - reported, then raised
        if ledger.enabled:
            ledger.emit(
                "sweep_job",
                index=index,
                status="failed",
                key=key,
                driver=driver,
                wall_s=time.perf_counter() - t0,
                error=f"{type(exc).__name__}: {exc}",
                pid=pid,
                attempt=payload.attempt,
            )
            ledger.close()
        if heartbeat is not None:
            heartbeat.stop()
        return index, False, f"{type(exc).__name__}: {exc}", pid
    if ledger.enabled:
        ledger.emit(
            "sweep_job",
            index=index,
            status="completed",
            key=key,
            driver=driver,
            wall_s=time.perf_counter() - t0,
            pid=pid,
            attempt=payload.attempt,
        )
        ledger.close()
    if heartbeat is not None:
        heartbeat.stop()
    return index, True, value, pid


def _worker_main(conn) -> None:
    """Long-lived pool worker: pull payloads, push results, until the
    parent sends ``None`` or disappears."""
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            break  # parent died or closed our pipe
        if payload is None:
            break
        result = _execute_job(payload)
        try:
            conn.send(result)
        except (OSError, ValueError):
            break
    try:
        conn.close()
    except OSError:
        pass


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class _Worker:
    """One supervised pool worker: a process plus its private pipe."""

    __slots__ = ("conn", "proc", "state")

    def __init__(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.proc.start()
        child_conn.close()
        self.state: Optional["_JobState"] = None


@dataclass
class _JobState:
    """A claimed job waiting for (or undergoing) execution."""

    spec: JobSpec
    attempt: int = 1


@dataclass
class _GridRun:
    """Mutable state for one ``map_grid`` call."""

    driver: str
    env: Any
    cell: Callable[[Any, Tuple], Any]
    resilience: Any
    report: SweepReport
    results: Dict[int, Any] = field(default_factory=dict)
    failures: List[Tuple[Tuple, str]] = field(default_factory=list)
    quarantined: List[Tuple[Tuple, str]] = field(default_factory=list)
    skipped: List[Tuple[Tuple, str]] = field(default_factory=list)
    worker_pids: Dict[int, int] = field(default_factory=dict)


class _ClaimHeartbeat(threading.Thread):
    """Parent-side heartbeat for claimed-but-not-dispatched leases.

    In-flight jobs are heartbeat by their worker (so a lease goes stale
    when the worker stalls or dies, even if the parent survives); jobs
    waiting in the requeue belong to nobody's worker, so the parent
    keeps them fresh here.
    """

    def __init__(self, leases: LeaseManager, interval_s: float) -> None:
        super().__init__(name="sweep-claim-heartbeat", daemon=True)
        self._leases = leases
        self._interval_s = max(0.05, interval_s)
        self._halt = threading.Event()
        self._lock = threading.Lock()
        self._keys: set = set()

    def add(self, key: str) -> None:
        with self._lock:
            self._keys.add(key)

    def remove(self, key: str) -> None:
        with self._lock:
            self._keys.discard(key)

    def run(self) -> None:
        while not self._halt.wait(self._interval_s):
            with self._lock:
                keys = list(self._keys)
            for key in keys:
                self._leases.heartbeat(key)

    def stop(self) -> None:
        self._halt.set()


class SweepRunner:
    """Fans a grid of jobs over a supervised worker pool; merges in
    grid order."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        telemetry=None,
        resilience=None,
        ledger=None,
        chaos=None,
        max_attempts: int = 3,
        keep_going: bool = False,
        shard: Optional[Tuple[int, int]] = None,
        lease_dir: Optional[str] = None,
        lease_ttl_s: float = 30.0,
        heartbeat_s: Optional[float] = None,
        foreign_poll_s: float = 0.05,
        foreign_timeout_s: Optional[float] = None,
    ) -> None:
        if jobs < 1:
            raise SweepError(f"sweep jobs must be >= 1, got {jobs}")
        if max_attempts < 1:
            raise SweepError(
                f"sweep max_attempts must be >= 1, got {max_attempts}"
            )
        if shard is not None:
            index, count = shard
            if count < 1:
                raise SweepError(
                    f"sweep shard runner count must be >= 1, "
                    f"got {index}/{count}"
                )
            if not 0 <= index < count:
                # Shards are 0-based; spell out the valid range so a
                # 1-based "N/N" slip gets a fix-it, not just a bound.
                raise SweepError(
                    f"sweep shard index is 0-based: valid shards for "
                    f"{count} runner(s) are 0/{count} .. "
                    f"{count - 1}/{count}, got {index}/{count}"
                )
            if cache is None:
                raise SweepError(
                    "sharded sweeps need a shared result cache "
                    "(--cache-dir): the cache is how shard runners "
                    "exchange results"
                )
        self.jobs = jobs
        self.cache = cache
        self.resilience = resilience
        self.chaos = chaos
        self.max_attempts = max_attempts
        self.keep_going = keep_going
        self.shard = shard
        self.lease_ttl_s = lease_ttl_s
        self.heartbeat_s = (
            heartbeat_s if heartbeat_s is not None else lease_ttl_s / 4.0
        )
        self.foreign_poll_s = foreign_poll_s
        self.foreign_timeout_s = foreign_timeout_s
        if lease_dir is None and cache is not None:
            lease_dir = cache.default_lease_dir()
        self.leases = open_leases(lease_dir, ttl_s=lease_ttl_s)
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        self.telemetry = ensure(telemetry)
        self.report = SweepReport()
        self._claim_hb: Optional[_ClaimHeartbeat] = None
        metrics = self.telemetry.metrics
        self._completed = metrics.counter(
            "spade_sweep_jobs_completed",
            help="sweep jobs executed by a worker",
        )
        self._cached = metrics.counter(
            "spade_sweep_jobs_cached",
            help="sweep jobs served from the result cache",
        )
        self._failed = metrics.counter(
            "spade_sweep_jobs_failed",
            help="sweep jobs that raised in a worker",
        )
        self._requeued = metrics.counter(
            "spade_sweep_jobs_requeued",
            help="sweep jobs requeued after their worker died",
        )
        self._quarantined = metrics.counter(
            "spade_sweep_jobs_quarantined",
            help="poison sweep jobs quarantined after attempt exhaustion",
        )
        self._workers_restarted = metrics.counter(
            "spade_sweep_workers_restarted",
            help="sweep pool workers replaced after dying",
        )
        self._queue_depth = metrics.gauge(
            "spade_sweep_queue_depth",
            help="sweep jobs waiting for a worker",
        )

    # -- policy ----------------------------------------------------------

    def _job_resilience(self, env):
        """Per-job supervision policy: explicit override first, then the
        environment's watchdog/retry knobs, then all-off."""
        if self.resilience is not None:
            return self.resilience
        if hasattr(env, "resilience_config"):
            return env.resilience_config()
        from repro.config import ResilienceConfig

        return ResilienceConfig()

    # -- lease bookkeeping ----------------------------------------------

    def _hb_add(self, key: str) -> None:
        if self._claim_hb is not None:
            self._claim_hb.add(key)

    def _hb_remove(self, key: str) -> None:
        if self._claim_hb is not None:
            self._claim_hb.remove(key)

    def _release(self, key: str) -> None:
        self._hb_remove(key)
        if self.leases is not None:
            self.leases.release(key)

    # -- orchestration ---------------------------------------------------

    def map_grid(
        self,
        driver: str,
        env: Any,
        cell: Callable[[Any, Tuple], Any],
        points: Sequence[Tuple],
    ) -> List[Any]:
        """Evaluate ``cell(env, point)`` for every point, in parallel,
        returning results in grid order.

        ``cell`` must be a module-level function (workers import it by
        reference) and its results must be picklable.  Under
        ``keep_going`` quarantined/failed grid positions come back as
        ``None`` holes instead of raising.
        """
        specs = build_jobs(driver, env, points)
        run = _GridRun(
            driver=driver,
            env=env,
            cell=cell,
            resilience=None,
            report=SweepReport(total=len(specs)),
        )
        pending: List[JobSpec] = []
        for spec in specs:
            if self.cache is not None:
                hit, value = self.cache.get(spec.key)
                if hit:
                    self._note_cached(run, spec, value, depth=False)
                    continue
            if self.leases is not None:
                manifest = self.leases.is_quarantined(spec.key)
                if manifest is not None:
                    self._note_quarantine_manifest(
                        run, spec, manifest, depth=False
                    )
                    continue
            pending.append(spec)
        self._queue_depth.set(len(pending))

        if pending:
            run.resilience = self._job_resilience(env)
            if self.shard is not None:
                # Start each shard runner's claim walk at a different
                # offset so N runners fan out over the grid instead of
                # colliding on job 0 and serialising.
                index, count = self.shard
                offset = (index * len(pending)) // count
                pending = pending[offset:] + pending[:offset]
            if self.leases is not None and self._claim_hb is None:
                self._claim_hb = _ClaimHeartbeat(
                    self.leases, self.heartbeat_s
                )
                self._claim_hb.start()
            try:
                ctx = _pool_context()
                queue: Deque[Union[JobSpec, _JobState]] = deque(pending)
                foreign = self._drain(run, ctx, queue)
                if foreign:
                    self._resolve_foreign(run, ctx, foreign)
            finally:
                if self._claim_hb is not None:
                    self._claim_hb.stop()
                    self._claim_hb = None
            tracer = getattr(self.telemetry, "tracer", None)
            if tracer is not None:
                for sort_index, pid in enumerate(sorted(run.worker_pids)):
                    tracer.set_process_name(
                        pid,
                        f"sweep worker {pid}",
                        sort_index=sort_index + 1,
                    )
            if self.ledger.enabled:
                merge_shards(self.ledger.path.parent, self.ledger)
        self._queue_depth.set(0)

        self.report.merge(run.report)
        if run.failures and not self.keep_going:
            run.failures.sort(key=lambda f: repr(f[0]))
            raise SweepJobError(driver, run.failures)
        if len(run.results) < len(specs):
            return [run.results.get(i) for i in range(len(specs))]
        return [run.results[i] for i in range(len(specs))]

    # -- outcome handling ------------------------------------------------

    def _note_cached(
        self, run: _GridRun, spec: JobSpec, value: Any, depth: bool = True
    ) -> None:
        run.results[spec.index] = value
        run.report.cached += 1
        self._cached.inc()
        self.ledger.emit(
            "cache_hit", index=spec.index, key=spec.key, driver=run.driver
        )
        if depth:
            self._queue_depth.inc(-1)

    def _note_quarantine_manifest(
        self,
        run: _GridRun,
        spec: JobSpec,
        manifest: Dict[str, Any],
        depth: bool = True,
    ) -> None:
        """A quarantine manifest written by us or a peer runner: skip
        the job, surfacing it per the keep-going policy."""
        error = str(manifest.get("error", "quarantined"))
        attempts = manifest.get("attempts")
        run.report.quarantined += 1
        self._quarantined.inc()
        event: Dict[str, Any] = dict(
            index=spec.index,
            status="quarantined",
            key=spec.key,
            driver=run.driver,
            error=error,
            pid=os.getpid(),
        )
        if isinstance(attempts, int):
            event["attempt"] = attempts
        self.ledger.emit("sweep_job", **event)
        run.quarantined.append((spec.point, error))
        if not self.keep_going:
            owner = manifest.get("owner", "unknown")
            run.failures.append((
                spec.point,
                f"quarantined (by {owner}): {error} — clear "
                f"{self.leases.quarantine_path(spec.key)} to retry",
            ))
        if depth:
            self._queue_depth.inc(-1)

    def _poison(self, run: _GridRun, state: _JobState, error: str) -> None:
        """Attempts exhausted: quarantine (and drop our lease)."""
        spec = state.spec
        # ``state.attempt`` is the would-be-next attempt at poison time;
        # the manifest records how many attempts actually executed.
        executed = state.attempt - 1
        self._hb_remove(spec.key)
        run.report.quarantined += 1
        self._quarantined.inc()
        if self.leases is not None:
            self.leases.quarantine(spec.key, {
                "driver": run.driver,
                "index": spec.index,
                "point": repr(spec.point),
                "attempts": executed,
                "error": error,
            })
        self.ledger.emit(
            "sweep_job",
            index=spec.index,
            status="quarantined",
            key=spec.key,
            driver=run.driver,
            error=error,
            pid=os.getpid(),
            attempt=executed,
        )
        run.quarantined.append((spec.point, error))
        if not self.keep_going:
            run.failures.append((spec.point, error))
        self._queue_depth.inc(-1)

    def _handle_result(
        self,
        run: _GridRun,
        state: _JobState,
        result: Tuple[int, bool, Any, int],
    ) -> None:
        index, ok, value, pid = result
        spec = state.spec
        run.worker_pids.setdefault(pid, index)
        if ok:
            run.results[index] = value
            run.report.completed += 1
            self._completed.inc()
            if self.cache is not None:
                # Publish before releasing the lease: a peer that wins
                # the freed claim must find the result, not re-execute.
                self.cache.put(spec.key, value)
            self._release(spec.key)
        else:
            self._release(spec.key)
            run.report.failed += 1
            self._failed.inc()
            if self.keep_going:
                run.skipped.append((spec.point, value))
            else:
                run.failures.append((spec.point, value))
        self._queue_depth.inc(-1)

    def _handle_death(
        self,
        run: _GridRun,
        worker: _Worker,
        queue: Deque[Union[JobSpec, _JobState]],
    ) -> None:
        """A busy worker died: requeue its job (attempt bumped) or, when
        attempts are exhausted, quarantine it."""
        state, worker.state = worker.state, None
        assert state is not None
        worker.proc.join(timeout=5.0)
        spec = state.spec
        error = (
            f"worker died (pid={worker.proc.pid}, "
            f"exitcode={worker.proc.exitcode}) while executing "
            f"attempt {state.attempt}"
        )
        next_attempt = None
        if self.leases is not None:
            next_attempt = self.leases.bump(spec.key)
        if next_attempt is None:
            # No lease (or it was stolen after a stall): fall back to
            # the in-memory attempt carried by the job state.
            next_attempt = state.attempt + 1
        state.attempt = next_attempt
        if next_attempt > self.max_attempts:
            self._poison(run, state, error)
            return
        run.report.requeued += 1
        self._requeued.inc()
        self._hb_add(spec.key)
        self.ledger.emit(
            "sweep_job",
            index=spec.index,
            status="requeued",
            key=spec.key,
            driver=run.driver,
            error=error,
            pid=os.getpid(),
            attempt=next_attempt,
        )
        queue.append(state)

    # -- claiming --------------------------------------------------------

    def _next_state(
        self,
        run: _GridRun,
        queue: Deque[Union[JobSpec, _JobState]],
        foreign: List[JobSpec],
    ) -> Optional[_JobState]:
        """Pop the next runnable job, claiming its lease lazily.

        Claim-at-dispatch (rather than claim-the-whole-grid upfront) is
        what lets concurrent shard runners share a grid: each runner
        only owns what it is about to execute.
        """
        while queue:
            item = queue.popleft()
            if isinstance(item, _JobState):
                return item  # requeued job, already claimed
            spec = item
            if self.leases is None:
                return _JobState(spec, attempt=1)
            manifest = self.leases.is_quarantined(spec.key)
            if manifest is not None:
                self._note_quarantine_manifest(run, spec, manifest)
                continue
            attempt = self.leases.try_claim(spec.key)
            if attempt is None:
                foreign.append(spec)
                continue
            if self.cache is not None:
                # Re-probe under the claim: a peer may have published
                # between our initial probe and winning the lease.
                hit, value = self.cache.get(spec.key)
                if hit:
                    self._release(spec.key)
                    self._note_cached(run, spec, value)
                    continue
            if attempt > self.max_attempts:
                self._poison(
                    run,
                    _JobState(spec, attempt),
                    f"attempts exhausted: lease records "
                    f"{attempt - 1} prior attempt(s) by dead owners",
                )
                continue
            self._hb_add(spec.key)
            return _JobState(spec, attempt)
        return None

    def _payload(self, run: _GridRun, state: _JobState) -> _JobPayload:
        spec = state.spec
        shard = None
        if self.ledger.enabled:
            shard = (str(self.ledger.path.parent), spec.key, run.driver)
        lease_path = None
        if self.leases is not None:
            lease_path = self.leases.path_for(spec.key)
        return _JobPayload(
            index=spec.index,
            cell=run.cell,
            env=run.env,
            point=spec.point,
            seed=spec.seed,
            resilience=run.resilience,
            shard=shard,
            attempt=state.attempt,
            chaos=self.chaos,
            lease_path=lease_path,
            lease_interval_s=self.heartbeat_s,
            in_worker=self.jobs > 1,
        )

    # -- pool ------------------------------------------------------------

    def _drain(
        self,
        run: _GridRun,
        ctx,
        queue: Deque[Union[JobSpec, _JobState]],
    ) -> List[JobSpec]:
        """Execute every claimable job in ``queue``; returns the specs
        held by live foreign runners (to be resolved afterwards)."""
        foreign: List[JobSpec] = []
        if self.jobs == 1:
            while True:
                state = self._next_state(run, queue, foreign)
                if state is None:
                    break
                # In-flight heartbeats run inside _execute_job.
                self._hb_remove(state.spec.key)
                result = _execute_job(self._payload(run, state))
                self._handle_result(run, state, result)
            return foreign

        workers: List[_Worker] = []
        try:
            while True:
                for worker in list(workers):
                    if worker.state is not None:
                        continue
                    state = self._next_state(run, queue, foreign)
                    if state is None:
                        break
                    self._dispatch(run, worker, state, queue, workers, ctx)
                while len(workers) < self.jobs and queue:
                    state = self._next_state(run, queue, foreign)
                    if state is None:
                        break
                    worker = _Worker(ctx)
                    workers.append(worker)
                    self._dispatch(run, worker, state, queue, workers, ctx)
                busy = [w for w in workers if w.state is not None]
                if not busy:
                    if queue:
                        continue  # requeued work appeared after deaths
                    break
                self._collect(run, busy, workers, queue, ctx)
        finally:
            self._shutdown(workers)
        return foreign

    def _dispatch(
        self,
        run: _GridRun,
        worker: _Worker,
        state: _JobState,
        queue: Deque[Union[JobSpec, _JobState]],
        workers: List[_Worker],
        ctx,
    ) -> None:
        # The worker heartbeats the lease while executing; until the
        # payload lands, the parent claim-heartbeat covers the gap.
        try:
            worker.conn.send(self._payload(run, state))
        except (OSError, ValueError):
            # Worker died idle (never got the job — no attempt burned).
            queue.appendleft(state)
            self._hb_add(state.spec.key)
            self._retire(worker)
            workers.remove(worker)
            self._workers_restarted.inc()
            workers.append(_Worker(ctx))
            return
        worker.state = state

    def _collect(
        self,
        run: _GridRun,
        busy: List[_Worker],
        workers: List[_Worker],
        queue: Deque[Union[JobSpec, _JobState]],
        ctx,
    ) -> None:
        """Wait for a result or a death on any busy worker."""
        conn_map = {w.conn: w for w in busy}
        sentinel_map = {w.proc.sentinel: w for w in busy}
        ready = _mp_wait(
            list(conn_map) + list(sentinel_map), timeout=1.0
        )
        dead: List[_Worker] = []
        for obj in ready:
            worker = conn_map.get(obj)
            if worker is not None:
                if worker.state is None:
                    continue
                try:
                    result = worker.conn.recv()
                except (EOFError, OSError):
                    dead.append(worker)
                    continue
                state, worker.state = worker.state, None
                self._handle_result(run, state, result)
            else:
                worker = sentinel_map[obj]
                if worker.state is None:
                    continue
                try:
                    # A dead worker's final result may still sit in the
                    # pipe buffer; prefer it over the sentinel.
                    has_result = worker.conn.poll(0)
                except (OSError, ValueError):
                    has_result = False
                if not dead.count(worker) and not has_result:
                    dead.append(worker)
        for worker in dict.fromkeys(dead):
            if worker.state is None:
                continue
            self._handle_death(run, worker, queue)
            self._retire(worker)
            workers.remove(worker)
            if queue:
                self._workers_restarted.inc()
                workers.append(_Worker(ctx))

    def _retire(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join(timeout=1.0)
        if worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(timeout=2.0)

    def _shutdown(self, workers: List[_Worker]) -> None:
        for worker in workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
        for worker in workers:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=2.0)

    # -- foreign jobs ----------------------------------------------------

    def _resolve_foreign(
        self, run: _GridRun, ctx, foreign: List[JobSpec]
    ) -> None:
        """Jobs a live peer runner holds: poll the shared cache for
        their results; reclaim and execute if the peer's lease goes
        stale (it died) — so every shard runner eventually returns the
        complete grid."""
        remaining: Dict[int, JobSpec] = {
            spec.index: spec for spec in foreign
        }
        deadline = (
            time.monotonic() + self.foreign_timeout_s
            if self.foreign_timeout_s is not None
            else None
        )
        while remaining:
            progressed = False
            claimed: Deque[Union[JobSpec, _JobState]] = deque()
            for index in sorted(remaining):
                spec = remaining[index]
                hit, value = self.cache.get(spec.key)
                if hit:
                    self._note_cached(run, spec, value)
                    del remaining[index]
                    progressed = True
                    continue
                manifest = self.leases.is_quarantined(spec.key)
                if manifest is not None:
                    self._note_quarantine_manifest(run, spec, manifest)
                    del remaining[index]
                    progressed = True
                    continue
                attempt = self.leases.try_claim(spec.key)
                if attempt is None:
                    continue  # peer is alive; keep waiting
                del remaining[index]
                progressed = True
                hit, value = self.cache.get(spec.key)
                if hit:
                    self._release(spec.key)
                    self._note_cached(run, spec, value)
                    continue
                if attempt > self.max_attempts:
                    self._poison(
                        run,
                        _JobState(spec, attempt),
                        f"attempts exhausted: lease records "
                        f"{attempt - 1} prior attempt(s) by dead owners",
                    )
                    continue
                self._hb_add(spec.key)
                claimed.append(_JobState(spec, attempt))
            if claimed:
                self._drain(run, ctx, claimed)
            if remaining and not progressed:
                if deadline is not None and time.monotonic() > deadline:
                    for index in sorted(remaining):
                        spec = remaining[index]
                        message = (
                            "timed out waiting for foreign lease holder "
                            f"after {self.foreign_timeout_s:g}s"
                        )
                        run.report.failed += 1
                        self._failed.inc()
                        if self.keep_going:
                            run.skipped.append((spec.point, message))
                        else:
                            run.failures.append((spec.point, message))
                        self._queue_depth.inc(-1)
                    return
                time.sleep(self.foreign_poll_s)


def sweep_map(
    sweep: Optional[SweepRunner],
    driver: str,
    env: Any,
    cell: Callable[[Any, Tuple], Any],
    points: Sequence[Tuple],
) -> List[Any]:
    """Driver-side entry point: run a grid through ``sweep`` when one is
    configured, else evaluate serially in-process (the pre-sweep code
    path, kept for embedding and tests)."""
    if sweep is None:
        return [cell(env, point) for point in points]
    return sweep.map_grid(driver, env, cell, points)
