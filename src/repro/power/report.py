"""Composed area/power reports (Section 7.G, Figure 14).

``spade_area_power`` totals the add-on silicon SPADE brings to the host
(PE pipelines, L1s, BBFs, victim caches) at 10 nm and compares it to the
Ice Lake host's TDP and die area.  ``power_breakdown`` produces the
Figure 14 decomposition of SPADE-mode power into PEs+L1+BBF+VC, L2, LLC,
and DRAM, with the paper's conservative assumption that PE pipelines run
at maximum dynamic power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import SpadeConfig
from repro.memory.stats import AccessStats
from repro.power.cacti import (
    DRAM_ENERGY_PJ_PER_BYTE,
    EXTRA_LOGIC_FRACTION,
    SIMD_UNIT_AREA_MM2,
    SIMD_UNIT_ENERGY_PER_OP_PJ,
    SIMD_UNIT_LEAKAGE_MW,
    SRAMModel,
    sram_model,
)
from repro.power.scaling import scale_area, scale_power


@dataclass(frozen=True)
class PEStructures:
    """The SRAM structures of one PE, modelled at 32 nm."""

    l1d: SRAMModel
    bbf: SRAMModel
    victim: SRAMModel
    vrf: SRAMModel
    vr_tag_cam: SRAMModel
    pipeline_queues: SRAMModel


def pe_structures(config: SpadeConfig) -> PEStructures:
    """Instantiate the per-PE structure models from Table 1 geometry."""
    pe = config.pe
    queue_bytes = (
        pe.sparse_load_queue_entries * 24
        + pe.dense_load_queue_entries * 16
        + pe.store_queue_entries * 72
        + pe.vop_rs_entries * 32
        + pe.top_queue_entries * 32
    )
    return PEStructures(
        l1d=sram_model("l1d", pe.l1d.size_bytes),
        bbf=sram_model("bbf", pe.bbf_entries * 64),
        victim=sram_model("victim", pe.victim_cache.size_bytes),
        vrf=sram_model("vrf", pe.num_vector_registers * 64, ports=2),
        vr_tag_cam=sram_model(
            "vr_tag", pe.num_vector_registers * 8, is_cam=True
        ),
        pipeline_queues=sram_model("queues", queue_bytes),
    )


@dataclass(frozen=True)
class SpadeAreaPower:
    """The SPADE add-on cost at 10 nm (Section 7.G)."""

    num_pes: int
    area_mm2: float
    power_w: float
    host_tdp_w: float
    host_area_mm2: float

    @property
    def power_fraction_of_host(self) -> float:
        return self.power_w / self.host_tdp_w

    @property
    def area_fraction_of_host(self) -> float:
        return self.area_mm2 / self.host_area_mm2


def pe_pipeline_area_mm2(config: SpadeConfig) -> float:
    """One PE's pipeline + private SRAM area at 32 nm."""
    s = pe_structures(config)
    pipeline = (
        s.vrf.area_mm2
        + s.vr_tag_cam.area_mm2
        + s.pipeline_queues.area_mm2
        + SIMD_UNIT_AREA_MM2
    ) * (1.0 + EXTRA_LOGIC_FRACTION)
    return pipeline + s.l1d.area_mm2 + s.bbf.area_mm2 + s.victim.area_mm2


def pe_max_dynamic_power_w(config: SpadeConfig) -> float:
    """One PE's maximum dynamic power at 32 nm: every cycle issues a
    vOp (16-lane FMA), two VRF accesses, a tag-CAM match, and an
    L1/BBF-class access (the paper's conservative assumption)."""
    s = pe_structures(config)
    freq_hz = config.pe.frequency_ghz * 1e9
    energy_per_cycle_pj = (
        16 * SIMD_UNIT_ENERGY_PER_OP_PJ
        + 2 * s.vrf.read_energy_pj
        + s.vr_tag_cam.read_energy_pj
        + s.l1d.read_energy_pj
        + s.pipeline_queues.read_energy_pj
    ) * (1.0 + EXTRA_LOGIC_FRACTION)
    dynamic_w = energy_per_cycle_pj * 1e-12 * freq_hz
    leakage_w = (
        s.l1d.leakage_mw
        + s.bbf.leakage_mw
        + s.victim.leakage_mw
        + s.vrf.leakage_mw
        + s.vr_tag_cam.leakage_mw
        + s.pipeline_queues.leakage_mw
        + SIMD_UNIT_LEAKAGE_MW
    ) / 1000.0
    return dynamic_w + leakage_w


def spade_area_power(config: SpadeConfig) -> SpadeAreaPower:
    """Total SPADE add-on area and power at 10 nm versus the host."""
    area_32 = pe_pipeline_area_mm2(config) * config.num_pes
    power_32 = pe_max_dynamic_power_w(config) * config.num_pes
    return SpadeAreaPower(
        num_pes=config.num_pes,
        area_mm2=scale_area(area_32, 32, 10),
        power_w=scale_power(power_32, 32, 10),
        host_tdp_w=config.host.tdp_watts,
        host_area_mm2=config.host.die_area_mm2,
    )


# Shared-cache access energies at 10 nm (CACTI-class values for the
# multi-megabyte L2/LLC arrays of Table 1).
L2_ACCESS_ENERGY_PJ = 60.0
LLC_ACCESS_ENERGY_PJ = 220.0
L2_LEAKAGE_W_PER_MB = 0.05
LLC_LEAKAGE_W_PER_MB = 0.04


@dataclass(frozen=True)
class PowerBreakdown:
    """SPADE-mode power decomposition (Figure 14)."""

    pe_w: float
    l2_w: float
    llc_w: float
    dram_w: float

    @property
    def total_w(self) -> float:
        return self.pe_w + self.l2_w + self.llc_w + self.dram_w

    def fractions(self) -> Dict[str, float]:
        total = self.total_w
        if total <= 0:
            return {"pe": 0.0, "l2": 0.0, "llc": 0.0, "dram": 0.0}
        return {
            "pe": self.pe_w / total,
            "l2": self.l2_w / total,
            "llc": self.llc_w / total,
            "dram": self.dram_w / total,
        }


def power_breakdown(
    stats: AccessStats, time_ns: float, config: SpadeConfig
) -> PowerBreakdown:
    """Figure 14: power during SPADE-mode execution of one kernel.

    PEs (with L1s, BBFs, victim caches) are charged their maximum
    dynamic power; L2/LLC power comes from simulated access counts plus
    leakage; DRAM power from simulated traffic at DDR access energy.
    """
    if time_ns <= 0:
        raise ValueError("time_ns must be positive")
    pe_w = scale_power(
        pe_max_dynamic_power_w(config) * config.num_pes, 32, 10
    )
    time_s = time_ns * 1e-9
    l2_dynamic = stats.l2.accesses * L2_ACCESS_ENERGY_PJ * 1e-12 / time_s
    llc_dynamic = stats.llc.accesses * LLC_ACCESS_ENERGY_PJ * 1e-12 / time_s
    num_l2s = max(1, config.num_pes // config.memory.pes_per_l2)
    l2_leak = (
        config.memory.l2.size_bytes * num_l2s / 1024**2
    ) * L2_LEAKAGE_W_PER_MB
    llc_leak = (
        config.memory.llc_total_bytes / 1024**2
    ) * LLC_LEAKAGE_W_PER_MB
    dram_bytes = (stats.dram_reads + stats.dram_writes) * 64
    dram_w = dram_bytes * DRAM_ENERGY_PJ_PER_BYTE * 1e-12 / time_s
    # Background DRAM power (refresh, standby) proportional to channels.
    dram_w += 4.0 * config.memory.dram_peak_gbps / 410.0
    return PowerBreakdown(
        pe_w=pe_w,
        l2_w=l2_dynamic + l2_leak,
        llc_w=llc_dynamic + llc_leak,
        dram_w=dram_w,
    )
