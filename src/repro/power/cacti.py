"""Parametric SRAM area/energy model in the spirit of CACTI 7 at 32 nm.

The paper models the L1D, BBF, victim cache, and all pipeline memory
structures (CAMs, RAMs, registers) with CACTI targeting 32 nm
(Section 6.E).  We reimplement the estimation flow with a parametric
model: area grows linearly with capacity plus a fixed periphery term;
access energy grows with the square root of capacity (bitline/wordline
length); leakage is proportional to capacity.  Constants are calibrated
so that the composed SPADE totals land on the paper's Section 7.G
numbers (24.64 mm^2 and 20.3 W at 10 nm for 224 PEs with their private
SRAM) after technology scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Calibrated 32 nm constants.
_AREA_PER_KB_MM2 = 0.009
_AREA_FIXED_MM2 = 0.02
_CAM_AREA_FACTOR = 3.0  # CAMs are ~3x denser-to-area than RAM per bit
_MULTIPORT_AREA_FACTOR = 0.6  # extra area per additional port
_ENERGY_BASE_PJ = 4.0
_ENERGY_PER_SQRT_KB_PJ = 3.0
_LEAKAGE_MW_PER_KB = 0.06


@dataclass(frozen=True)
class SRAMModel:
    """Area/energy of one SRAM structure at 32 nm."""

    name: str
    size_kb: float
    area_mm2: float
    read_energy_pj: float
    write_energy_pj: float
    leakage_mw: float

    def dynamic_energy_nj(self, reads: int, writes: int = 0) -> float:
        return (
            reads * self.read_energy_pj + writes * self.write_energy_pj
        ) / 1000.0

    def leakage_energy_nj(self, time_ns: float) -> float:
        return self.leakage_mw * time_ns / 1e6


def sram_model(
    name: str,
    size_bytes: int,
    ports: int = 1,
    is_cam: bool = False,
) -> SRAMModel:
    """Model one SRAM/CAM structure of ``size_bytes`` at 32 nm."""
    if size_bytes <= 0:
        raise ValueError("size must be positive")
    size_kb = size_bytes / 1024.0
    area = _AREA_FIXED_MM2 + _AREA_PER_KB_MM2 * size_kb
    energy = _ENERGY_BASE_PJ + _ENERGY_PER_SQRT_KB_PJ * math.sqrt(size_kb)
    leakage = _LEAKAGE_MW_PER_KB * size_kb
    if is_cam:
        area *= _CAM_AREA_FACTOR
        energy *= 2.0  # parallel tag match
        leakage *= 1.5
    if ports > 1:
        area *= 1.0 + _MULTIPORT_AREA_FACTOR * (ports - 1)
        energy *= 1.0 + 0.3 * (ports - 1)
    return SRAMModel(
        name=name,
        size_kb=size_kb,
        area_mm2=area,
        read_energy_pj=energy,
        write_energy_pj=energy * 1.1,
        leakage_mw=leakage,
    )


# Single-precision FP SIMD unit (16 lanes x FMA), following the
# energy-efficient FPU design numbers of Galal & Horowitz [20],
# expressed at 32 nm.
SIMD_UNIT_AREA_MM2 = 0.26
SIMD_UNIT_ENERGY_PER_OP_PJ = 16.0
SIMD_UNIT_LEAKAGE_MW = 6.0

# Section 6.E: synthesis of miniSPADE shows additional logic (muxes,
# FSMs) below 5% of pipeline area; the paper conservatively assumes 20%
# for SPADE.
EXTRA_LOGIC_FRACTION = 0.20

# DRAM access energy (DRAMsim3-like DDR4): ~15 pJ/bit end to end.
DRAM_ENERGY_PJ_PER_BYTE = 120.0
