"""Technology scaling (Section 6.E).

The SRAM/pipeline structures are modelled at 32 nm; the host is a 10 nm
Ice Lake, so SPADE's area and power are scaled from 32 nm to 10 nm with
the scaling equations of Stillmaker & Baas [66] ("Scaling equations for
the accurate prediction of CMOS device performance from 180 nm to
7 nm").  The factors below are the 32 nm -> 10 nm entries of their
model for area and for energy/power at constant frequency; 65 nm
factors support the miniSPADE comparison.
"""

from __future__ import annotations

# Area scales roughly with the square of the feature-size ratio,
# moderated by lithography realities; Stillmaker & Baas tabulate ~9.6x
# density 32nm->10nm and ~41x 65nm->10nm.
_AREA_FACTORS = {
    (65, 10): 1 / 41.0,
    (65, 32): 1 / 4.1,
    (32, 10): 1 / 9.6,
    (32, 32): 1.0,
    (10, 10): 1.0,
}

# Switching energy (and hence power at fixed activity) improves ~3.6x
# from 32 nm to 10 nm.
_POWER_FACTORS = {
    (65, 10): 1 / 7.6,
    (65, 32): 1 / 2.1,
    (32, 10): 1 / 3.6,
    (32, 32): 1.0,
    (10, 10): 1.0,
}


def _lookup(table: dict, from_nm: int, to_nm: int) -> float:
    try:
        return table[(from_nm, to_nm)]
    except KeyError:
        raise ValueError(
            f"no scaling factor for {from_nm} nm -> {to_nm} nm; "
            f"supported: {sorted(table)}"
        ) from None


def scale_area(area_mm2: float, from_nm: int = 32, to_nm: int = 10) -> float:
    """Scale a silicon area between technology nodes."""
    return area_mm2 * _lookup(_AREA_FACTORS, from_nm, to_nm)


def scale_power(power_w: float, from_nm: int = 32, to_nm: int = 10) -> float:
    """Scale switching power between technology nodes (fixed frequency
    and activity)."""
    return power_w * _lookup(_POWER_FACTORS, from_nm, to_nm)


def scale_energy(energy_nj: float, from_nm: int = 32, to_nm: int = 10) -> float:
    """Scale per-event energy between nodes (same factor as power)."""
    return energy_nj * _lookup(_POWER_FACTORS, from_nm, to_nm)
