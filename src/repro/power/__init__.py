"""Area and power modelling (Sections 6.E and 7.G, Figure 14).

A CACTI-style parametric SRAM model at 32 nm, technology scaling to the
host's 10 nm node, and report helpers producing the paper's two power
results: the SPADE add-on cost relative to the Ice Lake host, and the
SPADE-mode power breakdown across PEs / L2 / LLC / DRAM.
"""

from repro.power.cacti import SRAMModel, sram_model
from repro.power.scaling import scale_area, scale_power
from repro.power.report import (
    PowerBreakdown,
    SpadeAreaPower,
    power_breakdown,
    spade_area_power,
)

__all__ = [
    "SRAMModel",
    "sram_model",
    "scale_area",
    "scale_power",
    "SpadeAreaPower",
    "PowerBreakdown",
    "spade_area_power",
    "power_breakdown",
]
