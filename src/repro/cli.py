"""Command-line interface.

Usage::

    python -m repro run --matrix KRO --kernel spmm --k 32 --pes 8
    python -m repro autotune --matrix ORK --kernel spmm --k 32
    python -m repro suite                       # list the Table 2 suite
    python -m repro experiment fig09 table5 ... # run paper experiments
    python -m repro sweep fig14 --shard 0/2 --cache-dir CACHE
                                                # crash-safe sharded sweeps
    python -m repro config --pes 224            # show a system config

Matrices are either Table 2 suite short names (with ``--scale``) or
paths to MatrixMarket ``.mtx`` files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

import numpy as np

import dataclasses

from repro.bench.harness import get_environment
from repro.config import (
    EXECUTION_MODES,
    ObsConfig,
    ResilienceConfig,
    TelemetryConfig,
    config_summary,
    replay_modes,
    scaled_config,
)
from repro.core.accelerator import SpadeSystem
from repro.errors import SpadeError, WorkloadError
from repro.sparse.analysis import estimate_ru, reuse_stats
from repro.sparse.coo import COOMatrix
from repro.sparse.suite import SUITE, get_benchmark
from repro.tuning.autotune import autotune

METRICS_SUFFIXES = (".json", ".csv", ".prom", ".txt")

EXPERIMENTS = (
    "fig02", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
    "table5", "table6", "sec7d", "sec7g",
)


def _load_matrix(spec: str, scale: str) -> COOMatrix:
    path = Path(spec)
    if path.suffix == ".mtx" or path.exists():
        from repro.sparse.io import read_matrix_market

        return read_matrix_market(path)
    try:
        bench = get_benchmark(spec)
    except KeyError as exc:
        # KeyError str() adds quotes around the message; unwrap it.
        raise WorkloadError(exc.args[0]) from exc
    return bench.build(scale)


def _telemetry_config(args: argparse.Namespace) -> TelemetryConfig:
    """Map the CLI observability flags onto a TelemetryConfig."""
    want_trace = bool(args.trace) or args.profile or args.trace_chunks
    want_metrics = bool(args.metrics_out)
    return TelemetryConfig(
        metrics=want_metrics,
        trace=want_trace,
        trace_chunks=args.trace_chunks,
    )


def _write_telemetry(
    args: argparse.Namespace, config, telemetry, workload, ledger=None
) -> None:
    """Write the trace / metrics / manifest files requested by flags."""
    from repro.telemetry import run_manifest, write_metrics

    manifest = run_manifest(
        config=config,
        workload=workload,
        seed=getattr(args, "seed", None),
        argv=sys.argv[1:],
        ledger=ledger,
    )
    if args.trace:
        path = telemetry.tracer.write(
            args.trace, metadata={"manifest": manifest}
        )
        print(f"trace written       : {path} (open in Perfetto)")
    if args.metrics_out:
        path = write_metrics(telemetry.metrics, args.metrics_out)
        print(f"metrics written     : {path}")
    if args.manifest_out:
        Path(args.manifest_out).write_text(
            json.dumps(manifest, indent=2) + "\n"
        )
        print(f"manifest written    : {args.manifest_out}")
    if args.profile:
        print("\nhottest phases (host wall clock)")
        print(telemetry.tracer.format_profile(args.profile_top))


def _validate_run_args(args: argparse.Namespace) -> Optional[str]:
    """Flag-combination checks; returns an error message or None."""
    if args.trace_chunks and not args.trace:
        return "--trace-chunks requires --trace PATH (chunk spans land in the trace file)"
    if (
        args.metrics_out is not None
        and args.metrics_out.suffix not in METRICS_SUFFIXES
    ):
        return (
            f"--metrics-out suffix {args.metrics_out.suffix!r} is not "
            f"supported; use one of {', '.join(METRICS_SUFFIXES)}"
        )
    if args.resume and args.checkpoint_dir is None:
        return "--resume requires --checkpoint-dir DIR (where to find the snapshots)"
    return _validate_sweep_args(args)


def _shard_spec(text: str) -> tuple:
    """Parse ``--shard i/N`` (0-based shard index / runner count)."""
    try:
        index_s, count_s = text.split("/", 1)
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like i/N (e.g. 0/2), got {text!r}"
        )
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"shard runner count must be >= 1, got {text!r}"
        )
    if not 0 <= index < count:
        # Same 0-based fix-it the runner gives, so CLI and API errors
        # diagnose a 1-based "N/N" slip identically.
        raise argparse.ArgumentTypeError(
            f"shard index is 0-based: valid shards for {count} "
            f"runner(s) are 0/{count} .. {count - 1}/{count}, "
            f"got {text!r}"
        )
    return (index, count)


def _validate_sweep_args(args: argparse.Namespace) -> Optional[str]:
    """Sweep flag-combination checks; returns an error message or None."""
    if args.jobs < 1:
        return "--jobs must be a positive worker count"
    if args.no_cache and args.cache_dir is not None:
        return (
            "--no-cache conflicts with --cache-dir DIR "
            "(drop one of the two)"
        )
    return None


def _open_ledger(args: argparse.Namespace):
    """The run ledger requested by ``--ledger DIR`` (run id derived
    from the command line), or the shared null writer."""
    ledger_dir = getattr(args, "ledger", None)
    obs = ObsConfig(ledger_dir=str(ledger_dir) if ledger_dir else None)
    return obs.make_ledger(*sys.argv[1:])


def _close_ledger(ledger, stream=None) -> None:
    if ledger is not None and ledger.enabled:
        ledger.close()
        print(
            f"ledger written      : {ledger.path} "
            f"({ledger.events_recorded} events)",
            file=stream,
        )


def _sweep_runner(args: argparse.Namespace, resilience=None):
    """A SweepRunner from the CLI sweep flags, or None when they are
    all at their defaults (callers then keep their serial paths)."""
    cache_dir = None if args.no_cache else args.cache_dir
    ledger_dir = getattr(args, "ledger", None)
    if args.jobs <= 1 and cache_dir is None and ledger_dir is None:
        return None
    from repro.sweep import SweepRunner, open_cache

    return SweepRunner(
        jobs=args.jobs,
        cache=open_cache(str(cache_dir) if cache_dir else None),
        resilience=resilience,
        ledger=_open_ledger(args),
    )


# The ``run`` cell moved to repro.service.simulate so the simulation
# service and the CLI share one cell (and therefore one cache key
# space); this alias keeps the sweep path reading naturally here.
from repro.service.simulate import run_cell as _run_cell  # noqa: E402


def _suite_cell(env, point) -> dict:
    """Build one suite matrix — pure sweep cell for ``repro suite``."""
    name, scale = point
    m = get_benchmark(name).build(scale)
    return {"rows": m.num_rows, "nnz": m.nnz}


def _cmd_run(args: argparse.Namespace) -> int:
    problem = _validate_run_args(args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    # Telemetry and resilience flags need the live execution (a cache
    # hit would skip the simulation the trace/checkpoint observes), so
    # the sweep/cache path only engages when none of them are set.
    observed = (
        args.trace or args.trace_chunks or args.metrics_out
        or args.manifest_out or args.profile or args.checkpoint_dir
        or args.resume or args.timeout or args.max_retries
        or args.ledger  # the flight recorder must see the live run
    )
    sweep = None if observed else _sweep_runner(args)
    if sweep is not None:
        from repro.sweep import sweep_map

        point = (
            args.matrix, args.scale, args.kernel, args.k,
            args.pes, args.cache_shrink, args.seed, args.replay,
            args.execution,
        )
        from repro.service.simulate import format_run_summary

        summary = sweep_map(sweep, "run", None, _run_cell, [point])[0]
        print(format_run_summary(summary, args.kernel, args.k))
        return 0
    from repro.resilience import RunSupervisor
    from repro.telemetry import Telemetry

    a = _load_matrix(args.matrix, args.scale)
    resilience = ResilienceConfig(
        checkpoint_dir=(
            str(args.checkpoint_dir) if args.checkpoint_dir else None
        ),
        checkpoint_interval=args.checkpoint_interval,
        resume=args.resume,
        timeout_s=args.timeout,
        max_retries=args.max_retries,
    )
    cfg = dataclasses.replace(
        scaled_config(args.pes, cache_shrink=args.cache_shrink),
        telemetry=_telemetry_config(args),
        resilience=resilience,
    )
    if args.replay is not None:
        cfg = dataclasses.replace(cfg, replay=args.replay)
    if args.execution is not None:
        cfg = dataclasses.replace(cfg, execution=args.execution)
    telemetry = Telemetry(cfg.telemetry)
    ledger = _open_ledger(args)
    from repro.memory.trace_store import open_trace_store

    trace_store = open_trace_store(
        str(args.trace_cache_dir) if args.trace_cache_dir else None
    )
    supervisor = RunSupervisor(
        resilience=resilience, telemetry=telemetry, ledger=ledger,
        trace_store=trace_store,
    )
    rng = np.random.default_rng(args.seed)
    b = rng.random((a.num_cols, args.k), dtype=np.float32)
    if args.kernel == "spmm":
        report = supervisor.run_kernel(cfg, "spmm", a, b)
    else:
        b_r = rng.random((a.num_rows, args.k), dtype=np.float32)
        report = supervisor.run_kernel(cfg, "sddmm", a, b_r, b)
    outcome = supervisor.last_outcome
    print(f"matrix              : {a}")
    print(f"kernel              : {args.kernel} (K={args.k})")
    print(f"system              : {cfg.name} "
          f"({cfg.num_pes} PEs)")
    print(f"simulated time      : {report.time_ms:.4f} ms")
    print(f"DRAM accesses       : {report.dram_accesses}")
    print(f"bandwidth utilization: {report.bandwidth_utilization:.1%}")
    print(f"requests per cycle  : {report.requests_per_cycle:.2f}")
    print(f"load imbalance      : {report.load_imbalance:.2f}")
    if outcome is not None and (outcome.degraded or outcome.retries):
        print(f"backend             : {outcome.backend}/{outcome.replay} "
              f"(requested {outcome.requested_backend}/"
              f"{outcome.requested_replay}, "
              f"{outcome.retries} retries, "
              f"{outcome.degradations} degradations)")
    print(report.stats.summary())
    _write_telemetry(
        args, cfg, telemetry,
        workload={
            "matrix": args.matrix, "scale": args.scale,
            "kernel": args.kernel, "k": args.k, "pes": args.pes,
        },
        ledger=ledger if ledger.enabled else None,
    )
    _close_ledger(ledger)
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    a = _load_matrix(args.matrix, args.scale)
    cfg = scaled_config(args.pes, cache_shrink=args.cache_shrink)
    if args.replay is not None:
        cfg = dataclasses.replace(cfg, replay=args.replay)
    if args.execution is not None:
        cfg = dataclasses.replace(cfg, execution=args.execution)
    system = SpadeSystem(cfg)
    result = autotune(
        system, a, args.kernel, args.k,
        quick=not args.full, row_panel_divisor=args.rp_divisor,
    )
    print(f"matrix: {a}")
    stats = reuse_stats(a)
    print(
        f"estimated RU: {estimate_ru(a).value} "
        f"(col gini {stats.col_gini:.2f}, "
        f"bandedness {stats.bandedness:.2f})"
    )
    print(f"\n{'setting':<42} time (ms)")
    for settings, time_ns in result.ranked():
        marker = " <- best" if settings == result.best_settings else ""
        print(f"{settings.describe():<42} {time_ns / 1e6:.4f}{marker}")
    print(
        f"\nSPADE Opt gain over Base: "
        f"{result.speedup_over_base:.2f}x"
    )
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.telemetry import EventTracer, run_manifest

    problem = _validate_sweep_args(args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    # Tracing wants to observe the builds, so it forces the serial path.
    sweep = None if args.trace else _sweep_runner(args)
    header = (
        f"{'name':<6} {'full name':<26} {'domain':<24} {'RU':<7} "
        f"{'rows':>8} {'nnz':>9}  (at --scale {args.scale})"
    )
    if sweep is not None:
        from repro.sweep import sweep_map

        points = [(bench.name, args.scale) for bench in SUITE]
        dims = sweep_map(sweep, "suite", None, _suite_cell, points)
        print(header)
        for bench, d in zip(SUITE, dims):
            print(
                f"{bench.name:<6} {bench.full_name:<26} "
                f"{bench.domain:<24} {bench.ru.value:<7} "
                f"{d['rows']:>8} {d['nnz']:>9}"
            )
        _close_ledger(sweep.ledger)
        return 0
    tracer = EventTracer(enabled=bool(args.trace))
    print(header)
    for bench in SUITE:
        with tracer.span(
            f"build {bench.name}", cat="suite",
            args={"scale": args.scale},
        ):
            m = bench.build(args.scale)
        print(
            f"{bench.name:<6} {bench.full_name:<26} {bench.domain:<24} "
            f"{bench.ru.value:<7} {m.num_rows:>8} {m.nnz:>9}"
        )
    if args.trace:
        manifest = run_manifest(
            workload={"command": "suite", "scale": args.scale},
            argv=sys.argv[1:],
        )
        path = tracer.write(args.trace, metadata={"manifest": manifest})
        print(f"trace written: {path} (open in Perfetto)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    problem = _validate_sweep_args(args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    env = get_environment()
    if getattr(args, "trace_cache_dir", None):
        env = dataclasses.replace(
            env, trace_cache_dir=str(args.trace_cache_dir)
        )
    # CLI flags win; otherwise fall back to REPRO_JOBS/REPRO_CACHE_DIR.
    sweep = (
        _sweep_runner(args, resilience=env.resilience_config())
        or env.sweep()
    )
    for name in args.names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{', '.join(EXPERIMENTS)}", file=sys.stderr)
            return 2
        module = importlib.import_module(f"repro.bench.{name}")
        result = (
            module.run(sweep=sweep)
            if name == "sec7g"
            else module.run(env, sweep=sweep)
        )
        print(module.format_result(result))
        print()
    if sweep is not None and sweep.report.total:
        print(f"sweep: {sweep.report.summary()}", file=sys.stderr)
    if sweep is not None:
        _close_ledger(sweep.ledger)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Crash-safe sweep execution: like ``experiment``, but with the
    lease protocol always on — shard runners claim jobs from a shared
    cache+lease directory, dead runners' jobs are reclaimed, and poison
    jobs are quarantined instead of crash-looping."""
    import importlib

    problem = _validate_sweep_args(args)
    if problem is None and args.max_attempts < 1:
        problem = "--max-attempts must be >= 1"
    if problem is None and args.lease_ttl <= 0:
        problem = "--lease-ttl must be a positive number of seconds"
    if problem is None and args.shard is not None and (
        args.cache_dir is None or args.no_cache
    ):
        problem = (
            "--shard i/N requires --cache-dir DIR: the shared cache is "
            "how shard runners exchange results"
        )
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    env = get_environment()
    from repro.sweep import SweepRunner, open_cache

    cache_dir = None if args.no_cache else args.cache_dir
    sweep = SweepRunner(
        jobs=args.jobs,
        cache=open_cache(str(cache_dir) if cache_dir else None),
        resilience=env.resilience_config(),
        ledger=_open_ledger(args),
        max_attempts=args.max_attempts,
        keep_going=args.keep_going,
        shard=args.shard,
        lease_dir=str(args.lease_dir) if args.lease_dir else None,
        lease_ttl_s=args.lease_ttl,
    )
    for name in args.names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{', '.join(EXPERIMENTS)}", file=sys.stderr)
            return 2
        module = importlib.import_module(f"repro.bench.{name}")
        holes_before = sweep.report.failed + sweep.report.quarantined
        result = (
            module.run(sweep=sweep)
            if name == "sec7g"
            else module.run(env, sweep=sweep)
        )
        holes = (
            sweep.report.failed + sweep.report.quarantined - holes_before
        )
        if holes:
            # Results have None holes; the driver's formatter cannot
            # render them, so report the gap instead of a partial table.
            print(f"{name}: output suppressed — {holes} grid cell(s) "
                  f"failed or quarantined (see the lease directory's "
                  f"quarantine manifests and the run ledger)")
            print()
        else:
            print(module.format_result(result))
            print()
    if sweep.report.total:
        print(f"sweep: {sweep.report.summary()}", file=sys.stderr)
    # Diagnostics go to stderr so stdout stays byte-comparable with
    # ``repro experiment`` (the shard-merge CI lane diffs them).
    _close_ledger(sweep.ledger, stream=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Long-lived simulation service over the sweep substrate: memoized
    answers from the shared result cache, request coalescing, admission
    control, and the PR 9 supervised pool doing the execution."""
    import asyncio

    from repro.service.admission import AdmissionPolicy
    from repro.service.pool import ServicePool
    from repro.service.server import ServiceServer, SimulationService
    from repro.sweep.cache import ResultCache
    from repro.telemetry import Telemetry

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    cache = ResultCache(str(args.cache_dir))
    telemetry = Telemetry(TelemetryConfig(metrics=True))
    ledger = _open_ledger(args)
    pool = ServicePool(
        cache,
        workers=args.workers,
        telemetry=telemetry,
        ledger=ledger,
        max_attempts=args.max_attempts,
        lease_dir=str(args.lease_dir) if args.lease_dir else None,
        lease_ttl_s=args.lease_ttl,
    )
    policy = AdmissionPolicy(
        max_queue=args.max_queue,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
    )
    service = SimulationService(
        cache, pool, policy=policy, telemetry=telemetry, ledger=ledger
    )
    server = ServiceServer(service, host=args.host, port=args.port)

    async def _serve() -> None:
        task = asyncio.ensure_future(server.serve())
        while not server._started.is_set():
            await asyncio.sleep(0.01)
        print(f"serving             : http://{server.host}:{server.port}")
        print(f"cache dir           : {cache.directory}")
        print(f"workers             : {pool.workers}")
        sys.stdout.flush()
        await task

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        pool.close()
        stats = service.stats()
        print(
            f"served              : {stats['served']} answers "
            f"({stats['memo_hits']} memo, "
            f"{stats['coalescing']['coalesced']} coalesced, "
            f"{stats['pool']['executed']} executed)",
            file=sys.stderr,
        )
        _close_ledger(ledger, stream=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one simulation request to a running ``repro serve`` and
    print the answer exactly as ``repro run`` would."""
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.simulate import format_run_summary

    client = ServiceClient(
        host=args.host, port=args.port, timeout_s=args.timeout
    )
    body = {
        "matrix": args.matrix, "scale": args.scale,
        "kernel": args.kernel, "k": args.k, "pes": args.pes,
        "cache_shrink": args.cache_shrink, "seed": args.seed,
        "replay": args.replay, "execution": args.execution,
        "tenant": args.tenant, "priority": args.priority,
    }
    try:
        answer = client.simulate(**body)
    except ServiceError as exc:
        message = f"error: {exc}"
        if exc.retry_after_s:
            message += f" (retry after {exc.retry_after_s:g}s)"
        print(message, file=sys.stderr)
        return 3 if exc.status in (429, 503) else 2
    except OSError as exc:
        print(
            f"error: cannot reach service at "
            f"{args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(answer, indent=2, sort_keys=True))
        return 0
    print(format_run_summary(answer["result"], args.kernel, args.k))
    if args.verbose:
        print(
            f"source              : {answer['source']} "
            f"(key {answer['key'][:16]})",
            file=sys.stderr,
        )
    return 0


def _cmd_config(args: argparse.Namespace) -> int:
    cfg = scaled_config(args.pes, cache_shrink=args.cache_shrink)
    print(config_summary(cfg))
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs import aggregate, format_report

    agg = aggregate(args.paths)
    if not agg["files"]:
        print("error: no ledger files found", file=sys.stderr)
        return 2
    if args.json:
        text = json.dumps(agg, indent=2, sort_keys=True) + "\n"
    else:
        text = format_report(agg, top=args.top) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"report written      : {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_obs_validate(args: argparse.Namespace) -> int:
    from repro.obs import validate_ledgers

    try:
        info = validate_ledgers(
            args.paths, require_dispatch=args.require_dispatch
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"validated {info['events']} events "
        f"across {info['files']} ledger file(s)"
    )
    for etype, count in sorted(info["by_type"].items()):
        print(f"  {etype:<12} {count}")
    return 0


def _cmd_obs_schema(args: argparse.Namespace) -> int:
    from repro.obs import as_json_schema

    print(json.dumps(as_json_schema(), indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPADE (ISCA 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--pes", type=int, default=8,
                       help="number of SPADE PEs (default 8)")
        p.add_argument("--cache-shrink", type=float, default=32.0,
                       help="extra cache shrink factor (default 32)")
        p.add_argument("--scale", default="small",
                       choices=["tiny", "small", "default", "large"])
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--replay", choices=replay_modes(), default=None,
                       help="trace-replay backend (default: the config "
                       "default; all modes are bit-identical, they "
                       "differ only in host speed)")
        p.add_argument("--execution", choices=EXECUTION_MODES,
                       default=None,
                       help="PE execution backend (default: the config "
                       "default; all modes are bit-identical)")

    def sweep_flags(p):
        grp = p.add_argument_group("parallel sweep")
        grp.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes (default 1; parallel "
                         "output is byte-identical to serial)")
        grp.add_argument("--cache-dir", type=Path, default=None,
                         metavar="DIR",
                         help="content-addressed result cache so "
                         "re-runs skip completed jobs")
        grp.add_argument("--no-cache", action="store_true",
                         help="never read or write the result cache")
        grp.add_argument("--ledger", type=Path, default=None,
                         metavar="DIR",
                         help="record a run-ledger flight recording "
                         "into DIR (JSONL lifecycle events plus the "
                         "replay dispatch audit; see 'repro obs')")
        grp.add_argument("--trace-cache-dir", type=Path, default=None,
                         metavar="DIR",
                         help="content-addressed epoch-trace store: "
                         "vectorized/pipelined runs reuse cached "
                         "generated traces (keyed by workload + "
                         "schedule + VRF config only, so entries are "
                         "shared across cache-geometry ablations); "
                         "results stay bit-identical to live "
                         "generation")

    run_p = sub.add_parser("run", help="execute one kernel")
    run_p.add_argument("--matrix", required=True,
                       help="suite name (e.g. KRO) or .mtx path")
    run_p.add_argument("--kernel", choices=["spmm", "sddmm"],
                       default="spmm")
    run_p.add_argument("--k", type=int, default=32,
                       help="dense matrix row size")
    common(run_p)
    tel = run_p.add_argument_group("telemetry")
    tel.add_argument("--trace", type=Path, default=None, metavar="PATH",
                     help="write a Chrome trace-event JSON (Perfetto)")
    tel.add_argument("--trace-chunks", action="store_true",
                     help="also trace every PE chunk replay (big traces)")
    tel.add_argument("--metrics-out", type=Path, default=None,
                     metavar="PATH",
                     help="write the metrics registry (.json/.csv/.prom "
                     "chosen by suffix)")
    tel.add_argument("--manifest-out", type=Path, default=None,
                     metavar="PATH",
                     help="write the run provenance manifest JSON")
    tel.add_argument("--profile", action="store_true",
                     help="print the hottest phases after the run")
    tel.add_argument("--profile-top", type=int, default=10,
                     help="rows in the --profile table (default 10)")
    res = run_p.add_argument_group("resilience (long runs)")
    res.add_argument("--checkpoint-dir", type=Path, default=None,
                     metavar="DIR",
                     help="write an epoch snapshot into DIR so the run "
                     "can be resumed after a crash or kill")
    res.add_argument("--checkpoint-interval", type=int, default=1,
                     metavar="N",
                     help="snapshot every N epochs (default 1)")
    res.add_argument("--resume", action="store_true",
                     help="resume from the latest snapshot in "
                     "--checkpoint-dir (bit-identical to an "
                     "uninterrupted run)")
    res.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="wall-clock watchdog per attempt, in seconds")
    res.add_argument("--max-retries", type=int, default=0, metavar="N",
                     help="retry transient failures up to N times per "
                     "execution backend (default 0)")
    sweep_flags(run_p)
    run_p.set_defaults(func=_cmd_run)

    tune_p = sub.add_parser("autotune", help="SPADE Opt search")
    tune_p.add_argument("--matrix", required=True)
    tune_p.add_argument("--kernel", choices=["spmm", "sddmm"],
                        default="spmm")
    tune_p.add_argument("--k", type=int, default=32)
    tune_p.add_argument("--full", action="store_true",
                        help="full Table 3 sweep (default: quick)")
    tune_p.add_argument("--rp-divisor", type=int, default=8)
    common(tune_p)
    tune_p.set_defaults(func=_cmd_autotune)

    suite_p = sub.add_parser("suite", help="list the Table 2 suite")
    suite_p.add_argument("--scale", default="small",
                         choices=["tiny", "small", "default", "large"])
    suite_p.add_argument("--trace", type=Path, default=None,
                         metavar="PATH",
                         help="trace suite construction (Perfetto JSON)")
    sweep_flags(suite_p)
    suite_p.set_defaults(func=_cmd_suite)

    exp_p = sub.add_parser("experiment",
                           help="run paper experiments by name")
    exp_p.add_argument("names", nargs="+",
                       help=f"one of: {', '.join(EXPERIMENTS)}")
    sweep_flags(exp_p)
    exp_p.set_defaults(func=_cmd_experiment)

    swp_p = sub.add_parser(
        "sweep",
        help="crash-safe, shardable experiment sweeps (lease protocol)",
    )
    swp_p.add_argument("names", nargs="+",
                       help=f"one of: {', '.join(EXPERIMENTS)}")
    sweep_flags(swp_p)
    crash = swp_p.add_argument_group("crash safety / sharding")
    crash.add_argument("--shard", type=_shard_spec, default=None,
                       metavar="i/N",
                       help="run shard i of N concurrent runners "
                       "(0-based: the first of 2 runners is 0/2, the "
                       "last 1/2) splitting one grid by claiming job "
                       "leases in a shared --cache-dir; every runner "
                       "returns the full merged result, byte-identical "
                       "to serial")
    crash.add_argument("--keep-going", action="store_true",
                       help="complete the sweep around failed or "
                       "quarantined jobs instead of raising")
    crash.add_argument("--max-attempts", type=int, default=3,
                       metavar="N",
                       help="lease attempts before a crash-looping job "
                       "is quarantined as poison (default 3)")
    crash.add_argument("--lease-ttl", type=float, default=30.0,
                       metavar="S",
                       help="seconds without a heartbeat before a "
                       "lease is presumed orphaned and reclaimed "
                       "(default 30)")
    crash.add_argument("--lease-dir", type=Path, default=None,
                       metavar="DIR",
                       help="lease/quarantine directory (default: "
                       "<cache-dir>/.leases)")
    swp_p.set_defaults(func=_cmd_sweep)

    srv_p = sub.add_parser(
        "serve",
        help="simulation-as-a-service HTTP server (memoized answers, "
        "request coalescing, admission control)",
    )
    srv_p.add_argument("--host", default="127.0.0.1")
    srv_p.add_argument("--port", type=int, default=8765,
                       help="listen port (0 picks a free one; the "
                       "bound port is printed at startup)")
    srv_p.add_argument("--workers", type=int, default=2, metavar="N",
                       help="simulation worker processes (default 2)")
    srv_p.add_argument("--cache-dir", type=Path, required=True,
                       metavar="DIR",
                       help="content-addressed result cache backing "
                       "the memo layer (shared with 'repro run/sweep "
                       "--cache-dir': their keys are identical)")
    srv_p.add_argument("--ledger", type=Path, default=None,
                       metavar="DIR",
                       help="record request lifecycle + execution "
                       "events into DIR (see 'repro obs report')")
    srv_p.add_argument("--max-queue", type=int, default=64, metavar="N",
                       help="maximum queued+running executions before "
                       "503 (default 64)")
    srv_p.add_argument("--quota-rate", type=float, default=4.0,
                       metavar="R",
                       help="per-tenant admitted requests per second "
                       "(default 4)")
    srv_p.add_argument("--quota-burst", type=float, default=16.0,
                       metavar="B",
                       help="per-tenant token-bucket burst (default 16)")
    srv_p.add_argument("--max-attempts", type=int, default=3,
                       metavar="N",
                       help="attempts before a crash-looping job is "
                       "quarantined (default 3)")
    srv_p.add_argument("--lease-ttl", type=float, default=30.0,
                       metavar="S",
                       help="lease heartbeat TTL in seconds (default 30)")
    srv_p.add_argument("--lease-dir", type=Path, default=None,
                       metavar="DIR",
                       help="lease/quarantine directory (default: "
                       "<cache-dir>/.leases)")
    srv_p.set_defaults(func=_cmd_serve)

    sub_p = sub.add_parser(
        "submit",
        help="submit one simulation to a running 'repro serve'",
    )
    sub_p.add_argument("--host", default="127.0.0.1")
    sub_p.add_argument("--port", type=int, default=8765)
    sub_p.add_argument("--matrix", required=True,
                       help="suite name (e.g. KRO); the service does "
                       "not accept filesystem paths")
    sub_p.add_argument("--kernel", choices=["spmm", "sddmm"],
                       default="spmm")
    sub_p.add_argument("--k", type=int, default=32,
                       help="dense matrix row size")
    common(sub_p)
    sub_p.add_argument("--tenant", default="anonymous",
                       help="quota accounting identity (default "
                       "'anonymous')")
    sub_p.add_argument("--priority", choices=["interactive", "batch"],
                       default="interactive")
    sub_p.add_argument("--timeout", type=float, default=300.0,
                       metavar="S",
                       help="client-side wait for the answer (default "
                       "300)")
    sub_p.add_argument("--json", action="store_true",
                       help="print the raw answer payload as JSON")
    sub_p.add_argument("--verbose", action="store_true",
                       help="also report the answer's source (memo / "
                       "executed / coalesced) on stderr")
    sub_p.set_defaults(func=_cmd_submit)

    cfg_p = sub.add_parser("config", help="show a system configuration")
    cfg_p.add_argument("--pes", type=int, default=224)
    cfg_p.add_argument("--cache-shrink", type=float, default=1.0)
    cfg_p.set_defaults(func=_cmd_config)

    obs_p = sub.add_parser(
        "obs", help="inspect run-ledger flight recordings"
    )
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)
    rep_p = obs_sub.add_parser(
        "report", help="aggregate ledgers into a rollup"
    )
    rep_p.add_argument("paths", nargs="+", type=Path,
                       help="ledger files or directories of *.jsonl")
    rep_p.add_argument("--json", action="store_true",
                       help="emit the raw aggregate as JSON")
    rep_p.add_argument("--top", type=int, default=10,
                       help="rows per table (default 10)")
    rep_p.add_argument("--out", type=Path, default=None, metavar="PATH",
                       help="write the report here instead of stdout")
    rep_p.set_defaults(func=_cmd_obs_report)
    val_p = obs_sub.add_parser(
        "validate", help="schema-validate every ledger event"
    )
    val_p.add_argument("paths", nargs="+", type=Path,
                       help="ledger files or directories of *.jsonl")
    val_p.add_argument("--require-dispatch", action="store_true",
                       help="fail unless at least one replay dispatch "
                       "audit event is present")
    val_p.set_defaults(func=_cmd_obs_validate)
    schema_p = obs_sub.add_parser(
        "schema", help="print the ledger event JSON schema"
    )
    schema_p.set_defaults(func=_cmd_obs_schema)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SpadeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
