"""SPADE Opt autotuner: pick the best flexibility-knob setting.

Section 7.A: "we set SPADE Opt to be, for each individual matrix, the
version with the best-performing parameter settings that we tried."
The autotuner simply executes each candidate setting on the simulated
system and keeps the fastest; results are memoised per (matrix, kernel,
K, system) so repeated benchmark invocations do not re-search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.accelerator import (
    ExecutionReport,
    KernelSettings,
    SpadeSystem,
)
from repro.sparse.coo import COOMatrix
from repro.tuning.space import opt_search_space, quick_search_space


@dataclass
class AutotuneResult:
    """Outcome of one SPADE Opt search."""

    best_settings: KernelSettings
    best_report: ExecutionReport
    trials: List[Tuple[KernelSettings, float]]

    @property
    def best_time_ns(self) -> float:
        return self.best_report.time_ns

    @property
    def speedup_over_base(self) -> float:
        """How much faster the best setting is than SPADE Base, if Base
        was among the trials (it always is in the standard spaces)."""
        base_times = [
            t for s, t in self.trials if s == KernelSettings.base()
        ]
        if not base_times:
            return 1.0
        return base_times[0] / self.best_time_ns

    def ranked(self) -> List[Tuple[KernelSettings, float]]:
        return sorted(self.trials, key=lambda st: st[1])


_MEMO: Dict[tuple, AutotuneResult] = {}


def _matrix_key(a: COOMatrix) -> tuple:
    return (
        a.num_rows,
        a.num_cols,
        a.nnz,
        int(a.r_ids[0]) if a.nnz else -1,
        int(a.c_ids[-1]) if a.nnz else -1,
        float(a.vals.sum()),
    )


def autotune(
    system: SpadeSystem,
    a: COOMatrix,
    kernel: str,
    k: int,
    quick: bool = False,
    space: Optional[List[KernelSettings]] = None,
    rng_seed: int = 7,
    row_panel_divisor: int = 1,
) -> AutotuneResult:
    """Search the Table 3 space for the fastest setting.

    ``kernel`` is "spmm" or "sddmm".  ``quick=True`` uses the reduced
    space (for benchmarks); an explicit ``space`` overrides both.
    """
    if kernel not in ("spmm", "sddmm"):
        raise ValueError("kernel must be 'spmm' or 'sddmm'")
    memo_key = (
        _matrix_key(a), kernel, k, system.config.name,
        system.config.num_pes, quick, space is None, row_panel_divisor,
    )
    if space is None and memo_key in _MEMO:
        return _MEMO[memo_key]

    candidates = space
    if candidates is None:
        candidates = (
            quick_search_space(a, k, row_panel_divisor)
            if quick
            else opt_search_space(a, k, row_panel_divisor=row_panel_divisor)
        )

    rng = np.random.default_rng(rng_seed)
    b = rng.random((a.num_cols, k), dtype=np.float32)
    if kernel == "sddmm":
        b_r = rng.random((a.num_rows, k), dtype=np.float32)

    trials: List[Tuple[KernelSettings, float]] = []
    best: Optional[ExecutionReport] = None
    best_settings: Optional[KernelSettings] = None
    for settings in candidates:
        if kernel == "spmm":
            report = system.spmm(a, b, settings)
        else:
            report = system.sddmm(a, b_r, b, settings)
        trials.append((settings, report.time_ns))
        if best is None or report.time_ns < best.time_ns:
            best = report
            best_settings = settings

    result = AutotuneResult(
        best_settings=best_settings, best_report=best, trials=trials
    )
    if space is None:
        _MEMO[memo_key] = result
    return result


def clear_memo() -> None:
    """Drop all memoised autotune results (for tests)."""
    _MEMO.clear()
