"""The SPADE Opt parameter space (Table 3).

For each dense row size K the paper sweeps: three row panel sizes,
three column panel sizes (small / medium / all columns), rMatrix bypass
on/off, and scheduling barriers (only for the medium column panel).
For MYC, which has very few rows, a row panel of 16 is added to
mitigate load imbalance.

Because this reproduction runs scaled-down matrices, column panel sizes
can be generated in two modes: ``paper`` uses the literal Table 3
values; ``scaled`` (default) derives panels with the same *relative*
coverage (columns / 256, columns / 8, all columns), preserving the
small/medium/large character of each point on any matrix size.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.accelerator import KernelSettings
from repro.sparse.coo import COOMatrix

SMALL_ROW_PANEL_THRESHOLD = 4096
"""Matrices with fewer rows than this also try RP=16 (the MYC rule)."""


def paper_row_panels(divisor: int = 1) -> List[int]:
    """Table 3 row panel sizes, optionally divided by ``divisor``.

    The paper's row panel sizes target million-row matrices; on
    scaled-down matrices, dividing them (and the victim cache, see
    ``scaled_config``) by the same factor preserves the panels-per-PE
    and panel-footprint-vs-victim-cache ratios that drive Tables 5/6
    and Figure 11.
    """
    return [max(2, rp // divisor) for rp in (64, 256, 1024)]


def paper_col_panels(k: int) -> List[Optional[int]]:
    """Table 3 column panel sizes (None = all_columns)."""
    if k <= 32:
        return [8192, 524288, None]
    return [2048, 131072, None]


def scaled_col_panels(num_cols: int) -> List[Optional[int]]:
    """Small / medium / all-columns panels scaled to the matrix width."""
    small = max(64, num_cols // 256)
    medium = max(small * 8, num_cols // 8)
    if medium >= num_cols:
        medium = max(small + 1, num_cols // 2)
    return [small, medium, None]


def _medium_panel(panels: Sequence[Optional[int]]) -> Optional[int]:
    """The 'medium' entry — the only one that gets barrier variants."""
    finite = [p for p in panels if p is not None]
    return sorted(finite)[-1] if finite else None


def opt_search_space(
    matrix: COOMatrix,
    k: int,
    mode: str = "scaled",
    include_bypass: bool = True,
    include_barriers: bool = True,
    row_panel_divisor: int = 1,
) -> List[KernelSettings]:
    """All SPADE Opt candidate settings for one matrix and K.

    Mirrors Table 3's restrictions: barriers are only tried with the
    medium column panel; bypass doubles every point; SPADE Base
    (RP=256, CP=all) is always among the candidates.
    """
    if mode == "paper":
        col_panels = paper_col_panels(k)
    elif mode == "scaled":
        col_panels = scaled_col_panels(matrix.num_cols)
    else:
        raise ValueError(f"unknown mode {mode!r}; use 'paper' or 'scaled'")

    row_panels = paper_row_panels(row_panel_divisor)
    if matrix.num_rows < SMALL_ROW_PANEL_THRESHOLD // row_panel_divisor:
        row_panels = [max(2, 16 // row_panel_divisor)] + row_panels
    medium = _medium_panel(col_panels)

    space: List[KernelSettings] = []
    for rp in row_panels:
        for cp in col_panels:
            barrier_options = [False]
            if include_barriers and cp is not None and cp == medium:
                barrier_options.append(True)
            bypass_options = [False, True] if include_bypass else [False]
            for barriers in barrier_options:
                for bypass in bypass_options:
                    space.append(
                        KernelSettings(
                            row_panel_size=rp,
                            col_panel_size=cp,
                            rmatrix_bypass=bypass,
                            use_barriers=barriers,
                        )
                    )
    return space


def quick_search_space(
    matrix: COOMatrix, k: int, row_panel_divisor: int = 1
) -> List[KernelSettings]:
    """A reduced sweep for fast benchmarking: base, small tiles,
    small tiles + barriers, and bypass variants."""
    small_cp, medium_cp, _ = scaled_col_panels(matrix.num_cols)
    small_threshold = SMALL_ROW_PANEL_THRESHOLD // row_panel_divisor
    rp_small, rp_base, rp_large = paper_row_panels(row_panel_divisor)
    rp = rp_small if matrix.num_rows < small_threshold else rp_large
    base_rp = rp_base
    return [
        KernelSettings(row_panel_size=base_rp),
        KernelSettings(row_panel_size=base_rp, rmatrix_bypass=True),
        KernelSettings(row_panel_size=rp, col_panel_size=small_cp),
        KernelSettings(
            row_panel_size=rp, col_panel_size=medium_cp, use_barriers=True
        ),
        KernelSettings(
            row_panel_size=rp,
            col_panel_size=small_cp,
            rmatrix_bypass=True,
        ),
    ]
