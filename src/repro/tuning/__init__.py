"""SPADE Opt: the flexibility-knob search of Section 7.A / Table 3."""

from repro.tuning.space import (
    opt_search_space,
    paper_col_panels,
    paper_row_panels,
)
from repro.tuning.autotune import AutotuneResult, autotune

__all__ = [
    "opt_search_space",
    "paper_row_panels",
    "paper_col_panels",
    "autotune",
    "AutotuneResult",
]
