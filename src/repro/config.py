"""System configuration for the SPADE simulator.

All microarchitectural parameters are taken from Table 1 of the paper
("Microarchitecture of SPADE and its host CPU multicore system, modeled
after a 2-socket Ice Lake with 56 cores total").  The paper's default
SPADE system has 224 PEs (four PEs per CPU core); scaled systems
(SPADE2/4/8 Base) multiply PE count, DRAM bandwidth, LLC size, and link
latency.

Simulating 224 PEs at full matrix scale is infeasible in pure Python, so
:func:`scaled_config` derives a proportionally scaled system: the ratio
of per-PE cache capacity to per-PE working set — which drives every
qualitative result in the paper — is preserved.
"""

from __future__ import annotations

import dataclasses
import importlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigError

CACHE_LINE_BYTES = 64
"""System cache line size in bytes (Table 1: 64B VR entries)."""

FLOAT_BYTES = 4
"""Single-precision floats everywhere (Table 1: single precision SIMD)."""

ELEMS_PER_LINE = CACHE_LINE_BYTES // FLOAT_BYTES
"""Dense elements per cache line (= vector length VL of a vOp)."""


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache."""

    size_bytes: int
    associativity: int
    line_bytes: int = CACHE_LINE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible by "
                f"{self.associativity} ways x {self.line_bytes}B lines"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class PEConfig:
    """One SPADE processing element (Table 1, SPADE columns)."""

    frequency_ghz: float = 0.8
    issue_vops_per_cycle: int = 1
    num_vector_registers: int = 64
    writeback_high_threshold: float = 0.25
    writeback_low_threshold: float = 0.15
    dense_load_queue_entries: int = 32
    sparse_load_queue_entries: int = 6
    store_queue_entries: int = 8
    vop_rs_entries: int = 32
    top_queue_entries: int = 16
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, associativity=8)
    )
    bbf_entries: int = 32
    victim_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=16 * 1024, associativity=2
        )
    )

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz


@dataclass(frozen=True)
class GenConfig:
    """The trace-*generation* identity slice of a :class:`SpadeConfig`.

    Exactly the config facts the generated access stream depends on:
    PE count (schedule partitioning) and the VRF's capacity and
    Write-back Manager watermarks (hit/miss outcomes, drain sets, and
    the elision cadence).  Deliberately excluded: cache geometry,
    replay backend, execution mode, pipeline shape, telemetry and
    resilience — the emitted trace is bit-identical across all of
    them, which is what lets the content-addressed trace store
    (:mod:`repro.memory.trace_store`) be shared across cache-ablation
    sweep cells.
    """

    num_pes: int
    num_vector_registers: int
    writeback_high_threshold: float
    writeback_low_threshold: float

    def as_key_dict(self) -> dict:
        """JSON-stable form for content-addressed key material."""
        return {
            "num_pes": int(self.num_pes),
            "num_vector_registers": int(self.num_vector_registers),
            "writeback_high_threshold": float(
                self.writeback_high_threshold
            ),
            "writeback_low_threshold": float(
                self.writeback_low_threshold
            ),
        }


def gen_config(config: "SpadeConfig") -> GenConfig:
    """Project the generation-identity slice out of a full config."""
    pe = config.pe
    return GenConfig(
        num_pes=config.num_pes,
        num_vector_registers=pe.num_vector_registers,
        writeback_high_threshold=pe.writeback_high_threshold,
        writeback_low_threshold=pe.writeback_low_threshold,
    )


@dataclass(frozen=True)
class MemoryConfig:
    """Shared memory system (Table 1)."""

    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=1_310_720, associativity=20
        )
    )
    pes_per_l2: int = 4
    llc_slice: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=1_572_864, associativity=12
        )
    )
    num_llc_slices: int = 56
    dram_peak_gbps: float = 410.0
    dram_achievable_gbps: float = 304.0
    # Round-trip latencies seen by a PE, in nanoseconds.  link_latency_ns is
    # the PE <-> memory-controller link component studied in Section 7.B.
    l1_latency_ns: float = 2.0
    l2_latency_ns: float = 10.0
    llc_latency_ns: float = 30.0
    dram_latency_ns: float = 90.0
    link_latency_ns: float = 60.0

    @property
    def llc_total_bytes(self) -> int:
        return self.llc_slice.size_bytes * self.num_llc_slices


@dataclass(frozen=True)
class HostCPUConfig:
    """Host multicore (Table 1, Ice Lake columns) used by the CPU baseline."""

    num_cores: int = 56
    frequency_ghz: float = 2.6
    turbo_ghz: float = 3.5
    simd_fp_units: int = 3
    simd_width_elems: int = 16  # AVX-512, single precision
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=48 * 1024, associativity=12)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=1_310_720, associativity=20)
    )
    llc_total_bytes: int = 84 * 1024 * 1024
    dram_achievable_gbps: float = 304.0
    tdp_watts: float = 470.0
    die_area_mm2: float = 1000.0


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability switches (see :mod:`repro.telemetry`).

    Everything defaults off: the default config must run the golden
    fixtures bit-identically and at full speed.  ``metrics`` turns on
    the structured metrics registry that core/memory publish into;
    ``trace`` records Perfetto-loadable wall-clock spans of the run;
    ``trace_chunks`` additionally emits one span per PE chunk replay
    (fine-grained, larger traces).
    """

    metrics: bool = False
    trace: bool = False
    trace_chunks: bool = False

    def __post_init__(self) -> None:
        if self.trace_chunks and not self.trace:
            raise ConfigError("trace_chunks requires trace=True")

    @property
    def enabled(self) -> bool:
        return self.metrics or self.trace


@dataclass(frozen=True)
class ObsConfig:
    """Run-ledger (flight recorder) session settings.

    Deliberately **not** a field of :class:`SpadeConfig`: the ledger is
    a host-side observability channel, and where it lands on disk must
    not perturb config fingerprints, checkpoint identity, or sweep
    cache keys.  Drivers build one from flags/env and call
    :meth:`make_ledger`; with no directory configured that returns the
    shared zero-cost null writer, so the default path records nothing
    and pays one attribute read per instrumented site.
    """

    ledger_dir: Optional[str] = None
    validate: bool = False

    def __post_init__(self) -> None:
        if self.ledger_dir is not None and not str(self.ledger_dir):
            raise ConfigError("ledger_dir must be a non-empty path")

    @property
    def enabled(self) -> bool:
        return self.ledger_dir is not None

    def make_ledger(self, *run_id_parts: str):
        """An open :class:`~repro.obs.ledger.RunLedger` in
        ``ledger_dir`` (run id derived from ``run_id_parts`` when
        given), or ``NULL_LEDGER`` when no directory is configured."""
        from repro.obs.ledger import (
            NULL_LEDGER,
            derive_run_id,
            open_run_ledger,
        )

        if self.ledger_dir is None:
            return NULL_LEDGER
        return open_run_ledger(
            self.ledger_dir,
            run_id=derive_run_id(*run_id_parts) if run_id_parts else None,
            validate=self.validate,
        )


# -- trace-replay backend registry ----------------------------------------
#
# Replay backends are registered by name with a lazily resolved loader
# ("module:attribute" dotted path), so new implementations — including a
# future Numba/C backend — slot in without touching the engine or the
# MemorySystem.replay_trace call sites.  The loader resolves to a
# callable ``backend(memory_system, pe_id, lines, ops, region_names)``
# returning the per-access ServiceLevel array; every backend must be
# bit-identical to the scalar oracle on all counters and cache state.


@dataclass(frozen=True)
class ReplayBackend:
    """One registered trace-replay implementation."""

    name: str
    loader: str
    """Dotted ``module:attribute`` path of the backend callable,
    imported on first use (keeps config free of heavy imports and lets
    backends live next to the memory system without cycles)."""
    description: str = ""
    direct: bool = False
    """Direct backends issue per-access scalar calls themselves (the
    oracle); buffered backends consume whole chunk traces via
    ``MemorySystem.replay_trace``."""
    rank: int = 0
    """Degradation order: the supervisor falls back from higher to
    lower rank (fastest/most complex first, oracle last)."""

    def resolve(self) -> Callable:
        module_name, _, attr = self.loader.partition(":")
        if not attr:
            raise ConfigError(
                f"replay backend {self.name!r} has malformed loader "
                f"{self.loader!r}; expected 'module:attribute'"
            )
        obj = importlib.import_module(module_name)
        for part in attr.split("."):
            obj = getattr(obj, part)
        return obj


_REPLAY_BACKENDS: Dict[str, ReplayBackend] = {}


def register_replay_backend(
    name: str,
    loader: str,
    *,
    description: str = "",
    direct: bool = False,
    rank: int = 0,
    overwrite: bool = False,
) -> ReplayBackend:
    """Register a replay backend under ``name``.

    Registration is name-keyed and idempotent only with
    ``overwrite=True``; colliding with an existing name otherwise
    raises, so a typo cannot silently shadow a built-in."""
    if name in _REPLAY_BACKENDS and not overwrite:
        raise ConfigError(
            f"replay backend {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    spec = ReplayBackend(
        name=name, loader=loader, description=description,
        direct=direct, rank=rank,
    )
    _REPLAY_BACKENDS[name] = spec
    return spec


def unregister_replay_backend(name: str) -> None:
    """Remove a registered backend (test hygiene for ad-hoc modes)."""
    _REPLAY_BACKENDS.pop(name, None)


def replay_modes() -> Tuple[str, ...]:
    """The currently registered replay-mode names."""
    return tuple(_REPLAY_BACKENDS)


def replay_backend_spec(name: str) -> ReplayBackend:
    """Look up a registered backend; unknown names raise a
    :class:`ConfigError` that lists the registered modes."""
    try:
        return _REPLAY_BACKENDS[name]
    except KeyError:
        raise ConfigError(
            f"replay must be one of {replay_modes()}, got {name!r}"
        ) from None


def resolve_replay_backend(name: str) -> Callable:
    """Resolve a replay-mode name to its backend callable."""
    return replay_backend_spec(name).resolve()


def replay_degradation_ladder() -> Tuple[str, ...]:
    """Replay modes ordered fastest-first (descending rank, ties by
    registration order); the run supervisor walks this left to right."""
    names = list(_REPLAY_BACKENDS)
    return tuple(
        sorted(names, key=lambda n: (-_REPLAY_BACKENDS[n].rank, names.index(n)))
    )


register_replay_backend(
    "scalar", "repro.memory.hierarchy:replay_backend_scalar",
    description="per-access reference oracle (one scalar call per access)",
    direct=True, rank=0,
)
register_replay_backend(
    "batched", "repro.memory.hierarchy:replay_backend_batched",
    description="fused per-set dict walk over run-length-deduped chunks",
    rank=1,
)
register_replay_backend(
    "array", "repro.memory.replay_array:replay_trace_array",
    description="array-native stack-distance cascade (NumPy over whole "
    "trace partitions)",
    rank=2,
)

REPLAY_MODES = replay_modes()
"""Snapshot of the built-in replay-mode names (kept for import
compatibility; validation consults the live registry via
:func:`replay_modes`).  ``scalar`` is the per-access reference oracle;
``batched`` and ``array`` are vectorized fast paths, bit-identical to
the oracle on all counters and cache state (see
tests/test_memory_batched_parity.py and tests/test_replay_array_parity.py)."""

EXECUTION_MODES = ("scalar", "vectorized", "pipelined")
"""PE execution backends: ``scalar`` walks every nonzero in Python (the
reference oracle); ``vectorized`` derives each chunk's access stream
with NumPy and runs a reduced tight loop over it (bit-identical traces,
outputs, stats, and counters — see tests/test_execution_parity.py);
``pipelined`` additionally overlaps chunk-trace generation with the
serial replay cascade through a bounded producer/consumer queue."""


@dataclass(frozen=True)
class PipelineConfig:
    """Overlapped generate/replay pipeline (``execution="pipelined"``).

    ``lookahead`` bounds how many generated-but-not-yet-replayed chunk
    traces may queue per PE; ``pool`` selects where generation runs:
    ``thread`` uses a shared thread pool (generation overlaps the
    replay cascade), ``serial`` runs the same producer/consumer queue
    inline (deterministic, no threads — useful for debugging and CI).
    A process pool is deliberately not offered: each PE's VRF state is
    carried chunk-to-chunk, so generation for one PE is inherently
    serial and the state would have to be shipped across process
    boundaries every chunk (see DESIGN.md section 7).
    """

    lookahead: int = 2
    pool: str = "thread"
    workers: int = 4

    def __post_init__(self) -> None:
        if self.lookahead < 1:
            raise ConfigError("pipeline lookahead must be >= 1")
        if self.pool not in ("thread", "serial"):
            raise ConfigError(
                f"pipeline pool must be 'thread' or 'serial', got {self.pool!r}"
            )
        if self.workers < 1:
            raise ConfigError("pipeline workers must be >= 1")


@dataclass(frozen=True)
class ResilienceConfig:
    """Run-supervision knobs (see :mod:`repro.resilience`).

    Everything defaults off so the default config behaves exactly like
    an unsupervised run.  ``checkpoint_dir`` enables epoch-granular
    snapshots every ``checkpoint_interval`` epochs; ``resume`` restores
    the newest valid snapshot from that directory before running (a
    resumed run is bit-identical to an uninterrupted one).  The
    supervisor knobs bound retries (``max_retries`` with exponential
    backoff ``backoff_base_s * backoff_factor**attempt``), arm a
    watchdog (``timeout_s``, host wall-clock seconds), and control the
    pipelined -> vectorized -> scalar degradation ladder (``degrade``).
    """

    checkpoint_dir: Optional[str] = None
    checkpoint_interval: int = 1
    resume: bool = False
    timeout_s: Optional[float] = None
    max_retries: int = 0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ConfigError("checkpoint_interval must be >= 1")
        if self.resume and not self.checkpoint_dir:
            raise ConfigError("resume=True requires a checkpoint_dir")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError("timeout_s must be positive (or None)")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ConfigError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")

    @property
    def checkpointing(self) -> bool:
        return self.checkpoint_dir is not None

    @property
    def supervised(self) -> bool:
        """Whether any supervision feature beyond a plain run is on."""
        return bool(
            self.checkpoint_dir
            or self.resume
            or self.timeout_s
            or self.max_retries
        )


@dataclass(frozen=True)
class SpadeConfig:
    """A full SPADE system: host + PEs + shared memory hierarchy."""

    name: str = "SPADE1"
    num_pes: int = 224
    pe: PEConfig = field(default_factory=PEConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    host: HostCPUConfig = field(default_factory=HostCPUConfig)
    replay: str = "batched"
    execution: str = "vectorized"
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise ConfigError("num_pes must be >= 1")
        if self.replay not in _REPLAY_BACKENDS:
            raise ConfigError(
                f"replay must be one of {replay_modes()}, "
                f"got {self.replay!r}"
            )
        if self.execution not in EXECUTION_MODES:
            raise ConfigError(
                f"execution must be one of {EXECUTION_MODES}, "
                f"got {self.execution!r}"
            )

    @property
    def num_l2s(self) -> int:
        return max(1, self.num_pes // self.memory.pes_per_l2)

    @property
    def total_l1_bytes(self) -> int:
        return self.pe.l1d.size_bytes * self.num_pes

    def scaled(self, factor: int) -> "SpadeConfig":
        """Return a SPADEn Base system: ``factor``x the PE count, DRAM
        bandwidth, LLC size, and link latency (Section 7.E)."""
        if factor < 1:
            raise ConfigError("scale factor must be >= 1")
        mem = replace(
            self.memory,
            dram_peak_gbps=self.memory.dram_peak_gbps * factor,
            dram_achievable_gbps=self.memory.dram_achievable_gbps * factor,
            num_llc_slices=self.memory.num_llc_slices * factor,
            link_latency_ns=self.memory.link_latency_ns * factor,
        )
        return replace(
            self,
            name=f"SPADE{factor}" if factor > 1 else self.name,
            num_pes=self.num_pes * factor,
            memory=mem,
        )


def paper_config() -> SpadeConfig:
    """The full 224-PE system of Table 1."""
    return SpadeConfig()


def _shrunk_cache(cfg: CacheConfig, factor: float, floor_lines: int = 8) -> CacheConfig:
    """Shrink a cache by ``factor``, keeping associativity and alignment."""
    if factor <= 1:
        return cfg
    target_sets = max(
        1, int(cfg.num_sets / factor), -(-floor_lines // cfg.associativity)
    )
    return CacheConfig(
        size_bytes=target_sets * cfg.associativity * cfg.line_bytes,
        associativity=cfg.associativity,
        line_bytes=cfg.line_bytes,
    )


def scaled_config(
    num_pes: int = 28,
    name: Optional[str] = None,
    cache_shrink: float = 1.0,
) -> SpadeConfig:
    """A proportionally scaled SPADE system with ``num_pes`` PEs.

    The per-PE capacities of the shared structures (L2 per 4 PEs, LLC
    slices, DRAM bandwidth) match the 224-PE paper system, so cache
    pressure per unit of work is unchanged; only the aggregate system is
    smaller.

    ``cache_shrink`` additionally shrinks cache capacities so that the
    *footprint-to-capacity ratio* of scaled-down matrices matches the
    paper's full-size matrices (the quantity that decides whether
    tiling/barriers/bypassing pay off).  Shared caches (L2, LLC) shrink
    by the full factor; the L1 shrinks by at most 8x; the BBF and victim
    cache keep their Table 1 sizes, because their behaviour couples to
    the *absolute* row-panel sizes of Table 3, which are not scaled.
    The host CPU's LLC shrinks by the same factor for a fair baseline.
    """
    base = paper_config()
    if num_pes < 1:
        raise ConfigError("num_pes must be >= 1")
    if cache_shrink < 1:
        raise ConfigError("cache_shrink must be >= 1")
    ratio = num_pes / base.num_pes
    mem = replace(
        base.memory,
        l2=_shrunk_cache(base.memory.l2, cache_shrink),
        llc_slice=_shrunk_cache(base.memory.llc_slice, cache_shrink),
        num_llc_slices=max(1, round(base.memory.num_llc_slices * ratio)),
        dram_peak_gbps=base.memory.dram_peak_gbps * ratio,
        dram_achievable_gbps=base.memory.dram_achievable_gbps * ratio,
    )
    pe = replace(
        base.pe,
        l1d=_shrunk_cache(base.pe.l1d, min(cache_shrink, 8.0)),
        victim_cache=_shrunk_cache(
            base.pe.victim_cache, min(cache_shrink, 8.0)
        ),
    )
    host = replace(
        base.host,
        num_cores=max(1, round(base.host.num_cores * ratio)),
        l2=_shrunk_cache(base.host.l2, cache_shrink),
        llc_total_bytes=max(
            64 * 1024,
            round(base.host.llc_total_bytes * ratio / cache_shrink),
        ),
        dram_achievable_gbps=base.host.dram_achievable_gbps * ratio,
    )
    return replace(
        base,
        name=name or f"SPADE1-{num_pes}pe",
        num_pes=num_pes,
        pe=pe,
        memory=mem,
        host=host,
    )


def mini_config(num_pes: int = 4) -> SpadeConfig:
    """A tiny system in the spirit of the miniSPADE prototype die: a few
    PEs sharing one L2.  Useful for tests and cycle-level validation."""
    cfg = scaled_config(num_pes, name=f"miniSPADE-{num_pes}pe")
    pe = replace(
        cfg.pe,
        l1d=CacheConfig(size_bytes=8 * 1024, associativity=4),
        victim_cache=CacheConfig(size_bytes=2 * 1024, associativity=2),
    )
    mem = replace(
        cfg.memory,
        l2=CacheConfig(size_bytes=128 * 1024, associativity=8),
        llc_slice=CacheConfig(size_bytes=256 * 1024, associativity=8),
        num_llc_slices=1,
    )
    return replace(cfg, pe=pe, memory=mem)


def config_summary(cfg: SpadeConfig) -> str:
    """Human-readable one-line-per-parameter summary of a system."""
    rows = [
        ("system", cfg.name),
        ("PEs", cfg.num_pes),
        ("PE frequency", f"{cfg.pe.frequency_ghz} GHz"),
        ("vector registers / PE", cfg.pe.num_vector_registers),
        ("L1D / PE", f"{cfg.pe.l1d.size_bytes // 1024} KB"),
        ("BBF / PE", f"{cfg.pe.bbf_entries} lines"),
        ("victim cache / PE", f"{cfg.pe.victim_cache.size_bytes // 1024} KB"),
        ("L2 (per 4 PEs)", f"{cfg.memory.l2.size_bytes / 1024 / 1024:.2f} MB"),
        (
            "LLC total",
            f"{cfg.memory.llc_total_bytes / 1024 / 1024:.1f} MB",
        ),
        ("DRAM achievable", f"{cfg.memory.dram_achievable_gbps:.0f} GB/s"),
        ("link latency", f"{cfg.memory.link_latency_ns:.0f} ns"),
    ]
    width = max(len(k) for k, _ in rows)
    return "\n".join(f"{k:<{width}} : {v}" for k, v in rows)


def as_dict(cfg: SpadeConfig) -> dict:
    """Flatten a config to a plain dict (for logging/serialisation)."""
    return dataclasses.asdict(cfg)
