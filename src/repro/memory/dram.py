"""DRAM model: bandwidth, latency, and traffic accounting.

The paper simulates DRAM with DRAMsim3; here we use a calibrated
bandwidth/latency model.  Table 1 gives the 224-PE system a theoretical
410 GB/s and a maximum *observed* 304 GB/s; the gap is the efficiency
factor the model applies.  The model tracks read/write line counts (the
"DRAM accesses" metric of Figures 10 and 13) and converts traffic to a
bandwidth-limited service time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CACHE_LINE_BYTES, MemoryConfig


@dataclass
class DRAMModel:
    """Aggregate DRAM behind the LLC."""

    peak_gbps: float
    achievable_gbps: float
    latency_ns: float
    reads: int = 0
    writes: int = 0

    @classmethod
    def from_config(cls, mem: MemoryConfig) -> "DRAMModel":
        return cls(
            peak_gbps=mem.dram_peak_gbps,
            achievable_gbps=mem.dram_achievable_gbps,
            latency_ns=mem.dram_latency_ns,
        )

    def read_line(self) -> None:
        self.reads += 1

    def write_line(self) -> None:
        self.writes += 1

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_transferred(self) -> int:
        return self.accesses * CACHE_LINE_BYTES

    def service_time_ns(self, bytes_moved: int | None = None) -> float:
        """Time to move ``bytes_moved`` (default: all recorded traffic)
        at the achievable bandwidth."""
        if bytes_moved is None:
            bytes_moved = self.bytes_transferred
        return bytes_moved / self.achievable_gbps  # GB/s == B/ns

    def utilization(self, elapsed_ns: float) -> float:
        """Achieved fraction of peak bandwidth over an interval."""
        if elapsed_ns <= 0:
            return 0.0
        achieved_gbps = self.bytes_transferred / elapsed_ns
        return achieved_gbps / self.peak_gbps

    def reset_stats(self) -> None:
        self.reads = self.writes = 0

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        return {"reads": self.reads, "writes": self.writes}

    def load_state_dict(self, state: dict) -> None:
        self.reads = state["reads"]
        self.writes = state["writes"]
