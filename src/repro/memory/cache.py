"""Set-associative cache with LRU replacement and write-back policy.

Used for PE L1Ds, shared L2s, the sliced LLC, and the BBF victim cache.
Operates on cache-line indices (not byte addresses); the hot path is a
dict-per-set LRU exploiting Python's insertion-ordered dicts, which
keeps the simulator fast enough for million-access traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import CacheConfig

NO_LINE = -1
"""Sentinel in batched eviction arrays: no dirty line evicted."""


def rle_starts(lines: np.ndarray) -> np.ndarray:
    """Indices where a run of consecutive equal values begins.

    Consecutive repeat accesses to one line are guaranteed hits that
    leave the line at MRU, so only the first access of each run can
    change cache state; the repeats contribute hit counts (and their
    dirty bits OR into the run) without being replayed.
    """
    n = lines.shape[0]
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.not_equal(lines[1:], lines[:-1], out=starts[1:])
    return np.flatnonzero(starts)


class Cache:
    """One set-associative, write-back, write-allocate cache."""

    __slots__ = (
        "name", "num_sets", "ways", "_sets", "hits", "misses",
        "writebacks", "fills", "flush_writebacks", "replay_fast_hint",
    )

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.associativity
        # Perf hint for the array replay backend: whether the last
        # array solve on this cache found every set's distinct stream
        # footprint within the associativity (see replay_array.py).
        # Starts optimistic; never affects simulated behaviour.
        self.replay_fast_hint = True
        # One insertion-ordered dict per set: {line: dirty_flag};
        # first key = LRU, last key = MRU.
        self._sets: List[Dict[int, bool]] = [
            {} for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.fills = 0
        self.flush_writebacks = 0

    # -- core operations -----------------------------------------------

    def access(self, line: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access one line.

        Returns ``(hit, evicted_dirty_line)``.  On a miss the line is
        allocated (write-allocate); if the set overflows, the LRU line is
        evicted and, if dirty, returned so the caller can propagate the
        writeback to the next level.
        """
        s = self._sets[line % self.num_sets]
        dirty = s.get(line)
        if dirty is not None:
            # Hit: move to MRU position, merge dirty bit.
            del s[line]
            s[line] = dirty or is_write
            self.hits += 1
            return True, None
        self.misses += 1
        self.fills += 1
        evicted = None
        if len(s) >= self.ways:
            victim, victim_dirty = next(iter(s.items()))
            del s[victim]
            if victim_dirty:
                self.writebacks += 1
                evicted = victim
        s[line] = is_write
        return False, evicted

    def access_many(
        self,
        lines: np.ndarray,
        writes,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`access` over a trace of line indices.

        ``lines`` is an int64 array; ``writes`` is a matching bool array
        or a scalar bool applied to every access.  Returns ``(hits,
        evicted)`` aligned with ``lines``: ``hits[i]`` is the hit/miss
        outcome of access ``i`` and ``evicted[i]`` is the dirty line it
        evicted (``NO_LINE`` if none).  Counters and cache state after
        the call are bit-identical to issuing the same trace through
        :meth:`access` one element at a time.

        The implementation run-length-dedups consecutive same-line
        accesses (guaranteed MRU hits), then partitions the deduped
        trace by set index with one stable argsort so each set's
        subsequence is replayed through its LRU dict in original order.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        n = lines.shape[0]
        hits_full = np.ones(n, dtype=bool)
        evicted_full = np.full(n, NO_LINE, dtype=np.int64)
        if n == 0:
            return hits_full, evicted_full

        starts = rle_starts(lines)
        m = starts.shape[0]
        u_lines = lines if m == n else lines[starts]
        if np.ndim(writes) == 0:
            u_writes = [bool(writes)] * m
        else:
            w = np.asarray(writes, dtype=bool)
            if m == n:
                u_writes = w.tolist()
            else:
                # Dirty bits OR across each run (hit merge semantics).
                u_writes = np.logical_or.reduceat(w, starts).tolist()

        # Vectorized set partitioning: one stable sort groups the
        # deduped trace by set while preserving per-set access order.
        set_idx = u_lines % self.num_sets
        order = np.argsort(set_idx, kind="stable")
        order_l = order.tolist()
        sets_sorted = set_idx[order].tolist()
        lines_l = u_lines.tolist()

        miss_pos: List[int] = []
        miss_append = miss_pos.append
        ev_l: List[Tuple[int, int]] = []
        ev_append = ev_l.append
        sets = self._sets
        ways = self.ways
        cur_set = -1
        s: Dict[int, bool] = {}
        pop = s.pop
        for pos, j in zip(sets_sorted, order_l):
            if pos != cur_set:
                cur_set = pos
                s = sets[pos]
                pop = s.pop
            line = lines_l[j]
            # Dirty flags are bools, so None is a safe absence sentinel;
            # pop+reinsert performs the LRU move in two dict operations.
            dirty = pop(line, None)
            if dirty is not None:
                s[line] = dirty or u_writes[j]
                continue
            miss_append(j)
            if len(s) >= ways:
                victim = next(iter(s))
                if pop(victim):
                    ev_append((j, victim))
            s[line] = u_writes[j]

        misses = len(miss_pos)
        self.hits += (m - misses) + (n - m)
        self.misses += misses
        self.fills += misses
        self.writebacks += len(ev_l)

        if miss_pos:
            hits_full[starts[np.array(miss_pos, dtype=np.int64)]] = False
        if ev_l:
            ej, ev = zip(*ev_l)
            evicted_full[starts[np.array(ej, dtype=np.int64)]] = ev
        return hits_full, evicted_full

    def probe(self, line: int) -> bool:
        """Check residency without updating LRU state or counters."""
        return line in self._sets[line % self.num_sets]

    def invalidate(self, line: int) -> bool:
        """Drop one line if present; returns whether it was dirty."""
        s = self._sets[line % self.num_sets]
        dirty = s.pop(line, None)
        return bool(dirty)

    def flush(self) -> int:
        """Write back and invalidate everything; returns the number of
        dirty lines written back (mode-transition cost, Section 7.D).

        Flush-path writebacks are counted both in ``writebacks`` (total
        lines sent to the next level) and in ``flush_writebacks``, so
        epoch-boundary accounting can separate demand evictions from
        WB&Invalidate traffic.
        """
        dirty_count = 0
        for s in self._sets:
            dirty_count += sum(1 for d in s.values() if d)
            s.clear()
        self.writebacks += dirty_count
        self.flush_writebacks += dirty_count
        return dirty_count

    # -- inspection ------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)

    def dirty_lines(self) -> int:
        return sum(sum(1 for d in s.values() if d) for s in self._sets)

    def reset_stats(self) -> None:
        self.hits = self.misses = self.writebacks = self.fills = 0
        self.flush_writebacks = 0

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Full replayable state: per-set LRU contents (order = dict
        insertion order, first key LRU) plus the live counters."""
        return {
            "sets": [list(s.items()) for s in self._sets],
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "fills": self.fills,
            "flush_writebacks": self.flush_writebacks,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.  The geometry must
        match — snapshots are not portable across cache shapes."""
        if len(state["sets"]) != self.num_sets:
            raise ValueError(
                f"{self.name}: snapshot has {len(state['sets'])} sets, "
                f"cache has {self.num_sets}"
            )
        self._sets = [dict(items) for items in state["sets"]]
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.writebacks = state["writebacks"]
        self.fills = state["fills"]
        self.flush_writebacks = state["flush_writebacks"]

    def publish_metrics(self, registry, level: str, unit: str) -> None:
        """Snapshot this cache's counters into a metrics registry as
        ``spade_cache_*_total{level=,unit=}``.  Call once per run: the
        counters are cumulative, so repeated publishing double-counts."""
        for metric, value in (
            ("spade_cache_hits_total", self.hits),
            ("spade_cache_misses_total", self.misses),
            ("spade_cache_writebacks_total", self.writebacks),
            ("spade_cache_fills_total", self.fills),
            ("spade_cache_flush_writebacks_total", self.flush_writebacks),
        ):
            registry.counter(metric, level=level, unit=unit).inc(value)

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}, sets={self.num_sets}, ways={self.ways}, "
            f"hits={self.hits}, misses={self.misses})"
        )
