"""Set-associative cache with LRU replacement and write-back policy.

Used for PE L1Ds, shared L2s, the sliced LLC, and the BBF victim cache.
Operates on cache-line indices (not byte addresses); the hot path is a
dict-per-set LRU exploiting Python's insertion-ordered dicts, which
keeps the simulator fast enough for million-access traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import CacheConfig


class Cache:
    """One set-associative, write-back, write-allocate cache."""

    __slots__ = (
        "name", "num_sets", "ways", "_sets", "hits", "misses",
        "writebacks", "fills",
    )

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.associativity
        # One insertion-ordered dict per set: {line: dirty_flag};
        # first key = LRU, last key = MRU.
        self._sets: List[Dict[int, bool]] = [
            {} for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.fills = 0

    # -- core operations -----------------------------------------------

    def access(self, line: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access one line.

        Returns ``(hit, evicted_dirty_line)``.  On a miss the line is
        allocated (write-allocate); if the set overflows, the LRU line is
        evicted and, if dirty, returned so the caller can propagate the
        writeback to the next level.
        """
        s = self._sets[line % self.num_sets]
        dirty = s.get(line)
        if dirty is not None:
            # Hit: move to MRU position, merge dirty bit.
            del s[line]
            s[line] = dirty or is_write
            self.hits += 1
            return True, None
        self.misses += 1
        self.fills += 1
        evicted = None
        if len(s) >= self.ways:
            victim, victim_dirty = next(iter(s.items()))
            del s[victim]
            if victim_dirty:
                self.writebacks += 1
                evicted = victim
        s[line] = is_write
        return False, evicted

    def probe(self, line: int) -> bool:
        """Check residency without updating LRU state or counters."""
        return line in self._sets[line % self.num_sets]

    def invalidate(self, line: int) -> bool:
        """Drop one line if present; returns whether it was dirty."""
        s = self._sets[line % self.num_sets]
        dirty = s.pop(line, None)
        return bool(dirty)

    def flush(self) -> int:
        """Write back and invalidate everything; returns the number of
        dirty lines written back (mode-transition cost, Section 7.D)."""
        dirty_count = 0
        for s in self._sets:
            dirty_count += sum(1 for d in s.values() if d)
            s.clear()
        self.writebacks += dirty_count
        return dirty_count

    # -- inspection ------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)

    def dirty_lines(self) -> int:
        return sum(sum(1 for d in s.values() if d) for s in self._sets)

    def reset_stats(self) -> None:
        self.hits = self.misses = self.writebacks = self.fills = 0

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}, sets={self.num_sets}, ways={self.ways}, "
            f"hits={self.hits}, misses={self.misses})"
        )
