"""Array-native trace replay: the ``replay="array"`` backend.

The batched backend walks every access through per-set Python dicts; at
~0.2 us per dict transaction that loop dominates million-access traces
(the ~1.9x end-to-end Amdahl cap in BENCH_gen.json).  This module
replaces the per-access walk with whole-partition NumPy analysis built
on the classic LRU *stack property*: an access to line ``x`` hits a
``W``-way set iff fewer than ``W`` distinct lines of that set were
touched since the previous access to ``x`` (the reuse/stack distance).
DESIGN.md section 10 carries the full exactness argument; the shape of
the computation per cache level is:

1. Prepend each touched set's resident lines as *virtual accesses* in
   LRU order (write flag = dirty bit): the real stream then replays as
   if from a cold cache, so the stack property applies verbatim.
2. Group the combined stream by set with one stable argsort; compute
   each access's previous-occurrence position ``P`` with a second
   stable argsort by line.
3. Stack distance via a dominance count: ``sd[i] = C[i] - P[i] - 1``
   where ``C[i] = #{j < i in the set : P[j] <= P[i]}``, computed for
   all sets at once by a blocked position/value histogram (one
   ``bincount``, two strided prefix sums, and a narrow in-block
   comparison).  ``hit[i] = (P[i] >= 0) & (sd[i] < W)``.
4. Misses partition into *residency periods* (one per fill, plus one
   per initially resident line).  Victims of capacity misses pair 1:1,
   in time order, with the evicted periods sorted by last-access
   position; survivors (the top ``min(W, occupancy)`` periods by last
   access) rebuild the per-set dicts in exact LRU order, dirty bits
   OR-ed over each period's writes.
5. Dirty victims (writes) and miss fills (reads) merge — victims
   first within one access — into the next level's event stream, so
   the L1 -> L2 -> LLC -> DRAM cascade is three applications of the
   same level solver on geometrically shrinking streams.  Every event
   carries the dedup index of the original access that triggered it,
   which resolves both DRAM region attribution and per-access service
   levels (assigned top-down: an access's level is the deepest level
   its fill had to reach).

Every step is bit-identical to the scalar oracle: same counters, same
per-access service levels, same LRU/dirty state (the differential and
Hypothesis suites in tests/test_replay_array_parity.py and
tests/test_replay_array_properties.py pin this).  Small or set-diluted
streams fall back to an equivalent per-set dict walk — NumPy's fixed
per-op cost would otherwise swamp the win — chosen per level by the
``ARRAY_MIN_EVENTS`` floor and the calibrated cost model below.

The bypass-buffer and stream partitions reuse the batched fast paths
(``_dense_bypass_many`` / ``_stream_many``), which are already
vectorized and parity-pinned; STLB translation and flush accounting are
shared with the other backends, so those behaviours are reproduced
exactly by construction.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.memory.cache import Cache, rle_starts
from repro.obs.ledger import NULL_LEDGER
from repro.sortutil import radix_argsort
from repro.memory.hierarchy import (
    OP_DENSE,
    OP_DENSE_BYPASS,
    OP_PATH_MASK,
    OP_REGION_SHIFT,
    OP_STREAM,
    OP_WRITE,
    TRACE_REGIONS,
    MemorySystem,
    ServiceLevel,
)

ARRAY_MIN_EVENTS = 192
"""Streams shorter than this always take the dict-walk fallback: the
array solver's fixed NumPy op costs outweigh walking the trace.

Since whole-epoch fused generation hands replay coalesced (fewer,
larger) partitions, this floor is a cold-path guard rather than a hot
dispatch branch: on the 1M-access SDDMM headline the dispatch audit
records 0 of 96 partitions below it (every partition's fate is decided
by the cost model), versus a substantial min_events share under the
old per-chunk partitions.  It still protects tiny L1 per-set walks on
small workloads, so it stays."""

DOMINANCE_BLOCK = 8
"""Smallest candidate block width (positions per histogram block) in
the dominance kernel; the planner doubles from here."""

# Cost-model coefficients for the array-vs-dict dispatch, calibrated
# on the bench_replay_speed workloads (values are microseconds; only
# their ratios matter).  Re-validated against the PR 8 coalesced
# partitions via the dispatch-audit ledger: on the 1M-access SDDMM
# headline the model decides all 96 partitions (none short-circuit on
# ARRAY_MIN_EVENTS), mispredicts 1 (~1%), and routes only the small
# 256–512-event partitions to the dict walk — so the coefficients
# carry over unchanged.  The dict-walk side is miss-rate dependent —
# a hit is one dict transaction, a miss walks the whole cascade — so
# its per-event cost interpolates between the two coefficients using
# the level's running hit counters.  The array side mirrors the
# solver's structure: ~linear NumPy passes over the combined stream,
# a per-touched-set dict extract/rebuild, and the dominance kernel's
# histogram volume plus its per-accumulate-step overhead (the term
# that blows up on skewed segment shapes, where the dict walk must
# win the dispatch).
_PY_HIT_US = 0.16       # dict-walk cost per hitting event
_PY_MISS_EXTRA_US = 0.44  # extra dict transactions a missing event pays
_ARRAY_ELEM_US = 0.17   # array solver linear cost per stream element
_ARRAY_FAST_ELEM_US = 0.12  # same, when the small-footprint path holds
_ARRAY_SET_US = 2.5     # per-set extract + rebuild cost
_DOM_TOUCH_US = 0.0015  # per histogram element touch / shifted compare
_DOM_STEP_US = 1.0      # per accumulate step / shift pass overhead

DOMINANCE_HIST_CAP = 1 << 22
"""Histogram size cap (elements) above which the dominance count falls
back to the pow2-bucketed iterative-doubling merge count (pathological
shapes only: one enormous set segment)."""

# One level's output: the next level's event stream in stream order —
# (line, write, is_fill, trigger) where trigger is the dedup index of
# the original access responsible for the event.
LevelEvents = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_BOOL = np.empty(0, dtype=bool)
_EMPTY_EVENTS: LevelEvents = (_EMPTY_I64, _EMPTY_BOOL, _EMPTY_BOOL, _EMPTY_I64)


# -- stack-distance machinery ----------------------------------------------


def _ragged_arange(lengths: np.ndarray) -> np.ndarray:
    """``concatenate([arange(n) for n in lengths])`` without the loop."""
    total = int(lengths.sum())
    out = np.arange(total, dtype=np.int64)
    ends = np.cumsum(lengths)
    out -= np.repeat(ends - lengths, lengths)
    return out


# Stable argsort for non-negative integer keys; shared with the trace
# generators and the tiler, so the implementation lives in sortutil.
_radix_argsort = radix_argsort


def _dominance_plan(B: int, R: int, n: int) -> Tuple[int, float]:
    """Pick the histogram block width for a dominance problem with max
    segment length ``B``, ``R`` segments and ``n`` elements; returns
    ``(blk_w, estimated_us)``.

    Block width trades histogram volume (``~B^2 * R / blk_w``, touched
    three times: bincount, two prefix axes) against ``blk_w - 1``
    in-block shift passes over the stream; both also pay a per-step
    call overhead, including the ``B + 1`` value-prefix steps that make
    skewed segment shapes expensive no matter the width.
    """
    nval = B + 1
    blk_w, best = DOMINANCE_BLOCK, float("inf")
    w = DOMINANCE_BLOCK
    while True:
        nblk = (B + w - 1) // w
        cost = (
            _DOM_TOUCH_US * (3 * (nblk + 1) * nval * R + 2 * w * n)
            + _DOM_STEP_US * (nval + nblk + w)
        )
        if cost < best:
            blk_w, best = w, cost
        if w >= B:
            break
        w *= 2
    return blk_w, best


def _dominance_matrix(M: np.ndarray) -> np.ndarray:
    """Per-row dominance counts ``C[r, i] = #{j < i : M[r, j] <= M[r, i]}``.

    ``M`` is ``(R, B)`` with ``B`` a power of two and values in
    ``[-1, B]`` (``B`` is the pad value).  Iterative doubling: at block
    width ``w``, each right-half element counts the left-half elements
    that are <= it, via one global ``searchsorted`` over the row-offset
    flattened sorted left halves; every ordered pair is counted at
    exactly one width, so the per-width counts sum to ``C``.
    """
    R, B = M.shape
    C = np.zeros((R, B), dtype=np.int64)
    Ms = M + 1  # values now in [0, B + 1]
    stride = B + 2
    w = 1
    while w < B:
        m2 = Ms.reshape(-1, 2 * w)
        rows = m2.shape[0]
        offs = np.arange(rows, dtype=np.int64) * stride
        left = np.sort(m2[:, :w], axis=1) + offs[:, None]
        q = m2[:, w:] + offs[:, None]
        cnt = np.searchsorted(left.ravel(), q.ravel(), side="right")
        cnt -= np.repeat(np.arange(rows, dtype=np.int64) * w, w)
        C.reshape(-1, 2 * w)[:, w:] += cnt.reshape(rows, w)
        w *= 2
    return C


def _dominance_doubling(
    P: np.ndarray, seg_start: np.ndarray, seg_len: np.ndarray
) -> np.ndarray:
    """``C[i] = #{j < i in i's segment : P[j] <= P[i]}`` via per-bucket
    iterative doubling — the O(n log^2 n) fallback for segment shapes
    too large for the blocked histogram.

    Segments are bucketed by ceil-power-of-two length so each bucket
    packs into one rectangular matrix (total padded size <= 2 * len(P))
    for :func:`_dominance_matrix`.
    """
    C = np.zeros(P.shape[0], dtype=np.int64)
    if P.shape[0] == 0:
        return C
    blen = np.ones_like(seg_len)
    while True:
        under = blen < seg_len
        if not under.any():
            break
        blen[under] *= 2
    for bucket in np.unique(blen).tolist():
        if bucket == 1:
            continue  # single-element segments: no j < i, C stays 0
        sel = np.flatnonzero(blen == bucket)
        lens = seg_len[sel]
        R = sel.shape[0]
        cols = _ragged_arange(lens)
        rows = np.repeat(np.arange(R, dtype=np.int64), lens)
        src = np.repeat(seg_start[sel], lens) + cols
        M = np.full((R, bucket), bucket, dtype=np.int64)
        M[rows, cols] = P[src]
        C[src] = _dominance_matrix(M)[rows, cols]
    return C


def _segmented_dominance(
    P: np.ndarray,
    seg_id: np.ndarray,
    lpos: np.ndarray,
    seg_start: np.ndarray,
    seg_len: np.ndarray,
) -> np.ndarray:
    """``C[i] = #{j < i in i's segment : P[j] <= P[i]}`` for a
    segment-partitioned array (segments = contiguous runs); ``P`` holds
    segment-local previous positions in ``[-1, max_len - 1]``.

    Blocked histogram formulation, O(n) in the stream with a handful of
    heavy NumPy calls: bucket every element into (position block,
    value) per segment with one ``bincount``, prefix-sum over blocks
    then values (both along non-trailing axes, which NumPy vectorizes
    across the trailing dimension), then resolve each element's own
    block with a direct ``DOMINANCE_BLOCK``-wide comparison against its
    block mates.
    """
    n = P.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    R = seg_len.shape[0]
    B = int(seg_len.max())
    nval = B + 1  # values -1..B-1 shift to bins 0..B

    blk_w, _ = _dominance_plan(B, R, n)
    nblk = (B + blk_w - 1) // blk_w
    if (nblk + 1) * nval * R > DOMINANCE_HIST_CAP:
        return _dominance_doubling(P, seg_start, seg_len)

    val = P + 1
    blk = lpos // blk_w
    # hist[b + 1, v, s] = #elements of segment s in block b with value
    # v; the leading zero block makes the block prefix exclusive.
    key = ((blk + 1) * nval + val) * R + seg_id
    hist = np.bincount(key, minlength=(nblk + 1) * nval * R)
    hist = hist.reshape(nblk + 1, nval, R)
    for b in range(nblk):  # over position blocks; contiguous slice
        hist[b + 1] += hist[b]  # adds beat one strided accumulate
    np.add.accumulate(hist, axis=1, out=hist)   # over values
    C = hist[blk, val, seg_id]  # blocks fully before mine, value <= mine

    # Own block: elements i-k (k < blk_w) share i's block exactly when
    # lane[i] >= k, because layout positions are contiguous per segment
    # and blocks never straddle segments — so the correction is blk_w-1
    # shifted compares, no 2-D scratch.
    lane = lpos - blk * blk_w
    mask = np.empty(n, dtype=bool)
    for k in range(1, min(blk_w, n)):
        np.less_equal(val[:-k], val[k:], out=mask[k:])
        mask[k:] &= lane[k:] >= k
        C[k:] += mask[k:]
    return C


# -- one cache level, array-native -----------------------------------------


def _replay_level_array(
    cache: Cache,
    line: np.ndarray,
    write: np.ndarray,
    isfill: Optional[np.ndarray],
    trig: np.ndarray,
    set_id: np.ndarray,
    touched: np.ndarray,
    audit: Optional[dict] = None,
) -> LevelEvents:
    """Replay one level's event stream through ``cache`` wholesale.

    Counters, final per-set LRU/dirty state, and the emitted next-level
    event stream are bit-identical to :func:`_replay_level_python`
    (which is itself the scalar walk restricted to one level).
    """
    sets = cache._sets
    ways = cache.ways
    n = line.shape[0]

    # 1. Virtual accesses: every touched set's residents in LRU order.
    v_lines: List[int] = []
    v_sets: List[int] = []
    v_dirty: List[bool] = []
    for s in touched.tolist():
        d = sets[s]
        if d:
            v_lines += d.keys()
            v_dirty += d.values()
            v_sets += [s] * len(d)
    nv = len(v_lines)
    # Virtuals are never misses, so their isfill is never consulted;
    # when the stream is all fills (the L1 entry stream always is) the
    # fill mask collapses to the miss mask and is skipped entirely.
    fills_all = isfill is None or bool(isfill.all())
    if nv:
        all_line = np.concatenate([np.array(v_lines, np.int64), line])
        all_set = np.concatenate([np.array(v_sets, np.int64), set_id])
        all_write = np.concatenate([np.array(v_dirty, bool), write])
        all_trig = np.concatenate([np.full(nv, -1, np.int64), trig])
        all_isfill = (
            None if fills_all
            else np.concatenate([np.zeros(nv, bool), isfill])
        )
    else:
        all_line, all_set, all_write = line, set_id, write
        all_trig = trig
        all_isfill = None if fills_all else isfill
    total = nv + n

    # 2. Layout: group by set (stable keeps virtuals first, then stream
    # order), then chain same-line occurrences for prev pointers.
    order = _radix_argsort(all_set)
    lay_line = all_line[order]
    lay_set = all_set[order]
    lay_isfill = None if all_isfill is None else all_isfill[order]
    lay_sidx = order - nv  # >= 0 exactly for real (stream) accesses

    seg_first = np.empty(total, dtype=bool)
    seg_first[0] = True
    np.not_equal(lay_set[1:], lay_set[:-1], out=seg_first[1:])
    seg_start = np.flatnonzero(seg_first)
    nseg = seg_start.shape[0]
    seg_id = np.cumsum(seg_first) - 1
    seg_len = np.diff(np.append(seg_start, total))
    my_start = seg_start[seg_id]
    lpos = np.arange(total, dtype=np.int64) - my_start

    ch = _radix_argsort(lay_line)
    ch_line = lay_line[ch]
    same = np.empty(total, dtype=bool)
    same[0] = False
    np.equal(ch_line[1:], ch_line[:-1], out=same[1:])
    prev = np.full(total, -1, dtype=np.int64)
    tail = same[1:]
    prev[ch[1:][tail]] = ch[:-1][tail]

    # 3. Stack distances and hit mask (segment-local positions).
    P = np.where(prev >= 0, prev - my_start, -1)
    real = lay_sidx >= 0
    c0_seg = np.bincount(seg_id[~real], minlength=nseg)
    # Fast case: when each set's *distinct stream lines* fit in the
    # set, an access whose previous occurrence is a real access always
    # hits — at most distinct-1 < ways lines can intervene, and by the
    # same bound no line is ever evicted between two of its accesses.
    # Only the "boundary" accesses (first stream touch of a resident
    # line, at most `ways` per set) need a stack distance, and it has
    # a closed form: the residents stacked above it in LRU order, plus
    # the distinct stream lines seen earlier in the segment, minus the
    # residents among them (already counted once).
    has_prev = prev >= 0
    prev_virtual = np.zeros(total, dtype=bool)
    prev_virtual[has_prev] = lay_sidx[prev[has_prev]] < 0
    first_stream = real & (~has_prev | prev_virtual)
    ds_seg = np.bincount(seg_id[first_stream], minlength=nseg)
    fast = int(ds_seg.max()) <= ways
    was_optimistic = cache.replay_fast_hint
    cache.replay_fast_hint = fast
    if not fast and was_optimistic:
        # The planner skipped the dominance estimate on the strength
        # of the hint; re-run the dispatch with it before committing.
        # Nothing has been mutated yet, so the dict walk can take over.
        _, dom_us = _dominance_plan(int(seg_len.max()), nseg, total)
        hits, misses = cache.hits, cache.misses
        mr = (misses + 64.0) / (hits + misses + 128.0)
        py_us = (_PY_HIT_US + mr * _PY_MISS_EXTRA_US) * n
        arr_us = _ARRAY_ELEM_US * total + _ARRAY_SET_US * nseg + dom_us
        if py_us < arr_us:
            if audit is not None:
                audit["bailed"] = True
                audit["predicted_py_us"] = py_us
                audit["predicted_array_us"] = arr_us
            return _replay_level_python(cache, line, write, isfill, trig)
    if fast:
        hit = real & has_prev
        b = np.flatnonzero(first_stream & has_prev)
        if b.size:
            fs_ex = np.cumsum(first_stream) - first_stream
            rank_d = fs_ex[b] - fs_ex[my_start[b]]
            lru_j = lpos[prev[b]]  # virtuals head the segment in LRU order
            b_seg = seg_id[b]
            overlap = np.zeros(b.size, dtype=np.int64)
            for k in range(1, min(ways, b.size)):
                mk = (b_seg[k:] == b_seg[:-k]) & (lru_j[:-k] > lru_j[k:])
                overlap[k:] += mk
            sd_b = c0_seg[b_seg] - 1 - lru_j + rank_d - overlap
            hit[b] = sd_b < ways
    else:
        C = _segmented_dominance(P, seg_id, lpos, seg_start, seg_len)
        sd = C - P - 1
        hit = (P >= 0) & (sd < ways)
    miss = real & ~hit
    n_miss = int(miss.sum())
    n_hit = int(real.sum()) - n_miss

    # 4. Residency periods.  A period's elements are contiguous in
    # chain order with ascending layout positions (every chain head is
    # a begin), so period ids are a plain cumsum over chain order and
    # period ends are the run boundaries there.
    begins = ~hit
    begins_ch = begins[ch]
    pord_ch = np.cumsum(begins_ch) - 1
    st_ch = ch[begins_ch]  # period start layout positions, chain order
    nper = st_ch.shape[0]

    p_line = lay_line[st_ch]
    p_set = lay_set[st_ch]
    p_dirty = np.bincount(
        pord_ch[all_write[order[ch]]], minlength=nper
    ) > 0
    run_end = np.empty(total, dtype=bool)
    run_end[-1] = True
    np.not_equal(pord_ch[1:], pord_ch[:-1], out=run_end[:-1])
    p_end = ch[run_end]  # pord_ch is nondecreasing, so already ordered

    # 5. Capacity misses and their victims.  Within a set, victims'
    # last-access positions strictly increase across evictions and
    # survivors hold the largest ends, so the k-th capacity miss pairs
    # with the k-th smallest end among the evicted periods.
    miss_seg = np.bincount(seg_id[miss], minlength=nseg)
    nper_seg = c0_seg + miss_seg
    occ_seg = np.minimum(ways, nper_seg)
    nevict_seg = nper_seg - occ_seg

    if int(nevict_seg.max()) == 0:
        cap_idx = _EMPTY_I64
    else:
        mcum = np.cumsum(miss)
        ordinal = mcum - mcum[my_start] + miss[my_start]
        thresh = np.maximum(0, ways - c0_seg)
        cap = miss & (ordinal > thresh[seg_id])
        cap_idx = np.flatnonzero(cap)

    # (set, end) sort as one composite key: ends are < total + 1, so
    # the key is collision-free and radix-sortable.
    p_order = _radix_argsort(p_set * (total + 1) + p_end)
    pblk = np.repeat(np.arange(nseg, dtype=np.int64), nper_seg)
    pblk_start = np.concatenate(([0], np.cumsum(nper_seg)[:-1]))
    prank = np.arange(nper, dtype=np.int64) - pblk_start[pblk]
    ev_mask = prank < nevict_seg[pblk]
    evict_p = p_order[ev_mask]
    surv_p = p_order[~ev_mask]

    vict_dirty = p_dirty[evict_p]
    n_wb = int(vict_dirty.sum())

    cache.hits += n_hit
    cache.misses += n_miss
    cache.fills += n_miss
    cache.writebacks += n_wb

    # 6. Next-level events: dirty victims (writes) before the same
    # access's own fill read, globally in stream order.
    dv_cap = cap_idx[vict_dirty]
    v_sidx = lay_sidx[dv_cap]
    v_line = p_line[evict_p[vict_dirty]]
    f_idx = np.flatnonzero(
        miss if lay_isfill is None else miss & lay_isfill
    )
    f_sidx = lay_sidx[f_idx]
    ne_v = v_sidx.shape[0]
    key = np.concatenate([v_sidx * 2, f_sidx * 2 + 1])
    eorder = _radix_argsort(key)
    e_line = np.concatenate([v_line, lay_line[f_idx]])[eorder]
    e_write = np.zeros(key.shape[0], dtype=bool)
    e_write[:ne_v] = True
    e_write = e_write[eorder]
    e_isfill = ~e_write
    e_trig = np.concatenate(
        [all_trig[order[dv_cap]], all_trig[order[f_idx]]]
    )[eorder]

    # 7. Rebuild the touched sets: survivors by ascending last access
    # IS the LRU insertion order; .tolist() yields plain int/bool so
    # state snapshots stay type-identical to the scalar path.
    surv_lines = p_line[surv_p].tolist()
    surv_dirty = p_dirty[surv_p].tolist()
    off = 0
    for s, cnt in zip(lay_set[seg_start].tolist(), occ_seg.tolist()):
        sets[s] = dict(
            zip(surv_lines[off:off + cnt], surv_dirty[off:off + cnt])
        )
        off += cnt
    return e_line, e_write, e_isfill, e_trig


def _replay_level_python(
    cache: Cache,
    line: np.ndarray,
    write: np.ndarray,
    isfill: Optional[np.ndarray],
    trig: np.ndarray,
) -> LevelEvents:
    """Dict-walk twin of :func:`_replay_level_array` for short or
    set-diluted streams: one pass in stream order, per-set LRU dicts,
    identical counters, state, and emitted events."""
    sets = cache._sets
    ns = cache.num_sets
    ways = cache.ways
    hits = misses = wb = 0
    e_line: List[int] = []
    e_write: List[bool] = []
    e_trig: List[int] = []
    isf_list = (
        [True] * line.shape[0] if isfill is None else isfill.tolist()
    )
    for ln, w, isf, tg in zip(
        line.tolist(), write.tolist(), isf_list, trig.tolist()
    ):
        s = sets[ln % ns]
        d = s.pop(ln, None)
        if d is not None:
            s[ln] = d or w
            hits += 1
            continue
        misses += 1
        if len(s) >= ways:
            victim = next(iter(s))
            if s.pop(victim):
                wb += 1
                e_line.append(victim)
                e_write.append(True)
                e_trig.append(tg)
        s[ln] = w
        if isf:
            e_line.append(ln)
            e_write.append(False)
            e_trig.append(tg)
    cache.hits += hits
    cache.misses += misses
    cache.fills += misses
    cache.writebacks += wb
    ew = np.array(e_write, dtype=bool)
    return (np.array(e_line, np.int64), ew, ~ew, np.array(e_trig, np.int64))


def _replay_level(
    cache: Cache,
    line: np.ndarray,
    write: np.ndarray,
    isfill: Optional[np.ndarray],
    trig: np.ndarray,
    ledger=NULL_LEDGER,
    level: str = "",
) -> LevelEvents:
    """Replay one level, choosing between the array solver and the
    dict walk by the calibrated cost model: the array path wins on
    long, set-dense, evenly segmented streams; short, diluted, or
    skewed ones (where the dominance histogram degenerates) walk.

    With a ledger attached, every dispatch decision is recorded as a
    ``dispatch`` audit event: cost-model inputs, predicted costs,
    chosen backend, measured wall time.  The disabled path is the
    pre-audit code verbatim behind one ``ledger.enabled`` check.
    """
    n = line.shape[0]
    if n == 0:
        return _EMPTY_EVENTS
    if not ledger.enabled:
        plan = _plan_level(cache, line)
        if plan is None:
            return _replay_level_python(cache, line, write, isfill, trig)
        return _replay_level_array(
            cache, line, write, isfill, trig, plan[0], plan[1]
        )
    audit: dict = {}
    plan = _plan_level(cache, line, audit)
    t0 = perf_counter()
    if plan is None:
        out = _replay_level_python(cache, line, write, isfill, trig)
        chosen = "dict"
    else:
        out = _replay_level_array(
            cache, line, write, isfill, trig, plan[0], plan[1],
            audit=audit,
        )
        chosen = "dict" if audit.get("bailed") else "array"
    audit["measured_us"] = (perf_counter() - t0) * 1e6
    ledger.emit("dispatch", level=level, chosen=chosen, **audit)
    return out


def _plan_level(
    cache: Cache, line: np.ndarray, audit: Optional[dict] = None
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Cost-model dispatch for one level: ``(set_id, touched)`` when
    the array solver should run, ``None`` when the dict walk wins.

    When ``audit`` is given (dispatch audit enabled) it is filled with
    the model's inputs and predictions; the audited path recomputes
    nothing the plain path needs, so disabled runs are unchanged.
    """
    n = line.shape[0]
    if n < ARRAY_MIN_EVENTS:
        if audit is not None:
            hits, misses = cache.hits, cache.misses
            miss_rate = (misses + 64.0) / (hits + misses + 128.0)
            audit.update(
                cache=cache.name,
                events=int(n),
                miss_rate=miss_rate,
                hint=bool(cache.replay_fast_hint),
                predicted_py_us=(
                    (_PY_HIT_US + miss_rate * _PY_MISS_EXTRA_US) * n
                ),
                predicted_array_us=None,
                reason="min_events",
            )
        return None
    set_id = line % cache.num_sets
    if cache.num_sets <= (n << 2):
        counts = np.bincount(set_id, minlength=cache.num_sets)
        touched = np.flatnonzero(counts)
        max_count = int(counts.max())
    else:
        touched, t_counts = np.unique(set_id, return_counts=True)
        max_count = int(t_counts.max())
    ways = cache.ways
    # Estimated solver inputs: every touched set contributes up to
    # `ways` resident virtual accesses, and the longest segment is at
    # most its event count plus its residents.
    ntot = n + touched.shape[0] * ways
    if cache.replay_fast_hint:
        # Last solve found every set's stream footprint within the
        # associativity, so the dominance kernel is expected to be
        # skipped; one mispredicted solve flips the hint back.
        array_us = (
            _ARRAY_FAST_ELEM_US * ntot + _ARRAY_SET_US * touched.shape[0]
        )
    else:
        _, dom_us = _dominance_plan(
            max_count + ways, touched.shape[0], ntot
        )
        array_us = (
            _ARRAY_ELEM_US * ntot
            + _ARRAY_SET_US * touched.shape[0]
            + dom_us
        )
    # Miss-rate estimate from the level's running counters, smoothed
    # towards 50% so a cold cache (no history) assumes a mixed stream.
    hits, misses = cache.hits, cache.misses
    miss_rate = (misses + 64.0) / (hits + misses + 128.0)
    py_us = (_PY_HIT_US + miss_rate * _PY_MISS_EXTRA_US) * n
    if audit is not None:
        audit.update(
            cache=cache.name,
            events=int(n),
            sets=int(touched.shape[0]),
            miss_rate=miss_rate,
            hint=bool(cache.replay_fast_hint),
            predicted_py_us=py_us,
            predicted_array_us=array_us,
            reason="cost_model",
        )
    if py_us < array_us:
        return None
    return set_id, touched


# -- the dense-cached cascade ----------------------------------------------


def dense_cached_array(
    ms: MemorySystem,
    pe_id: int,
    group: int,
    lines: np.ndarray,
    writes,
    region_ids: np.ndarray,
    table: Sequence[Optional[str]],
) -> np.ndarray:
    """L1 -> L2 -> LLC -> DRAM for a dense-cached trace partition
    (STLB already consulted), as three level solves over cascading
    event streams.  Array twin of ``MemorySystem._dense_cached_many``.

    Service levels are assigned top-down: every access starts at L1,
    and each level's fill misses push their triggering accesses one
    level deeper; whatever reaches past the LLC is DRAM traffic.
    """
    n = lines.shape[0]
    levels = np.full(n, int(ServiceLevel.L1), dtype=np.uint8)
    if n == 0:
        return levels
    starts = rle_starts(lines)
    m = starts.shape[0]
    u_lines = lines if m == n else lines[starts]

    l1 = ms.l1s[pe_id]
    ledger = ms.ledger
    audit: Optional[dict] = {} if ledger.enabled else None
    plan = _plan_level(l1, u_lines, audit)
    if plan is None:
        # When the L1 level would take the dict walk anyway, hand the
        # whole partition to the batched backend's fused cascade — one
        # pass over the deduped trace beats walking three per-level
        # event streams through the same dicts.
        if audit is None:
            return ms._dense_cached_many(
                pe_id, group, lines, writes, region_ids, table
            )
        t0 = perf_counter()
        out = ms._dense_cached_many(
            pe_id, group, lines, writes, region_ids, table
        )
        # The measured time covers the whole fused L1->DRAM cascade,
        # not just the L1 level the prediction priced; the audit keeps
        # the asymmetry visible via chosen="batched".
        audit["measured_us"] = (perf_counter() - t0) * 1e6
        ledger.emit("dispatch", level="l1", chosen="batched", **audit)
        return out

    if np.ndim(writes) == 0:
        u_writes = np.full(m, bool(writes))
    else:
        w = np.asarray(writes, dtype=bool)
        u_writes = w if m == n else np.logical_or.reduceat(w, starts)
    u_regions = region_ids if m == n else region_ids[starts]

    l2 = ms.l2s[group]
    llc = ms.llc

    if audit is None:
        ev = _replay_level_array(
            l1, u_lines, u_writes, None,
            np.arange(m, dtype=np.int64), plan[0], plan[1],
        )
    else:
        t0 = perf_counter()
        ev = _replay_level_array(
            l1, u_lines, u_writes, None,
            np.arange(m, dtype=np.int64), plan[0], plan[1],
            audit=audit,
        )
        chosen = "dict" if audit.get("bailed") else "array"
        audit["measured_us"] = (perf_counter() - t0) * 1e6
        ledger.emit("dispatch", level="l1", chosen=chosen, **audit)
    l1.hits += n - m  # run-length repeats are guaranteed MRU hits
    if ev[2].any():
        levels[starts[ev[3][ev[2]]]] = int(ServiceLevel.L2)

    ev = _replay_level(l2, *ev, ledger=ledger, level="l2")
    if ev[2].any():
        levels[starts[ev[3][ev[2]]]] = int(ServiceLevel.LLC)

    e_line, e_write, e_isfill, e_trig = _replay_level(
        llc, *ev, ledger=ledger, level="llc"
    )
    if e_isfill.any():
        fill_trig = e_trig[e_isfill]
        levels[starts[fill_trig]] = int(ServiceLevel.DRAM)
        ms._dram_read_many(u_regions[fill_trig], table)
    if not e_isfill.all():
        ms._dram_write_many(u_regions[e_trig[~e_isfill]], table)
    return levels


def replay_trace_array(
    ms: MemorySystem,
    pe_id: int,
    lines: np.ndarray,
    ops: np.ndarray,
    region_names: Sequence[Optional[str]] = TRACE_REGIONS,
) -> np.ndarray:
    """``replay="array"`` backend entry point (see the registry in
    :mod:`repro.config`): STLB translation and path split exactly as
    the batched backend, with the dense-cached partition solved by the
    stack-distance cascade; the bypass and stream partitions reuse the
    parity-pinned batched fast paths."""
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    ops = np.ascontiguousarray(ops, dtype=np.int64)
    n = lines.shape[0]
    levels = np.empty(n, dtype=np.uint8)
    if n == 0:
        return levels
    group = ms._group_of(pe_id)
    ms.stlbs[group].translate_many(lines)
    path = ops & OP_PATH_MASK
    writes = (ops & OP_WRITE) != 0
    region_ids = ops >> OP_REGION_SHIFT
    for p in (OP_DENSE, OP_DENSE_BYPASS, OP_STREAM):
        mask = path == p
        if not mask.any():
            continue
        sub_lines = lines[mask]
        sub_writes = writes[mask]
        sub_rids = region_ids[mask]
        if p == OP_DENSE:
            sub_levels = dense_cached_array(
                ms, pe_id, group, sub_lines, sub_writes, sub_rids,
                region_names,
            )
        elif p == OP_DENSE_BYPASS:
            sub_levels = ms._dense_bypass_many(
                pe_id, sub_lines, sub_writes, sub_rids, region_names
            )
        else:
            sub_levels = ms._stream_many(
                pe_id, sub_lines, sub_writes, sub_rids, region_names
            )
        levels[mask] = sub_levels
    return levels
