"""Secondary TLB (STLB) model.

SPADE PEs share their host core's STLB (Section 4.1, "like the DMA
engines in [24]").  Pages of the matrix structures are pinned before a
SPADE-mode section, so PEs never page-fault, but they *can* suffer TLB
misses.  The model is a fully-associative LRU translation cache at page
granularity; misses cost a fixed page-walk latency that feeds the
timing model's average access latency.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.memory.address import PAGE_BYTES

DEFAULT_STLB_ENTRIES = 1536
"""Ice Lake STLB capacity (shared 4K/2M second-level TLB)."""

PAGE_WALK_LATENCY_NS = 50.0
"""Approximate page-table-walk latency on an STLB miss."""


class STLB:
    """Shared second-level TLB for one core's PEs."""

    __slots__ = ("entries", "_tlb", "hits", "misses")

    def __init__(self, entries: int = DEFAULT_STLB_ENTRIES) -> None:
        if entries < 1:
            raise ValueError("STLB needs at least one entry")
        self.entries = entries
        self._tlb: Dict[int, None] = {}
        self.hits = 0
        self.misses = 0

    def translate_line(self, line: int, line_bytes: int = 64) -> bool:
        """Translate the page containing a cache line; returns hit."""
        page = (line * line_bytes) // PAGE_BYTES
        if page in self._tlb:
            del self._tlb[page]
            self._tlb[page] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(self._tlb) >= self.entries:
            del self._tlb[next(iter(self._tlb))]
        self._tlb[page] = None
        return False

    def translate_many(self, lines: np.ndarray, line_bytes: int = 64) -> None:
        """Batched :meth:`translate_line` over a trace of line indices.

        Page numbers are computed vectorized and consecutive same-page
        translations (very common for line-sequential streams) are
        run-length deduped — a repeat is a guaranteed MRU hit — before
        the LRU dict is updated in trace order.  Counters and TLB state
        match the scalar loop exactly.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        n = lines.shape[0]
        if n == 0:
            return
        pages = (lines * line_bytes) // PAGE_BYTES
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        np.not_equal(pages[1:], pages[:-1], out=starts[1:])
        u_arr = pages[starts]
        m = u_arr.shape[0]
        tlb = self._tlb
        entries = self.entries

        # No-eviction fast path.  The TLB only grows while replaying a
        # batch (hits reorder, misses insert), so if the resident pages
        # plus the batch's new distinct pages fit in the TLB, no eviction
        # can occur.  Then every page misses exactly once iff it was not
        # resident, and the final LRU order is: untouched pages in their
        # old order, then touched pages by last occurrence — so the
        # update costs O(distinct pages) instead of O(accesses).
        uniq, first_rev = np.unique(u_arr[::-1], return_index=True)
        touched = uniq[np.argsort(first_rev)[::-1]].tolist()
        new = sum(1 for p in touched if p not in tlb)
        pop = tlb.pop
        if len(tlb) + new <= entries:
            for p in touched:
                pop(p, 0)
                tlb[p] = None
            self.hits += n - new
            self.misses += new
            return

        u_pages = u_arr.tolist()
        misses = 0
        for page in u_pages:
            # Values are always None, so 0 is a safe absence sentinel;
            # pop+reinsert performs the LRU move in two dict operations.
            if pop(page, 0) is None:
                tlb[page] = None
                continue
            misses += 1
            if len(tlb) >= entries:
                del tlb[next(iter(tlb))]
            tlb[page] = None
        self.hits += (m - misses) + (n - m)
        self.misses += misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def walk_overhead_ns(self) -> float:
        """Total page-walk time accumulated so far."""
        return self.misses * PAGE_WALK_LATENCY_NS

    def flush(self) -> None:
        self._tlb.clear()

    def reset_stats(self) -> None:
        self.hits = self.misses = 0

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Resident pages in LRU order plus counters."""
        return {
            "pages": list(self._tlb),
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict) -> None:
        self._tlb = dict.fromkeys(state["pages"])
        self.hits = state["hits"]
        self.misses = state["misses"]
