"""Secondary TLB (STLB) model.

SPADE PEs share their host core's STLB (Section 4.1, "like the DMA
engines in [24]").  Pages of the matrix structures are pinned before a
SPADE-mode section, so PEs never page-fault, but they *can* suffer TLB
misses.  The model is a fully-associative LRU translation cache at page
granularity; misses cost a fixed page-walk latency that feeds the
timing model's average access latency.
"""

from __future__ import annotations

from typing import Dict

from repro.memory.address import PAGE_BYTES

DEFAULT_STLB_ENTRIES = 1536
"""Ice Lake STLB capacity (shared 4K/2M second-level TLB)."""

PAGE_WALK_LATENCY_NS = 50.0
"""Approximate page-table-walk latency on an STLB miss."""


class STLB:
    """Shared second-level TLB for one core's PEs."""

    __slots__ = ("entries", "_tlb", "hits", "misses")

    def __init__(self, entries: int = DEFAULT_STLB_ENTRIES) -> None:
        if entries < 1:
            raise ValueError("STLB needs at least one entry")
        self.entries = entries
        self._tlb: Dict[int, None] = {}
        self.hits = 0
        self.misses = 0

    def translate_line(self, line: int, line_bytes: int = 64) -> bool:
        """Translate the page containing a cache line; returns hit."""
        page = (line * line_bytes) // PAGE_BYTES
        if page in self._tlb:
            del self._tlb[page]
            self._tlb[page] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(self._tlb) >= self.entries:
            del self._tlb[next(iter(self._tlb))]
        self._tlb[page] = None
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def walk_overhead_ns(self) -> float:
        """Total page-walk time accumulated so far."""
        return self.misses * PAGE_WALK_LATENCY_NS

    def flush(self) -> None:
        self._tlb.clear()

    def reset_stats(self) -> None:
        self.hits = self.misses = 0
