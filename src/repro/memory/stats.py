"""Traffic statistics aggregated across the memory hierarchy.

These counters are the raw material of the evaluation: Figure 10 plots
DRAM and LLC accesses, Figure 13 plots total memory accesses and
bandwidth utilization, and Figure 14's power breakdown weights each
level's access energy by these counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class LevelStats:
    """Hit/miss counts at one hierarchy level."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merged(self, other: "LevelStats") -> "LevelStats":
        return LevelStats(
            self.hits + other.hits,
            self.misses + other.misses,
            self.writebacks + other.writebacks,
        )


@dataclass
class AccessStats:
    """Full traffic picture of one kernel execution."""

    l1: LevelStats = field(default_factory=LevelStats)
    l2: LevelStats = field(default_factory=LevelStats)
    llc: LevelStats = field(default_factory=LevelStats)
    victim: LevelStats = field(default_factory=LevelStats)
    bbf_stream: LevelStats = field(default_factory=LevelStats)
    dram_reads: int = 0
    dram_writes: int = 0
    stlb_misses: int = 0
    flushed_dirty_lines: int = 0
    by_region: Dict[str, int] = field(default_factory=dict)

    @property
    def dram_accesses(self) -> int:
        return self.dram_reads + self.dram_writes

    @property
    def total_pe_requests(self) -> int:
        """Requests issued by PE pipelines (before any filtering by
        lower levels): L1 + victim-cache + stream-buffer accesses."""
        return (
            self.l1.accesses
            + self.victim.accesses
            + self.bbf_stream.accesses
        )

    def record_region(self, region: str, lines: int = 1) -> None:
        self.by_region[region] = self.by_region.get(region, 0) + lines

    def merged(self, other: "AccessStats") -> "AccessStats":
        out = AccessStats(
            l1=self.l1.merged(other.l1),
            l2=self.l2.merged(other.l2),
            llc=self.llc.merged(other.llc),
            victim=self.victim.merged(other.victim),
            bbf_stream=self.bbf_stream.merged(other.bbf_stream),
            dram_reads=self.dram_reads + other.dram_reads,
            dram_writes=self.dram_writes + other.dram_writes,
            stlb_misses=self.stlb_misses + other.stlb_misses,
            flushed_dirty_lines=self.flushed_dirty_lines
            + other.flushed_dirty_lines,
        )
        out.by_region = dict(self.by_region)
        for k, v in other.by_region.items():
            out.by_region[k] = out.by_region.get(k, 0) + v
        return out

    def summary(self) -> str:
        rows = [
            ("L1", self.l1),
            ("L2", self.l2),
            ("LLC", self.llc),
            ("victim", self.victim),
            ("BBF stream", self.bbf_stream),
        ]
        lines = [
            f"{name:<10} hits={s.hits:>10} misses={s.misses:>10} "
            f"hit_rate={s.hit_rate:6.2%}"
            for name, s in rows
        ]
        lines.append(
            f"{'DRAM':<10} reads={self.dram_reads:>9} "
            f"writes={self.dram_writes:>9}"
        )
        return "\n".join(lines)
