"""Bypass Buffer (BBF) with victim cache.

Each SPADE PE has a BBF that lets accesses skip the cache hierarchy
(Section 4.1).  The BBF itself is a small fully-associative line buffer
that coalesces streaming accesses (the sparse input stream and the SDDMM
output stream); it is backed by a small set-associative *victim cache*
that captures the working set of bypassed rMatrix lines (Section 5.2,
third rMatrix case).  BBF contents go straight to/from DRAM, never
through L1/L2/LLC.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import CacheConfig
from repro.memory.cache import Cache, rle_starts


class BypassBuffer:
    """Per-PE bypass path: stream buffer + victim cache."""

    def __init__(
        self,
        entries: int,
        victim_config: CacheConfig,
        name: str = "bbf",
    ) -> None:
        if entries < 1:
            raise ValueError("BBF needs at least one entry")
        self.name = name
        self.entries = entries
        self._buffer: Dict[int, bool] = {}  # line -> dirty, LRU-ordered
        self.victim = Cache(victim_config, name=f"{name}.victim")
        self.stream_hits = 0
        self.stream_misses = 0
        self.writebacks = 0
        self.flush_writebacks = 0

    # -- streaming path (sparse input / SDDMM output) ------------------

    def stream_access(self, line: int, is_write: bool = False) -> bool:
        """Access through the stream buffer only.  Returns hit.

        A miss allocates the line, evicting the LRU entry (writeback if
        dirty).  Sequential streams therefore fetch each line from DRAM
        exactly once, matching the Sparse Data Loader's coalescing
        behaviour (Section 5.1, step 1).
        """
        dirty = self._buffer.get(line)
        if dirty is not None:
            del self._buffer[line]
            self._buffer[line] = dirty or is_write
            self.stream_hits += 1
            return True
        self.stream_misses += 1
        if len(self._buffer) >= self.entries:
            victim = next(iter(self._buffer))
            victim_dirty = self._buffer.pop(victim)
            if victim_dirty:
                self.writebacks += 1
        self._buffer[line] = is_write
        return False

    def stream_access_many(self, lines: np.ndarray, writes) -> np.ndarray:
        """Batched :meth:`stream_access`; returns the per-access hit
        mask.  Bit-identical counters and buffer state to the scalar
        loop (consecutive same-line accesses are run-length deduped —
        they are guaranteed MRU hits whose dirty bits OR into the run)."""
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        n = lines.shape[0]
        hits_full = np.ones(n, dtype=bool)
        if n == 0:
            return hits_full
        starts = rle_starts(lines)
        m = starts.shape[0]
        u_lines = lines if m == n else lines[starts]
        if np.ndim(writes) == 0:
            u_writes = [bool(writes)] * m
        else:
            w = np.asarray(writes, dtype=bool)
            u_writes = (
                w.tolist() if m == n
                else np.logical_or.reduceat(w, starts).tolist()
            )

        buf = self._buffer
        entries = self.entries
        lines_l = u_lines.tolist()

        # Fast path for the dominant streaming pattern: strictly
        # increasing (hence distinct) lines, none resident.  Every
        # access misses and the buffer behaves as a FIFO, so the final
        # state is the tail of [old entries, new lines] and the evicted
        # head's dirty flags are summed wholesale.
        if (
            m > 1
            and bool((u_lines[1:] > u_lines[:-1]).all())
            and buf.keys().isdisjoint(lines_l)
        ):
            self.stream_misses += m
            self.stream_hits += n - m
            hits_full[starts] = False
            overflow = len(buf) + m - entries
            if overflow > 0:
                n_old = min(overflow, len(buf))
                if n_old == len(buf):
                    self.writebacks += sum(buf.values())
                    buf.clear()
                else:
                    for line in list(islice(buf, n_old)):
                        if buf.pop(line):
                            self.writebacks += 1
                n_new = overflow - n_old
                if n_new:
                    self.writebacks += sum(u_writes[:n_new])
                    buf.update(zip(lines_l[n_new:], u_writes[n_new:]))
                else:
                    buf.update(zip(lines_l, u_writes))
            else:
                buf.update(zip(lines_l, u_writes))
            return hits_full

        pop = buf.pop
        hit_l = [True] * m
        hits = 0
        writebacks = 0
        for j in range(m):
            line = lines_l[j]
            dirty = pop(line, None)
            if dirty is not None:
                buf[line] = dirty or u_writes[j]
                hits += 1
                continue
            hit_l[j] = False
            if len(buf) >= entries:
                if pop(next(iter(buf))):
                    writebacks += 1
            buf[line] = u_writes[j]
        self.stream_hits += hits + (n - m)
        self.stream_misses += m - hits
        self.writebacks += writebacks
        hits_full[starts] = np.array(hit_l, dtype=bool)
        return hits_full

    # -- victim-cache path (bypassed dense data) ------------------------

    def victim_access(self, line: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access a bypassed dense line through the victim cache.

        Returns ``(hit, evicted_dirty_line)``; evictions spill straight
        to DRAM (the "main memory spills" of the KRO outlier in
        Table 6).
        """
        return self.victim.access(line, is_write)

    def victim_access_many(
        self, lines: np.ndarray, writes
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`victim_access` (see :meth:`Cache.access_many`)."""
        return self.victim.access_many(lines, writes)

    # -- maintenance -----------------------------------------------------

    def flush(self) -> int:
        """Write back and invalidate buffer + victim cache; returns dirty
        lines written back (mode-transition cost, Section 7.D).  As with
        :meth:`Cache.flush`, the flushed lines count into ``writebacks``
        and ``flush_writebacks`` of the respective structure."""
        dirty = sum(1 for d in self._buffer.values() if d)
        self._buffer.clear()
        self.writebacks += dirty
        self.flush_writebacks += dirty
        return dirty + self.victim.flush()

    @property
    def occupancy(self) -> int:
        return len(self._buffer)

    def reset_stats(self) -> None:
        self.stream_hits = self.stream_misses = self.writebacks = 0
        self.flush_writebacks = 0
        self.victim.reset_stats()

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Stream-buffer LRU contents, victim-cache state, counters."""
        return {
            "buffer": list(self._buffer.items()),
            "victim": self.victim.state_dict(),
            "stream_hits": self.stream_hits,
            "stream_misses": self.stream_misses,
            "writebacks": self.writebacks,
            "flush_writebacks": self.flush_writebacks,
        }

    def load_state_dict(self, state: dict) -> None:
        self._buffer = dict(state["buffer"])
        self.victim.load_state_dict(state["victim"])
        self.stream_hits = state["stream_hits"]
        self.stream_misses = state["stream_misses"]
        self.writebacks = state["writebacks"]
        self.flush_writebacks = state["flush_writebacks"]
