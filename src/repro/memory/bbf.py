"""Bypass Buffer (BBF) with victim cache.

Each SPADE PE has a BBF that lets accesses skip the cache hierarchy
(Section 4.1).  The BBF itself is a small fully-associative line buffer
that coalesces streaming accesses (the sparse input stream and the SDDMM
output stream); it is backed by a small set-associative *victim cache*
that captures the working set of bypassed rMatrix lines (Section 5.2,
third rMatrix case).  BBF contents go straight to/from DRAM, never
through L1/L2/LLC.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import CacheConfig
from repro.memory.cache import Cache


class BypassBuffer:
    """Per-PE bypass path: stream buffer + victim cache."""

    def __init__(
        self,
        entries: int,
        victim_config: CacheConfig,
        name: str = "bbf",
    ) -> None:
        if entries < 1:
            raise ValueError("BBF needs at least one entry")
        self.name = name
        self.entries = entries
        self._buffer: Dict[int, bool] = {}  # line -> dirty, LRU-ordered
        self.victim = Cache(victim_config, name=f"{name}.victim")
        self.stream_hits = 0
        self.stream_misses = 0
        self.writebacks = 0

    # -- streaming path (sparse input / SDDMM output) ------------------

    def stream_access(self, line: int, is_write: bool = False) -> bool:
        """Access through the stream buffer only.  Returns hit.

        A miss allocates the line, evicting the LRU entry (writeback if
        dirty).  Sequential streams therefore fetch each line from DRAM
        exactly once, matching the Sparse Data Loader's coalescing
        behaviour (Section 5.1, step 1).
        """
        dirty = self._buffer.get(line)
        if dirty is not None:
            del self._buffer[line]
            self._buffer[line] = dirty or is_write
            self.stream_hits += 1
            return True
        self.stream_misses += 1
        if len(self._buffer) >= self.entries:
            victim = next(iter(self._buffer))
            victim_dirty = self._buffer.pop(victim)
            if victim_dirty:
                self.writebacks += 1
        self._buffer[line] = is_write
        return False

    # -- victim-cache path (bypassed dense data) ------------------------

    def victim_access(self, line: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access a bypassed dense line through the victim cache.

        Returns ``(hit, evicted_dirty_line)``; evictions spill straight
        to DRAM (the "main memory spills" of the KRO outlier in
        Table 6).
        """
        return self.victim.access(line, is_write)

    # -- maintenance -----------------------------------------------------

    def flush(self) -> int:
        """Write back and invalidate buffer + victim cache; returns dirty
        lines written back (mode-transition cost, Section 7.D)."""
        dirty = sum(1 for d in self._buffer.values() if d)
        self._buffer.clear()
        self.writebacks += dirty
        return dirty + self.victim.flush()

    @property
    def occupancy(self) -> int:
        return len(self._buffer)

    def reset_stats(self) -> None:
        self.stream_hits = self.stream_misses = self.writebacks = 0
        self.victim.reset_stats()
