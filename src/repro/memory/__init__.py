"""Memory-system substrate: caches, bypass buffers, TLB, and DRAM.

SPADE PEs reuse the host multicore's memory hierarchy (Section 4.1):
each PE has a private L1D and a Bypass Buffer with a small victim cache;
four PEs share a CPU core's L2; all PEs share the sliced LLC and DRAM.
This package simulates that hierarchy at cache-line granularity.
"""

from repro.memory.address import AddressMap, line_of, lines_spanning
from repro.memory.cache import Cache
from repro.memory.bbf import BypassBuffer
from repro.memory.dram import DRAMModel
from repro.memory.tlb import STLB
from repro.memory.stats import AccessStats, LevelStats
from repro.memory.hierarchy import MemorySystem, ServiceLevel

__all__ = [
    "AddressMap",
    "line_of",
    "lines_spanning",
    "Cache",
    "BypassBuffer",
    "DRAMModel",
    "STLB",
    "AccessStats",
    "LevelStats",
    "MemorySystem",
    "ServiceLevel",
]
