"""Content-addressed on-disk store for generated per-epoch PE traces.

A generated trace is a pure function of (workload identity, schedule
structure, chunking, :class:`~repro.config.GenConfig`, op encodings) —
cache geometry, replay backend, execution mode and telemetry do *not*
enter the key, because the emitted access stream is identical across
all of them (the exactness lemma DESIGN.md section 12 spells out, and
the cache-geometry-invariance property test pins).  That makes the
store shareable across every cell of a cache-ablation sweep and every
layer of a repeated-epoch (GNN) run: the expensive generation phase
runs once, and every later run replays the cached stream against its
own memory hierarchy.

Keys: ``sha256(canonical-json(material) + epoch index)``.  One entry
holds *all* PEs of one epoch — sound because per-PE VRF state carries
across epochs deterministically given the whole-schedule fingerprint,
so epoch N's entry is only ever read by runs whose epochs 0..N-1 were
byte-identical too.

Layout and durability mirror :class:`repro.sweep.cache.ResultCache`
(git-style two-char shards, JSON header + pickled payload, sha256
payload digest, ``O_EXCL`` temp + ``os.replace`` publish, corrupt
entries self-evict as misses).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.locks import exclusive_tmp_path

TRACE_STORE_FORMAT = "spade-trace-cache"
TRACE_STORE_VERSION = 1

TRACE_SCHEMA_VERSION = 1
"""Bump when trace generation semantics change (op encodings, elision
schedule, address-map layout): stale entries then miss by construction.
"""

_INT32_MAX = np.int64(2**31 - 1)


def canonical_key(material: Dict[str, Any], epoch: int) -> str:
    """sha256 over the canonical JSON of ``material`` + the epoch
    index (schema version included so format changes never alias)."""
    blob = json.dumps(
        {
            "schema_version": TRACE_SCHEMA_VERSION,
            "epoch": int(epoch),
            "material": material,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(blob).hexdigest()


# -- payload packing ----------------------------------------------------------


def pack_epoch_entry(parts, traces, segs, payloads) -> Dict[str, Any]:
    """Assemble the all-PE epoch payload from the engine's phase-A
    products.  Line ids are narrowed to int32 when they fit (they
    nearly always do; the header keeps the dtype) and ops to int16."""
    pes: List[Dict[str, Any]] = []
    for i, parts_i in enumerate(parts):
        if traces[i] is None:
            lines = np.empty(0, dtype=np.int64)
            ops = np.empty(0, dtype=np.int64)
        else:
            lines, ops = traces[i]
        if lines.size and 0 <= lines.min() and lines.max() <= _INT32_MAX:
            lines = lines.astype(np.int32)
        ops = ops.astype(np.int16)
        payload = payloads[i] or {
            "counters": (0, 0, 0, 0),
            "vrf_delta": (0, 0, 0, 0, 0),
            "vrf_tags": None,
            "vrf_dirty_count": None,
            "rows": [],
        }
        pes.append(
            {
                "lines": lines,
                "ops": ops,
                "segs": [
                    (int(a), int(b)) for a, b in (segs[i] or [])
                ],
                **payload,
            }
        )
    return {"pes": pes}


def unpack_pe_entry(
    pe, entry: Dict[str, Any]
) -> Tuple[Tuple[np.ndarray, np.ndarray], List[Tuple[int, int]]]:
    """Apply one PE's cached epoch to the live PE (front-end counter
    deltas, VRF counter deltas + absolute end state, rMatrix rows) and
    return its replayable ``(trace arrays, segments)``."""
    lines = np.asarray(entry["lines"], dtype=np.int64)
    ops = np.asarray(entry["ops"], dtype=np.int64)
    tops, vops, sparse_line_reads, output_line_writes = entry["counters"]
    c = pe.counters
    c.tops += tops
    c.vops += vops
    c.sparse_line_reads += sparse_line_reads
    c.output_line_writes += output_line_writes
    vrf = pe.vrf
    dh, dm, de, dew, dmw = entry["vrf_delta"]
    vrf.tag_hits += dh
    vrf.tag_misses += dm
    vrf.evictions += de
    vrf.eviction_writebacks += dew
    vrf.manager_writebacks += dmw
    if entry["vrf_tags"] is not None:
        vrf._tags.clear()
        vrf._tags.update(
            (int(ln), bool(d)) for ln, d in entry["vrf_tags"]
        )
        vrf._dirty_count = int(entry["vrf_dirty_count"])
    if entry["rows"]:
        pe._rmatrix_rows_touched.update(
            int(r) for r in entry["rows"]
        )
    return (lines, ops), list(entry["segs"])


class TraceStore:
    """Content-addressed epoch-trace store (shared across runs and
    sweep workers)."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- addressing ------------------------------------------------------

    def key_for(self, material: Dict[str, Any], epoch: int) -> str:
        return canonical_key(material, epoch)

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.trc")

    # -- reading ---------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, entry)``; corrupt or foreign entries are
        treated as misses and evicted."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                header_line = fh.readline()
                payload = fh.read()
        except OSError:
            self.misses += 1
            return False, None
        if not self._valid(key, header_line, payload):
            self._evict(path)
            self.misses += 1
            return False, None
        try:
            entry = pickle.loads(payload)
        except Exception:
            self._evict(path)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, entry

    def _valid(self, key: str, header_line: bytes, payload: bytes) -> bool:
        try:
            header = json.loads(header_line)
        except (ValueError, UnicodeDecodeError):
            return False
        return (
            header.get("format") == TRACE_STORE_FORMAT
            and header.get("version") == TRACE_STORE_VERSION
            and header.get("schema_version") == TRACE_SCHEMA_VERSION
            and header.get("key") == key
            and header.get("payload_bytes") == len(payload)
            and header.get("payload_sha256")
            == hashlib.sha256(payload).hexdigest()
        )

    def _evict(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- writing ---------------------------------------------------------

    def put(self, key: str, entry: Any) -> str:
        """Atomically store ``entry`` under ``key``; returns the path.
        Concurrent writers of the same key race benignly (identical
        bytes, last ``os.replace`` wins, temp files are never shared).
        """
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "format": TRACE_STORE_FORMAT,
            "version": TRACE_STORE_VERSION,
            "schema_version": TRACE_SCHEMA_VERSION,
            "key": key,
            "payload_bytes": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        tmp = exclusive_tmp_path(path)
        try:
            with open(tmp, "wb") as fh:
                fh.write(json.dumps(header).encode() + b"\n")
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # -- maintenance -----------------------------------------------------

    def keys(self) -> List[str]:
        found = []
        for shard in self._shards():
            for name in os.listdir(shard):
                if name.endswith(".trc"):
                    found.append(name[: -len(".trc")])
        return sorted(found)

    def _shards(self) -> Iterator[str]:
        try:
            entries = sorted(os.listdir(self.directory))
        except OSError:
            return
        for entry in entries:
            shard = os.path.join(self.directory, entry)
            if len(entry) == 2 and os.path.isdir(shard):
                yield shard

    def __len__(self) -> int:
        return len(self.keys())


def open_trace_store(directory: Optional[str]) -> Optional[TraceStore]:
    """``None``-propagating constructor for CLI/driver plumbing."""
    return TraceStore(directory) if directory else None
