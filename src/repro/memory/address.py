"""Virtual-address layout of the kernel operands.

SPADE PEs operate on the CPU's virtual addresses directly (Section 4.1),
so the simulator lays the operand data structures out in one flat
virtual address space.  Dense rows are padded to cache-line multiples
(Section 4.3: "the dense matrix row size K must be a multiple of the
cache line size"), so every dense row starts at a line boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.config import CACHE_LINE_BYTES, FLOAT_BYTES

PAGE_BYTES = 4096
"""Page size used by the STLB model."""


def line_of(addr: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Cache-line index containing a byte address."""
    return addr // line_bytes


def lines_spanning(
    addr: int, nbytes: int, line_bytes: int = CACHE_LINE_BYTES
) -> range:
    """Range of line indices covering [addr, addr + nbytes)."""
    if nbytes <= 0:
        return range(0, 0)
    first = addr // line_bytes
    last = (addr + nbytes - 1) // line_bytes
    return range(first, last + 1)


def padded_row_bytes(dense_row_size: int, val_bytes: int = FLOAT_BYTES) -> int:
    """Bytes of one dense row after padding to a cache-line multiple."""
    raw = dense_row_size * val_bytes
    return -(-raw // CACHE_LINE_BYTES) * CACHE_LINE_BYTES


@dataclass
class Region:
    """One named allocation in the flat virtual address space."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


@dataclass
class AddressMap:
    """Allocator for the operand regions of one kernel invocation.

    Regions are allocated page-aligned and never overlap; each region's
    name tags the traffic statistics (sparse stream vs rMatrix vs
    cMatrix vs output), which the power model and Figure 13 need.
    """

    # Base addresses start one page in, so that no region has base 0
    # (address 0 is reserved/null in the Initialization instruction).
    regions: Dict[str, Region] = field(default_factory=dict)
    _next_base: int = PAGE_BYTES

    def allocate(self, name: str, size: int) -> Region:
        """Allocate a page-aligned region of at least ``size`` bytes."""
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        if size < 0:
            raise ValueError("size must be >= 0")
        base = self._next_base
        padded = max(-(-size // PAGE_BYTES) * PAGE_BYTES, PAGE_BYTES)
        self.regions[name] = Region(name, base, size)
        self._next_base = base + padded
        return self.regions[name]

    def allocate_dense(
        self, name: str, num_rows: int, dense_row_size: int
    ) -> Region:
        """Allocate a dense matrix with line-padded rows."""
        return self.allocate(
            name, num_rows * padded_row_bytes(dense_row_size)
        )

    def region_of(self, addr: int) -> Region:
        for region in self.regions.values():
            if region.contains(addr):
                return region
        raise KeyError(f"address {addr:#x} not in any region")

    def dense_row_lines(
        self, region_name: str, row: int, dense_row_size: int
    ) -> np.ndarray:
        """Line indices of one padded dense row."""
        region = self.regions[region_name]
        row_bytes = padded_row_bytes(dense_row_size)
        base_line = line_of(region.base + row * row_bytes)
        n_lines = row_bytes // CACHE_LINE_BYTES
        return np.arange(base_line, base_line + n_lines, dtype=np.int64)

    def dense_row_base_lines(
        self, region_name: str, rows: np.ndarray, dense_row_size: int
    ) -> np.ndarray:
        """First-line index of each of many padded dense rows
        (vectorised; the per-row lines are consecutive)."""
        region = self.regions[region_name]
        lines_per_row = padded_row_bytes(dense_row_size) // CACHE_LINE_BYTES
        base_line = line_of(region.base)
        return base_line + np.asarray(rows, dtype=np.int64) * lines_per_row

    def stream_lines(
        self, region_name: str, start_byte: int, nbytes: int
    ) -> Tuple[int, int]:
        """(first_line, num_lines) of a byte range inside a region."""
        region = self.regions[region_name]
        if start_byte + nbytes > region.size:
            raise ValueError(
                f"range [{start_byte}, {start_byte + nbytes}) exceeds "
                f"region {region_name!r} of size {region.size}"
            )
        span = lines_spanning(region.base + start_byte, nbytes)
        return span.start, len(span)

    def total_allocated(self) -> int:
        return sum(r.size for r in self.regions.values())
