"""The composed memory system: per-PE L1+BBF, shared L2s, LLC, DRAM.

Topology (Figure 3 / Table 1): every PE has a private L1D and a Bypass
Buffer (stream buffer + victim cache).  Groups of ``pes_per_l2`` PEs
share one L2 and one STLB (the host core's).  All PEs share a single
logical LLC (the union of the slices) and DRAM.

Three access paths, matching Section 5.2:

- ``dense_access(bypass=False)``: L1 -> L2 -> LLC -> DRAM, write-back /
  write-allocate at each level;
- ``dense_access(bypass=True)``: BBF victim cache -> DRAM (no cache
  pollution, but spills go straight to memory);
- ``stream_access``: BBF stream buffer -> DRAM, used for the sparse
  input stream and SDDMM output (CFG4+).  Before CFG4 the sparse stream
  goes through the caches instead (``cached_stream_access``).
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import CacheConfig, SpadeConfig, resolve_replay_backend
from repro.memory.bbf import BypassBuffer
from repro.memory.cache import NO_LINE, Cache, rle_starts
from repro.memory.dram import DRAMModel
from repro.memory.stats import AccessStats, LevelStats
from repro.memory.tlb import STLB
from repro.obs.ledger import NULL_LEDGER


class ServiceLevel(IntEnum):
    """Where a request was satisfied (ordering = distance from the PE)."""

    L1 = 0
    VICTIM = 1
    BBF = 2
    L2 = 3
    LLC = 4
    DRAM = 5


# -- batched trace encoding ------------------------------------------------
#
# A replayable trace is a pair of parallel int64 arrays (lines, ops).
# Each op packs the access path, the write flag, and a region id so one
# batched call can carry a PE chunk's full interleaved access stream:
#
#   bits 0-1  path (dense-cached / dense-bypass / stream)
#   bit  2    is_write
#   bits 3+   region id (index into the region-name table)

OP_DENSE = 0
OP_DENSE_BYPASS = 1
OP_STREAM = 2
OP_PATH_MASK = 0x3
OP_WRITE = 0x4
OP_REGION_SHIFT = 3

TRACE_REGIONS: Tuple[Optional[str], ...] = (
    "sparse", "rmatrix", "cmatrix", "sparse_out",
)
"""Default region-name table for :meth:`MemorySystem.replay_trace`."""


def encode_op(path: int, is_write: bool, region_id: int) -> int:
    """Pack one trace op (see the bit layout above)."""
    return path | (OP_WRITE if is_write else 0) | (region_id << OP_REGION_SHIFT)


class MemorySystem:
    """One SPADE system's full memory hierarchy."""

    def __init__(self, config: SpadeConfig) -> None:
        self.config = config
        n = config.num_pes
        group = config.memory.pes_per_l2
        self.num_groups = max(1, -(-n // group))
        self.l1s: List[Cache] = [
            Cache(config.pe.l1d, name=f"l1[{i}]") for i in range(n)
        ]
        self.bbfs: List[BypassBuffer] = [
            BypassBuffer(
                config.pe.bbf_entries, config.pe.victim_cache,
                name=f"bbf[{i}]",
            )
            for i in range(n)
        ]
        self.l2s: List[Cache] = [
            Cache(config.memory.l2, name=f"l2[{g}]")
            for g in range(self.num_groups)
        ]
        self.stlbs: List[STLB] = [STLB() for _ in range(self.num_groups)]
        llc_cfg = CacheConfig(
            size_bytes=config.memory.llc_slice.size_bytes
            * config.memory.num_llc_slices,
            associativity=config.memory.llc_slice.associativity,
            line_bytes=config.memory.llc_slice.line_bytes,
        )
        self.llc = Cache(llc_cfg, name="llc")
        self.dram = DRAMModel.from_config(config.memory)
        self._region_traffic: dict = {}
        # Run-ledger attachment point: the engine swaps in its session
        # ledger so the array backend's dispatch audit has somewhere to
        # record; the shared null object keeps unattached systems free.
        self.ledger = NULL_LEDGER
        # Trace-replay backend, resolved once from the registry (see
        # repro.config.register_replay_backend); replay_trace dispatches
        # through it so call sites are backend-agnostic.
        self._replay_backend = resolve_replay_backend(config.replay)

    # -- helpers ----------------------------------------------------------

    def _group_of(self, pe_id: int) -> int:
        return pe_id // self.config.memory.pes_per_l2

    def _dram_read(self, region: Optional[str]) -> None:
        self.dram.read_line()
        if region:
            self._region_traffic[region] = (
                self._region_traffic.get(region, 0) + 1
            )

    def _dram_write(self, region: Optional[str] = None) -> None:
        self.dram.write_line()
        if region:
            self._region_traffic[region] = (
                self._region_traffic.get(region, 0) + 1
            )

    # -- access paths -----------------------------------------------------

    def dense_access(
        self,
        pe_id: int,
        line: int,
        is_write: bool = False,
        bypass: bool = False,
        region: Optional[str] = None,
    ) -> ServiceLevel:
        """One dense-matrix line access from a PE; returns service level."""
        group = self._group_of(pe_id)
        self.stlbs[group].translate_line(line)
        if bypass:
            hit, evicted = self.bbfs[pe_id].victim_access(line, is_write)
            if evicted is not None:
                self._dram_write(region)
            if hit:
                return ServiceLevel.VICTIM
            if not is_write:
                self._dram_read(region)
            return ServiceLevel.DRAM

        hit, evicted = self.l1s[pe_id].access(line, is_write)
        if evicted is not None:
            # Dirty L1 eviction updates the L2 copy.
            _, l2_evicted = self.l2s[group].access(evicted, is_write=True)
            if l2_evicted is not None:
                _, llc_evicted = self.llc.access(l2_evicted, is_write=True)
                if llc_evicted is not None:
                    self._dram_write(region)
        if hit:
            return ServiceLevel.L1
        return self._fill_from_l2(group, line, region)

    def _fill_from_l2(
        self, group: int, line: int, region: Optional[str]
    ) -> ServiceLevel:
        hit, evicted = self.l2s[group].access(line, is_write=False)
        if evicted is not None:
            _, llc_evicted = self.llc.access(evicted, is_write=True)
            if llc_evicted is not None:
                self._dram_write(region)
        if hit:
            return ServiceLevel.L2
        hit, llc_evicted = self.llc.access(line, is_write=False)
        if llc_evicted is not None:
            self._dram_write(region)
        if hit:
            return ServiceLevel.LLC
        self._dram_read(region)
        return ServiceLevel.DRAM

    def stream_access(
        self,
        pe_id: int,
        line: int,
        is_write: bool = False,
        region: Optional[str] = None,
    ) -> ServiceLevel:
        """Streaming access through the BBF stream buffer (bypasses all
        caches).  Used for the sparse input and the SDDMM output."""
        group = self._group_of(pe_id)
        self.stlbs[group].translate_line(line)
        if self.bbfs[pe_id].stream_access(line, is_write):
            return ServiceLevel.BBF
        if is_write:
            # Write-allocate in the stream buffer; the line goes out to
            # DRAM when evicted or flushed, but we account it now so the
            # traffic total is independent of flush timing.
            self._dram_write(region)
        else:
            self._dram_read(region)
        return ServiceLevel.DRAM

    def cached_stream_access(
        self,
        pe_id: int,
        line: int,
        is_write: bool = False,
        region: Optional[str] = None,
    ) -> ServiceLevel:
        """Sparse-stream access through the normal cache path — the
        pre-CFG4 behaviour whose pollution CFG4 eliminates (Table 4)."""
        return self.dense_access(
            pe_id, line, is_write=is_write, bypass=False, region=region
        )

    # -- batched access paths ---------------------------------------------
    #
    # Each *_many method replays a whole trace with vectorized set
    # partitioning inside the per-level caches and produces counters and
    # cache state bit-identical to issuing the trace through the scalar
    # methods one access at a time (the parity suite pins this).  Levels
    # are returned as a uint8 array of ServiceLevel values per access.

    def _dram_read_many(
        self, region_ids: np.ndarray, table: Sequence[Optional[str]]
    ) -> None:
        k = region_ids.shape[0]
        if k == 0:
            return
        self.dram.reads += k
        traffic = self._region_traffic
        counts = np.bincount(region_ids, minlength=len(table)).tolist()
        for rid, c in enumerate(counts):
            name = table[rid]
            if c and name is not None:
                traffic[name] = traffic.get(name, 0) + c

    def _dram_write_many(
        self, region_ids: np.ndarray, table: Sequence[Optional[str]]
    ) -> None:
        k = region_ids.shape[0]
        if k == 0:
            return
        self.dram.writes += k
        traffic = self._region_traffic
        counts = np.bincount(region_ids, minlength=len(table)).tolist()
        for rid, c in enumerate(counts):
            name = table[rid]
            if c and name is not None:
                traffic[name] = traffic.get(name, 0) + c

    def _dense_cached_many(
        self,
        pe_id: int,
        group: int,
        lines: np.ndarray,
        writes: np.ndarray,
        region_ids: np.ndarray,
        table: Sequence[Optional[str]],
    ) -> np.ndarray:
        """L1 -> L2 -> LLC -> DRAM for a trace (STLB already consulted).

        The cascade is fused into a single pass over the run-length
        deduped trace: each access walks the levels inline, so a miss
        costs one extra dict transaction per level instead of a separate
        batched replay per level.  The scalar ordering is reproduced
        exactly: for each access, its dirty L1 victim (a write) reaches
        the L2 before the access's own miss fill (a read), and likewise
        at the LLC.
        """
        n = lines.shape[0]
        levels = np.full(n, int(ServiceLevel.L1), dtype=np.uint8)
        if n == 0:
            return levels
        starts = rle_starts(lines)
        m = starts.shape[0]
        u_lines = lines if m == n else lines[starts]
        if np.ndim(writes) == 0:
            all_reads = not bool(writes)
            u_writes = None if all_reads else [True] * m
        elif not (w := np.asarray(writes, dtype=bool)).any():
            all_reads = True
            u_writes = None
        else:
            all_reads = False
            u_writes = (
                w.tolist() if m == n
                else np.logical_or.reduceat(w, starts).tolist()
            )
        lines_l = u_lines.tolist()

        l1 = self.l1s[pe_id]
        l2 = self.l2s[group]
        llc = self.llc
        sets1 = l1._sets
        ns1 = l1.num_sets
        ways1 = l1.ways
        sets2 = l2._sets
        ns2 = l2.num_sets
        ways2 = l2.ways
        sets3 = llc._sets
        ns3 = llc.num_sets
        ways3 = llc.ways

        miss1 = wb1 = 0
        hit2 = miss2 = wb2 = 0
        hit3 = miss3 = wb3 = 0
        lvl2_j: List[int] = []
        lvl2_app = lvl2_j.append
        lvl3_j: List[int] = []
        lvl3_app = lvl3_j.append
        drd_j: List[int] = []
        drd_app = drd_j.append
        dwr_j: List[int] = []
        dwr_app = dwr_j.append

        def spill_llc(v: int, j: int) -> None:
            # Dirty L2 victim written into the LLC (rare path).
            nonlocal hit3, miss3, wb3
            s3 = sets3[v % ns3]
            d3 = s3.pop(v, None)
            if d3 is not None:
                s3[v] = True
                hit3 += 1
                return
            miss3 += 1
            if len(s3) >= ways3:
                if s3.pop(next(iter(s3))):
                    wb3 += 1
                    dwr_app(j)
            s3[v] = True

        def spill_l2(v: int, j: int) -> None:
            # Dirty L1 victim written into the L2 (rare path).
            nonlocal hit2, miss2, wb2
            s2 = sets2[v % ns2]
            d2 = s2.pop(v, None)
            if d2 is not None:
                s2[v] = True
                hit2 += 1
                return
            miss2 += 1
            if len(s2) >= ways2:
                v2 = next(iter(s2))
                if s2.pop(v2):
                    wb2 += 1
                    spill_llc(v2, j)
            s2[v] = True

        # Hot loop: dirty flags are bools, so None is a safe absence
        # sentinel and pop+reinsert performs each LRU move in two dict
        # operations (see Cache.access_many).  All-read traces (the
        # common dense partition when stores ride the stream path) skip
        # the per-access write flag entirely: hits re-insert the dirty
        # bit unchanged and fills allocate clean, so the L2/LLC legs are
        # untouched (spills of pre-existing dirty lines still happen).
        if all_reads:
            for j, line in enumerate(lines_l):
                s1 = sets1[line % ns1]
                d1 = s1.pop(line, None)
                if d1 is not None:
                    s1[line] = d1
                    continue
                miss1 += 1
                if len(s1) >= ways1:
                    victim = next(iter(s1))
                    if s1.pop(victim):
                        wb1 += 1
                        spill_l2(victim, j)
                s1[line] = False
                # Miss fill: L2 read.
                s2 = sets2[line % ns2]
                d2 = s2.pop(line, None)
                if d2 is not None:
                    s2[line] = d2
                    hit2 += 1
                    lvl2_app(j)
                    continue
                miss2 += 1
                if len(s2) >= ways2:
                    v2 = next(iter(s2))
                    if s2.pop(v2):
                        wb2 += 1
                        spill_llc(v2, j)
                s2[line] = False
                # Miss fill: LLC read.
                s3 = sets3[line % ns3]
                d3 = s3.pop(line, None)
                if d3 is not None:
                    s3[line] = d3
                    hit3 += 1
                    lvl3_app(j)
                    continue
                miss3 += 1
                if len(s3) >= ways3:
                    if s3.pop(next(iter(s3))):
                        wb3 += 1
                        dwr_app(j)
                s3[line] = False
                drd_app(j)
        else:
            for j, line, w in zip(range(m), lines_l, u_writes):
                s1 = sets1[line % ns1]
                d1 = s1.pop(line, None)
                if d1 is not None:
                    s1[line] = d1 or w
                    continue
                miss1 += 1
                if len(s1) >= ways1:
                    victim = next(iter(s1))
                    if s1.pop(victim):
                        wb1 += 1
                        spill_l2(victim, j)
                s1[line] = w
                # Miss fill: L2 read.
                s2 = sets2[line % ns2]
                d2 = s2.pop(line, None)
                if d2 is not None:
                    s2[line] = d2
                    hit2 += 1
                    lvl2_app(j)
                    continue
                miss2 += 1
                if len(s2) >= ways2:
                    v2 = next(iter(s2))
                    if s2.pop(v2):
                        wb2 += 1
                        spill_llc(v2, j)
                s2[line] = False
                # Miss fill: LLC read.
                s3 = sets3[line % ns3]
                d3 = s3.pop(line, None)
                if d3 is not None:
                    s3[line] = d3
                    hit3 += 1
                    lvl3_app(j)
                    continue
                miss3 += 1
                if len(s3) >= ways3:
                    if s3.pop(next(iter(s3))):
                        wb3 += 1
                        dwr_app(j)
                s3[line] = False
                drd_app(j)

        l1.hits += (m - miss1) + (n - m)
        l1.misses += miss1
        l1.fills += miss1
        l1.writebacks += wb1
        l2.hits += hit2
        l2.misses += miss2
        l2.fills += miss2
        l2.writebacks += wb2
        llc.hits += hit3
        llc.misses += miss3
        llc.fills += miss3
        llc.writebacks += wb3

        if lvl2_j:
            levels[starts[np.array(lvl2_j)]] = int(ServiceLevel.L2)
        if lvl3_j:
            levels[starts[np.array(lvl3_j)]] = int(ServiceLevel.LLC)
        if drd_j:
            idx = starts[np.array(drd_j)]
            levels[idx] = int(ServiceLevel.DRAM)
            self._dram_read_many(region_ids[idx], table)
        if dwr_j:
            self._dram_write_many(region_ids[starts[np.array(dwr_j)]], table)
        return levels

    def _dense_bypass_many(
        self,
        pe_id: int,
        lines: np.ndarray,
        writes: np.ndarray,
        region_ids: np.ndarray,
        table: Sequence[Optional[str]],
    ) -> np.ndarray:
        """BBF victim cache -> DRAM for a trace (STLB already consulted)."""
        hits, ev = self.bbfs[pe_id].victim_access_many(lines, writes)
        levels = np.full(
            lines.shape[0], int(ServiceLevel.DRAM), dtype=np.uint8
        )
        levels[hits] = int(ServiceLevel.VICTIM)
        self._dram_write_many(region_ids[ev != NO_LINE], table)
        rd = ~hits
        rd &= ~writes
        self._dram_read_many(region_ids[rd], table)
        return levels

    def _stream_many(
        self,
        pe_id: int,
        lines: np.ndarray,
        writes: np.ndarray,
        region_ids: np.ndarray,
        table: Sequence[Optional[str]],
    ) -> np.ndarray:
        """BBF stream buffer -> DRAM for a trace (STLB already consulted)."""
        hits = self.bbfs[pe_id].stream_access_many(lines, writes)
        levels = np.full(
            lines.shape[0], int(ServiceLevel.DRAM), dtype=np.uint8
        )
        levels[hits] = int(ServiceLevel.BBF)
        miss = ~hits
        self._dram_write_many(region_ids[miss & writes], table)
        self._dram_read_many(region_ids[miss & ~writes], table)
        return levels

    def dense_access_many(
        self,
        pe_id: int,
        lines: np.ndarray,
        is_write=False,
        bypass: bool = False,
        region: Optional[str] = None,
    ) -> np.ndarray:
        """Batched :meth:`dense_access` over a trace of line indices.

        ``is_write`` may be a scalar or a per-access bool array.
        Returns the per-access :class:`ServiceLevel` values (uint8).
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        writes = np.empty(lines.shape[0], dtype=bool)
        writes[:] = is_write
        group = self._group_of(pe_id)
        self.stlbs[group].translate_many(lines)
        region_ids = np.zeros(lines.shape[0], dtype=np.int64)
        table = (region,)
        if bypass:
            return self._dense_bypass_many(
                pe_id, lines, writes, region_ids, table
            )
        return self._dense_cached_many(
            pe_id, group, lines, writes, region_ids, table
        )

    def stream_access_many(
        self,
        pe_id: int,
        lines: np.ndarray,
        is_write=False,
        region: Optional[str] = None,
    ) -> np.ndarray:
        """Batched :meth:`stream_access`; see :meth:`dense_access_many`."""
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        writes = np.empty(lines.shape[0], dtype=bool)
        writes[:] = is_write
        group = self._group_of(pe_id)
        self.stlbs[group].translate_many(lines)
        region_ids = np.zeros(lines.shape[0], dtype=np.int64)
        return self._stream_many(
            pe_id, lines, writes, region_ids, (region,)
        )

    def cached_stream_access_many(
        self,
        pe_id: int,
        lines: np.ndarray,
        is_write=False,
        region: Optional[str] = None,
    ) -> np.ndarray:
        """Batched :meth:`cached_stream_access` (pre-CFG4 sparse path)."""
        return self.dense_access_many(
            pe_id, lines, is_write=is_write, bypass=False, region=region
        )

    def replay_trace(
        self,
        pe_id: int,
        lines: np.ndarray,
        ops: np.ndarray,
        region_names: Sequence[Optional[str]] = TRACE_REGIONS,
    ) -> np.ndarray:
        """Replay one PE's interleaved access trace in a single call,
        dispatching to the backend named by ``config.replay`` (see the
        registry in :mod:`repro.config`).  All backends are
        bit-identical on counters, per-access service levels, and cache
        state; they differ only in speed."""
        return self._replay_backend(self, pe_id, lines, ops, region_names)

    def replay_trace_batched(
        self,
        pe_id: int,
        lines: np.ndarray,
        ops: np.ndarray,
        region_names: Sequence[Optional[str]] = TRACE_REGIONS,
    ) -> np.ndarray:
        """Replay one PE's interleaved access trace in a single call.

        ``ops`` carries per-access path/write/region (see
        :func:`encode_op`).  The trace is translated through the STLB in
        order, then split by path — the three paths touch disjoint cache
        state, so each subsequence replays exactly as it would have
        interleaved — and the per-access service levels are scattered
        back into one array aligned with the input.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        ops = np.ascontiguousarray(ops, dtype=np.int64)
        n = lines.shape[0]
        levels = np.empty(n, dtype=np.uint8)
        if n == 0:
            return levels
        group = self._group_of(pe_id)
        self.stlbs[group].translate_many(lines)
        path = ops & OP_PATH_MASK
        writes = (ops & OP_WRITE) != 0
        region_ids = ops >> OP_REGION_SHIFT
        for p in (OP_DENSE, OP_DENSE_BYPASS, OP_STREAM):
            mask = path == p
            if not mask.any():
                continue
            sub_lines = lines[mask]
            sub_writes = writes[mask]
            sub_rids = region_ids[mask]
            if p == OP_DENSE:
                sub_levels = self._dense_cached_many(
                    pe_id, group, sub_lines, sub_writes, sub_rids,
                    region_names,
                )
            elif p == OP_DENSE_BYPASS:
                sub_levels = self._dense_bypass_many(
                    pe_id, sub_lines, sub_writes, sub_rids, region_names
                )
            else:
                sub_levels = self._stream_many(
                    pe_id, sub_lines, sub_writes, sub_rids, region_names
                )
            levels[mask] = sub_levels
        return levels

    def replay_trace_scalar(
        self,
        pe_id: int,
        lines: np.ndarray,
        ops: np.ndarray,
        region_names: Sequence[Optional[str]] = TRACE_REGIONS,
    ) -> np.ndarray:
        """Scalar twin of :meth:`replay_trace`: one per-access call per
        trace entry, in trace order.

        This is the chunk hand-off API for ``replay="scalar"`` engines
        whose execution backend buffers chunk traces (the vectorized
        generators): the buffered chunk is handed to the hierarchy as
        one unit, but each access walks the scalar reference paths so
        the cache state transitions are — trivially — the oracle's.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        ops = np.ascontiguousarray(ops, dtype=np.int64)
        n = lines.shape[0]
        levels = np.empty(n, dtype=np.uint8)
        if n == 0:
            return levels
        dense = self.dense_access
        stream = self.stream_access
        for i, (line, op) in enumerate(zip(lines.tolist(), ops.tolist())):
            w = bool(op & OP_WRITE)
            path = op & OP_PATH_MASK
            region = region_names[op >> OP_REGION_SHIFT]
            if path == OP_STREAM:
                levels[i] = stream(pe_id, line, w, region=region)
            else:
                levels[i] = dense(
                    pe_id, line, w,
                    bypass=(path == OP_DENSE_BYPASS), region=region,
                )
        return levels

    # -- maintenance --------------------------------------------------------

    def flush_pe(self, pe_id: int) -> int:
        """Write back and invalidate one PE's L1 and BBF (SPADE -> CPU
        transition, Section 4.1).  Returns lines written back."""
        dirty = self.l1s[pe_id].flush()
        dirty += self.bbfs[pe_id].flush()
        return dirty

    def flush_all(self) -> int:
        total = sum(self.flush_pe(i) for i in range(len(self.l1s)))
        for l2 in self.l2s:
            total += l2.flush()
        total += self.llc.flush()
        return total

    # -- latency ------------------------------------------------------------

    def latency_ns(self, level: ServiceLevel) -> float:
        """Average round-trip latency to a service level, including the
        PE <-> memory-controller link latency (LL) for levels beyond the
        private structures (Section 7.B)."""
        mem = self.config.memory
        if level == ServiceLevel.L1:
            return mem.l1_latency_ns
        if level in (ServiceLevel.VICTIM, ServiceLevel.BBF):
            return mem.l1_latency_ns  # small private SRAM, L1-like
        if level == ServiceLevel.L2:
            return mem.l2_latency_ns
        if level == ServiceLevel.LLC:
            return mem.llc_latency_ns + mem.link_latency_ns
        return mem.dram_latency_ns + mem.link_latency_ns

    # -- statistics -----------------------------------------------------------

    def publish_metrics(self, registry) -> None:
        """Snapshot every live counter into a metrics registry.

        Emits per-unit series (``spade_cache_*_total{level=,unit=}``,
        STLB and BBF counters per unit, DRAM per direction, per-region
        DRAM lines) plus the level aggregates
        (``spade_level_{hits,misses,writebacks}_total{level=}``), which
        are definitionally equal to :meth:`collect_stats` — the
        telemetry golden test pins that equality.  Call once per run on
        a registry that hasn't seen this system before.
        """
        if not registry.enabled:
            return
        for i, l1 in enumerate(self.l1s):
            l1.publish_metrics(registry, level="l1", unit=f"pe{i}")
        for g, l2 in enumerate(self.l2s):
            l2.publish_metrics(registry, level="l2", unit=f"group{g}")
        self.llc.publish_metrics(registry, level="llc", unit="llc")
        for i, bbf in enumerate(self.bbfs):
            bbf.victim.publish_metrics(
                registry, level="victim", unit=f"pe{i}"
            )
            unit = f"pe{i}"
            registry.counter(
                "spade_bbf_stream_hits_total", unit=unit
            ).inc(bbf.stream_hits)
            registry.counter(
                "spade_bbf_stream_misses_total", unit=unit
            ).inc(bbf.stream_misses)
            registry.counter(
                "spade_bbf_writebacks_total", unit=unit
            ).inc(bbf.writebacks)
        for g, stlb in enumerate(self.stlbs):
            unit = f"group{g}"
            registry.counter(
                "spade_stlb_hits_total", unit=unit
            ).inc(stlb.hits)
            registry.counter(
                "spade_stlb_misses_total", unit=unit
            ).inc(stlb.misses)
        registry.counter("spade_dram_lines_total", op="read").inc(
            self.dram.reads
        )
        registry.counter("spade_dram_lines_total", op="write").inc(
            self.dram.writes
        )
        for region, lines in sorted(self._region_traffic.items()):
            registry.counter(
                "spade_dram_region_lines_total", region=region
            ).inc(lines)
        stats = self.collect_stats()
        for level, s in (
            ("l1", stats.l1), ("l2", stats.l2), ("llc", stats.llc),
            ("victim", stats.victim), ("bbf_stream", stats.bbf_stream),
        ):
            registry.counter(
                "spade_level_hits_total", level=level
            ).inc(s.hits)
            registry.counter(
                "spade_level_misses_total", level=level
            ).inc(s.misses)
            registry.counter(
                "spade_level_writebacks_total", level=level
            ).inc(s.writebacks)
        registry.counter("spade_flushed_dirty_lines_total").inc(
            stats.flushed_dirty_lines
        )

    def collect_stats(self) -> AccessStats:
        """Aggregate the live counters into one AccessStats snapshot."""
        stats = AccessStats()
        for l1 in self.l1s:
            stats.l1 = stats.l1.merged(
                LevelStats(l1.hits, l1.misses, l1.writebacks)
            )
        for l2 in self.l2s:
            stats.l2 = stats.l2.merged(
                LevelStats(l2.hits, l2.misses, l2.writebacks)
            )
        stats.llc = LevelStats(
            self.llc.hits, self.llc.misses, self.llc.writebacks
        )
        for bbf in self.bbfs:
            stats.victim = stats.victim.merged(
                LevelStats(
                    bbf.victim.hits, bbf.victim.misses,
                    bbf.victim.writebacks,
                )
            )
            stats.bbf_stream = stats.bbf_stream.merged(
                LevelStats(bbf.stream_hits, bbf.stream_misses, bbf.writebacks)
            )
        stats.dram_reads = self.dram.reads
        stats.dram_writes = self.dram.writes
        stats.stlb_misses = sum(t.misses for t in self.stlbs)
        stats.by_region = dict(self._region_traffic)
        stats.flushed_dirty_lines = (
            sum(l1.flush_writebacks for l1 in self.l1s)
            + sum(l2.flush_writebacks for l2 in self.l2s)
            + self.llc.flush_writebacks
            + sum(
                b.flush_writebacks + b.victim.flush_writebacks
                for b in self.bbfs
            )
        )
        return stats

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete hierarchy state for epoch-granular checkpoints:
        every cache's LRU contents and counters, BBF stream buffers,
        STLB residency, DRAM traffic, and per-region traffic."""
        return {
            "l1s": [c.state_dict() for c in self.l1s],
            "bbfs": [b.state_dict() for b in self.bbfs],
            "l2s": [c.state_dict() for c in self.l2s],
            "stlbs": [t.state_dict() for t in self.stlbs],
            "llc": self.llc.state_dict(),
            "dram": self.dram.state_dict(),
            "region_traffic": dict(self._region_traffic),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot taken on an identically
        configured system (the checkpoint layer verifies the config
        fingerprint before calling this)."""
        for key, units in (("l1s", self.l1s), ("bbfs", self.bbfs),
                           ("l2s", self.l2s), ("stlbs", self.stlbs)):
            if len(state[key]) != len(units):
                raise ValueError(
                    f"snapshot has {len(state[key])} {key}, system has "
                    f"{len(units)}"
                )
            for unit, sub in zip(units, state[key]):
                unit.load_state_dict(sub)
        self.llc.load_state_dict(state["llc"])
        self.dram.load_state_dict(state["dram"])
        self._region_traffic = dict(state["region_traffic"])

    def reset_stats(self) -> None:
        for l1 in self.l1s:
            l1.reset_stats()
        for l2 in self.l2s:
            l2.reset_stats()
        self.llc.reset_stats()
        for bbf in self.bbfs:
            bbf.reset_stats()
        for stlb in self.stlbs:
            stlb.reset_stats()
        self.dram.reset_stats()
        self._region_traffic.clear()


# -- registry-facing backend entry points ----------------------------------
#
# The replay registry in repro.config references these by dotted path;
# they exist so backends are plain callables with one uniform signature
# (memory_system, pe_id, lines, ops, region_names) regardless of where
# the implementation lives (methods here, modules elsewhere).


def replay_backend_scalar(
    ms: "MemorySystem",
    pe_id: int,
    lines: np.ndarray,
    ops: np.ndarray,
    region_names: Sequence[Optional[str]] = TRACE_REGIONS,
) -> np.ndarray:
    """``replay="scalar"``: the per-access reference oracle."""
    return ms.replay_trace_scalar(pe_id, lines, ops, region_names)


def replay_backend_batched(
    ms: "MemorySystem",
    pe_id: int,
    lines: np.ndarray,
    ops: np.ndarray,
    region_names: Sequence[Optional[str]] = TRACE_REGIONS,
) -> np.ndarray:
    """``replay="batched"``: the fused per-set dict-walk fast path."""
    return ms.replay_trace_batched(pe_id, lines, ops, region_names)
