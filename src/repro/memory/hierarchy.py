"""The composed memory system: per-PE L1+BBF, shared L2s, LLC, DRAM.

Topology (Figure 3 / Table 1): every PE has a private L1D and a Bypass
Buffer (stream buffer + victim cache).  Groups of ``pes_per_l2`` PEs
share one L2 and one STLB (the host core's).  All PEs share a single
logical LLC (the union of the slices) and DRAM.

Three access paths, matching Section 5.2:

- ``dense_access(bypass=False)``: L1 -> L2 -> LLC -> DRAM, write-back /
  write-allocate at each level;
- ``dense_access(bypass=True)``: BBF victim cache -> DRAM (no cache
  pollution, but spills go straight to memory);
- ``stream_access``: BBF stream buffer -> DRAM, used for the sparse
  input stream and SDDMM output (CFG4+).  Before CFG4 the sparse stream
  goes through the caches instead (``cached_stream_access``).
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Optional

from repro.config import CacheConfig, SpadeConfig
from repro.memory.bbf import BypassBuffer
from repro.memory.cache import Cache
from repro.memory.dram import DRAMModel
from repro.memory.stats import AccessStats, LevelStats
from repro.memory.tlb import STLB


class ServiceLevel(IntEnum):
    """Where a request was satisfied (ordering = distance from the PE)."""

    L1 = 0
    VICTIM = 1
    BBF = 2
    L2 = 3
    LLC = 4
    DRAM = 5


class MemorySystem:
    """One SPADE system's full memory hierarchy."""

    def __init__(self, config: SpadeConfig) -> None:
        self.config = config
        n = config.num_pes
        group = config.memory.pes_per_l2
        self.num_groups = max(1, -(-n // group))
        self.l1s: List[Cache] = [
            Cache(config.pe.l1d, name=f"l1[{i}]") for i in range(n)
        ]
        self.bbfs: List[BypassBuffer] = [
            BypassBuffer(
                config.pe.bbf_entries, config.pe.victim_cache,
                name=f"bbf[{i}]",
            )
            for i in range(n)
        ]
        self.l2s: List[Cache] = [
            Cache(config.memory.l2, name=f"l2[{g}]")
            for g in range(self.num_groups)
        ]
        self.stlbs: List[STLB] = [STLB() for _ in range(self.num_groups)]
        llc_cfg = CacheConfig(
            size_bytes=config.memory.llc_slice.size_bytes
            * config.memory.num_llc_slices,
            associativity=config.memory.llc_slice.associativity,
            line_bytes=config.memory.llc_slice.line_bytes,
        )
        self.llc = Cache(llc_cfg, name="llc")
        self.dram = DRAMModel.from_config(config.memory)
        self._region_traffic: dict = {}

    # -- helpers ----------------------------------------------------------

    def _group_of(self, pe_id: int) -> int:
        return pe_id // self.config.memory.pes_per_l2

    def _dram_read(self, region: Optional[str]) -> None:
        self.dram.read_line()
        if region:
            self._region_traffic[region] = (
                self._region_traffic.get(region, 0) + 1
            )

    def _dram_write(self, region: Optional[str] = None) -> None:
        self.dram.write_line()
        if region:
            self._region_traffic[region] = (
                self._region_traffic.get(region, 0) + 1
            )

    # -- access paths -----------------------------------------------------

    def dense_access(
        self,
        pe_id: int,
        line: int,
        is_write: bool = False,
        bypass: bool = False,
        region: Optional[str] = None,
    ) -> ServiceLevel:
        """One dense-matrix line access from a PE; returns service level."""
        group = self._group_of(pe_id)
        self.stlbs[group].translate_line(line)
        if bypass:
            hit, evicted = self.bbfs[pe_id].victim_access(line, is_write)
            if evicted is not None:
                self._dram_write(region)
            if hit:
                return ServiceLevel.VICTIM
            if not is_write:
                self._dram_read(region)
            return ServiceLevel.DRAM

        hit, evicted = self.l1s[pe_id].access(line, is_write)
        if evicted is not None:
            # Dirty L1 eviction updates the L2 copy.
            _, l2_evicted = self.l2s[group].access(evicted, is_write=True)
            if l2_evicted is not None:
                _, llc_evicted = self.llc.access(l2_evicted, is_write=True)
                if llc_evicted is not None:
                    self._dram_write(region)
        if hit:
            return ServiceLevel.L1
        return self._fill_from_l2(group, line, region)

    def _fill_from_l2(
        self, group: int, line: int, region: Optional[str]
    ) -> ServiceLevel:
        hit, evicted = self.l2s[group].access(line, is_write=False)
        if evicted is not None:
            _, llc_evicted = self.llc.access(evicted, is_write=True)
            if llc_evicted is not None:
                self._dram_write(region)
        if hit:
            return ServiceLevel.L2
        hit, llc_evicted = self.llc.access(line, is_write=False)
        if llc_evicted is not None:
            self._dram_write(region)
        if hit:
            return ServiceLevel.LLC
        self._dram_read(region)
        return ServiceLevel.DRAM

    def stream_access(
        self,
        pe_id: int,
        line: int,
        is_write: bool = False,
        region: Optional[str] = None,
    ) -> ServiceLevel:
        """Streaming access through the BBF stream buffer (bypasses all
        caches).  Used for the sparse input and the SDDMM output."""
        group = self._group_of(pe_id)
        self.stlbs[group].translate_line(line)
        if self.bbfs[pe_id].stream_access(line, is_write):
            return ServiceLevel.BBF
        if is_write:
            # Write-allocate in the stream buffer; the line goes out to
            # DRAM when evicted or flushed, but we account it now so the
            # traffic total is independent of flush timing.
            self._dram_write(region)
        else:
            self._dram_read(region)
        return ServiceLevel.DRAM

    def cached_stream_access(
        self,
        pe_id: int,
        line: int,
        is_write: bool = False,
        region: Optional[str] = None,
    ) -> ServiceLevel:
        """Sparse-stream access through the normal cache path — the
        pre-CFG4 behaviour whose pollution CFG4 eliminates (Table 4)."""
        return self.dense_access(
            pe_id, line, is_write=is_write, bypass=False, region=region
        )

    # -- maintenance --------------------------------------------------------

    def flush_pe(self, pe_id: int) -> int:
        """Write back and invalidate one PE's L1 and BBF (SPADE -> CPU
        transition, Section 4.1).  Returns lines written back."""
        dirty = self.l1s[pe_id].flush()
        dirty += self.bbfs[pe_id].flush()
        return dirty

    def flush_all(self) -> int:
        total = sum(self.flush_pe(i) for i in range(len(self.l1s)))
        for l2 in self.l2s:
            total += l2.flush()
        total += self.llc.flush()
        return total

    # -- latency ------------------------------------------------------------

    def latency_ns(self, level: ServiceLevel) -> float:
        """Average round-trip latency to a service level, including the
        PE <-> memory-controller link latency (LL) for levels beyond the
        private structures (Section 7.B)."""
        mem = self.config.memory
        if level == ServiceLevel.L1:
            return mem.l1_latency_ns
        if level in (ServiceLevel.VICTIM, ServiceLevel.BBF):
            return mem.l1_latency_ns  # small private SRAM, L1-like
        if level == ServiceLevel.L2:
            return mem.l2_latency_ns
        if level == ServiceLevel.LLC:
            return mem.llc_latency_ns + mem.link_latency_ns
        return mem.dram_latency_ns + mem.link_latency_ns

    # -- statistics -----------------------------------------------------------

    def collect_stats(self) -> AccessStats:
        """Aggregate the live counters into one AccessStats snapshot."""
        stats = AccessStats()
        for l1 in self.l1s:
            stats.l1 = stats.l1.merged(
                LevelStats(l1.hits, l1.misses, l1.writebacks)
            )
        for l2 in self.l2s:
            stats.l2 = stats.l2.merged(
                LevelStats(l2.hits, l2.misses, l2.writebacks)
            )
        stats.llc = LevelStats(
            self.llc.hits, self.llc.misses, self.llc.writebacks
        )
        for bbf in self.bbfs:
            stats.victim = stats.victim.merged(
                LevelStats(
                    bbf.victim.hits, bbf.victim.misses,
                    bbf.victim.writebacks,
                )
            )
            stats.bbf_stream = stats.bbf_stream.merged(
                LevelStats(bbf.stream_hits, bbf.stream_misses, bbf.writebacks)
            )
        stats.dram_reads = self.dram.reads
        stats.dram_writes = self.dram.writes
        stats.stlb_misses = sum(t.misses for t in self.stlbs)
        stats.by_region = dict(self._region_traffic)
        return stats

    def reset_stats(self) -> None:
        for l1 in self.l1s:
            l1.reset_stats()
        for l2 in self.l2s:
            l2.reset_stats()
        self.llc.reset_stats()
        for bbf in self.bbfs:
            bbf.reset_stats()
        for stlb in self.stlbs:
            stlb.reset_stats()
        self.dram.reset_stats()
        self._region_traffic.clear()
