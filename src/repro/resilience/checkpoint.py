"""Versioned epoch checkpoints with corruption detection.

A checkpoint file is one JSON header line followed by a pickled payload:

.. code-block:: text

    {"format": "spade-checkpoint", "version": 1, "epoch": 3,
     "fingerprint": "…", "payload_bytes": N, "payload_sha256": "…",
     "meta": {…}}\\n
    <N bytes of pickle>

The header carries everything needed to *reject* a snapshot without
unpickling it: a format magic, a schema version, the config fingerprint
of the run that wrote it, and the payload's length and sha256 (which
catch truncation — e.g. a job killed mid-write to a non-atomic
filesystem, or the chaos monkey's scissors).  Writes are atomic on
POSIX (temp file + ``os.replace``), so a *completed* write can never be
half-visible; the hash guards against everything else.

The config fingerprint deliberately excludes the execution backend,
replay mode, pipeline tuning, telemetry, and the resilience section
itself: all backends are bit-identical, so a checkpoint written by a
pipelined run is valid to resume under the scalar backend — which is
exactly what the degradation ladder needs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import re
from typing import Any, Dict, Optional, Tuple

from repro.errors import CheckpointError
from repro.locks import exclusive_tmp_path
from repro.telemetry import ensure

CHECKPOINT_FORMAT = "spade-checkpoint"
CHECKPOINT_VERSION = 1

_EXCLUDED_CONFIG_KEYS = (
    "resilience",
    "telemetry",
    "pipeline",
    "execution",
    "replay",
)
"""Top-level SpadeConfig fields that do not affect simulation results
(all execution/replay paths are bit-identical) and therefore must not
invalidate a checkpoint."""

_CKPT_RE = re.compile(r"^ckpt-epoch-(\d{6})\.ckpt$")


def checkpoint_fingerprint(config) -> str:
    """Digest of the result-relevant part of a :class:`SpadeConfig`."""
    fields = dataclasses.asdict(config)
    for key in _EXCLUDED_CONFIG_KEYS:
        fields.pop(key, None)
    blob = json.dumps(fields, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


class CheckpointManager:
    """Writes and reads epoch snapshots in one directory."""

    def __init__(
        self,
        directory: str,
        interval: int = 1,
        fingerprint: Optional[str] = None,
        telemetry=None,
        chaos=None,
    ) -> None:
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.directory = directory
        self.interval = interval
        self.fingerprint = fingerprint
        self._chaos = chaos
        self._written = ensure(telemetry).metrics.counter(
            "spade_checkpoints_written",
            help="epoch checkpoints successfully written",
        )
        os.makedirs(directory, exist_ok=True)

    # -- writing ---------------------------------------------------------

    def should_write(self, epoch_index: int) -> bool:
        """Checkpoint after epochs interval-1, 2*interval-1, … so an
        interval of N writes every Nth completed epoch."""
        return (epoch_index + 1) % self.interval == 0

    def path_for(self, epoch_index: int) -> str:
        return os.path.join(
            self.directory, f"ckpt-epoch-{epoch_index:06d}.ckpt"
        )

    def write(
        self,
        epoch_index: int,
        state: Dict[str, Any],
        meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Atomically write a snapshot for a completed epoch."""
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "epoch": epoch_index,
            "fingerprint": self.fingerprint,
            "payload_bytes": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "meta": meta or {},
        }
        path = self.path_for(epoch_index)
        # Writer-unique O_EXCL temp file: two workers snapshotting the
        # same epoch into a shared directory can race on the rename but
        # can never interleave writes into one temp file (repro.locks).
        tmp = exclusive_tmp_path(path)
        try:
            with open(tmp, "wb") as fh:
                fh.write(json.dumps(header).encode() + b"\n")
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._written.inc()
        if self._chaos is not None:
            self._chaos.on_checkpoint_written(path, epoch_index)
        return path

    # -- reading ---------------------------------------------------------

    def read(self, path: str) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Read and validate one checkpoint; returns (header, state).

        Raises :class:`CheckpointError` on any mismatch — wrong magic or
        version, truncated payload, hash mismatch, or a fingerprint from
        a different (result-relevant) config.
        """
        try:
            with open(path, "rb") as fh:
                header_line = fh.readline()
                payload = fh.read()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        try:
            header = json.loads(header_line)
        except (ValueError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {path} has an unreadable header"
            ) from exc
        if header.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {path} is not a {CHECKPOINT_FORMAT} file"
            )
        if header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has version {header.get('version')!r}, "
                f"this build reads version {CHECKPOINT_VERSION}"
            )
        if len(payload) != header.get("payload_bytes"):
            raise CheckpointError(
                f"checkpoint {path} is truncated: expected "
                f"{header.get('payload_bytes')} payload bytes, found "
                f"{len(payload)}"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise CheckpointError(
                f"checkpoint {path} failed its integrity check "
                "(payload sha256 mismatch)"
            )
        if (
            self.fingerprint is not None
            and header.get("fingerprint") is not None
            and header["fingerprint"] != self.fingerprint
        ):
            raise CheckpointError(
                f"checkpoint {path} was written by a run with a different "
                "configuration (fingerprint mismatch); refusing to resume"
            )
        state = pickle.loads(payload)
        return header, state

    def list_checkpoints(self):
        """(epoch_index, path) pairs present in the directory, ascending."""
        found = []
        for name in os.listdir(self.directory):
            match = _CKPT_RE.match(name)
            if match:
                found.append(
                    (int(match.group(1)), os.path.join(self.directory, name))
                )
        found.sort()
        return found

    def load_latest(
        self,
    ) -> Optional[Tuple[Dict[str, Any], Dict[str, Any]]]:
        """Load the newest valid checkpoint, falling back to older ones
        if the newest is corrupt.  Returns ``None`` when the directory
        holds no checkpoints at all; raises :class:`CheckpointError`
        when checkpoints exist but none is loadable."""
        candidates = self.list_checkpoints()
        if not candidates:
            return None
        errors = []
        for _, path in reversed(candidates):
            try:
                return self.read(path)
            except CheckpointError as exc:
                errors.append(str(exc))
        raise CheckpointError(
            "no loadable checkpoint in "
            f"{self.directory}: " + "; ".join(errors)
        )
