"""Deterministic fault injection for resilience testing.

A :class:`ChaosMonkey` sits on well-defined injection points inside the
engine and checkpoint writer and decides — purely as a function of a
seed and the injection point's coordinates — whether to fire a fault.
Determinism matters more than realism here: the chaos suite asserts
exact recovery behaviour (which PE failed, how many retries it took,
that the resumed output is bit-identical), so the same config must
produce the same faults regardless of thread scheduling or wall clock.

Injection points:

* ``worker_fault(pe_id, chunk_index, backend)`` — raise
  :class:`InjectedFault` from inside chunk generation, exercising the
  engine's error path and the supervisor's retry/degradation ladder.
  Decisions hash ``(seed, pe_id, chunk_index)`` so they are independent
  of which thread runs the chunk and of call order across PEs.
* ``replay_delay()`` — sleep before a trace replay, exercising watchdog
  timeouts without burning CPU.
* ``on_checkpoint_written(path, epoch)`` — truncate a just-written
  checkpoint file, exercising the reader's corruption detection and
  fallback to the previous snapshot.
* ``after_epoch(epoch)`` — raise :class:`InjectedCrash` once after a
  chosen epoch, simulating a kill for kill-then-resume tests.
* ``sweep_kill(index, attempt)`` — ``SIGKILL`` the calling sweep worker
  process at a hash-selected (seed, job) point, exercising the sweep
  pool's dead-worker detection / lease reclamation / requeue /
  quarantine ladder.  Unlike :class:`InjectedFault` this is a *real*
  process death: no exception propagates, no ``finally`` runs.
* ``stall_lease_heartbeat()`` — tell the worker's lease-heartbeat
  thread not to refresh the claim file, so the lease ages out and a
  concurrent shard runner observes (and reclaims) an apparently dead
  owner while the worker is in fact still running.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

_FAULT_STREAM = 0xFA07
"""Domain-separation constant mixed into the worker-fault RNG seed."""

_KILL_STREAM = 0x51C4
"""Domain-separation constant mixed into the sweep-kill RNG seed."""


class InjectedFault(RuntimeError):
    """A deterministic worker fault raised by :class:`ChaosMonkey`."""


class InjectedCrash(RuntimeError):
    """A simulated process kill raised between epochs."""


@dataclass(frozen=True)
class ChaosConfig:
    """What to inject, and where.  Everything defaults to 'nothing'."""

    seed: int = 0
    worker_fault_rate: float = 0.0
    """Per-(pe, chunk) probability of raising :class:`InjectedFault`."""
    worker_faults: Tuple[Tuple[int, int], ...] = ()
    """Explicit (pe_id, chunk_index) pairs that always fault (in
    addition to the rate-based draw)."""
    max_worker_faults: Optional[int] = None
    """Total fault budget across the monkey's lifetime; ``None`` is
    unlimited.  A finite budget lets a retry eventually succeed."""
    fault_backends: Tuple[str, ...] = ("pipelined",)
    """Execution backends whose workers are eligible to fault."""
    replay_delay_s: float = 0.0
    replay_delay_every: int = 0
    """Sleep ``replay_delay_s`` before every Nth trace replay (0 = off)."""
    truncate_checkpoints: Tuple[int, ...] = ()
    """Epoch indices whose checkpoint files get truncated after write."""
    kill_after_epoch: Optional[int] = None
    """Raise :class:`InjectedCrash` once, after this epoch completes
    (and after its checkpoint, if any, was written)."""
    sweep_kills: Tuple[Tuple[int, int], ...] = ()
    """Explicit (job_index, attempt) pairs at which a sweep worker
    SIGKILLs itself.  Listing only attempt 1 makes a job that crashes
    once and then recovers; listing every attempt up to the runner's
    ``max_attempts`` makes a poison job that ends in quarantine."""
    sweep_kill_rate: float = 0.0
    """Per-job probability of a SIGKILL, hashed from (seed, job index)
    so the same grid always loses the same jobs."""
    sweep_kill_attempts: Tuple[int, ...] = (1,)
    """Attempt numbers at which the rate-based kill is eligible to
    fire (by default only the first, so retries survive)."""
    lease_heartbeat_stall: bool = False
    """Suppress lease heartbeats in sweep workers, simulating a live
    owner that looks dead to everyone sharing the lease directory."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.worker_fault_rate <= 1.0:
            raise ValueError("worker_fault_rate must be in [0, 1]")
        if not 0.0 <= self.sweep_kill_rate <= 1.0:
            raise ValueError("sweep_kill_rate must be in [0, 1]")
        if self.replay_delay_s < 0:
            raise ValueError("replay_delay_s must be >= 0")
        if self.replay_delay_every < 0:
            raise ValueError("replay_delay_every must be >= 0")
        if self.max_worker_faults is not None and self.max_worker_faults < 0:
            raise ValueError("max_worker_faults must be >= 0")


class ChaosMonkey:
    """Thread-safe fault injector driven by a :class:`ChaosConfig`."""

    def __init__(
        self,
        config: ChaosConfig,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config
        self._sleep = sleep
        self._lock = threading.Lock()
        self._explicit = set(config.worker_faults)
        self._replay_calls = 0
        self._crashed = False
        self.worker_faults_injected = 0
        self.replay_delays_injected = 0
        self.checkpoints_truncated = 0
        self.crashes_injected = 0

    # -- injection points ------------------------------------------------

    def worker_fault(
        self, pe_id: int, chunk_index: int, backend: str = "pipelined"
    ) -> None:
        """Raise :class:`InjectedFault` if this (pe, chunk) is selected.

        The rate-based decision hashes ``(seed, pe_id, chunk_index)``
        into a fresh RNG, so it is reproducible across runs, threads,
        and interleavings — chunk 7 of PE 3 either always faults or
        never does, for a given seed and rate.
        """
        cfg = self.config
        if backend not in cfg.fault_backends:
            return
        fire = (pe_id, chunk_index) in self._explicit
        if not fire and cfg.worker_fault_rate > 0.0:
            rng = np.random.default_rng(
                (cfg.seed, _FAULT_STREAM, pe_id, chunk_index)
            )
            fire = rng.random() < cfg.worker_fault_rate
        if not fire:
            return
        with self._lock:
            if (
                cfg.max_worker_faults is not None
                and self.worker_faults_injected >= cfg.max_worker_faults
            ):
                return
            self.worker_faults_injected += 1
        raise InjectedFault(
            f"injected worker fault (pe={pe_id}, chunk={chunk_index}, "
            f"backend={backend}, seed={cfg.seed})"
        )

    def replay_delay(self) -> None:
        """Sleep before a trace replay on the configured cadence."""
        cfg = self.config
        if cfg.replay_delay_every <= 0 or cfg.replay_delay_s <= 0:
            return
        with self._lock:
            self._replay_calls += 1
            fire = self._replay_calls % cfg.replay_delay_every == 0
            if fire:
                self.replay_delays_injected += 1
        if fire:
            self._sleep(cfg.replay_delay_s)

    def on_checkpoint_written(self, path: str, epoch: int) -> None:
        """Truncate the checkpoint for ``epoch`` if configured to."""
        if epoch not in self.config.truncate_checkpoints:
            return
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))
        with self._lock:
            self.checkpoints_truncated += 1

    def after_epoch(self, epoch: int) -> None:
        """Simulate a kill after ``epoch`` (fires at most once)."""
        cfg = self.config
        if cfg.kill_after_epoch is None or epoch != cfg.kill_after_epoch:
            return
        with self._lock:
            if self._crashed:
                return
            self._crashed = True
            self.crashes_injected += 1
        raise InjectedCrash(f"injected crash after epoch {epoch}")

    def should_sweep_kill(self, index: int, attempt: int) -> bool:
        """Whether the sweep worker executing (job ``index``, attempt
        ``attempt``) is selected for a SIGKILL.  Pure function of the
        config — reproducible across runs and runner processes."""
        cfg = self.config
        if (index, attempt) in cfg.sweep_kills:
            return True
        if cfg.sweep_kill_rate > 0.0 and attempt in cfg.sweep_kill_attempts:
            rng = np.random.default_rng((cfg.seed, _KILL_STREAM, index))
            return bool(rng.random() < cfg.sweep_kill_rate)
        return False

    def sweep_kill(self, index: int, attempt: int) -> None:
        """SIGKILL the calling process if this (job, attempt) is
        selected.  This does not return when it fires: the point is a
        genuine uncatchable death, so the parent's only evidence is the
        process sentinel — exactly what a real OOM kill looks like."""
        if self.should_sweep_kill(index, attempt):
            os.kill(os.getpid(), signal.SIGKILL)

    def stall_lease_heartbeat(self) -> bool:
        """Whether sweep workers should stop refreshing their lease."""
        return self.config.lease_heartbeat_stall
