"""Supervised kernel execution: watchdog, retry, backend degradation.

:class:`RunSupervisor` wraps a kernel invocation in three layers of
protection, outermost first:

1. **Degradation ladder** — if the requested backends keep failing,
   step down the execution ladder (pipelined → vectorized → scalar)
   and the replay ladder (array → batched → scalar, from the config
   registry) in lock-step, each from its requested rung.  All backend
   combinations are bit-identical, so degrading changes wall-clock
   time but never results; each step is recorded in the
   ``spade_backend_degradations`` telemetry counter.
2. **Bounded retry** — transient failures (worker exceptions, watchdog
   timeouts, I/O hiccups) are retried on the same rung up to
   ``max_retries`` times with exponential backoff.  When a checkpoint
   directory is configured, retries resume from the latest snapshot
   instead of starting over.  Permanent failures (bad config, bad
   workload, corrupt-beyond-recovery checkpoints) are raised
   immediately — retrying cannot fix them.
3. **Watchdog** — each attempt runs under an optional wall-clock
   timeout; a hung attempt surfaces as :class:`WatchdogTimeout`, which
   is itself transient (hence retried/degraded).

The supervisor builds a fresh :class:`~repro.core.accelerator.SpadeSystem`
per attempt: a failed engine's partially-mutated cache/VRF state cannot
be salvaged in place, but checkpoints make that cheap.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple

from repro.errors import (
    CheckpointError,
    ConfigError,
    EngineExecutionError,
    WatchdogTimeout,
    WorkloadError,
)
from repro.obs.ledger import NULL_LEDGER
from repro.telemetry import ensure

DEGRADATION_LADDER: Tuple[str, ...] = ("pipelined", "vectorized", "scalar")
"""Backends ordered fastest-first; degradation walks left to right."""


@dataclass(frozen=True)
class RunOutcome:
    """How a supervised run actually executed."""

    backend: str
    requested_backend: str
    attempts: int
    retries: int
    degradations: int
    # Replay-mode rung walked alongside the execution rung.  Defaults
    # keep older call sites (and pickled outcomes) constructible.
    replay: str = ""
    requested_replay: str = ""

    @property
    def degraded(self) -> bool:
        return (
            self.backend != self.requested_backend
            or self.replay != self.requested_replay
        )


class RunSupervisor:
    """Runs kernels with watchdog, retry, and degradation policies."""

    transient_errors = (EngineExecutionError, WatchdogTimeout, OSError)
    """Error types worth retrying: the next attempt may succeed."""

    permanent_errors = (ConfigError, WorkloadError, CheckpointError)
    """Error types raised immediately: retrying cannot change them.
    Checked *before* transients, so e.g. a ConfigError stays permanent
    even if a subclass were also transient."""

    def __init__(
        self,
        resilience=None,
        telemetry=None,
        chaos=None,
        sleep: Callable[[float], None] = time.sleep,
        ledger=None,
        trace_store=None,
    ) -> None:
        # Deferred import: config pulls in nothing heavy, but keeping it
        # local to __init__ mirrors the SpadeSystem lazy import below.
        from repro.config import ResilienceConfig

        self.resilience = resilience or ResilienceConfig()
        self.telemetry = ensure(telemetry)
        self.chaos = chaos
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        # Content-addressed epoch-trace store, forwarded to every
        # attempt's system (the scalar rung ignores it by design).
        self.trace_store = trace_store
        self._sleep = sleep
        metrics = self.telemetry.metrics
        self._retries = metrics.counter(
            "spade_run_retries",
            help="supervised run attempts retried after transient errors",
        )
        self._degradations = metrics.counter(
            "spade_backend_degradations",
            help="execution-backend fallbacks taken by the supervisor",
        )
        self.last_outcome: Optional[RunOutcome] = None

    # -- generic supervision --------------------------------------------

    def _with_watchdog(self, fn: Callable[[], object]) -> object:
        """Run ``fn``, raising :class:`WatchdogTimeout` if it exceeds the
        configured wall-clock budget.

        The attempt runs on a daemon thread so a hung attempt cannot
        block interpreter exit; it may keep consuming CPU in the
        background, which is the honest cost of timeouts without
        process isolation.
        """
        timeout = self.resilience.timeout_s
        if timeout is None:
            return fn()
        result: list = []
        error: list = []

        def target() -> None:
            try:
                result.append(fn())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                error.append(exc)

        thread = threading.Thread(
            target=target, name="spade-supervised-run", daemon=True
        )
        thread.start()
        thread.join(timeout)
        if thread.is_alive():
            raise WatchdogTimeout(
                f"supervised run exceeded its {timeout:g}s wall-clock budget"
            )
        if error:
            raise error[0]
        return result[0]

    def call(self, fn: Callable[[], object]) -> object:
        """Supervise an arbitrary callable: watchdog + bounded retry.

        No degradation ladder here — that needs kernel-level knowledge;
        use :meth:`run_kernel` for that.
        """
        res = self.resilience
        last_exc: Optional[BaseException] = None
        for attempt in range(res.max_retries + 1):
            try:
                return self._with_watchdog(fn)
            except self.permanent_errors:
                raise
            except self.transient_errors as exc:
                last_exc = exc
                if attempt == res.max_retries:
                    break
                self._retries.inc()
                self.ledger.emit(
                    "retry",
                    attempt=attempt + 1,
                    execution="",
                    replay="",
                    cause=repr(exc),
                    backoff_s=self._backoff(attempt),
                )
        assert last_exc is not None
        raise last_exc

    def _backoff(self, attempt: int) -> float:
        res = self.resilience
        delay = res.backoff_base_s * (res.backoff_factor ** attempt)
        if delay > 0:
            self._sleep(delay)
        return float(delay)

    # -- kernel supervision ----------------------------------------------

    def _ladder(
        self, requested: str, requested_replay: str
    ) -> Tuple[Tuple[str, str], ...]:
        """Combined (execution, replay) rungs, fastest-first.

        Each ladder starts at its requested rung; the shorter one is
        padded with its last (most conservative) entry so both bottom
        out together.  Unknown modes pin their ladder to one rung.
        """
        from repro.config import replay_degradation_ladder

        if requested in DEGRADATION_LADDER:
            exe = DEGRADATION_LADDER[DEGRADATION_LADDER.index(requested):]
        else:
            exe = (requested,)
        replay_full = replay_degradation_ladder()
        if requested_replay in replay_full:
            rep = replay_full[replay_full.index(requested_replay):]
        else:
            rep = (requested_replay,)
        depth = max(len(exe), len(rep))
        rungs = tuple(
            (exe[min(i, len(exe) - 1)], rep[min(i, len(rep) - 1)])
            for i in range(depth)
        )
        if not self.resilience.degrade:
            rungs = rungs[:1]
        return rungs

    def run_kernel(
        self,
        config,
        kernel: str,
        a,
        b,
        c=None,
        settings=None,
        chunk_nnz: Optional[int] = None,
    ):
        """Run ``SpadeSystem.{spmm,sddmm}`` under full supervision.

        Builds a fresh system per attempt, retries transient failures
        with backoff, and degrades the execution backend between rungs.
        When a checkpoint directory is configured, any attempt after the
        first resumes from the latest snapshot — including across rungs,
        since checkpoints are backend-agnostic.  Returns the kernel's
        :class:`~repro.core.accelerator.ExecutionReport`; the realised
        backend and retry counts land in :attr:`last_outcome`.
        """
        # Imported lazily: accelerator -> engine -> resilience would
        # otherwise cycle at package import time.
        from repro.core.accelerator import SpadeSystem

        if kernel not in ("spmm", "sddmm"):
            raise ConfigError(
                f"unknown kernel {kernel!r}; expected 'spmm' or 'sddmm'"
            )
        res = self.resilience
        requested = config.execution
        requested_replay = config.replay
        ladder = self._ladder(requested, requested_replay)
        total_attempts = 0
        retries = 0
        degradations = 0
        last_exc: Optional[BaseException] = None

        if self.ledger.enabled:
            from repro.telemetry.provenance import config_fingerprint

            self.ledger.emit(
                "run_start",
                kernel=kernel,
                execution=requested,
                replay=requested_replay,
                config_fingerprint=config_fingerprint(config),
                pid=os.getpid(),
            )
        run_t0 = time.perf_counter()

        for rung, (backend, replay_mode) in enumerate(ladder):
            if rung > 0:
                degradations += 1
                self._degradations.inc()
                self.ledger.emit(
                    "degradation",
                    from_execution=ladder[rung - 1][0],
                    from_replay=ladder[rung - 1][1],
                    to_execution=backend,
                    to_replay=replay_mode,
                    cause=repr(last_exc) if last_exc is not None else "",
                )
            for attempt in range(res.max_retries + 1):
                resume = res.resume or (
                    total_attempts > 0 and res.checkpoint_dir is not None
                )
                attempt_config = replace(
                    config,
                    execution=backend,
                    replay=replay_mode,
                    resilience=replace(res, resume=resume),
                )
                total_attempts += 1

                def run_once(cfg=attempt_config):
                    kwargs = {}
                    if chunk_nnz is not None:
                        kwargs["chunk_nnz"] = chunk_nnz
                    system = SpadeSystem(
                        config=cfg,
                        telemetry=self.telemetry,
                        chaos=self.chaos,
                        ledger=self.ledger,
                        trace_store=self.trace_store,
                        **kwargs,
                    )
                    fn = getattr(system, kernel)
                    if kernel == "spmm":
                        return fn(a, b, settings=settings)
                    return fn(a, b, c, settings=settings)

                try:
                    report = self._with_watchdog(run_once)
                except self.permanent_errors:
                    raise
                except self.transient_errors as exc:
                    last_exc = exc
                    if attempt == res.max_retries:
                        break  # next rung
                    retries += 1
                    self._retries.inc()
                    backoff_s = self._backoff(attempt)
                    self.ledger.emit(
                        "retry",
                        attempt=attempt + 1,
                        execution=backend,
                        replay=replay_mode,
                        cause=repr(exc),
                        backoff_s=backoff_s,
                    )
                    continue
                self.last_outcome = RunOutcome(
                    backend=backend,
                    requested_backend=requested,
                    attempts=total_attempts,
                    retries=retries,
                    degradations=degradations,
                    replay=replay_mode,
                    requested_replay=requested_replay,
                )
                if self.ledger.enabled:
                    self.ledger.emit(
                        "run_end",
                        status="ok",
                        wall_s=time.perf_counter() - run_t0,
                        time_ns=float(report.time_ns),
                    )
                return report

        assert last_exc is not None
        self.last_outcome = RunOutcome(
            backend=ladder[-1][0],
            requested_backend=requested,
            attempts=total_attempts,
            retries=retries,
            degradations=degradations,
            replay=ladder[-1][1],
            requested_replay=requested_replay,
        )
        if self.ledger.enabled:
            self.ledger.emit(
                "run_end",
                status="failed",
                wall_s=time.perf_counter() - run_t0,
                error=repr(last_exc),
            )
        raise last_exc
