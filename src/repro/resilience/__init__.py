"""Resilience layer: checkpoints, supervised runs, fault injection.

Long simulator runs (full-scale suite matrices, sweep campaigns on
shared machines) fail for mundane reasons — a worker thread dies, a
node gets preempted, a batch job hits its walltime.  This package makes
such failures recoverable without giving up the repo's core guarantee:
every execution path is bit-identical.

Three pieces:

* :mod:`repro.resilience.checkpoint` — epoch-granular snapshots of the
  full architectural state (caches, STLBs, BBFs, VRFs, accumulated
  stats, schedule cursor).  A resumed run replays the remaining epochs
  and produces an :class:`~repro.core.engine.EngineResult` bit-identical
  to an uninterrupted one.
* :mod:`repro.resilience.supervisor` — :class:`RunSupervisor` wraps
  kernel entry points with watchdog timeouts, bounded retry with
  exponential backoff, and a degradation ladder that falls back
  pipelined → vectorized → scalar, preserving output parity.
* :mod:`repro.resilience.chaos` — deterministic fault injection for
  testing the above (worker exceptions, replay delays, truncated
  checkpoints, mid-run crashes), all derived from a seed.
"""

from repro.errors import (
    CheckpointError,
    ConfigError,
    EngineExecutionError,
    SpadeError,
    WatchdogTimeout,
    WorkloadError,
)
from repro.resilience.chaos import (
    ChaosConfig,
    ChaosMonkey,
    InjectedCrash,
    InjectedFault,
)
from repro.resilience.checkpoint import (
    CheckpointManager,
    checkpoint_fingerprint,
)
from repro.resilience.supervisor import (
    DEGRADATION_LADDER,
    RunOutcome,
    RunSupervisor,
)

__all__ = [
    "SpadeError",
    "ConfigError",
    "WorkloadError",
    "EngineExecutionError",
    "WatchdogTimeout",
    "CheckpointError",
    "ChaosConfig",
    "ChaosMonkey",
    "InjectedFault",
    "InjectedCrash",
    "CheckpointManager",
    "checkpoint_fingerprint",
    "DEGRADATION_LADDER",
    "RunOutcome",
    "RunSupervisor",
]
