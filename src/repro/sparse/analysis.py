"""Structural analysis of sparse matrices: reuse statistics and an
estimate of Restructuring Utility (Section 2.2, Table 2).

The paper classifies matrices by whether they benefit from SPADE's
flexibility knobs (tiling, barriers, bypassing).  That benefit is
predictable from the nonzero structure: matrices with many repeated
column indices spread across distant rows have "Distant Reuse" that
tiling/barriers can capture, while banded low-degree matrices do not.
These metrics feed both the autotuner's search-ordering heuristics and
the documentation of the synthetic suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.suite import RU


@dataclass(frozen=True)
class ReuseStats:
    """Summary statistics of reuse opportunities in a sparse matrix."""

    num_rows: int
    num_cols: int
    nnz: int
    avg_row_nnz: float
    max_row_nnz: int
    avg_col_nnz: float
    max_col_nnz: int
    row_gini: float
    col_gini: float
    mean_col_span: float
    bandedness: float

    @property
    def density(self) -> float:
        cells = self.num_rows * self.num_cols
        return self.nnz / cells if cells else 0.0


def _gini(counts: np.ndarray) -> float:
    """Gini coefficient of a nonnegative count distribution (0 = uniform,
    -> 1 = all mass on one element).  Measures hub skew."""
    counts = np.sort(counts[counts > 0].astype(np.float64))
    n = len(counts)
    if n == 0:
        return 0.0
    total = counts.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float(2.0 * (ranks * counts).sum() / (n * total) - (n + 1) / n)


def reuse_stats(coo: COOMatrix) -> ReuseStats:
    """Compute reuse statistics for a matrix."""
    row_counts = coo.row_nnz_counts()
    col_counts = coo.col_nnz_counts()
    nnz = max(coo.nnz, 1)

    # Column span: over rows touching a column, how far apart (in rows)
    # are its uses?  Large spans = distant reuse that barriers can help.
    spans = np.zeros(coo.num_cols, dtype=np.float64)
    if coo.nnz:
        order = np.lexsort((coo.r_ids, coo.c_ids))
        c_sorted = coo.c_ids[order]
        r_sorted = coo.r_ids[order]
        first = np.flatnonzero(np.diff(c_sorted, prepend=-1))
        last = np.append(first[1:] - 1, len(c_sorted) - 1)
        spans[c_sorted[first]] = r_sorted[last] - r_sorted[first]
    used = col_counts > 1
    mean_span = float(spans[used].mean()) if used.any() else 0.0

    # Bandedness: fraction of nonzeros within a narrow diagonal band.
    band = max(1, coo.num_rows // 64)
    in_band = (
        np.abs(coo.r_ids - coo.c_ids) <= band if coo.nnz else np.array([])
    )
    bandedness = float(in_band.mean()) if coo.nnz else 0.0

    return ReuseStats(
        num_rows=coo.num_rows,
        num_cols=coo.num_cols,
        nnz=coo.nnz,
        avg_row_nnz=coo.nnz / max(coo.num_rows, 1),
        max_row_nnz=int(row_counts.max()) if coo.num_rows else 0,
        avg_col_nnz=coo.nnz / max(coo.num_cols, 1),
        max_col_nnz=int(col_counts.max()) if coo.num_cols else 0,
        row_gini=_gini(row_counts),
        col_gini=_gini(col_counts),
        mean_col_span=mean_span / max(coo.num_rows, 1),
        bandedness=bandedness,
    )


def estimate_ru(coo: COOMatrix) -> RU:
    """Heuristic Restructuring Utility classification.

    High RU needs both abundant column reuse (high average column degree
    or strong hub skew) and reuse that is *distant* (not already captured
    by a banded structure).  Banded, low-degree matrices are low RU.
    """
    stats = reuse_stats(coo)
    if stats.bandedness > 0.6 or stats.avg_col_nnz < 8:
        return RU.LOW
    score = 0.0
    score += min(stats.avg_col_nnz / 32.0, 2.0)
    score += stats.col_gini
    score += min(stats.mean_col_span * 2.0, 1.0)
    if stats.density > 1e-3:
        score += 1.0
    if score >= 2.5:
        return RU.HIGH
    if score >= 1.2:
        return RU.MEDIUM
    return RU.LOW


def working_set_bytes(
    coo: COOMatrix, dense_row_size: int, val_bytes: int = 4
) -> dict:
    """Footprints of the operand structures for an SpMM with row size K.

    Returns a dict with the sparse stream, rMatrix, and cMatrix sizes —
    the quantities the bypass heuristics of Section 5.2 reason about.
    """
    row_bytes = dense_row_size * val_bytes
    return {
        "sparse_stream": coo.footprint_bytes(),
        "rmatrix": coo.num_rows * row_bytes,
        "cmatrix": coo.num_cols * row_bytes,
        "touched_rmatrix": int(np.count_nonzero(coo.row_nnz_counts()))
        * row_bytes,
        "touched_cmatrix": int(np.count_nonzero(coo.col_nnz_counts()))
        * row_bytes,
    }
