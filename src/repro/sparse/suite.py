"""The benchmark suite: scaled stand-ins for the ten Table 2 graphs.

Each entry names one of the paper's SuiteSparse graphs, records its
domain and Restructuring Utility (RU) class from Table 2, and builds a
synthetic matrix with the same structural character (see
:mod:`repro.sparse.generators`).  The ``scale`` knob trades fidelity for
simulation time; "tiny" is for unit tests, "default" for benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List

from repro.sparse import generators as gen
from repro.sparse.coo import COOMatrix


class RU(Enum):
    """Restructuring Utility class (Table 2)."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


@dataclass(frozen=True)
class Benchmark:
    """One suite entry: a named graph and its metadata."""

    name: str
    full_name: str
    domain: str
    ru: RU
    builder: Callable[[str], COOMatrix]

    def build(self, scale: str = "default") -> COOMatrix:
        """Materialise the matrix at the given scale."""
        return self.builder(scale)


_SIZES = {
    # generator size parameter per scale; chosen so that "default"
    # matrices have roughly 10^5-10^6 nonzeros, preserving the relative
    # ordering of Table 2 (ORK/KRO/MYC densest, roads sparsest).
    "tiny": 0,
    "small": 1,
    "default": 2,
    "large": 3,
}


def _pick(scale: str, values) -> int:
    try:
        return values[_SIZES[scale]]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; use one of {sorted(_SIZES)}"
        ) from None


def _asi(scale: str) -> COOMatrix:
    return gen.road_graph(side=_pick(scale, (24, 64, 192, 384)), seed=10)


def _liv(scale: str) -> COOMatrix:
    return gen.social_network(
        num_nodes=_pick(scale, (512, 4096, 24576, 98304)),
        avg_degree=16,
        seed=11,
    )


def _ork(scale: str) -> COOMatrix:
    return gen.social_network(
        num_nodes=_pick(scale, (384, 2048, 12288, 49152)),
        avg_degree=48,
        seed=12,
    )


def _pap(scale: str) -> COOMatrix:
    return gen.citation_graph(
        num_communities=_pick(scale, (8, 48, 256, 1024)),
        community_size=48,
        seed=13,
    )


def _del(scale: str) -> COOMatrix:
    return gen.delaunay_like(
        num_nodes=_pick(scale, (512, 8192, 65536, 262144)), seed=14
    )


def _kro(scale: str) -> COOMatrix:
    return gen.rmat_graph(
        scale=_pick(scale, (8, 12, 14, 16)), edge_factor=24, seed=15
    )


def _myc(scale: str) -> COOMatrix:
    return gen.mycielskian_graph(iterations=_pick(scale, (6, 9, 10, 12)))


def _pac(scale: str) -> COOMatrix:
    side = _pick(scale, (8, 16, 32, 48))
    return gen.packing_like(nx=side, ny=side, nz=side, seed=16)


def _roa(scale: str) -> COOMatrix:
    return gen.road_graph(
        side=_pick(scale, (24, 72, 224, 448)), extra_edge_frac=0.1, seed=17
    )


def _ser(scale: str) -> COOMatrix:
    return gen.fem_like(
        num_blocks=_pick(scale, (16, 128, 1024, 4096)),
        block_size=24,
        seed=18,
    )


SUITE: List[Benchmark] = [
    Benchmark("ASI", "asia_osm", "Road graph", RU.LOW, _asi),
    Benchmark("LIV", "com-LiveJournal", "Social network", RU.MEDIUM, _liv),
    Benchmark("ORK", "com-Orkut", "Social network", RU.HIGH, _ork),
    Benchmark("PAP", "coPapersCiteseer", "Citation graph", RU.MEDIUM, _pap),
    Benchmark("DEL", "delaunay_n24", "Geometry problem", RU.LOW, _del),
    Benchmark("KRO", "kron_g500-logn20", "Synthetic graph", RU.HIGH, _kro),
    Benchmark("MYC", "mycielskian17", "Mathematics (fractals)", RU.HIGH, _myc),
    Benchmark(
        "PAC", "packing-500x100x100-b050", "Numerical simulations",
        RU.LOW, _pac,
    ),
    Benchmark("ROA", "road_usa", "Highway graph", RU.LOW, _roa),
    Benchmark("SER", "Serena", "Environmental science", RU.MEDIUM, _ser),
]

_BY_NAME: Dict[str, Benchmark] = {b.name: b for b in SUITE}


def get_benchmark(name: str) -> Benchmark:
    """Look one suite entry up by its short name (e.g. ``"KRO"``)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from "
            f"{sorted(_BY_NAME)}"
        ) from None


def suite_names() -> List[str]:
    return [b.name for b in SUITE]


def benchmarks_by_ru(ru: RU) -> List[Benchmark]:
    return [b for b in SUITE if b.ru is ru]
