"""COO (coordinate) sparse matrix format.

SPADE's evaluation uses COO for the accelerator (Section 6.C): three
parallel arrays ``r_ids``, ``c_ids``, ``vals`` (Figure 15a).  This module
is the canonical in-memory representation from which the tiled layout of
Appendix A is derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


@dataclass
class COOMatrix:
    """A sparse matrix in coordinate format.

    Invariants (enforced by :meth:`validate`): the three arrays have equal
    length, indices are in-range, and there are no duplicate coordinates.
    Entries need not be sorted — the tiled layout reorders them anyway.
    """

    num_rows: int
    num_cols: int
    r_ids: np.ndarray
    c_ids: np.ndarray
    vals: np.ndarray

    def __post_init__(self) -> None:
        self.r_ids = np.ascontiguousarray(self.r_ids, dtype=np.int64)
        self.c_ids = np.ascontiguousarray(self.c_ids, dtype=np.int64)
        self.vals = np.ascontiguousarray(self.vals, dtype=np.float32)
        self.validate()

    # -- construction -------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build from a 2-D dense array, keeping nonzero entries."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("dense input must be 2-D")
        r, c = np.nonzero(dense)
        return cls(dense.shape[0], dense.shape[1], r, c, dense[r, c])

    @classmethod
    def from_scipy(cls, mat) -> "COOMatrix":
        """Build from any scipy.sparse matrix."""
        coo = mat.tocoo()
        coo.sum_duplicates()
        return cls(coo.shape[0], coo.shape[1], coo.row, coo.col, coo.data)

    @classmethod
    def from_edges(
        cls,
        num_rows: int,
        num_cols: int,
        edges: np.ndarray,
        vals: np.ndarray | None = None,
    ) -> "COOMatrix":
        """Build from an ``(nnz, 2)`` array of (row, col) pairs.

        Duplicate coordinates are collapsed (values summed), matching the
        semantics of assembling a graph adjacency matrix.
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must have shape (nnz, 2)")
        if vals is None:
            vals = np.ones(len(edges), dtype=np.float32)
        key = edges[:, 0] * num_cols + edges[:, 1]
        order = np.argsort(key, kind="stable")
        key = key[order]
        vals = np.asarray(vals, dtype=np.float32)[order]
        unique_key, start = np.unique(key, return_index=True)
        summed = np.add.reduceat(vals, start) if len(vals) else vals
        return cls(
            num_rows,
            num_cols,
            unique_key // num_cols,
            unique_key % num_cols,
            summed,
        )

    # -- properties ----------------------------------------------------

    @property
    def nnz(self) -> int:
        return len(self.vals)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def density(self) -> float:
        cells = self.num_rows * self.num_cols
        return self.nnz / cells if cells else 0.0

    # -- operations ----------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` on any violated invariant."""
        n = len(self.vals)
        if len(self.r_ids) != n or len(self.c_ids) != n:
            raise ValueError("r_ids, c_ids, vals must have equal length")
        if n:
            if self.r_ids.min() < 0 or self.r_ids.max() >= self.num_rows:
                raise ValueError("row index out of range")
            if self.c_ids.min() < 0 or self.c_ids.max() >= self.num_cols:
                raise ValueError("column index out of range")
            key = self.r_ids * self.num_cols + self.c_ids
            if len(np.unique(key)) != n:
                raise ValueError("duplicate coordinates in COO matrix")

    def sorted_by_row(self) -> "COOMatrix":
        """Return a copy with entries in row-major (row, then col) order."""
        order = np.lexsort((self.c_ids, self.r_ids))
        return COOMatrix(
            self.num_rows,
            self.num_cols,
            self.r_ids[order],
            self.c_ids[order],
            self.vals[order],
        )

    def transpose(self) -> "COOMatrix":
        return COOMatrix(
            self.num_cols, self.num_rows, self.c_ids, self.r_ids, self.vals
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float32)
        out[self.r_ids, self.c_ids] = self.vals
        return out

    def to_scipy(self):
        import scipy.sparse as sp

        return sp.coo_matrix(
            (self.vals, (self.r_ids, self.c_ids)), shape=self.shape
        )

    def row_nnz_counts(self) -> np.ndarray:
        """Number of nonzeros in each row (length ``num_rows``)."""
        return np.bincount(self.r_ids, minlength=self.num_rows)

    def col_nnz_counts(self) -> np.ndarray:
        """Number of nonzeros in each column (length ``num_cols``)."""
        return np.bincount(self.c_ids, minlength=self.num_cols)

    def iter_entries(self) -> Iterator[Tuple[int, int, float]]:
        """Yield (r_id, c_id, val) tuples in storage order."""
        for r, c, v in zip(self.r_ids, self.c_ids, self.vals):
            yield int(r), int(c), float(v)

    def footprint_bytes(self, index_bytes: int = 4, val_bytes: int = 4) -> int:
        """Memory footprint of the three COO arrays."""
        return self.nnz * (2 * index_bytes + val_bytes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, COOMatrix):
            return NotImplemented
        a, b = self.sorted_by_row(), other.sorted_by_row()
        return (
            a.shape == b.shape
            and np.array_equal(a.r_ids, b.r_ids)
            and np.array_equal(a.c_ids, b.c_ids)
            and np.allclose(a.vals, b.vals)
        )

    def __repr__(self) -> str:
        return (
            f"COOMatrix({self.num_rows}x{self.num_cols}, nnz={self.nnz}, "
            f"density={self.density:.2e})"
        )
