"""CSR (compressed sparse row) format.

The paper's CPU and GPU baselines use CSR "for high performance"
(Section 6.C), so the baseline models consume CSR; SPADE itself consumes
the tiled COO layout.  CSR also backs the reference kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sparse.coo import COOMatrix


@dataclass
class CSRMatrix:
    """A sparse matrix in compressed sparse row format."""

    num_rows: int
    num_cols: int
    row_ptr: np.ndarray
    col_ids: np.ndarray
    vals: np.ndarray

    def __post_init__(self) -> None:
        self.row_ptr = np.ascontiguousarray(self.row_ptr, dtype=np.int64)
        self.col_ids = np.ascontiguousarray(self.col_ids, dtype=np.int64)
        self.vals = np.ascontiguousarray(self.vals, dtype=np.float32)
        self.validate()

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        s = coo.sorted_by_row()
        row_ptr = np.zeros(coo.num_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(s.r_ids, minlength=coo.num_rows), out=row_ptr[1:])
        return cls(coo.num_rows, coo.num_cols, row_ptr, s.c_ids, s.vals)

    @property
    def nnz(self) -> int:
        return len(self.vals)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.num_rows, self.num_cols)

    def validate(self) -> None:
        if len(self.row_ptr) != self.num_rows + 1:
            raise ValueError("row_ptr must have num_rows + 1 entries")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.vals):
            raise ValueError("row_ptr endpoints inconsistent with vals")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if len(self.col_ids) != len(self.vals):
            raise ValueError("col_ids and vals must have equal length")
        if len(self.col_ids) and (
            self.col_ids.min() < 0 or self.col_ids.max() >= self.num_cols
        ):
            raise ValueError("column index out of range")

    def row_slice(self, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """Column ids and values of one row."""
        lo, hi = self.row_ptr[row], self.row_ptr[row + 1]
        return self.col_ids[lo:hi], self.vals[lo:hi]

    def to_coo(self) -> COOMatrix:
        r_ids = np.repeat(
            np.arange(self.num_rows, dtype=np.int64), np.diff(self.row_ptr)
        )
        return COOMatrix(
            self.num_rows, self.num_cols, r_ids, self.col_ids, self.vals
        )

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def footprint_bytes(self, index_bytes: int = 4, val_bytes: int = 4) -> int:
        """CSR footprint: row pointers + column ids + values."""
        return (
            (self.num_rows + 1) * index_bytes
            + self.nnz * (index_bytes + val_bytes)
        )

    def __repr__(self) -> str:
        return f"CSRMatrix({self.num_rows}x{self.num_cols}, nnz={self.nnz})"
