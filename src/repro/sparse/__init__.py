"""Sparse matrix substrate: formats, tiling, and the benchmark suite.

SPADE consumes sparse matrices in COO format, reordered into the tiled
layout of Appendix A.  This package provides:

- :mod:`repro.sparse.coo` / :mod:`repro.sparse.csr` — storage formats,
- :mod:`repro.sparse.tiled` — the tiled-COO layout with its metadata,
- :mod:`repro.sparse.generators` — synthetic stand-ins for the ten
  SuiteSparse graphs of Table 2,
- :mod:`repro.sparse.suite` — the scaled benchmark suite,
- :mod:`repro.sparse.analysis` — reuse / restructuring-utility analysis.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.tiled import TiledMatrix, TileInfo, tile_matrix

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "TiledMatrix",
    "TileInfo",
    "tile_matrix",
]
