"""Synthetic sparse-matrix generators standing in for Table 2.

The paper evaluates on ten SuiteSparse graphs.  Those exact matrices are
not redistributable here, so each generator below reproduces the
*structural property* of one graph family — the property that determines
its Restructuring Utility (RU) class and hence its behaviour in every
experiment:

- Road networks (ASI, ROA): near-planar, degree ~2-3, strongly banded
  after geographic numbering → almost no reuse to restructure (low RU).
- Delaunay meshes (DEL): planar triangulation, degree ~6, spatial but
  shuffled numbering → low RU.
- Packing / FEM problems (PAC, SER): 3-D stencils and block-banded
  finite-element structure → local reuse already captured by any tiling
  (low/medium RU).
- Citation graphs (PAP): dense cliques of co-cited papers → medium RU.
- Social networks (LIV, ORK): power-law degree distribution, hub columns
  reused across the whole matrix → medium/high RU.
- Kronecker graphs (KRO): heavy power-law, extreme hubs → high RU.
- Mycielskian (MYC): an exact Mycielskian construction — few rows, very
  dense → high RU and load imbalance under row-panel scheduling.

All generators are deterministic given ``seed`` and return adjacency
matrices as :class:`~repro.sparse.coo.COOMatrix` (symmetrised, no
self-loops, unless noted).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix


def _symmetrize(num_nodes: int, edges: np.ndarray) -> COOMatrix:
    """Build a symmetric adjacency matrix, dropping self-loops."""
    edges = edges[edges[:, 0] != edges[:, 1]]
    both = np.concatenate([edges, edges[:, ::-1]])
    return COOMatrix.from_edges(num_nodes, num_nodes, both)


def road_graph(
    side: int = 256, extra_edge_frac: float = 0.2, seed: int = 0
) -> COOMatrix:
    """A road-network-like graph (stand-in for asia_osm / road_usa).

    A 2-D grid with a fraction of random *local* shortcut edges; nodes
    numbered row-major, so the adjacency matrix is tightly banded, like
    geographically numbered road networks.
    """
    rng = np.random.default_rng(seed)
    n = side * side
    idx = np.arange(n).reshape(side, side)
    right = np.stack(
        [idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1
    )
    down = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1)
    edges = [right, down]
    n_extra = int(extra_edge_frac * n)
    if n_extra:
        src = rng.integers(0, n, n_extra)
        # Shortcuts stay local: jump at most ~2 rows of the grid away.
        dst = np.clip(
            src + rng.integers(-2 * side, 2 * side + 1, n_extra), 0, n - 1
        )
        edges.append(np.stack([src, dst], axis=1))
    return _symmetrize(n, np.concatenate(edges))


def delaunay_like(
    num_nodes: int = 65536, avg_degree: int = 6, seed: int = 1
) -> COOMatrix:
    """A Delaunay-mesh-like graph (stand-in for delaunay_n24).

    Approximates a planar triangulation by connecting each random point
    to its nearest neighbours on a space-partitioning grid; node
    numbering follows a coarse spatial order, yielding moderate banding.
    """
    rng = np.random.default_rng(seed)
    pts = rng.random((num_nodes, 2))
    cells_per_side = max(1, int(np.sqrt(num_nodes / 8)))
    cell = (
        np.minimum((pts[:, 0] * cells_per_side).astype(np.int64),
                   cells_per_side - 1) * cells_per_side
        + np.minimum((pts[:, 1] * cells_per_side).astype(np.int64),
                     cells_per_side - 1)
    )
    # Renumber nodes by cell (coarse spatial sort, like mesh generators).
    order = np.argsort(cell, kind="stable")
    rank = np.empty(num_nodes, dtype=np.int64)
    rank[order] = np.arange(num_nodes)
    # Each node connects to avg_degree/2 nearby nodes in the spatial order.
    half = max(1, avg_degree // 2)
    src = np.repeat(np.arange(num_nodes), half)
    offset = rng.integers(1, 2 * half + 2, len(src))
    dst = np.minimum(src + offset, num_nodes - 1)
    edges = np.stack([rank[order][src], rank[order][dst]], axis=1)
    return _symmetrize(num_nodes, edges)


def rmat_graph(
    scale: int = 16,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 2,
) -> COOMatrix:
    """An R-MAT / Kronecker graph (stand-in for kron_g500-logn20).

    Standard Graph500 recursive-matrix generator: ``2**scale`` nodes,
    ``edge_factor * 2**scale`` directed edge samples, quadrant
    probabilities (a, b, c, d=1-a-b-c).  Heavy power-law hubs give it
    high column reuse → high RU.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("a + b + c must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        bit_row = (r >= a + b).astype(np.int64)
        # Within each half, split between the two quadrants.
        top_split = (r >= a) & (r < a + b)
        bot_split = r >= a + b + c
        bit_col = (top_split | bot_split).astype(np.int64)
        rows = (rows << 1) | bit_row
        cols = (cols << 1) | bit_col
    return _symmetrize(n, np.stack([rows, cols], axis=1))


def social_network(
    num_nodes: int = 65536, avg_degree: int = 24, seed: int = 3
) -> COOMatrix:
    """A preferential-attachment social network (LIV / ORK stand-in).

    Vectorised Barabási–Albert-style model: targets are sampled
    proportionally to a Zipf-like rank distribution, producing power-law
    hub columns with matrix-wide reuse.
    """
    rng = np.random.default_rng(seed)
    m = (avg_degree // 2) * num_nodes
    src = rng.integers(0, num_nodes, m)
    # Zipf(1.0)-distributed ranks over node ids: node 0 is the top hub.
    u = rng.random(m)
    dst = (num_nodes ** u - 1).astype(np.int64)
    dst = np.clip(dst, 0, num_nodes - 1)
    # Scatter hub identities across the id space deterministically so the
    # heavy columns are not all adjacent (as in real crawls).
    perm = _feistel_permutation(num_nodes, seed)
    edges = np.stack([src, perm[dst]], axis=1)
    return _symmetrize(num_nodes, edges)


def citation_graph(
    num_communities: int = 512,
    community_size: int = 64,
    inter_frac: float = 0.05,
    seed: int = 4,
) -> COOMatrix:
    """A co-citation graph (coPapersCiteseer stand-in).

    Papers form near-cliques (co-cited clusters) plus sparse
    inter-community links — dense local blocks with some distant reuse.
    """
    rng = np.random.default_rng(seed)
    n = num_communities * community_size
    # Intra-community edges: each node links to ~community_size/2 peers.
    per_node = max(2, community_size // 2)
    src = np.repeat(np.arange(n), per_node)
    base = (src // community_size) * community_size
    dst = base + rng.integers(0, community_size, len(src))
    edges = [np.stack([src, dst], axis=1)]
    n_inter = int(inter_frac * len(src))
    if n_inter:
        edges.append(rng.integers(0, n, (n_inter, 2)))
    return _symmetrize(n, np.concatenate(edges))


def mycielskian_graph(iterations: int = 10) -> COOMatrix:
    """The exact Mycielskian construction (mycielskian17 stand-in).

    Starting from K2 and applying the Mycielski operation ``iterations``
    times gives a triangle-free graph whose density grows rapidly while
    the node count only doubles — few rows, many nonzeros per row, the
    load-imbalance stress case of the paper (Figures 11c and 12).
    """
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    edges = {(0, 1)}
    n = 2
    for _ in range(iterations):
        # Mycielskian M(G): vertices V (0..n-1), U (n..2n-1), w (2n).
        new_edges = set(edges)
        for (u, v) in edges:
            new_edges.add((u, v + n))
            new_edges.add((v, u + n))
        for i in range(n):
            new_edges.add((i + n, 2 * n))
        edges = new_edges
        n = 2 * n + 1
    arr = np.array(sorted(edges), dtype=np.int64)
    return _symmetrize(n, arr)


def packing_like(
    nx: int = 40, ny: int = 40, nz: int = 40, seed: int = 5
) -> COOMatrix:
    """A 3-D packing / numerical-simulation matrix (PAC stand-in).

    27-point-ish stencil on a 3-D grid: multi-banded structure with
    purely local coupling → low RU.
    """
    rng = np.random.default_rng(seed)
    n = nx * ny * nz
    idx = np.arange(n)
    offsets = [1, nx, nx * ny, nx + 1, nx * ny + nx, nx * ny + 1]
    edges = []
    for off in offsets:
        src = idx[: n - off]
        edges.append(np.stack([src, src + off], axis=1))
    # Sprinkle a few longer-range contacts (particle neighbours).
    n_extra = n // 4
    src = rng.integers(0, n, n_extra)
    dst = np.clip(src + rng.integers(-3 * nx, 3 * nx + 1, n_extra), 0, n - 1)
    edges.append(np.stack([src, dst], axis=1))
    return _symmetrize(n, np.concatenate(edges))


def fem_like(
    num_blocks: int = 2048, block_size: int = 24,
    bandwidth_blocks: int = 6, seed: int = 6,
) -> COOMatrix:
    """A block-banded FEM matrix (Serena stand-in).

    Dense small blocks along a banded block structure, as produced by
    3-D finite-element discretisations with multiple DOFs per node.
    """
    rng = np.random.default_rng(seed)
    n = num_blocks * block_size
    edges = []
    for boff in range(bandwidth_blocks + 1):
        nb = num_blocks - boff
        # Connect a random subset of DOF pairs within each block pair.
        per_block = block_size * 3
        src_block = np.repeat(np.arange(nb), per_block)
        src = src_block * block_size + rng.integers(
            0, block_size, len(src_block)
        )
        dst = (src_block + boff) * block_size + rng.integers(
            0, block_size, len(src_block)
        )
        edges.append(np.stack([src, dst], axis=1))
    return _symmetrize(n, np.concatenate(edges))


def uniform_random(
    num_rows: int, num_cols: int, nnz: int, seed: int = 7
) -> COOMatrix:
    """A uniformly random sparse matrix (no structure), for tests."""
    rng = np.random.default_rng(seed)
    r = rng.integers(0, num_rows, nnz)
    c = rng.integers(0, num_cols, nnz)
    v = rng.standard_normal(nnz).astype(np.float32)
    return COOMatrix.from_edges(num_rows, num_cols, np.stack([r, c], 1), v)


def banded(num_rows: int, bandwidth: int, seed: int = 8) -> COOMatrix:
    """A simple banded square matrix, for tests."""
    rng = np.random.default_rng(seed)
    src = np.repeat(np.arange(num_rows), 4)
    dst = np.clip(
        src + rng.integers(-bandwidth, bandwidth + 1, len(src)),
        0,
        num_rows - 1,
    )
    return _symmetrize(num_rows, np.stack([src, dst], axis=1))


def _feistel_permutation(n: int, seed: int) -> np.ndarray:
    """A deterministic pseudorandom permutation of ``range(n)``."""
    rng = np.random.default_rng(seed ^ 0x5EED)
    perm = rng.permutation(n)
    return perm
