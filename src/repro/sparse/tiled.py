"""Tiled sparse-matrix layout (Appendix A of the paper).

A matrix is partitioned into tiles of ``row_panel_size`` x
``col_panel_size``.  The COO entry arrays are reordered so that each
tile's entries are contiguous, and tiling metadata is attached:

- ``sparse_in_start_offset`` — offset of each tile's first nonzero in the
  reordered ``r_ids``/``c_ids``/``vals`` arrays,
- ``tile_nnz_num`` — nonzeros per tile,
- ``sparse_out_start_offset`` — for SDDMM, the offset of each tile's
  first output value in the output ``vals`` array.  Output tiles are
  padded to cache-line boundaries (Section 4.3: "the first nonzero value
  of each tile in the output sparse matrix must be at the beginning of a
  cache line"),
- ``tile_row_panel_id`` — which row panel each tile belongs to, needed so
  the CPE can assign all tiles of a row panel to the same PE (SpMM data
  races, Section 4.3),
- ``tile_col_panel_id`` — which column panel each tile belongs to, used
  by the scheduling-barrier scheduler (Figure 5b).

Empty tiles are dropped from the layout (they occupy no metadata).
Within a tile, nonzeros keep row-major order, matching Figure 15(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.config import CACHE_LINE_BYTES, FLOAT_BYTES
from repro.sortutil import radix_argsort
from repro.sparse.coo import COOMatrix

_OUT_VALS_PER_LINE = CACHE_LINE_BYTES // FLOAT_BYTES


@dataclass(frozen=True)
class TileInfo:
    """Metadata for one non-empty tile, in layout order."""

    tile_id: int
    row_panel_id: int
    col_panel_id: int
    sparse_in_start_offset: int
    sparse_out_start_offset: int
    nnz: int

    @property
    def sparse_in_end_offset(self) -> int:
        return self.sparse_in_start_offset + self.nnz


@dataclass
class TiledMatrix:
    """A sparse matrix reordered into the Appendix A tiled layout."""

    num_rows: int
    num_cols: int
    row_panel_size: int
    col_panel_size: int
    r_ids: np.ndarray
    c_ids: np.ndarray
    vals: np.ndarray
    tiles: List[TileInfo]

    @property
    def nnz(self) -> int:
        return len(self.vals)

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def num_row_panels(self) -> int:
        return -(-self.num_rows // self.row_panel_size)

    @property
    def num_col_panels(self) -> int:
        return -(-self.num_cols // self.col_panel_size)

    @property
    def out_vals_length(self) -> int:
        """Length of the SDDMM output ``vals`` array including the
        per-tile cache-line alignment padding."""
        if not self.tiles:
            return 0
        last = self.tiles[-1]
        return last.sparse_out_start_offset + _pad_to_line(last.nnz)

    def tiles_in_row_panel(self, row_panel_id: int) -> List[TileInfo]:
        return [t for t in self.tiles if t.row_panel_id == row_panel_id]

    def tiles_in_col_panel(self, col_panel_id: int) -> List[TileInfo]:
        return [t for t in self.tiles if t.col_panel_id == col_panel_id]

    def tile_entries(self, tile: TileInfo):
        """The (r_ids, c_ids, vals) slices of one tile."""
        lo, hi = tile.sparse_in_start_offset, tile.sparse_in_end_offset
        return self.r_ids[lo:hi], self.c_ids[lo:hi], self.vals[lo:hi]

    def to_coo(self) -> COOMatrix:
        """Recover the (unordered) COO matrix."""
        return COOMatrix(
            self.num_rows, self.num_cols, self.r_ids, self.c_ids, self.vals
        )

    def validate(self) -> None:
        """Check layout invariants: contiguous tiles, entries in-panel."""
        expected_offset = 0
        expected_out = 0
        seen = set()
        for tile in self.tiles:
            if tile.sparse_in_start_offset != expected_offset:
                raise ValueError("tiles are not contiguous in entry arrays")
            if tile.sparse_out_start_offset != expected_out:
                raise ValueError("output offsets are not line-aligned")
            if tile.nnz <= 0:
                raise ValueError("empty tile present in layout")
            key = (tile.row_panel_id, tile.col_panel_id)
            if key in seen:
                raise ValueError(f"duplicate tile {key}")
            seen.add(key)
            r, c, _ = self.tile_entries(tile)
            if np.any(r // self.row_panel_size != tile.row_panel_id):
                raise ValueError("entry outside its row panel")
            if np.any(c // self.col_panel_size != tile.col_panel_id):
                raise ValueError("entry outside its column panel")
            expected_offset += tile.nnz
            expected_out += _pad_to_line(tile.nnz)
        if expected_offset != self.nnz:
            raise ValueError("tile nnz sum does not cover all entries")

    def __repr__(self) -> str:
        return (
            f"TiledMatrix({self.num_rows}x{self.num_cols}, nnz={self.nnz}, "
            f"RP={self.row_panel_size}, CP={self.col_panel_size}, "
            f"tiles={self.num_tiles})"
        )


def _pad_to_line(n_vals: int) -> int:
    """Round an output-value count up to a whole number of cache lines."""
    return -(-n_vals // _OUT_VALS_PER_LINE) * _OUT_VALS_PER_LINE


def tile_matrix(
    coo: COOMatrix,
    row_panel_size: int,
    col_panel_size: int | None = None,
) -> TiledMatrix:
    """Reorder a COO matrix into the tiled layout of Appendix A.

    ``col_panel_size=None`` means "all columns" (one column panel), the
    SPADE Base setting.  Tiles are laid out row-panel-major: all tiles of
    row panel 0 left to right, then row panel 1, and so on — the order
    the CPE walks when no barriers are used (Figure 5a).
    """
    if row_panel_size < 1:
        raise ValueError("row_panel_size must be >= 1")
    if col_panel_size is None:
        col_panel_size = coo.num_cols
    col_panel_size = max(1, min(col_panel_size, max(coo.num_cols, 1)))

    rp = coo.r_ids // row_panel_size
    cp = coo.c_ids // col_panel_size
    # Sort entries by (row panel, col panel, row, col): tiles contiguous,
    # row-major inside each tile.  Within a tile the panel ids are fixed,
    # so (rp, cp, r, c) orders identically to the composite key
    # ((rp*NCP + cp)*RPS + r%RPS)*CPS + c%CPS, whose span is
    # tiles x panel-area — small enough for a radix argsort on every
    # realistic shape.  Ties cannot occur between distinct entries of the
    # same (r, c), and equal entries keep input order (both sorts stable).
    n_cp = -(-coo.num_cols // col_panel_size)
    n_rp = -(-coo.num_rows // row_panel_size)
    span = n_rp * n_cp * row_panel_size * col_panel_size
    if span < (1 << 62):
        key = (
            (rp * n_cp + cp) * row_panel_size
            + (coo.r_ids - rp * row_panel_size)
        ) * col_panel_size + (coo.c_ids - cp * col_panel_size)
        order = None
        if 0 < coo.nnz and span <= max(8 * coo.nnz, 1 << 20):
            # Deduplicated matrices have pairwise-distinct keys, and a
            # distinct-key sort is a bitmap scatter + flatnonzero —
            # about half the cost of the radix passes.  Duplicate keys
            # (repeated COO entries) show up as a short flatnonzero and
            # fall through to the stable radix path.
            mask = np.zeros(span, dtype=bool)
            mask[key] = True
            fn = np.flatnonzero(mask)
            if fn.size == coo.nnz:
                inv = np.empty(span, dtype=np.int64)
                inv[key] = np.arange(coo.nnz, dtype=np.int64)
                order = inv[fn]
        if order is None:
            order = radix_argsort(key)
    else:  # pragma: no cover - astronomically large panel spaces
        order = np.lexsort((coo.c_ids, coo.r_ids, cp, rp))
    r = coo.r_ids[order]
    c = coo.c_ids[order]
    v = coo.vals[order]
    rp = rp[order]
    cp = cp[order]

    tiles: List[TileInfo] = []
    if coo.nnz:
        tile_key = rp * (-(-coo.num_cols // col_panel_size)) + cp
        boundaries = np.flatnonzero(np.diff(tile_key)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [coo.nnz]))
        out_offset = 0
        for tid, (lo, hi) in enumerate(zip(starts, ends)):
            tiles.append(
                TileInfo(
                    tile_id=tid,
                    row_panel_id=int(rp[lo]),
                    col_panel_id=int(cp[lo]),
                    sparse_in_start_offset=int(lo),
                    sparse_out_start_offset=out_offset,
                    nnz=int(hi - lo),
                )
            )
            out_offset += _pad_to_line(int(hi - lo))

    return TiledMatrix(
        num_rows=coo.num_rows,
        num_cols=coo.num_cols,
        row_panel_size=row_panel_size,
        col_panel_size=col_panel_size,
        r_ids=r,
        c_ids=c,
        vals=v,
        tiles=tiles,
    )
