"""MatrixMarket I/O.

The paper's benchmarks come from the SuiteSparse collection, which
distributes matrices in MatrixMarket (``.mtx``) coordinate format.  We
cannot redistribute those matrices, but this module lets a user with a
local copy run the real inputs through the simulator, and lets the
synthetic suite be exported for inspection with standard tools.

Supported: ``matrix coordinate (real|integer|pattern)
(general|symmetric)``.  Pattern matrices read as all-ones values;
symmetric matrices are expanded to full storage on read (SPADE operates
on the full nonzero set).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.sparse.coo import COOMatrix

_HEADER_PREFIX = "%%MatrixMarket"
_SUPPORTED_FIELDS = ("real", "integer", "pattern")
_SUPPORTED_SYMMETRY = ("general", "symmetric")


class MatrixMarketError(ValueError):
    """Malformed or unsupported MatrixMarket content."""


def _open(source: Union[str, Path, TextIO], mode: str):
    if hasattr(source, "read") or hasattr(source, "write"):
        return source, False
    return open(source, mode), True


def read_matrix_market(source: Union[str, Path, TextIO]) -> COOMatrix:
    """Parse a MatrixMarket coordinate file into a COO matrix."""
    stream, should_close = _open(source, "r")
    try:
        header = stream.readline()
        if not header.startswith(_HEADER_PREFIX):
            raise MatrixMarketError(
                f"missing {_HEADER_PREFIX} header; got {header[:40]!r}"
            )
        parts = header.strip().split()
        if len(parts) != 5:
            raise MatrixMarketError(f"malformed header: {header!r}")
        _, obj, fmt, field, symmetry = (p.lower() for p in parts)
        if obj != "matrix" or fmt != "coordinate":
            raise MatrixMarketError(
                "only 'matrix coordinate' files are supported"
            )
        if field not in _SUPPORTED_FIELDS:
            raise MatrixMarketError(f"unsupported field {field!r}")
        if symmetry not in _SUPPORTED_SYMMETRY:
            raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")

        line = stream.readline()
        while line.startswith("%"):
            line = stream.readline()
        dims = line.split()
        if len(dims) != 3:
            raise MatrixMarketError(f"malformed size line: {line!r}")
        num_rows, num_cols, nnz = (int(d) for d in dims)

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float32)
        for i in range(nnz):
            entry = stream.readline().split()
            if field == "pattern":
                if len(entry) != 2:
                    raise MatrixMarketError(
                        f"pattern entry {i} malformed: {entry}"
                    )
            elif len(entry) != 3:
                raise MatrixMarketError(f"entry {i} malformed: {entry}")
            rows[i] = int(entry[0]) - 1  # 1-indexed on disk
            cols[i] = int(entry[1]) - 1
            if field != "pattern":
                vals[i] = float(entry[2])

        if symmetry == "symmetric":
            off_diag = rows != cols
            rows = np.concatenate([rows, cols[off_diag]])
            cols = np.concatenate([cols, rows[: nnz][off_diag]])
            vals = np.concatenate([vals, vals[off_diag]])
        return COOMatrix(num_rows, num_cols, rows, cols, vals)
    finally:
        if should_close:
            stream.close()


def write_matrix_market(
    coo: COOMatrix,
    target: Union[str, Path, TextIO],
    comment: str = "written by repro (SPADE reproduction)",
) -> None:
    """Write a COO matrix as 'matrix coordinate real general'."""
    stream, should_close = _open(target, "w")
    try:
        stream.write(f"{_HEADER_PREFIX} matrix coordinate real general\n")
        for line in comment.splitlines():
            stream.write(f"% {line}\n")
        stream.write(f"{coo.num_rows} {coo.num_cols} {coo.nnz}\n")
        sorted_coo = coo.sorted_by_row()
        for r, c, v in zip(
            sorted_coo.r_ids, sorted_coo.c_ids, sorted_coo.vals
        ):
            stream.write(f"{r + 1} {c + 1} {v:.9g}\n")
    finally:
        if should_close:
            stream.close()


def roundtrip_string(coo: COOMatrix) -> str:
    """Serialise a matrix to a MatrixMarket string (for tests/tools)."""
    buf = io.StringIO()
    write_matrix_market(coo, buf)
    return buf.getvalue()
