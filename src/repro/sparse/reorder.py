"""Graph/matrix reordering utilities.

Section 8.E notes that input-aware locality techniques such as
reordering are *orthogonal* to SPADE — they change the nonzero
structure the accelerator sees, so combining them with SPADE's
flexibility knobs is a natural workflow.  This module provides the
standard reorderings used in that literature:

- :func:`degree_sort` — hubs first, concentrating the hot cMatrix rows,
- :func:`bfs_order` — Cuthill-McKee-style breadth-first renumbering
  that reduces bandwidth (turns distant reuse into local reuse),
- :func:`random_permutation` — the adversarial baseline that destroys
  locality,
- :func:`apply_ordering` — permute a matrix symmetrically.

All functions are deterministic given their seeds.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.sparse.coo import COOMatrix


def apply_ordering(
    coo: COOMatrix,
    row_order: np.ndarray,
    col_order: Optional[np.ndarray] = None,
) -> COOMatrix:
    """Renumber a matrix: row i becomes ``row_order[i]``.

    ``row_order`` must be a permutation of ``range(num_rows)``; if
    ``col_order`` is omitted the same permutation is applied to the
    columns (symmetric renumbering of a graph).
    """
    row_order = np.asarray(row_order, dtype=np.int64)
    if col_order is None:
        if coo.num_rows != coo.num_cols:
            raise ValueError(
                "symmetric renumbering needs a square matrix; pass "
                "col_order explicitly"
            )
        col_order = row_order
    else:
        col_order = np.asarray(col_order, dtype=np.int64)
    _check_permutation(row_order, coo.num_rows, "row_order")
    _check_permutation(col_order, coo.num_cols, "col_order")
    return COOMatrix(
        coo.num_rows,
        coo.num_cols,
        row_order[coo.r_ids],
        col_order[coo.c_ids],
        coo.vals,
    )


def _check_permutation(order: np.ndarray, n: int, name: str) -> None:
    if len(order) != n or not np.array_equal(
        np.sort(order), np.arange(n)
    ):
        raise ValueError(f"{name} is not a permutation of range({n})")


def degree_sort(coo: COOMatrix, descending: bool = True) -> np.ndarray:
    """Ordering that places high-degree vertices first.

    Concentrates hub columns at low indices so that the hot cMatrix
    rows share cache sets/tiles — the classic frequency-based layout.
    Returns an ordering suitable for :func:`apply_ordering`.
    """
    degrees = coo.row_nnz_counts() + coo.col_nnz_counts()[: coo.num_rows] \
        if coo.num_rows == coo.num_cols else coo.row_nnz_counts()
    ranks = np.argsort(-degrees if descending else degrees, kind="stable")
    order = np.empty(coo.num_rows, dtype=np.int64)
    order[ranks] = np.arange(coo.num_rows)
    return order


def bfs_order(coo: COOMatrix, start: int = 0) -> np.ndarray:
    """Breadth-first (Cuthill-McKee-like) renumbering of a square
    matrix, reducing its bandwidth.  Disconnected components are
    traversed in index order."""
    if coo.num_rows != coo.num_cols:
        raise ValueError("bfs_order needs a square matrix")
    n = coo.num_rows
    # Adjacency in CSR-ish form.
    order_idx = np.argsort(coo.r_ids, kind="stable")
    sorted_rows = coo.r_ids[order_idx]
    sorted_cols = coo.c_ids[order_idx]
    row_start = np.searchsorted(sorted_rows, np.arange(n + 1))

    visited = np.zeros(n, dtype=bool)
    new_id = np.empty(n, dtype=np.int64)
    next_label = 0
    for root in range(n):
        if visited[root]:
            continue
        queue = deque([root])
        visited[root] = True
        while queue:
            v = queue.popleft()
            new_id[v] = next_label
            next_label += 1
            neighbours = sorted_cols[row_start[v] : row_start[v + 1]]
            for u in neighbours[np.argsort(neighbours, kind="stable")]:
                if not visited[u]:
                    visited[u] = True
                    queue.append(int(u))
    return new_id


def random_permutation(n: int, seed: int = 0) -> np.ndarray:
    """A uniform random ordering — the locality-destroying baseline."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


def bandwidth(coo: COOMatrix) -> int:
    """Matrix bandwidth: max |i - j| over nonzeros (0 if empty)."""
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.r_ids - coo.c_ids).max())
