"""Bounded pipeline queues and reservation stations.

These model the fixed-capacity structures of the PE pipeline (Table 1):
the Sparse Load Queue (6 entries), Dense Load Queue (32), Store Queue
(8), tOp queue (16), and vOp Reservation Stations (32).  Their
capacities bound how many memory requests can be in flight, which is
what gives SPADE its latency tolerance (Section 7.B); the analytic
timing model reads the capacities, while the cycle-level micro model
(:mod:`repro.core.microsim`) exercises the structures directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Generic, List, Optional, TypeVar

T = TypeVar("T")


class BoundedQueue(Generic[T]):
    """A FIFO with fixed capacity and occupancy statistics."""

    def __init__(self, capacity: int, name: str = "queue") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self.pushes = 0
        self.stalls = 0
        self._occupancy_sum = 0
        self._samples = 0

    def try_push(self, item: T) -> bool:
        """Push if not full; a failed push counts as a stall cycle."""
        if len(self._items) >= self.capacity:
            self.stalls += 1
            return False
        self._items.append(item)
        self.pushes += 1
        return True

    def pop(self) -> T:
        return self._items.popleft()

    def peek(self) -> T:
        return self._items[0]

    def sample_occupancy(self) -> None:
        self._occupancy_sum += len(self._items)
        self._samples += 1

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def mean_occupancy(self) -> float:
        return self._occupancy_sum / self._samples if self._samples else 0.0

    def __len__(self) -> int:
        return len(self._items)


@dataclass
class RSEntry:
    """One vOp waiting in the reservation stations."""

    vop_id: int
    operands_pending: int
    depends_on: Optional[int] = None
    ready_cycle: int = 0


class ReservationStations:
    """The out-of-order vOp pool (Section 5.1 step 5).

    vOps wait here until both operands have arrived and any RAW
    dependence on an earlier vOp writing the same VR has resolved; they
    then dispatch (oldest-ready-first) to the SIMD unit.
    """

    def __init__(self, num_entries: int) -> None:
        if num_entries < 1:
            raise ValueError("need at least one RS entry")
        self.num_entries = num_entries
        self._entries: List[RSEntry] = []
        self.dispatches = 0
        self.full_stalls = 0

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.num_entries

    def try_insert(self, entry: RSEntry) -> bool:
        if self.is_full:
            self.full_stalls += 1
            return False
        self._entries.append(entry)
        return True

    def operand_arrived(self, vop_id: int) -> None:
        for entry in self._entries:
            if entry.vop_id == vop_id and entry.operands_pending > 0:
                entry.operands_pending -= 1
                return

    def dependence_resolved(self, vop_id: int) -> None:
        for entry in self._entries:
            if entry.depends_on == vop_id:
                entry.depends_on = None

    def dispatch_ready(self, now: int) -> Optional[RSEntry]:
        """Remove and return the oldest ready vOp, if any."""
        for i, entry in enumerate(self._entries):
            if (
                entry.operands_pending == 0
                and entry.depends_on is None
                and entry.ready_cycle <= now
            ):
                self.dispatches += 1
                return self._entries.pop(i)
        return None
