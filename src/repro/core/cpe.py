"""The Control Processing Element (CPE): tile scheduling and the
instruction protocol (Sections 4.1–4.3).

The CPE is a simple general-purpose core that walks the tiled matrix
layout and feeds Tile instructions to PEs through their Input registers.
Scheduling rules:

- **SpMM row-panel constraint** — all tiles of a row panel go to the
  same PE (two tiles of one row panel update the same rMatrix rows, so
  splitting them across PEs would race, Section 4.3).  Row panels are
  assigned round-robin across PEs, as in Figure 5(a).
- **SDDMM** has no such constraint (each nonzero owns its output), but
  the same round-robin policy is used for uniformity.
- **Scheduling barriers** — when enabled, tiles are issued in epochs of
  ``barrier_group_cols`` column panels; no PE receives a tile of the
  next epoch until every PE has finished the current one (Figure 5b).
  This bounds the concurrent cMatrix working set in the shared LLC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.instructions import (
    Instruction,
    InitializationInstruction,
    Primitive,
    SchedulingBarrierInstruction,
    TerminationInstruction,
    TileInstruction,
    WBInvalidateInstruction,
)
from repro.sparse.tiled import TiledMatrix, TileInfo


@dataclass(frozen=True)
class ScheduleParams:
    """The CPE-visible flexibility knobs (Table 3)."""

    use_barriers: bool = False
    barrier_group_cols: int = 1

    def __post_init__(self) -> None:
        if self.barrier_group_cols < 1:
            raise ValueError("barrier_group_cols must be >= 1")


@dataclass
class Schedule:
    """Tile work organised as epochs x PEs.

    ``epochs[e][p]`` is the ordered tile list PE ``p`` executes during
    epoch ``e``.  Without barriers there is exactly one epoch.
    """

    num_pes: int
    epochs: List[List[List[TileInfo]]]
    params: ScheduleParams = field(default_factory=ScheduleParams)

    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    @property
    def num_tiles(self) -> int:
        return sum(
            len(tiles) for epoch in self.epochs for tiles in epoch
        )

    def tiles_for_pe(self, pe_id: int) -> List[TileInfo]:
        """All tiles of one PE across epochs, in execution order."""
        return [t for epoch in self.epochs for t in epoch[pe_id]]

    def pe_nnz(self) -> List[int]:
        """Total nonzeros assigned to each PE (load-balance metric)."""
        return [
            sum(t.nnz for t in self.tiles_for_pe(p))
            for p in range(self.num_pes)
        ]

    def load_imbalance(self) -> float:
        """max/mean nonzeros per PE; 1.0 = perfectly balanced."""
        loads = self.pe_nnz()
        mean = sum(loads) / len(loads) if loads else 0.0
        return max(loads) / mean if mean else 1.0

    def validate_row_panel_constraint(self) -> None:
        """Assert the SpMM anti-race rule: one row panel, one PE."""
        owner: Dict[int, int] = {}
        for epoch in self.epochs:
            for pe_id, tiles in enumerate(epoch):
                for t in tiles:
                    prev = owner.setdefault(t.row_panel_id, pe_id)
                    if prev != pe_id:
                        raise AssertionError(
                            f"row panel {t.row_panel_id} split across "
                            f"PEs {prev} and {pe_id}"
                        )


class ControlProcessor:
    """Builds schedules and instruction streams from a tiled matrix."""

    def __init__(self, num_pes: int) -> None:
        if num_pes < 1:
            raise ValueError("need at least one PE")
        self.num_pes = num_pes

    # -- scheduling ------------------------------------------------------

    def build_schedule(
        self,
        tiled: TiledMatrix,
        params: Optional[ScheduleParams] = None,
        telemetry=None,
    ) -> Schedule:
        """Assign tiles to PEs and group them into barrier epochs.

        With a telemetry session, the schedule's shape (epochs, tiles,
        nnz balance) is published as gauges so load imbalance is
        observable before any cycle is simulated."""
        params = params or ScheduleParams()
        owner = {
            rp: rp % self.num_pes
            for rp in range(tiled.num_row_panels)
        }
        if params.use_barriers:
            groups = -(-tiled.num_col_panels // params.barrier_group_cols)
            epochs = [
                [[] for _ in range(self.num_pes)] for _ in range(groups)
            ]
            for tile in tiled.tiles:
                epoch = tile.col_panel_id // params.barrier_group_cols
                epochs[epoch][owner[tile.row_panel_id]].append(tile)
            # Drop epochs with no tiles at all (fully empty column groups).
            epochs = [e for e in epochs if any(e)]
        else:
            epochs = [[[] for _ in range(self.num_pes)]]
            for tile in tiled.tiles:
                epochs[0][owner[tile.row_panel_id]].append(tile)
        schedule = Schedule(self.num_pes, epochs, params)
        schedule.validate_row_panel_constraint()
        if telemetry is not None and telemetry.metrics.enabled:
            m = telemetry.metrics
            m.gauge(
                "spade_schedule_epochs", help="barrier epochs scheduled"
            ).set(schedule.num_epochs)
            m.gauge(
                "spade_schedule_tiles", help="tiles assigned"
            ).set(schedule.num_tiles)
            m.gauge(
                "spade_schedule_load_imbalance",
                help="max/mean per-PE nonzeros",
            ).set(schedule.load_imbalance())
            nnz_hist = m.histogram(
                "spade_schedule_pe_nnz", help="nonzeros assigned per PE"
            )
            for nnz in schedule.pe_nnz():
                nnz_hist.observe(nnz)
        return schedule

    # -- instruction streams ------------------------------------------------

    def instruction_streams(
        self,
        schedule: Schedule,
        init: InitializationInstruction,
    ) -> List[List[Instruction]]:
        """The exact per-PE instruction sequence the CPE would write to
        the Input registers: Initialization, tiles (with barriers at
        epoch boundaries), WB&Invalidate, Termination (Section 4.3)."""
        streams: List[List[Instruction]] = [
            [init] for _ in range(schedule.num_pes)
        ]
        for epoch_idx, epoch in enumerate(schedule.epochs):
            for pe_id, tiles in enumerate(epoch):
                streams[pe_id].extend(
                    TileInstruction(
                        sparse_in_start_offset=t.sparse_in_start_offset,
                        sparse_out_start_offset=t.sparse_out_start_offset,
                        nnz_num=t.nnz,
                    )
                    for t in tiles
                )
            if (
                schedule.params.use_barriers
                and epoch_idx < len(schedule.epochs) - 1
            ):
                for pe_id in range(schedule.num_pes):
                    streams[pe_id].append(
                        SchedulingBarrierInstruction(barrier_id=epoch_idx)
                    )
        for pe_id in range(schedule.num_pes):
            streams[pe_id].append(WBInvalidateInstruction())
            streams[pe_id].append(TerminationInstruction())
        return streams

    @staticmethod
    def make_initialization(
        primitive: Primitive,
        address_map,
        rmatrix_bypass: bool,
        cmatrix_bypass: bool,
        dense_row_size: int,
        sizeof_indices: int = 4,
        sizeof_vals: int = 4,
    ) -> InitializationInstruction:
        """Build the Initialization instruction from an address map whose
        regions follow the engine's naming convention."""
        regions = address_map.regions
        return InitializationInstruction(
            primitive=primitive,
            rmatrix_base=regions["rmatrix"].base,
            cmatrix_base=regions["cmatrix"].base,
            sparse_r_ids_base=regions["sparse_r_ids"].base,
            sparse_c_ids_base=regions["sparse_c_ids"].base,
            sparse_vals_base=regions["sparse_vals"].base,
            sparse_out_vals_base=(
                regions["sparse_out_vals"].base
                if "sparse_out_vals" in regions
                else 0
            ),
            rmatrix_bypass=rmatrix_bypass,
            cmatrix_bypass=cmatrix_bypass,
            sizeof_indices=sizeof_indices,
            sizeof_vals=sizeof_vals,
            dense_row_size=dense_row_size,
        )
