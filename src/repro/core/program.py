"""CPE <-> PE instruction protocol simulation (Section 4.1).

The CPE communicates with PEs through per-PE memory-mapped *Input
registers*.  Writing an Input register notifies the PE (an MWAIT-like
wakeup); the PE reads the instruction, acknowledges by marking the
register free, and the CPE may then overwrite it with the next
instruction.  Scheduling barriers are enforced by the CPE withholding
new tile instructions until every PE has read its barrier.

This module simulates that handshake at message granularity: it does
not change kernel results (the engine executes tiles directly), but it
verifies protocol properties — bounded register occupancy, barrier
semantics, the WB&Invalidate-before-Termination ordering — and counts
the protocol traffic, which is negligible by design (the ISA is
tile-grained precisely so that instruction delivery is off the critical
path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.cpe import ControlProcessor, Schedule
from repro.core.instructions import (
    InitializationInstruction,
    Instruction,
    SchedulingBarrierInstruction,
    TerminationInstruction,
    TileInstruction,
    WBInvalidateInstruction,
)

DEFAULT_INPUT_REGISTERS = 4
"""Input registers per PE ("a few", Section 4.1)."""


class ProtocolError(RuntimeError):
    """A violation of the CPE<->PE handshake rules."""


@dataclass
class InputRegisterFile:
    """One PE's memory-mapped Input registers."""

    num_registers: int = DEFAULT_INPUT_REGISTERS
    _slots: List[Optional[Instruction]] = field(default_factory=list)
    writes: int = 0
    notifications: int = 0

    def __post_init__(self) -> None:
        if self.num_registers < 1:
            raise ValueError("need at least one Input register")
        self._slots = [None] * self.num_registers

    @property
    def occupied(self) -> int:
        return sum(1 for s in self._slots if s is not None)

    @property
    def has_free_slot(self) -> bool:
        return self.occupied < self.num_registers

    def cpe_write(self, instruction: Instruction) -> None:
        """The CPE writes an instruction; the PE is notified in
        hardware (Section 4.1)."""
        for i, slot in enumerate(self._slots):
            if slot is None:
                self._slots[i] = instruction
                self.writes += 1
                self.notifications += 1
                return
        raise ProtocolError(
            "CPE overwrote a full Input register file; it must wait for "
            "the PE's read acknowledgement"
        )

    def pe_read(self) -> Optional[Instruction]:
        """The PE reads the oldest pending instruction; reading frees
        the register and informs the CPE."""
        for i, slot in enumerate(self._slots):
            if slot is not None:
                self._slots[i] = None
                return slot
        return None


@dataclass
class PEProtocolState:
    """Protocol-visible state of one PE."""

    registers: InputRegisterFile
    initialized: bool = False
    at_barrier: Optional[int] = None
    wb_invalidated: bool = False
    terminated: bool = False
    tiles_executed: int = 0


@dataclass
class ProtocolTrace:
    """Counters describing one SPADE-mode section's protocol traffic."""

    register_writes: int = 0
    notifications: int = 0
    barriers_crossed: int = 0
    tiles_delivered: int = 0

    def bytes_on_wire(self, register_bytes: int = 64) -> int:
        """Instruction-delivery traffic: one register write each."""
        return self.register_writes * register_bytes


class ProgramRunner:
    """Drives a whole SPADE-mode section through the CPE protocol.

    The runner interleaves CPE writes and PE reads round-robin,
    enforcing every rule of Sections 4.1-4.3:

    - a PE executes nothing before Initialization,
    - all PEs must read a barrier before any receives the next epoch,
    - WB&Invalidate precedes Termination, and a terminated PE receives
      nothing further.
    """

    def __init__(
        self,
        num_pes: int,
        input_registers: int = DEFAULT_INPUT_REGISTERS,
    ) -> None:
        self.num_pes = num_pes
        self.pes = [
            PEProtocolState(InputRegisterFile(input_registers))
            for _ in range(num_pes)
        ]
        self.trace = ProtocolTrace()

    def run(
        self,
        schedule: Schedule,
        init: InitializationInstruction,
    ) -> ProtocolTrace:
        """Deliver and consume the full instruction streams."""
        cpe = ControlProcessor(self.num_pes)
        streams = cpe.instruction_streams(schedule, init)
        cursors = [0] * self.num_pes
        pending_barrier: Optional[int] = None
        barrier_read = [False] * self.num_pes

        progress = True
        while progress:
            progress = False
            for pe_id, state in enumerate(self.pes):
                stream = streams[pe_id]
                # CPE side: deliver the next instruction if allowed.
                # While a barrier is open, a PE that has already read
                # it receives nothing further — everything after the
                # barrier belongs to the next epoch (Section 4.3);
                # PEs still working toward the barrier keep receiving
                # their remaining current-epoch instructions.
                if cursors[pe_id] < len(stream):
                    nxt = stream[cursors[pe_id]]
                    blocked = (
                        pending_barrier is not None
                        and barrier_read[pe_id]
                    )
                    if not blocked and state.registers.has_free_slot:
                        state.registers.cpe_write(nxt)
                        cursors[pe_id] += 1
                        self.trace.register_writes += 1
                        progress = True
                # PE side: consume one instruction.
                consumed = state.registers.pe_read()
                if consumed is not None:
                    self._execute(pe_id, state, consumed)
                    progress = True
                    if isinstance(consumed, SchedulingBarrierInstruction):
                        pending_barrier = consumed.barrier_id
                        barrier_read[pe_id] = True
                        if all(
                            barrier_read[p]
                            or not self._stream_has_barrier(
                                streams[p], consumed.barrier_id
                            )
                            for p in range(self.num_pes)
                        ):
                            # Every PE has read it: release the epoch.
                            pending_barrier = None
                            barrier_read = [False] * self.num_pes
                            self.trace.barriers_crossed += 1
        self._check_completion(streams, cursors)
        self.trace.notifications = sum(
            s.registers.notifications for s in self.pes
        )
        return self.trace

    # -- rule enforcement ---------------------------------------------------

    @staticmethod
    def _past_barrier(instruction: Instruction) -> bool:
        """Instructions the CPE must withhold while a barrier is open."""
        return isinstance(
            instruction,
            (TileInstruction, WBInvalidateInstruction,
             TerminationInstruction),
        )

    @staticmethod
    def _stream_has_barrier(stream, barrier_id: int) -> bool:
        return any(
            isinstance(i, SchedulingBarrierInstruction)
            and i.barrier_id == barrier_id
            for i in stream
        )

    def _execute(
        self, pe_id: int, state: PEProtocolState, instruction: Instruction
    ) -> None:
        if state.terminated:
            raise ProtocolError(
                f"PE {pe_id} received work after Termination"
            )
        if isinstance(instruction, InitializationInstruction):
            state.initialized = True
        elif isinstance(instruction, TileInstruction):
            if not state.initialized:
                raise ProtocolError(
                    f"PE {pe_id} received a tile before Initialization"
                )
            state.tiles_executed += 1
            self.trace.tiles_delivered += 1
        elif isinstance(instruction, WBInvalidateInstruction):
            state.wb_invalidated = True
        elif isinstance(instruction, TerminationInstruction):
            if not state.wb_invalidated:
                raise ProtocolError(
                    f"PE {pe_id} terminated before WB&Invalidate"
                )
            state.terminated = True

    def _check_completion(self, streams, cursors) -> None:
        for pe_id, (stream, cursor) in enumerate(zip(streams, cursors)):
            if cursor != len(stream):
                raise ProtocolError(
                    f"PE {pe_id} stalled at instruction {cursor} of "
                    f"{len(stream)}"
                )
            if not self.pes[pe_id].terminated:
                raise ProtocolError(f"PE {pe_id} never terminated")
