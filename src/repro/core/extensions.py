"""Extension primitives (Section 9, future work).

The paper notes that SPADE "can already support Sparse Matrix Vector
Multiplication (SpMV) and Sampled Dense Vector-Dense Vector
Multiplication (SDDVV)" without modification: they are the K=1 cases of
SpMM and SDDMM.  Because SPADE pads dense rows to cache-line multiples
(Section 4.3), a vector behaves as a dense matrix with one line per
row; the pipeline, scheduling, and bypass machinery are reused as-is.

These wrappers map the vector kernels onto the existing system and
unpack the padded results.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.accelerator import (
    ExecutionReport,
    KernelSettings,
    SpadeSystem,
    sddmm_output_to_coo,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.tiled import tile_matrix


def spmv(
    system: SpadeSystem,
    a: COOMatrix,
    x: np.ndarray,
    settings: Optional[KernelSettings] = None,
) -> tuple[np.ndarray, ExecutionReport]:
    """Sparse matrix-vector product y = A @ x on SPADE.

    Returns ``(y, report)`` where ``y`` has shape ``(num_rows,)``.
    """
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 1 or len(x) != a.num_cols:
        raise ValueError(f"x must have shape ({a.num_cols},)")
    report = system.spmm(a, x[:, None], settings)
    return report.output[:, 0], report


def sddvv(
    system: SpadeSystem,
    a: COOMatrix,
    u: np.ndarray,
    v: np.ndarray,
    settings: Optional[KernelSettings] = None,
) -> tuple[COOMatrix, ExecutionReport]:
    """Sampled dense-vector dense-vector product on SPADE.

    Computes the sparse matrix with ``D[i, j] = A[i, j] * u[i] * v[j]``
    on A's nonzero structure — the K=1 SDDMM.  Returns ``(D, report)``.
    """
    u = np.asarray(u, dtype=np.float32)
    v = np.asarray(v, dtype=np.float32)
    if u.ndim != 1 or len(u) != a.num_rows:
        raise ValueError(f"u must have shape ({a.num_rows},)")
    if v.ndim != 1 or len(v) != a.num_cols:
        raise ValueError(f"v must have shape ({a.num_cols},)")
    settings = settings or KernelSettings.base()
    report = system.sddmm(a, u[:, None], v[:, None], settings)
    tiled = tile_matrix(
        a, settings.row_panel_size, settings.col_panel_size
    )
    return sddmm_output_to_coo(tiled, report.output), report
