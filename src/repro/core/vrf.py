"""Vector Register File with tag CAM, status RAM, and Write-back Manager.

Each PE has 64 physical vector registers, each holding one cache line
(Table 1).  The vOp Generator tags registers with the memory line they
cache (the VR Tag CAM, Section 5.1 step 4); before allocating, it checks
the CAM so that a line already resident is reused without a memory
request.  A status RAM tracks dirty/unused bits.

SPADE has no explicit stores: the Write-back Manager drains dirty VRs in
the background, starting when the dirty fraction exceeds a high
threshold (25%) and stopping below a low threshold (15%) (Section 5.1
step 9, Table 1).  Drained registers stay resident but clean.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class VectorRegisterFile:
    """64-entry (configurable) fully-associative line-tagged VRF."""

    __slots__ = (
        "num_registers", "_high", "_low", "_tags", "_dirty_count",
        "tag_hits", "tag_misses", "evictions", "manager_writebacks",
        "eviction_writebacks",
    )

    def __init__(
        self,
        num_registers: int,
        wb_high_threshold: float = 0.25,
        wb_low_threshold: float = 0.15,
    ) -> None:
        if num_registers < 2:
            raise ValueError("VRF needs at least 2 registers")
        if not 0 <= wb_low_threshold <= wb_high_threshold <= 1:
            raise ValueError("thresholds must satisfy 0 <= low <= high <= 1")
        self.num_registers = num_registers
        self._high = max(1, int(wb_high_threshold * num_registers))
        self._low = int(wb_low_threshold * num_registers)
        # Insertion-ordered: first = LRU.  line -> dirty flag.
        self._tags: Dict[int, bool] = {}
        self._dirty_count = 0
        self.tag_hits = 0
        self.tag_misses = 0
        self.evictions = 0
        self.manager_writebacks = 0
        self.eviction_writebacks = 0

    def access(
        self, line: int, mark_dirty: bool = False
    ) -> Tuple[bool, List[int]]:
        """Look a line up in the tag CAM, allocating on miss.

        Returns ``(hit, store_lines)`` where ``store_lines`` are the
        memory lines written back by this access — the evicted dirty
        victim (if any) plus any lines the Write-back Manager drained.
        A hit means no memory load is needed for this operand.
        """
        stores: List[int] = []
        dirty = self._tags.get(line)
        if dirty is not None:
            del self._tags[line]
            new_dirty = dirty or mark_dirty
            self._tags[line] = new_dirty
            if new_dirty and not dirty:
                self._dirty_count += 1
            self.tag_hits += 1
        else:
            self.tag_misses += 1
            if len(self._tags) >= self.num_registers:
                victim = next(iter(self._tags))
                victim_dirty = self._tags.pop(victim)
                self.evictions += 1
                if victim_dirty:
                    self._dirty_count -= 1
                    self.eviction_writebacks += 1
                    stores.append(victim)
            self._tags[line] = mark_dirty
            if mark_dirty:
                self._dirty_count += 1

        if self._dirty_count > self._high:
            stores.extend(self._drain_to_low())
        return dirty is not None, stores

    def _drain_to_low(self) -> List[int]:
        """Write-back Manager: clean oldest dirty VRs until the dirty
        count falls to the low threshold.  Lines stay resident."""
        to_drain = self._dirty_count - self._low
        drained: List[int] = []
        for tagged_line, is_dirty in self._tags.items():
            if len(drained) >= to_drain:
                break
            if is_dirty:
                drained.append(tagged_line)
        for tagged_line in drained:
            self._tags[tagged_line] = False
            self._dirty_count -= 1
        self.manager_writebacks += len(drained)
        return drained

    def flush_dirty(self) -> List[int]:
        """Write back all remaining dirty registers (end of tile set /
        WB&Invalidate).  Returns the lines stored."""
        dirty_lines = [ln for ln, d in self._tags.items() if d]
        for ln in dirty_lines:
            self._tags[ln] = False
        self._dirty_count = 0
        self.manager_writebacks += len(dirty_lines)
        return dirty_lines

    def invalidate_all(self) -> List[int]:
        """Flush dirty contents and clear every tag."""
        stores = self.flush_dirty()
        self._tags.clear()
        return stores

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Tag CAM contents in LRU order (line, dirty) plus counters."""
        return {
            "tags": list(self._tags.items()),
            "tag_hits": self.tag_hits,
            "tag_misses": self.tag_misses,
            "evictions": self.evictions,
            "manager_writebacks": self.manager_writebacks,
            "eviction_writebacks": self.eviction_writebacks,
        }

    def load_state_dict(self, state: dict) -> None:
        tags = dict(state["tags"])
        if len(tags) > self.num_registers:
            raise ValueError(
                f"snapshot holds {len(tags)} tags, VRF has "
                f"{self.num_registers} registers"
            )
        self._tags = tags
        self._dirty_count = sum(1 for d in tags.values() if d)
        self.tag_hits = state["tag_hits"]
        self.tag_misses = state["tag_misses"]
        self.evictions = state["evictions"]
        self.manager_writebacks = state["manager_writebacks"]
        self.eviction_writebacks = state["eviction_writebacks"]

    @property
    def occupancy(self) -> int:
        return len(self._tags)

    @property
    def dirty_fraction(self) -> float:
        return self._dirty_count / self.num_registers

    @property
    def tag_lookups(self) -> int:
        return self.tag_hits + self.tag_misses

    @property
    def hit_rate(self) -> float:
        return self.tag_hits / self.tag_lookups if self.tag_lookups else 0.0
