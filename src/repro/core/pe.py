"""Processing Element: functional + trace-level execution of tiles.

A PE receives a Tile instruction and decomposes it through the pipeline
of Figure 6: the sparse front-end streams the tile's (r_id, c_id, val)
tuples and emits one tOp per nonzero; the vOp Generator splits each tOp
into ``ceil(K*4/64)`` cache-line-sized vOps and filters their operands
through the VRF tag CAM; the dense back-end issues memory requests for
operands not already in registers and lets the Write-back Manager drain
dirty registers as stores.

This model executes those steps *functionally and at trace level*: it
produces (a) the numerically exact tile result and (b) the exact
sequence of line-granular memory requests after VRF filtering, which the
shared :class:`~repro.memory.hierarchy.MemorySystem` services.  Cycle
timing is derived afterwards by :mod:`repro.core.timing` from the
per-service-level request counts tallied here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import CACHE_LINE_BYTES, PEConfig
from repro.core.bypass import BypassPolicy
from repro.core.instructions import InitializationInstruction, Primitive
from repro.core.vectorized import (
    TraceBuffer,
    buffer_sparse_stream,
    generate_sddmm_chunk,
    generate_spmm_chunk,
)
from repro.core.vrf import VectorRegisterFile
from repro.memory.address import AddressMap, padded_row_bytes
from repro.memory.hierarchy import (
    OP_DENSE,
    OP_DENSE_BYPASS,
    OP_REGION_SHIFT,
    OP_STREAM,
    OP_WRITE,
    TRACE_REGIONS,
    MemorySystem,
    ServiceLevel,
    encode_op,
)
from repro.telemetry import ensure

_NUM_LEVELS = len(ServiceLevel)
_OUT_VALS_PER_LINE = CACHE_LINE_BYTES // 4

# Region ids into TRACE_REGIONS used by the PE trace ops.
_R_SPARSE = TRACE_REGIONS.index("sparse")
_R_RMATRIX = TRACE_REGIONS.index("rmatrix")
_R_CMATRIX = TRACE_REGIONS.index("cmatrix")
_R_SPARSE_OUT = TRACE_REGIONS.index("sparse_out")


@dataclass
class PECounters:
    """Per-PE pipeline and traffic tallies for the timing model."""

    tops: int = 0
    vops: int = 0
    sparse_line_reads: int = 0
    dense_reads_by_level: List[int] = field(
        default_factory=lambda: [0] * _NUM_LEVELS
    )
    stores_by_level: List[int] = field(
        default_factory=lambda: [0] * _NUM_LEVELS
    )
    sparse_by_level: List[int] = field(
        default_factory=lambda: [0] * _NUM_LEVELS
    )
    output_line_writes: int = 0

    @property
    def total_requests(self) -> int:
        """Memory requests issued by this PE's pipeline."""
        return (
            self.sparse_line_reads
            + sum(self.dense_reads_by_level)
            + sum(self.stores_by_level)
        )

    def merged(self, other: "PECounters") -> "PECounters":
        out = PECounters(
            tops=self.tops + other.tops,
            vops=self.vops + other.vops,
            sparse_line_reads=self.sparse_line_reads
            + other.sparse_line_reads,
            output_line_writes=self.output_line_writes
            + other.output_line_writes,
        )
        for i in range(_NUM_LEVELS):
            out.dense_reads_by_level[i] = (
                self.dense_reads_by_level[i] + other.dense_reads_by_level[i]
            )
            out.stores_by_level[i] = (
                self.stores_by_level[i] + other.stores_by_level[i]
            )
            out.sparse_by_level[i] = (
                self.sparse_by_level[i] + other.sparse_by_level[i]
            )
        return out


class ProcessingElement:
    """One SPADE PE bound to the shared memory system."""

    def __init__(
        self,
        pe_id: int,
        config: PEConfig,
        memory: MemorySystem,
        init: InitializationInstruction,
        address_map: AddressMap,
        policy: BypassPolicy,
        batched: bool = False,
        execution: str = "scalar",
        telemetry=None,
    ) -> None:
        self.pe_id = pe_id
        self.config = config
        self.memory = memory
        self.init = init
        self.address_map = address_map
        self.policy = policy
        self.vrf = VectorRegisterFile(
            config.num_vector_registers,
            config.writeback_high_threshold,
            config.writeback_low_threshold,
        )
        self.counters = PECounters()
        k = init.dense_row_size
        self.lines_per_row = padded_row_bytes(k) // CACHE_LINE_BYTES
        self._rmatrix_rows_touched: set = set()
        # Batched fast path: chunk executors append (line, op) pairs to
        # the trace buffer instead of issuing scalar accesses; the
        # engine replays the buffer once per chunk via flush_trace().
        # The vectorized/pipelined execution backends always buffer,
        # regardless of replay mode (their scalar-replay flush walks the
        # buffered chunk through the per-access reference paths).
        self.batched = batched
        self.vectorized = execution in ("vectorized", "pipelined")
        self.buffered = batched or self.vectorized
        self._trace = TraceBuffer()
        # Replay-batch-size histogram; a disabled registry hands back a
        # shared no-op instrument, so observe() stays on the path at
        # one method call per chunk flush either way.
        self._telemetry = ensure(telemetry)
        self._replay_batch_hist = self._telemetry.metrics.histogram(
            "spade_replay_batch_accesses",
            help="accesses per batched chunk replay",
            pe=str(pe_id),
        )
        self._op_sparse = encode_op(
            OP_STREAM if policy.sparse_stream_bypass else OP_DENSE,
            False, _R_SPARSE,
        )
        self._op_rmatrix_read = encode_op(
            OP_DENSE_BYPASS if policy.rmatrix_bypass else OP_DENSE,
            False, _R_RMATRIX,
        )
        self._op_cmatrix_read = encode_op(
            OP_DENSE_BYPASS if policy.cmatrix_bypass else OP_DENSE,
            False, _R_CMATRIX,
        )
        if init.primitive is Primitive.SPMM:
            self._op_store = encode_op(
                OP_DENSE_BYPASS if policy.rmatrix_bypass else OP_DENSE,
                True, _R_RMATRIX,
            )
        else:
            self._op_store = encode_op(
                OP_STREAM if policy.sddmm_output_bypass else OP_DENSE,
                True, _R_SPARSE_OUT,
            )

    # -- sparse front-end ---------------------------------------------------

    def load_sparse_stream(self, start_offset: int, nnz: int) -> None:
        """Sparse Data Loader: fetch the tile's slices of the r_ids,
        c_ids, and vals arrays (Section 5.1, step 1)."""
        mem = self.memory
        counters = self.counters
        idx_b = self.init.sizeof_indices
        val_b = self.init.sizeof_vals
        arrays = (
            ("sparse_r_ids", idx_b),
            ("sparse_c_ids", idx_b),
            ("sparse_vals", val_b),
        )
        bypass = self.policy.sparse_stream_bypass
        for region, elem_bytes in arrays:
            first, count = self.address_map.stream_lines(
                region, start_offset * elem_bytes, nnz * elem_bytes
            )
            counters.sparse_line_reads += count
            if bypass:
                for line in range(first, first + count):
                    lvl = mem.stream_access(
                        self.pe_id, line, region="sparse"
                    )
                    counters.sparse_by_level[lvl] += 1
            else:
                for line in range(first, first + count):
                    lvl = mem.cached_stream_access(
                        self.pe_id, line, region="sparse"
                    )
                    counters.sparse_by_level[lvl] += 1

    def _buffer_sparse_stream(self, start_offset: int, nnz: int) -> None:
        """Batched-mode Sparse Data Loader: append the tile's stream
        line ranges to the trace buffer instead of issuing them."""
        buffer_sparse_stream(self, start_offset, nnz)

    def flush_trace(self) -> None:
        """Replay the buffered chunk trace through the memory system
        and fold the service levels into the counters.  No-op when the
        buffer is empty (and always in scalar-direct mode)."""
        if len(self._trace) == 0:
            return
        lines, ops = self._trace.views()
        self._replay_chunk(lines, ops)
        self._trace.clear()

    def take_trace(self):
        """Hand the buffered chunk trace out as owned arrays and reset
        the buffer (pipelined generate/replay hand-off)."""
        return self._trace.take()

    def replay_segment(self, lines: np.ndarray, ops: np.ndarray) -> None:
        """Replay a chunk segment previously taken with
        :meth:`take_trace` (pipelined consumer side)."""
        if lines.shape[0]:
            self._replay_chunk(lines, ops)

    def _replay_chunk(self, lines: np.ndarray, ops: np.ndarray) -> None:
        if self.batched:
            self._replay_batch_hist.observe(lines.shape[0])
            levels = self.memory.replay_trace(self.pe_id, lines, ops)
        else:
            levels = self.memory.replay_trace_scalar(self.pe_id, lines, ops)
        writes = (ops & OP_WRITE) != 0
        sparse = (ops >> OP_REGION_SHIFT) == _R_SPARSE
        # One composite bincount instead of three masked ones: group by
        # (write, sparse) x level, then fold groups into the tallies.
        # Sparse writes land in both stores and sparse counts, exactly
        # like the masked version (the masks overlap there).
        key = levels.astype(np.int64)
        key += writes * _NUM_LEVELS
        key += sparse * (2 * _NUM_LEVELS)
        counts = np.bincount(key, minlength=4 * _NUM_LEVELS).tolist()
        c = self.counters
        for i in range(_NUM_LEVELS):
            w0 = counts[_NUM_LEVELS + i] + counts[3 * _NUM_LEVELS + i]
            s0 = counts[2 * _NUM_LEVELS + i] + counts[3 * _NUM_LEVELS + i]
            if w0:
                c.stores_by_level[i] += w0
            if s0:
                c.sparse_by_level[i] += s0
            if counts[i]:
                c.dense_reads_by_level[i] += counts[i]

    # -- dense path helpers -----------------------------------------------

    def _issue_store(self, line: int) -> None:
        """Route a Write-back Manager store to the right path: SpMM dirty
        VRs hold rMatrix lines; SDDMM dirty VRs hold output lines."""
        mem = self.memory
        if self.init.primitive is Primitive.SPMM:
            lvl = mem.dense_access(
                self.pe_id,
                line,
                is_write=True,
                bypass=self.policy.rmatrix_bypass,
                region="rmatrix",
            )
        else:
            if self.policy.sddmm_output_bypass:
                lvl = mem.stream_access(
                    self.pe_id, line, is_write=True, region="sparse_out"
                )
            else:
                lvl = mem.dense_access(
                    self.pe_id, line, is_write=True, region="sparse_out"
                )
        self.counters.stores_by_level[lvl] += 1

    # -- tile execution -------------------------------------------------------

    def execute_spmm_chunk(
        self,
        r_ids: np.ndarray,
        c_ids: np.ndarray,
        start_offset: int,
    ) -> None:
        """Trace-level SpMM over a chunk of a tile's nonzeros.

        For each nonzero, one tOp; for each tOp, ``lines_per_row`` vOps,
        each touching one rMatrix line (read-modify-write in the VRF)
        and one cMatrix line (read-only).
        """
        if self.vectorized:
            return generate_spmm_chunk(self, r_ids, c_ids, start_offset)
        if self.batched:
            return self._execute_spmm_chunk_batched(
                r_ids, c_ids, start_offset
            )
        self.load_sparse_stream(start_offset, len(r_ids))
        amap = self.address_map
        mem = self.memory
        vrf = self.vrf
        counters = self.counters
        lpr = self.lines_per_row
        rb = self.policy.rmatrix_bypass
        cb = self.policy.cmatrix_bypass
        dense_access = mem.dense_access
        pe_id = self.pe_id
        reads = counters.dense_reads_by_level

        r_lines = amap.dense_row_base_lines(
            "rmatrix", r_ids, self.init.dense_row_size
        )
        c_lines = amap.dense_row_base_lines(
            "cmatrix", c_ids, self.init.dense_row_size
        )
        counters.tops += len(r_ids)
        counters.vops += len(r_ids) * lpr
        self._rmatrix_rows_touched.update(np.unique(r_ids).tolist())

        for rbase, cbase in zip(r_lines.tolist(), c_lines.tolist()):
            for i in range(lpr):
                rline = rbase + i
                hit, stores = vrf.access(rline, mark_dirty=True)
                if not hit:
                    lvl = dense_access(
                        pe_id, rline, bypass=rb, region="rmatrix"
                    )
                    reads[lvl] += 1
                for s in stores:
                    self._issue_store(s)
                cline = cbase + i
                hit, stores = vrf.access(cline, mark_dirty=False)
                if not hit:
                    lvl = dense_access(
                        pe_id, cline, bypass=cb, region="cmatrix"
                    )
                    reads[lvl] += 1
                for s in stores:
                    self._issue_store(s)

    def _execute_spmm_chunk_batched(
        self,
        r_ids: np.ndarray,
        c_ids: np.ndarray,
        start_offset: int,
    ) -> None:
        """Batched-replay twin of :meth:`execute_spmm_chunk`: identical
        VRF pipeline, but memory requests are appended to the chunk
        trace buffer (in issue order) instead of accessed scalar-ly."""
        self._buffer_sparse_stream(start_offset, len(r_ids))
        amap = self.address_map
        vrf = self.vrf
        counters = self.counters
        lpr = self.lines_per_row
        chunk_lines: List[int] = []
        chunk_ops: List[int] = []
        lapp = chunk_lines.append
        oapp = chunk_ops.append
        op_r = self._op_rmatrix_read
        op_c = self._op_cmatrix_read
        op_st = self._op_store

        r_lines = amap.dense_row_base_lines(
            "rmatrix", r_ids, self.init.dense_row_size
        )
        c_lines = amap.dense_row_base_lines(
            "cmatrix", c_ids, self.init.dense_row_size
        )
        counters.tops += len(r_ids)
        counters.vops += len(r_ids) * lpr
        self._rmatrix_rows_touched.update(np.unique(r_ids).tolist())

        for rbase, cbase in zip(r_lines.tolist(), c_lines.tolist()):
            for i in range(lpr):
                rline = rbase + i
                hit, stores = vrf.access(rline, mark_dirty=True)
                if not hit:
                    lapp(rline)
                    oapp(op_r)
                for s in stores:
                    lapp(s)
                    oapp(op_st)
                cline = cbase + i
                hit, stores = vrf.access(cline, mark_dirty=False)
                if not hit:
                    lapp(cline)
                    oapp(op_c)
                for s in stores:
                    lapp(s)
                    oapp(op_st)
        self._trace.extend(chunk_lines, chunk_ops)

    def execute_sddmm_chunk(
        self,
        r_ids: np.ndarray,
        c_ids: np.ndarray,
        start_offset: int,
        out_offsets: np.ndarray,
    ) -> None:
        """Trace-level SDDMM over a chunk of a tile's nonzeros.

        Both dense operands are read-only; each nonzero additionally
        writes one scalar into the output vals array, coalesced into its
        destination VR (``out_offsets`` are positions in the padded
        output array, line-aligned per tile, Section 4.3)."""
        if self.vectorized:
            return generate_sddmm_chunk(
                self, r_ids, c_ids, start_offset, out_offsets
            )
        if self.batched:
            return self._execute_sddmm_chunk_batched(
                r_ids, c_ids, start_offset, out_offsets
            )
        self.load_sparse_stream(start_offset, len(r_ids))
        amap = self.address_map
        mem = self.memory
        vrf = self.vrf
        counters = self.counters
        lpr = self.lines_per_row
        rb = self.policy.rmatrix_bypass
        cb = self.policy.cmatrix_bypass
        dense_access = mem.dense_access
        pe_id = self.pe_id
        reads = counters.dense_reads_by_level

        r_lines = amap.dense_row_base_lines(
            "rmatrix", r_ids, self.init.dense_row_size
        )
        c_lines = amap.dense_row_base_lines(
            "cmatrix", c_ids, self.init.dense_row_size
        )
        out_region = amap.regions["sparse_out_vals"]
        out_base_line = out_region.base // CACHE_LINE_BYTES
        out_lines = out_base_line + out_offsets // _OUT_VALS_PER_LINE

        counters.tops += len(r_ids)
        counters.vops += len(r_ids) * lpr

        for rbase, cbase, oline in zip(
            r_lines.tolist(), c_lines.tolist(), out_lines.tolist()
        ):
            for i in range(lpr):
                rline = rbase + i
                hit, stores = vrf.access(rline, mark_dirty=False)
                if not hit:
                    lvl = dense_access(
                        pe_id, rline, bypass=rb, region="rmatrix"
                    )
                    reads[lvl] += 1
                for s in stores:
                    self._issue_store(s)
                cline = cbase + i
                hit, stores = vrf.access(cline, mark_dirty=False)
                if not hit:
                    lvl = dense_access(
                        pe_id, cline, bypass=cb, region="cmatrix"
                    )
                    reads[lvl] += 1
                for s in stores:
                    self._issue_store(s)
            # Destination VR for the scalar result: write-only, so a VRF
            # miss allocates without a memory read.
            counters.output_line_writes += 1
            _, stores = vrf.access(int(oline), mark_dirty=True)
            for s in stores:
                self._issue_store(s)

    def _execute_sddmm_chunk_batched(
        self,
        r_ids: np.ndarray,
        c_ids: np.ndarray,
        start_offset: int,
        out_offsets: np.ndarray,
    ) -> None:
        """Batched-replay twin of :meth:`execute_sddmm_chunk`."""
        self._buffer_sparse_stream(start_offset, len(r_ids))
        amap = self.address_map
        vrf = self.vrf
        counters = self.counters
        lpr = self.lines_per_row
        chunk_lines: List[int] = []
        chunk_ops: List[int] = []
        lapp = chunk_lines.append
        oapp = chunk_ops.append
        op_r = self._op_rmatrix_read
        op_c = self._op_cmatrix_read
        op_st = self._op_store

        r_lines = amap.dense_row_base_lines(
            "rmatrix", r_ids, self.init.dense_row_size
        )
        c_lines = amap.dense_row_base_lines(
            "cmatrix", c_ids, self.init.dense_row_size
        )
        out_region = amap.regions["sparse_out_vals"]
        out_base_line = out_region.base // CACHE_LINE_BYTES
        out_lines = out_base_line + out_offsets // _OUT_VALS_PER_LINE

        counters.tops += len(r_ids)
        counters.vops += len(r_ids) * lpr

        for rbase, cbase, oline in zip(
            r_lines.tolist(), c_lines.tolist(), out_lines.tolist()
        ):
            for i in range(lpr):
                rline = rbase + i
                hit, stores = vrf.access(rline, mark_dirty=False)
                if not hit:
                    lapp(rline)
                    oapp(op_r)
                for s in stores:
                    lapp(s)
                    oapp(op_st)
                cline = cbase + i
                hit, stores = vrf.access(cline, mark_dirty=False)
                if not hit:
                    lapp(cline)
                    oapp(op_c)
                for s in stores:
                    lapp(s)
                    oapp(op_st)
            counters.output_line_writes += 1
            _, stores = vrf.access(int(oline), mark_dirty=True)
            for s in stores:
                lapp(s)
                oapp(op_st)
        self._trace.extend(chunk_lines, chunk_ops)

    # -- end of SPADE-mode section -------------------------------------------

    def drain(self) -> None:
        """Flush remaining dirty VRs (WB&Invalidate prelude)."""
        # Any buffered chunk trace must land before the drain stores.
        self.flush_trace()
        for line in self.vrf.invalidate_all():
            self._issue_store(line)

    def writeback_invalidate(self) -> int:
        """Full WB&Invalidate: VRF drain plus L1/BBF flush.  Returns the
        number of dirty lines written back to the next level."""
        self.drain()
        return self.memory.flush_pe(self.pe_id)

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Per-PE architectural state at an epoch boundary.

        Only valid between epochs: the chunk trace buffer must be empty
        (flushed or taken) and ``counters`` is excluded because the
        engine resets it per epoch and archives the per-epoch values
        itself.
        """
        if len(self._trace) != 0:
            raise RuntimeError(
                f"PE {self.pe_id} has a non-empty trace buffer; "
                "checkpoints are only valid at epoch boundaries"
            )
        return {
            "vrf": self.vrf.state_dict(),
            "rmatrix_rows_touched": sorted(self._rmatrix_rows_touched),
        }

    def load_state_dict(self, state: dict) -> None:
        self.vrf.load_state_dict(state["vrf"])
        self._rmatrix_rows_touched = set(state["rmatrix_rows_touched"])
        self._trace.clear()

    @property
    def rmatrix_rows_touched(self) -> int:
        return len(self._rmatrix_rows_touched)
