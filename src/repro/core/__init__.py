"""The SPADE accelerator core: tile ISA, CPE, PE pipeline, and engine.

Public entry point is :class:`repro.core.accelerator.SpadeSystem`, which
executes SpMM/SDDMM on a simulated SPADE system and returns both the
numeric result and an execution report (time, traffic, pipeline stats).
"""

from repro.core.accelerator import ExecutionReport, SpadeSystem
from repro.core.bypass import BypassPolicy
from repro.core.instructions import (
    InitializationInstruction,
    Primitive,
    SchedulingBarrierInstruction,
    TerminationInstruction,
    TileInstruction,
    WBInvalidateInstruction,
)
from repro.core.cpe import Schedule, ControlProcessor

__all__ = [
    "SpadeSystem",
    "ExecutionReport",
    "BypassPolicy",
    "Primitive",
    "InitializationInstruction",
    "TileInstruction",
    "SchedulingBarrierInstruction",
    "WBInvalidateInstruction",
    "TerminationInstruction",
    "Schedule",
    "ControlProcessor",
]
