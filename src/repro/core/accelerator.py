"""Public SPADE API: configure a system, run SpMM/SDDMM, get a report.

Typical use::

    from repro import SpadeSystem, KernelSettings
    from repro.sparse.generators import rmat_graph
    import numpy as np

    a = rmat_graph(scale=10)
    b = np.random.rand(a.num_cols, 32).astype(np.float32)
    system = SpadeSystem.scaled(num_pes=8)
    report = system.spmm(a, b)                    # SPADE Base settings
    report = system.spmm(a, b, settings=KernelSettings(
        row_panel_size=1024, col_panel_size=8192, use_barriers=True))
    print(report.time_ms, report.stats.summary())
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.config import SpadeConfig, paper_config, scaled_config
from repro.core.bypass import BypassPolicy
from repro.core.cpe import ControlProcessor, Schedule, ScheduleParams
from repro.core.engine import DEFAULT_CHUNK_NNZ, Engine, EngineResult
from repro.core.instructions import Primitive
from repro.core.pe import PECounters
from repro.core.timing import requests_per_cycle
from repro.errors import ConfigError, WorkloadError
from repro.memory.address import AddressMap
from repro.memory.stats import AccessStats
from repro.sparse.coo import COOMatrix
from repro.sparse.tiled import TiledMatrix, tile_matrix
from repro.telemetry import Telemetry

DEFAULT_ROW_PANEL = 256
"""SPADE Base row panel size (Section 7.A)."""


@dataclass(frozen=True)
class KernelSettings:
    """The flexibility knobs of one kernel invocation (Table 3).

    ``col_panel_size=None`` means one panel spanning all columns (the
    SPADE Base setting, written "all_columns" in Table 3).
    """

    row_panel_size: int = DEFAULT_ROW_PANEL
    col_panel_size: Optional[int] = None
    rmatrix_bypass: bool = False
    use_barriers: bool = False
    barrier_group_cols: int = 1
    # Fixed in normal operation (Section 5.2); configurable to reproduce
    # the pre-CFG4 configurations of Table 4.
    sparse_stream_bypass: bool = True
    sddmm_output_bypass: bool = True

    def __post_init__(self) -> None:
        if self.row_panel_size < 1:
            raise ConfigError("row_panel_size must be >= 1")
        if self.col_panel_size is not None and self.col_panel_size < 1:
            raise ConfigError("col_panel_size must be >= 1 or None")

    @classmethod
    def base(cls) -> "KernelSettings":
        """SPADE Base: RP=256, CP=all columns, no bypass, no barriers."""
        return cls()

    def describe(self) -> str:
        cp = self.col_panel_size if self.col_panel_size else "all"
        return (
            f"RP={self.row_panel_size} CP={cp} "
            f"bypass={'r' if self.rmatrix_bypass else '-'} "
            f"barriers={'y' if self.use_barriers else 'n'}"
        )


@dataclass
class ExecutionReport:
    """Result + performance report of one kernel execution."""

    result: EngineResult
    settings: KernelSettings
    schedule: Schedule
    config: SpadeConfig
    telemetry: Optional[Telemetry] = None

    @property
    def output(self) -> np.ndarray:
        """The numeric result: dense D for SpMM, output vals for SDDMM
        (padded layout; use :func:`sddmm_output_to_coo` to extract the
        sparse matrix)."""
        if self.result.primitive is Primitive.SPMM:
            return self.result.output_dense
        return self.result.output_vals

    @property
    def time_ns(self) -> float:
        return self.result.time_ns

    @property
    def time_ms(self) -> float:
        return self.result.time_ns / 1e6

    @property
    def stats(self) -> AccessStats:
        return self.result.stats

    @property
    def counters(self) -> PECounters:
        return self.result.counters

    @property
    def dram_accesses(self) -> int:
        return self.stats.dram_accesses

    @property
    def llc_accesses(self) -> int:
        return self.stats.llc.accesses

    @property
    def requests_per_cycle(self) -> float:
        return requests_per_cycle(
            self.result.counters.total_requests,
            self.result.time_ns,
            self.config,
        )

    @property
    def bandwidth_utilization(self) -> float:
        return self.result.bandwidth_utilization(
            self.config.memory.dram_peak_gbps
        )

    @property
    def load_imbalance(self) -> float:
        return self.schedule.load_imbalance()


class SpadeSystem:
    """A configured SPADE accelerator ready to execute kernels.

    ``execution`` overrides the config's execution backend (``"scalar"``,
    ``"vectorized"`` or ``"pipelined"``, see :mod:`repro.config`); the
    backends differ only in host wall-clock time — traces, outputs,
    stats and counters are bit-identical.
    """

    def __init__(
        self,
        config: Optional[SpadeConfig] = None,
        chunk_nnz: int = DEFAULT_CHUNK_NNZ,
        execution: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        chaos=None,
        ledger=None,
        trace_store=None,
    ) -> None:
        self.config = config or paper_config()
        if execution is not None and execution != self.config.execution:
            self.config = dataclasses.replace(
                self.config, execution=execution
            )
        self.chunk_nnz = chunk_nnz
        self.cpe = ControlProcessor(self.config.num_pes)
        # One telemetry session per system: successive kernel runs
        # accumulate into the same registry/trace (all-off by default).
        # A supervisor may pass its own session so retried/degraded
        # attempts accumulate into one registry, and a chaos monkey for
        # fault-injection testing (forwarded to the engine).
        self.telemetry = (
            telemetry if telemetry is not None
            else Telemetry(self.config.telemetry)
        )
        self.chaos = chaos
        # Run ledger (off by default): forwarded to the engine so the
        # flight recorder and replay dispatch audit see every kernel
        # this system executes.
        self.ledger = ledger
        # Content-addressed epoch-trace store (off by default).  Only
        # consulted by the vectorized/pipelined backends; scalar runs
        # always generate live.  ``trace_cache`` accumulates the
        # hit/miss/generation counters across every kernel this system
        # executes (the CI warm-run check reads ``gen_invocations``).
        self.trace_store = trace_store
        self.trace_cache = {
            "hits": 0,
            "misses": 0,
            "stored": 0,
            "gen_invocations": 0,
            "fused_chunks": 0,
        }

    def _absorb_trace_cache(self, engine: Engine) -> None:
        for key, value in engine.trace_cache.items():
            self.trace_cache[key] = self.trace_cache.get(key, 0) + value

    @classmethod
    def scaled(cls, num_pes: int = 28, **kwargs) -> "SpadeSystem":
        """A proportionally scaled system (see repro.config)."""
        return cls(scaled_config(num_pes), **kwargs)

    # -- kernel entry points ------------------------------------------------

    def spmm(
        self,
        a: COOMatrix,
        b_dense: np.ndarray,
        settings: Optional[KernelSettings] = None,
    ) -> ExecutionReport:
        """Run D = A @ B on the simulated accelerator."""
        b_dense = np.asarray(b_dense, dtype=np.float32)
        if b_dense.ndim != 2:
            raise WorkloadError(
                f"SpMM operand B must be a 2-D array of shape "
                f"({a.num_cols}, K); got a {b_dense.ndim}-D array of "
                f"shape {b_dense.shape}"
            )
        if b_dense.shape[0] != a.num_cols:
            raise WorkloadError(
                f"SpMM operand B must be ({a.num_cols}, K) — one row per "
                f"sparse-matrix column; got shape {b_dense.shape}. "
                "Did you pass B transposed?"
            )
        if b_dense.shape[1] < 1:
            raise WorkloadError(
                "SpMM operand B must be non-empty (K >= 1 columns); "
                f"got shape {b_dense.shape}"
            )
        settings = settings or KernelSettings.base()
        k = b_dense.shape[1]
        with self.telemetry.tracer.span(
            "spmm", cat="kernel",
            args={"nnz": a.nnz, "k": k, "settings": settings.describe()},
        ):
            tiled = tile_matrix(
                a, settings.row_panel_size, settings.col_panel_size
            )
            amap = self._build_address_map(tiled, k, Primitive.SPMM)
            init = self.cpe.make_initialization(
                Primitive.SPMM,
                amap,
                rmatrix_bypass=settings.rmatrix_bypass,
                cmatrix_bypass=False,
                dense_row_size=k,
            )
            policy = BypassPolicy(
                rmatrix_bypass=settings.rmatrix_bypass,
                sparse_stream_bypass=settings.sparse_stream_bypass,
                sddmm_output_bypass=settings.sddmm_output_bypass,
            )
            with self.telemetry.tracer.span(
                "build_schedule", cat="schedule"
            ):
                schedule = self.cpe.build_schedule(
                    tiled,
                    ScheduleParams(
                        use_barriers=settings.use_barriers,
                        barrier_group_cols=settings.barrier_group_cols,
                    ),
                    telemetry=self.telemetry,
                )
            engine = Engine(
                self.config, tiled, init, amap, policy, self.chunk_nnz,
                telemetry=self.telemetry, chaos=self.chaos,
                ledger=self.ledger, trace_store=self.trace_store,
            )
            engine.bind_schedule(schedule)
            result = engine.run_spmm(schedule, b_dense)
            self._absorb_trace_cache(engine)
        return ExecutionReport(
            result, settings, schedule, self.config, self.telemetry
        )

    def sddmm(
        self,
        a: COOMatrix,
        b_dense: np.ndarray,
        c_dense: np.ndarray,
        settings: Optional[KernelSettings] = None,
    ) -> ExecutionReport:
        """Run D = A o (B @ C^T) on the simulated accelerator."""
        b_dense = np.asarray(b_dense, dtype=np.float32)
        c_dense = np.asarray(c_dense, dtype=np.float32)
        if b_dense.ndim != 2 or b_dense.shape[0] != a.num_rows:
            raise WorkloadError(
                f"SDDMM dense operand B must be ({a.num_rows}, K) — one "
                f"row per sparse-matrix row; got shape {b_dense.shape}"
            )
        if c_dense.ndim != 2 or c_dense.shape[0] != a.num_cols:
            raise WorkloadError(
                f"SDDMM dense operand C must be ({a.num_cols}, K) — one "
                f"row per sparse-matrix column; got shape {c_dense.shape}"
            )
        if b_dense.shape[1] != c_dense.shape[1]:
            raise WorkloadError(
                "SDDMM dense operands B and C must share the dense row "
                f"size K; got K={b_dense.shape[1]} for B and "
                f"K={c_dense.shape[1]} for C"
            )
        if b_dense.shape[1] < 1:
            raise WorkloadError(
                "SDDMM dense operands must have at least one column "
                f"(K >= 1); got shape {b_dense.shape}"
            )
        settings = settings or KernelSettings.base()
        k = b_dense.shape[1]
        with self.telemetry.tracer.span(
            "sddmm", cat="kernel",
            args={"nnz": a.nnz, "k": k, "settings": settings.describe()},
        ):
            tiled = tile_matrix(
                a, settings.row_panel_size, settings.col_panel_size
            )
            amap = self._build_address_map(tiled, k, Primitive.SDDMM)
            init = self.cpe.make_initialization(
                Primitive.SDDMM,
                amap,
                rmatrix_bypass=settings.rmatrix_bypass,
                cmatrix_bypass=False,
                dense_row_size=k,
            )
            policy = BypassPolicy(
                rmatrix_bypass=settings.rmatrix_bypass,
                sparse_stream_bypass=settings.sparse_stream_bypass,
                sddmm_output_bypass=settings.sddmm_output_bypass,
            )
            with self.telemetry.tracer.span(
                "build_schedule", cat="schedule"
            ):
                schedule = self.cpe.build_schedule(
                    tiled,
                    ScheduleParams(
                        use_barriers=settings.use_barriers,
                        barrier_group_cols=settings.barrier_group_cols,
                    ),
                    telemetry=self.telemetry,
                )
            engine = Engine(
                self.config, tiled, init, amap, policy, self.chunk_nnz,
                telemetry=self.telemetry, chaos=self.chaos,
                ledger=self.ledger, trace_store=self.trace_store,
            )
            engine.bind_schedule(schedule)
            result = engine.run_sddmm(schedule, b_dense, c_dense)
            self._absorb_trace_cache(engine)
        return ExecutionReport(
            result, settings, schedule, self.config, self.telemetry
        )

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _build_address_map(
        tiled: TiledMatrix, k: int, primitive: Primitive
    ) -> AddressMap:
        amap = AddressMap()
        amap.allocate("sparse_r_ids", tiled.nnz * 4)
        amap.allocate("sparse_c_ids", tiled.nnz * 4)
        amap.allocate("sparse_vals", tiled.nnz * 4)
        if primitive is Primitive.SPMM:
            amap.allocate_dense("rmatrix", tiled.num_rows, k)  # D
            amap.allocate_dense("cmatrix", tiled.num_cols, k)  # B
        else:
            amap.allocate_dense("rmatrix", tiled.num_rows, k)  # B
            amap.allocate_dense("cmatrix", tiled.num_cols, k)  # C
            amap.allocate("sparse_out_vals", tiled.out_vals_length * 4)
        return amap


def sddmm_output_to_coo(
    tiled: TiledMatrix, out_vals: np.ndarray
) -> COOMatrix:
    """Extract the SDDMM result as a COO matrix from the padded output
    vals array (inverse of the Appendix A output layout)."""
    vals = np.empty(tiled.nnz, dtype=np.float32)
    for tile in tiled.tiles:
        lo = tile.sparse_in_start_offset
        vals[lo : lo + tile.nnz] = out_vals[
            tile.sparse_out_start_offset : tile.sparse_out_start_offset
            + tile.nnz
        ]
    return COOMatrix(
        tiled.num_rows, tiled.num_cols, tiled.r_ids, tiled.c_ids, vals
    )
