"""Cycle-level micro-simulation of a single SPADE PE pipeline.

While :mod:`repro.core.engine` models whole systems with an analytic
latency-tolerance formula, this module drives one PE cycle by cycle
through the exact structures of Figure 7:

  Sparse Data Loader -> Sparse Load Queue -> tOp Generator -> tOp queue
  -> vOp Generator (VR allocation via the VRF tag CAM) -> vOp
  Reservation Stations + Dense Load Queue -> pipelined SIMD -> Store
  Queue (Write-back Manager)

It is used to validate the analytic model's qualitative claims at small
scale (queue sizing monotonicity, latency tolerance, RAW ordering) and
mirrors the role of the miniSPADE prototype: a faithful, slow, small
implementation of the pipeline mechanisms.

Memory is a fixed-latency, unbounded-bandwidth responder; the goal is
pipeline behaviour, not cache behaviour (the engine covers that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import CACHE_LINE_BYTES, ELEMS_PER_LINE, PEConfig
from repro.core.queues import BoundedQueue, ReservationStations, RSEntry
from repro.core.vrf import VectorRegisterFile

SIMD_PIPELINE_DEPTH = 4
"""Cycles from vOp dispatch to result writeback in the SIMD unit."""


@dataclass
class MicroSimStats:
    """What one micro-simulated tile execution did."""

    cycles: int = 0
    tops_generated: int = 0
    vops_generated: int = 0
    vops_executed: int = 0
    sparse_requests: int = 0
    dense_requests: int = 0
    stores: int = 0
    sparse_queue_stalls: int = 0
    rs_full_stalls: int = 0
    vrf_tag_hits: int = 0

    @property
    def requests_per_cycle(self) -> float:
        total = self.sparse_requests + self.dense_requests + self.stores
        return total / self.cycles if self.cycles else 0.0


@dataclass
class _PendingLoad:
    """An outstanding memory request."""

    arrival_cycle: int
    vop_id: Optional[int] = None


@dataclass
class _VOp:
    """One cache-line-sized vector operation in flight."""

    vop_id: int
    r_line: int
    c_line: int
    value: float
    depends_on: Optional[int] = None


class PEMicroSimulator:
    """Cycle-driven single-PE pipeline for SpMM tiles.

    ``memory_latency_cycles`` plays the role of the link+DRAM round
    trip; every request completes after exactly that many cycles (the
    latency-tolerance mechanisms are what is under test, not caches).
    """

    def __init__(
        self,
        config: PEConfig,
        memory_latency_cycles: int = 100,
        dense_row_lines: int = 2,
    ) -> None:
        if memory_latency_cycles < 1:
            raise ValueError("memory latency must be >= 1 cycle")
        self.config = config
        self.memory_latency = memory_latency_cycles
        self.lines_per_row = max(1, dense_row_lines)
        self.stats = MicroSimStats()

        self.sparse_queue: BoundedQueue = BoundedQueue(
            config.sparse_load_queue_entries, "sparse_lq"
        )
        self.top_queue: BoundedQueue = BoundedQueue(
            config.top_queue_entries, "top_q"
        )
        self.rs = ReservationStations(config.vop_rs_entries)
        self.store_queue: BoundedQueue = BoundedQueue(
            config.store_queue_entries, "store_q"
        )
        self.vrf = VectorRegisterFile(
            config.num_vector_registers,
            config.writeback_high_threshold,
            config.writeback_low_threshold,
        )
        self._dense_inflight: Dict[int, List[_PendingLoad]] = {}
        self._last_writer: Dict[int, int] = {}  # VR line -> vop_id
        self._simd_pipe: List[tuple] = []  # (finish_cycle, vop_id)
        self._completed: set = set()
        self._next_vop_id = 0

    # -- driving ---------------------------------------------------------

    def run_tile(
        self,
        r_ids: np.ndarray,
        c_ids: np.ndarray,
        vals: np.ndarray,
        max_cycles: int = 2_000_000,
    ) -> MicroSimStats:
        """Execute one SpMM tile to completion; returns the stats."""
        n = len(vals)
        if len(r_ids) != n or len(c_ids) != n:
            raise ValueError("tile arrays must have equal length")
        # Sparse stream state: the loader fetches line-sized groups of
        # tuples; each group arrives memory_latency cycles after issue.
        tuples_per_line = ELEMS_PER_LINE
        next_fetch = 0  # next tuple index to request
        arrived: List[int] = []  # tuple indices available to the tOp gen
        pending_sparse: List[tuple] = []  # (arrival_cycle, lo, hi)
        next_top = 0  # next tuple to turn into a tOp
        vops_pending: List[_VOp] = []
        completed_vops = 0
        total_vops = n * self.lines_per_row

        cycle = 0
        while completed_vops < total_vops:
            cycle += 1
            if cycle > max_cycles:
                raise RuntimeError("micro-sim did not converge")

            # 1. Sparse Data Loader: one line-sized request per cycle
            #    while queue entries are free (Section 5.1 step 1).
            if next_fetch < n:
                if self.sparse_queue.try_push(cycle):
                    lo = next_fetch
                    hi = min(lo + tuples_per_line, n)
                    pending_sparse.append(
                        (cycle + self.memory_latency, lo, hi)
                    )
                    next_fetch = hi
                    self.stats.sparse_requests += 1
                else:
                    self.stats.sparse_queue_stalls += 1

            # 2. Sparse data arrival.
            still = []
            for arrival, lo, hi in pending_sparse:
                if arrival <= cycle:
                    arrived.extend(range(lo, hi))
                    self.sparse_queue.pop()
                else:
                    still.append((arrival, lo, hi))
            pending_sparse = still

            # 3. tOp Generator: one tOp per cycle from arrived tuples.
            if next_top < n and next_top < (
                arrived[-1] + 1 if arrived else 0
            ):
                if not self.top_queue.is_full:
                    self.top_queue.try_push(next_top)
                    self.stats.tops_generated += 1
                    next_top += 1

            # 4. vOp Generator: split the head tOp into vOps, allocate
            #    VRs through the tag CAM, issue dense loads, push to RS.
            self._generate_vops(cycle, r_ids, c_ids, vals, vops_pending)

            # 5. Dense data arrival -> mark RS operands ready.
            loads = self._dense_inflight.pop(cycle, [])
            for load in loads:
                if load.vop_id is not None:
                    self.rs.operand_arrived(load.vop_id)
                    self.rs.operand_arrived(load.vop_id)

            # 6. Dispatch the oldest ready vOp to the SIMD pipeline.
            entry = self.rs.dispatch_ready(cycle)
            if entry is not None:
                self._simd_pipe.append(
                    (cycle + SIMD_PIPELINE_DEPTH, entry.vop_id)
                )

            # 7. SIMD completion: resolve RAW dependants, count stores
            #    drained by the Write-back Manager.
            finished = [p for p in self._simd_pipe if p[0] <= cycle]
            self._simd_pipe = [p for p in self._simd_pipe if p[0] > cycle]
            for _, vop_id in finished:
                self.rs.dependence_resolved(vop_id)
                self._completed.add(vop_id)
                completed_vops += 1
                self.stats.vops_executed += 1

            # 8. Store queue drains one entry per cycle.
            if not self.store_queue.is_empty:
                self.store_queue.pop()

        self.stats.cycles = cycle
        return self.stats

    # -- internals --------------------------------------------------------

    def _generate_vops(
        self, cycle, r_ids, c_ids, vals, vops_pending
    ) -> None:
        # Refill the pending-vOp buffer from the tOp queue.
        if not vops_pending and not self.top_queue.is_empty:
            idx = self.top_queue.pop()
            r_base = int(r_ids[idx]) * self.lines_per_row
            c_base = (1 << 30) + int(c_ids[idx]) * self.lines_per_row
            for i in range(self.lines_per_row):
                vops_pending.append(
                    _VOp(
                        vop_id=self._next_vop_id,
                        r_line=r_base + i,
                        c_line=c_base + i,
                        value=float(vals[idx]),
                    )
                )
                self._next_vop_id += 1
        if not vops_pending:
            return
        if self.rs.is_full:
            self.stats.rs_full_stalls += 1
            return
        vop = vops_pending[0]
        # RAW dependence: a later vOp reading a VR an earlier one
        # writes.  A producer that already completed is no dependence.
        depends = self._last_writer.get(vop.r_line)
        if depends in self._completed:
            depends = None
        operands_pending = 0
        for line, writes in ((vop.r_line, True), (vop.c_line, False)):
            hit, stores = self.vrf.access(line, mark_dirty=writes)
            if hit:
                self.stats.vrf_tag_hits += 1
            else:
                operands_pending += 1
                self._dense_inflight.setdefault(
                    cycle + self.memory_latency, []
                ).append(_PendingLoad(cycle, vop.vop_id))
                self.stats.dense_requests += 1
            for _ in stores:
                if self.store_queue.try_push(cycle):
                    self.stats.stores += 1
        inserted = self.rs.try_insert(
            RSEntry(
                vop_id=vop.vop_id,
                # Each missing operand arrives as one dense response
                # that signals twice (r and c share a response slot in
                # this simplified model), so count each miss once.
                operands_pending=operands_pending,
                depends_on=depends,
            )
        )
        if inserted:
            self._last_writer[vop.r_line] = vop.vop_id
            vops_pending.pop(0)
            self.stats.vops_generated += 1
