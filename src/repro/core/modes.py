"""CPU <-> SPADE mode transitions (Sections 4.1 and 7.D).

Programs interleave CPU-mode and SPADE-mode sections.  Transitions cost
cache maintenance:

- **SPADE -> CPU**: write back + invalidate every PE's L1 and BBF
  (including victim caches).  Measured at ~0.2% of SPADE-mode time.
- **CPU -> SPADE**: write back + invalidate the CPU cores' L1s, plus any
  cached data the PEs will access through BBFs.  For SpMM nothing else
  is needed (the rMatrix is not CPU-touched, the sparse input is
  read-only); for SDDMM the rMatrix must also be written back, which the
  paper measures at ~3.4% of SPADE-mode time on average.
- **start-up**: SPADE begins with cold caches (~0.9%).

The models here convert those structural costs into time using the same
bandwidth/latency parameters as the main timing model, so the bench for
Section 7.D can report the overhead ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CACHE_LINE_BYTES, SpadeConfig
from repro.core.instructions import Primitive


@dataclass(frozen=True)
class TransitionCosts:
    """Time costs of one CPU->SPADE->CPU round trip."""

    cpu_to_spade_ns: float
    spade_to_cpu_ns: float
    startup_ns: float

    def total_overhead_ns(self) -> float:
        return self.cpu_to_spade_ns + self.spade_to_cpu_ns + self.startup_ns

    def overhead_fraction(self, spade_mode_ns: float) -> float:
        if spade_mode_ns <= 0:
            return 0.0
        return self.total_overhead_ns() / spade_mode_ns


def _drain_time_ns(dirty_bytes: float, config: SpadeConfig) -> float:
    mem = config.memory
    return (
        dirty_bytes / mem.dram_achievable_gbps
        + mem.dram_latency_ns
        + mem.link_latency_ns
    )


def spade_to_cpu_cost(
    dirty_lines_flushed: int, config: SpadeConfig
) -> float:
    """Time to write back and invalidate the PEs' L1s, BBFs, and victim
    caches at the end of a SPADE-mode section."""
    return _drain_time_ns(dirty_lines_flushed * CACHE_LINE_BYTES, config)


def cpu_to_spade_cost(
    primitive: Primitive,
    rmatrix_bytes: int,
    config: SpadeConfig,
    cpu_l1_dirty_fraction: float = 0.5,
) -> float:
    """Time to prepare the caches before a SPADE-mode section.

    Always: write back + invalidate the CPU cores' L1s (we assume half
    the lines are dirty).  For SDDMM only: also write back + invalidate
    the rMatrix, because the PEs will read it through the BBFs and the
    CPU may have updated it (Section 7.D's GNN interleaving assumption).
    Only rMatrix lines actually *resident* in the CPU caches need the
    writeback, so the cost is bounded by the cache capacity.
    """
    host = config.host
    l1_dirty = host.num_cores * host.l1d.size_bytes * cpu_l1_dirty_fraction
    cache_capacity = (
        host.llc_total_bytes + host.num_cores * host.l2.size_bytes
    )
    extra = (
        min(rmatrix_bytes, cache_capacity)
        if primitive is Primitive.SDDMM
        else 0
    )
    return _drain_time_ns(l1_dirty + extra, config)


def startup_cost(cold_dram_lines: int, config: SpadeConfig) -> float:
    """Extra time attributable to starting with cold caches.

    Only lines that *could* have been warm (bounded by LLC capacity)
    pay an extra exposed DRAM round trip, amortised over the pipeline's
    memory-level parallelism; the rest of the cold traffic is compulsory
    on a warm machine too.  The engine already simulates cold caches,
    so this estimate is for accounting against a warmed-up steady state
    (the paper reports it at ~0.9% of SPADE-mode time)."""
    mem = config.memory
    warmable = min(cold_dram_lines, mem.llc_total_bytes // CACHE_LINE_BYTES)
    return warmable * CACHE_LINE_BYTES / mem.dram_achievable_gbps


def round_trip_costs(
    primitive: Primitive,
    rmatrix_bytes: int,
    dirty_lines_flushed: int,
    cold_dram_lines: int,
    config: SpadeConfig,
) -> TransitionCosts:
    """All three overheads of one CPU->SPADE->CPU round trip."""
    return TransitionCosts(
        cpu_to_spade_ns=cpu_to_spade_cost(primitive, rmatrix_bytes, config),
        spade_to_cpu_ns=spade_to_cpu_cost(dirty_lines_flushed, config),
        startup_ns=startup_cost(cold_dram_lines, config),
    )
