"""Cache-bypass policy (Section 5.2).

SPADE exposes bypass knobs per data structure.  The fixed parts (the
paper's analysis): the sparse input stream always bypasses all caches
once CFG4 is reached; the SDDMM sparse output always bypasses (high VRF
reuse, pure pollution otherwise); cMatrix data is always cached (row-
order processing inside a tile defeats VRF reuse, so caches are the only
reuse vehicle).  The programmable knob evaluated in Table 6 is the
rMatrix: cache it, or bypass via the BBF victim cache.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BypassPolicy:
    """Which structures bypass the cache hierarchy."""

    rmatrix_bypass: bool = False
    cmatrix_bypass: bool = False
    sparse_stream_bypass: bool = True
    sddmm_output_bypass: bool = True

    @classmethod
    def cached(cls) -> "BypassPolicy":
        """SPADE Base: dense operands fully cached (Section 7.A)."""
        return cls(rmatrix_bypass=False, cmatrix_bypass=False)

    @classmethod
    def rmatrix_bypassed(cls) -> "BypassPolicy":
        """The Table 6 variant: rMatrix through the BBF victim cache."""
        return cls(rmatrix_bypass=True, cmatrix_bypass=False)

    @classmethod
    def legacy_no_bypass(cls) -> "BypassPolicy":
        """Pre-CFG4 behaviour: even the sparse stream pollutes the
        caches (Table 4, CFG0-CFG3)."""
        return cls(
            rmatrix_bypass=False,
            cmatrix_bypass=False,
            sparse_stream_bypass=False,
            sddmm_output_bypass=False,
        )
