"""Execution engine: runs a schedule on the PEs and the shared memory
system, producing the numeric result and a timing/traffic report.

Within a barrier epoch all PEs run concurrently; the engine emulates
that concurrency by interleaving fixed-size nonzero chunks of the PEs'
tile streams round-robin, so their access streams contend realistically
in the shared L2s and LLC.  Epoch boundaries are scheduling barriers:
the epoch's time is the slowest PE (load imbalance is paid there), and
epochs accumulate (Section 4.3, Figure 5b).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.config import SpadeConfig, gen_config, replay_backend_spec
from repro.core.bypass import BypassPolicy
from repro.core.cpe import Schedule
from repro.core.instructions import InitializationInstruction, Primitive
from repro.core.pe import PECounters, ProcessingElement
from repro.core.timing import EpochTiming, epoch_timing, flush_time_ns
from repro.core.vectorized import generate_sddmm_epoch, generate_spmm_epoch
from repro.errors import CheckpointError, ConfigError, EngineExecutionError, SpadeError
from repro.kernels.reference import sddmm_chunk_vals, spmm_chunk_update
from repro.memory.address import AddressMap
from repro.memory.hierarchy import MemorySystem
from repro.memory.stats import AccessStats
from repro.obs.ledger import NULL_LEDGER
from repro.resilience.checkpoint import CheckpointManager, checkpoint_fingerprint
from repro.sparse.tiled import TiledMatrix, TileInfo
from repro.telemetry import Telemetry
from repro.telemetry.tracer import NULL_SPAN

DEFAULT_CHUNK_NNZ = 4096
"""Interleaving granularity across PEs inside an epoch."""


@dataclass
class EngineResult:
    """Everything one kernel execution produced."""

    primitive: Primitive
    output_dense: Optional[np.ndarray]
    output_vals: Optional[np.ndarray]
    time_ns: float
    epoch_timings: List[EpochTiming]
    stats: AccessStats
    counters: PECounters
    per_pe_time_ns: List[float]
    termination_ns: float
    dirty_lines_flushed: int

    @property
    def compute_time_ns(self) -> float:
        """Kernel time without the termination (mode-transition) cost."""
        return self.time_ns - self.termination_ns

    @property
    def dram_bytes(self) -> int:
        return (self.stats.dram_reads + self.stats.dram_writes) * 64

    def bandwidth_utilization(self, peak_gbps: float) -> float:
        if self.time_ns <= 0:
            return 0.0
        return (self.dram_bytes / self.time_ns) / peak_gbps


@dataclass
class _ChunkCursor:
    """Walks one PE's tile list in fixed-size nonzero chunks."""

    tiles: List[TileInfo]
    chunk_nnz: int
    tile_idx: int = 0
    offset_in_tile: int = 0

    def next_chunk(self) -> Optional[Tuple[TileInfo, int, int]]:
        """Return (tile, lo, hi) nnz-range of the next chunk, or None."""
        while self.tile_idx < len(self.tiles):
            tile = self.tiles[self.tile_idx]
            if self.offset_in_tile >= tile.nnz:
                self.tile_idx += 1
                self.offset_in_tile = 0
                continue
            lo = self.offset_in_tile
            hi = min(lo + self.chunk_nnz, tile.nnz)
            self.offset_in_tile = hi
            return tile, lo, hi
        return None


class _InlineExecutor:
    """Executor twin for ``pipeline.pool == "serial"``: runs each
    submitted task synchronously on the caller's thread, so the whole
    producer/consumer machinery executes deterministically without
    threads (done-callbacks fire inline; the chained re-submission
    recursion is bounded by the lookahead)."""

    def submit(self, fn, *args) -> Future:
        fut: Future = Future()
        try:
            fut.set_result(fn(*args))
        except BaseException as exc:  # mirror ThreadPoolExecutor
            fut.set_exception(exc)
        return fut

    def shutdown(self, wait: bool = True) -> None:
        pass


class Engine:
    """Binds a config, memory system, and PEs to execute one kernel."""

    def __init__(
        self,
        config: SpadeConfig,
        tiled: TiledMatrix,
        init: InitializationInstruction,
        address_map: AddressMap,
        policy: BypassPolicy,
        chunk_nnz: int = DEFAULT_CHUNK_NNZ,
        telemetry: Optional[Telemetry] = None,
        chaos=None,
        ledger=None,
        trace_store=None,
    ) -> None:
        self.config = config
        self.tiled = tiled
        self.init = init
        self.address_map = address_map
        self.policy = policy
        self.chunk_nnz = max(1, chunk_nnz)
        self.memory = MemorySystem(config)
        # Run-ledger session (off by default): attached to the memory
        # system so the replay dispatch audit and the per-epoch phase
        # timers below record into one correlated event stream.
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        self.memory.ledger = self.ledger
        # Telemetry session: a caller-provided one (SpadeSystem shares
        # its session across runs) or a fresh one from the config.
        self.telemetry = (
            telemetry if telemetry is not None
            else Telemetry(config.telemetry)
        )
        self._chaos = chaos
        # Epoch checkpointing: snapshots land in resilience.checkpoint_dir
        # after every checkpoint_interval-th epoch; resumed_from_epoch
        # records the snapshot a run restarted from (None = fresh run).
        self.resumed_from_epoch: Optional[int] = None
        res = config.resilience
        self._ckpt: Optional[CheckpointManager] = None
        if res.checkpoint_dir is not None:
            self._ckpt = CheckpointManager(
                res.checkpoint_dir,
                interval=res.checkpoint_interval,
                fingerprint=checkpoint_fingerprint(config),
                telemetry=self.telemetry,
                chaos=chaos,
            )
        # Replay mode: non-direct backends ("batched", "array") buffer
        # each PE chunk's trace and replay it in one call per chunk;
        # "scalar" is the per-access reference oracle (bit-identical
        # results).  Which backends exist is the registry's business
        # (repro.config), not ours.
        # Execution mode: "scalar" walks every nonzero in Python;
        # "vectorized" derives the chunk trace with NumPy + a reduced
        # tight loop; "pipelined" additionally overlaps generation with
        # replay (bit-identical results in all combinations).
        self.batched_replay = not replay_backend_spec(config.replay).direct
        self.execution = config.execution
        self.buffered = self.batched_replay or self.execution != "scalar"
        # Content-addressed trace cache: generated epoch traces are a
        # pure function of (workload, schedule/chunking, GenConfig) —
        # cache geometry, replay backend, execution mode and telemetry
        # do not enter the key.  Only the fused (non-scalar) execution
        # paths consult it; the scalar oracle always generates live.
        self.trace_store = trace_store if self.execution != "scalar" else None
        self.trace_cache = {
            "hits": 0,
            "misses": 0,
            "stored": 0,
            "gen_invocations": 0,
            "fused_chunks": 0,
        }
        self.pes = [
            ProcessingElement(
                i, config.pe, self.memory, init, address_map, policy,
                batched=self.batched_replay,
                execution=self.execution,
                telemetry=self.telemetry,
            )
            for i in range(config.num_pes)
        ]

    # -- public entry points ---------------------------------------------

    def run_spmm(
        self, schedule: Schedule, b_dense: np.ndarray
    ) -> EngineResult:
        """Execute D = A @ B over the schedule."""
        if self.init.primitive is not Primitive.SPMM:
            raise ConfigError("engine was initialised for a different primitive")
        d_accum = np.zeros(
            (self.tiled.num_rows, self.init.dense_row_size), dtype=np.float64
        )
        b64 = np.asarray(b_dense, dtype=np.float64)

        def gen_chunk(pe: ProcessingElement, tile: TileInfo, lo: int, hi: int):
            off = tile.sparse_in_start_offset
            r = self.tiled.r_ids[off + lo : off + hi]
            c = self.tiled.c_ids[off + lo : off + hi]
            pe.execute_spmm_chunk(r, c, off + lo)

        def apply_chunk(tile: TileInfo, lo: int, hi: int):
            off = tile.sparse_in_start_offset
            r = self.tiled.r_ids[off + lo : off + hi]
            c = self.tiled.c_ids[off + lo : off + hi]
            v = self.tiled.vals[off + lo : off + hi]
            spmm_chunk_update(d_accum, r, c, v, b64)

        def gen_epoch(pe: ProcessingElement, parts):
            chunks = []
            for tile, lo, hi in parts:
                off = tile.sparse_in_start_offset
                chunks.append((
                    self.tiled.r_ids[off + lo : off + hi],
                    self.tiled.c_ids[off + lo : off + hi],
                    off + lo,
                ))
            return generate_spmm_epoch(pe, chunks)

        epochs, per_pe_time = self._run_epochs(
            gen_chunk, apply_chunk, d_accum, "spmm", gen_epoch
        )
        term_ns, dirty = self._terminate()
        stats = self.memory.collect_stats()
        time_ns = sum(e.epoch_time_ns for e in epochs) + term_ns
        self._publish_run(stats, time_ns, term_ns)
        return EngineResult(
            primitive=Primitive.SPMM,
            output_dense=d_accum.astype(np.float32),
            output_vals=None,
            time_ns=time_ns,
            epoch_timings=epochs,
            stats=stats,
            counters=self._merged_counters(),
            per_pe_time_ns=per_pe_time,
            termination_ns=term_ns,
            dirty_lines_flushed=dirty,
        )

    def run_sddmm(
        self,
        schedule: Schedule,
        b_dense: np.ndarray,
        c_dense: np.ndarray,
    ) -> EngineResult:
        """Execute D = A o (B @ C^T) over the schedule."""
        if self.init.primitive is not Primitive.SDDMM:
            raise ConfigError("engine was initialised for a different primitive")
        out_vals = np.zeros(self.tiled.out_vals_length, dtype=np.float64)
        b64 = np.asarray(b_dense, dtype=np.float64)
        c64 = np.asarray(c_dense, dtype=np.float64)

        def gen_chunk(pe: ProcessingElement, tile: TileInfo, lo: int, hi: int):
            off = tile.sparse_in_start_offset
            r = self.tiled.r_ids[off + lo : off + hi]
            c = self.tiled.c_ids[off + lo : off + hi]
            out_offsets = tile.sparse_out_start_offset + np.arange(
                lo, hi, dtype=np.int64
            )
            pe.execute_sddmm_chunk(r, c, off + lo, out_offsets)

        def apply_chunk(tile: TileInfo, lo: int, hi: int):
            off = tile.sparse_in_start_offset
            r = self.tiled.r_ids[off + lo : off + hi]
            c = self.tiled.c_ids[off + lo : off + hi]
            v = self.tiled.vals[off + lo : off + hi]
            out_offsets = tile.sparse_out_start_offset + np.arange(
                lo, hi, dtype=np.int64
            )
            sddmm_chunk_vals(out_vals, out_offsets, r, c, v, b64, c64)

        def gen_epoch(pe: ProcessingElement, parts):
            chunks = []
            for tile, lo, hi in parts:
                off = tile.sparse_in_start_offset
                chunks.append((
                    self.tiled.r_ids[off + lo : off + hi],
                    self.tiled.c_ids[off + lo : off + hi],
                    off + lo,
                    tile.sparse_out_start_offset + np.arange(
                        lo, hi, dtype=np.int64
                    ),
                ))
            return generate_sddmm_epoch(pe, chunks)

        epochs, per_pe_time = self._run_epochs(
            gen_chunk, apply_chunk, out_vals, "sddmm", gen_epoch
        )
        term_ns, dirty = self._terminate()
        stats = self.memory.collect_stats()
        time_ns = sum(e.epoch_time_ns for e in epochs) + term_ns
        self._publish_run(stats, time_ns, term_ns)
        return EngineResult(
            primitive=Primitive.SDDMM,
            output_dense=None,
            output_vals=out_vals.astype(np.float32),
            time_ns=time_ns,
            epoch_timings=epochs,
            stats=stats,
            counters=self._merged_counters(),
            per_pe_time_ns=per_pe_time,
            termination_ns=term_ns,
            dirty_lines_flushed=dirty,
        )

    # -- internals ------------------------------------------------------------

    _schedule: Optional[Schedule] = None

    def bind_schedule(self, schedule: Schedule) -> None:
        self._schedule = schedule

    def _run_epochs(
        self,
        gen_chunk,
        apply_chunk,
        output: np.ndarray,
        primitive: str,
        gen_epoch=None,
    ) -> Tuple[List[EpochTiming], List[float]]:
        schedule = self._schedule
        if schedule is None:
            raise RuntimeError("bind_schedule() must be called before running")
        if schedule.num_pes != self.config.num_pes:
            raise ConfigError(
                f"schedule is for {schedule.num_pes} PEs but the system "
                f"has {self.config.num_pes}"
            )
        # Trace-store identity for this run (content-addressed key
        # material): only computed when a store is attached.
        self._store_material = (
            self._trace_material(primitive)
            if self.trace_store is not None and gen_epoch is not None
            else None
        )
        epoch_results: List[EpochTiming] = []
        per_pe_total = [0.0] * self.config.num_pes
        self._epoch_counters: List[List[PECounters]] = []
        start_epoch = 0
        if self._ckpt is not None and self.config.resilience.resume:
            loaded = self._ckpt.load_latest()
            if loaded is not None:
                header, state = loaded
                self._check_resume_meta(header, primitive)
                self._restore_snapshot(
                    state, output, epoch_results, per_pe_total
                )
                start_epoch = state["next_epoch"]
                self.resumed_from_epoch = header["epoch"]
        # Run-global per-PE chunk ordinals: EngineExecutionError's
        # chunk_index (and chaos targeting) identifies the n-th chunk a
        # PE processed this run, across epochs.
        self._chunk_ordinal = [0] * self.config.num_pes
        pipelined = self.execution == "pipelined"
        executor = None
        if pipelined:
            # On a single-hardware-thread host a thread pool cannot
            # overlap anything — every "concurrent" producer serializes
            # behind the GIL *and* the one core, so the pool only adds
            # scheduling overhead.  Producers are deterministic per PE,
            # so running them inline is observationally identical.
            if (
                self.config.pipeline.pool == "thread"
                and (os.cpu_count() or 1) > 1
            ):
                executor = ThreadPoolExecutor(
                    max_workers=self.config.pipeline.workers,
                    thread_name_prefix="spade-gen",
                )
            else:
                executor = _InlineExecutor()
        try:
            for epoch_idx, epoch in enumerate(schedule.epochs):
                if epoch_idx < start_epoch:
                    continue
                for pe in self.pes:
                    pe.counters = PECounters()
                dram_before = self.memory.dram.accesses
                cursors = [
                    _ChunkCursor(tiles, self.chunk_nnz) for tiles in epoch
                ]
                # Host-side phase split (gen / merge / replay seconds)
                # accumulated by the epoch drivers when a ledger is
                # attached; None keeps the hot loops on their original
                # paths.
                phase = [0.0, 0.0, 0.0] if self.ledger.enabled else None
                fused_chunks = 0
                with self.telemetry.tracer.span(
                    f"epoch[{epoch_idx}]", cat="epoch",
                    args={"epoch": epoch_idx},
                ):
                    if gen_epoch is not None and self.execution != "scalar":
                        fused_chunks = self._run_epoch_phased(
                            executor, cursors, gen_epoch, apply_chunk,
                            phase, epoch_idx,
                        )
                    else:
                        self._run_epoch_serial(
                            cursors, gen_chunk, apply_chunk, phase
                        )
                per_pe = [pe.counters for pe in self.pes]
                self._epoch_counters.append(per_pe)
                dram_lines = self.memory.dram.accesses - dram_before
                timing = epoch_timing(
                    per_pe, dram_lines, self.config, self.memory
                )
                epoch_results.append(timing)
                for i, t in enumerate(timing.pe_times_ns):
                    per_pe_total[i] += t
                self._record_epoch_telemetry(epoch_idx, timing, dram_lines)
                if phase is not None:
                    self.ledger.emit(
                        "epoch",
                        epoch=epoch_idx,
                        gen_s=phase[0],
                        merge_s=phase[1],
                        replay_s=phase[2],
                        epoch_time_ns=float(timing.epoch_time_ns),
                        dram_lines=int(dram_lines),
                        critical_pe=int(timing.critical_pe),
                        fused_chunks=int(fused_chunks),
                    )
                if self._ckpt is not None and self._ckpt.should_write(
                    epoch_idx
                ):
                    ckpt_t0 = time.perf_counter()
                    self._ckpt.write(
                        epoch_idx,
                        self._snapshot(
                            epoch_idx + 1, output, epoch_results,
                            per_pe_total,
                        ),
                        meta=self._ckpt_meta(primitive),
                    )
                    if phase is not None:
                        self.ledger.emit(
                            "checkpoint",
                            epoch=epoch_idx,
                            wall_s=time.perf_counter() - ckpt_t0,
                        )
                if self._chaos is not None:
                    self._chaos.after_epoch(epoch_idx)
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
        return epoch_results, per_pe_total

    # -- checkpoint plumbing ---------------------------------------------

    def _ckpt_meta(self, primitive: str) -> dict:
        """Workload identity stored in the checkpoint header, checked
        before resuming so a snapshot is never applied to a different
        kernel, schedule shape, or chunking."""
        return {
            "primitive": primitive,
            "chunk_nnz": self.chunk_nnz,
            "num_pes": self.config.num_pes,
            "nnz": int(len(self.tiled.r_ids)),
        }

    def _check_resume_meta(self, header: dict, primitive: str) -> None:
        expected = self._ckpt_meta(primitive)
        actual = header.get("meta", {})
        for key, want in expected.items():
            got = actual.get(key)
            if got != want:
                raise CheckpointError(
                    f"checkpoint epoch {header.get('epoch')} does not match "
                    f"this run: {key} is {got!r} in the snapshot but "
                    f"{want!r} here"
                )

    def _snapshot(
        self,
        next_epoch: int,
        output: np.ndarray,
        epoch_results: List[EpochTiming],
        per_pe_total: List[float],
    ) -> dict:
        """Full architectural + accumulator state at an epoch boundary.

        Safe exactly here: trace buffers are empty (flushed or taken per
        chunk), the pipelined queues are drained, and each finished
        epoch's PE counters are already archived in _epoch_counters —
        so caches, STLBs, BBFs, VRFs, the output accumulator, and the
        schedule cursor (= next_epoch, since chunking restarts per
        epoch) capture everything the remaining epochs depend on.
        """
        return {
            "next_epoch": next_epoch,
            "output": np.array(output, copy=True),
            "epoch_timings": list(epoch_results),
            "per_pe_total": list(per_pe_total),
            "epoch_counters": [list(c) for c in self._epoch_counters],
            "memory": self.memory.state_dict(),
            "pes": [pe.state_dict() for pe in self.pes],
        }

    def _restore_snapshot(
        self,
        state: dict,
        output: np.ndarray,
        epoch_results: List[EpochTiming],
        per_pe_total: List[float],
    ) -> None:
        restored = state["output"]
        if restored.shape != output.shape:
            raise CheckpointError(
                f"checkpoint output has shape {restored.shape}, "
                f"this run produces {output.shape}"
            )
        output[...] = restored
        epoch_results.extend(state["epoch_timings"])
        per_pe_total[:] = state["per_pe_total"]
        self._epoch_counters.extend(state["epoch_counters"])
        try:
            self.memory.load_state_dict(state["memory"])
            for pe, pe_state in zip(self.pes, state["pes"]):
                pe.load_state_dict(pe_state)
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint state does not fit this system: {exc}"
            ) from exc

    # -- epoch drivers ---------------------------------------------------

    def _run_epoch_serial(
        self, cursors, gen_chunk, apply_chunk, phase=None
    ) -> None:
        """Round-robin chunk interleave with generation and replay in
        line (the scalar and vectorized execution modes).

        ``phase`` (ledger runs only) accumulates host seconds as
        ``[gen, merge, replay]``; the un-timed loop is untouched when
        it is None.
        """
        tracer = self.telemetry.tracer
        trace_chunks = tracer.enabled and self.config.telemetry.trace_chunks
        buffered = self.buffered
        chaos = self._chaos
        execution = self.execution
        chunk_ordinal = self._chunk_ordinal
        active = True
        while active:
            active = False
            for pe, cursor in zip(self.pes, cursors):
                nxt = cursor.next_chunk()
                if nxt is None:
                    continue
                active = True
                tile, lo, hi = nxt
                chunk_idx = chunk_ordinal[pe.pe_id]
                chunk_ordinal[pe.pe_id] += 1
                try:
                    if chaos is not None:
                        chaos.worker_fault(
                            pe.pe_id, chunk_idx, backend=execution
                        )
                        chaos.replay_delay()
                    if phase is not None:
                        span = (
                            tracer.span(
                                "chunk", cat="replay", tid=pe.pe_id + 1,
                                args={"nnz": hi - lo},
                            )
                            if trace_chunks else NULL_SPAN
                        )
                        with span:
                            t0 = time.perf_counter()
                            gen_chunk(pe, tile, lo, hi)
                            t1 = time.perf_counter()
                            apply_chunk(tile, lo, hi)
                            t2 = time.perf_counter()
                            if buffered:
                                pe.flush_trace()
                            t3 = time.perf_counter()
                        phase[0] += t1 - t0
                        phase[1] += t2 - t1
                        phase[2] += t3 - t2
                        continue
                    if trace_chunks:
                        with tracer.span(
                            "chunk", cat="replay", tid=pe.pe_id + 1,
                            args={"nnz": hi - lo},
                        ):
                            gen_chunk(pe, tile, lo, hi)
                            apply_chunk(tile, lo, hi)
                            pe.flush_trace()
                        continue
                    gen_chunk(pe, tile, lo, hi)
                    apply_chunk(tile, lo, hi)
                    if buffered:
                        # One memory-system hand-off per PE chunk:
                        # replay the chunk's buffered trace before the
                        # next PE's chunk contends for the shared
                        # levels.
                        pe.flush_trace()
                except SpadeError:
                    raise
                except Exception as exc:
                    raise EngineExecutionError(
                        f"{execution} execution failed on a chunk",
                        pe_id=pe.pe_id,
                        chunk_index=chunk_idx,
                    ) from exc

    # -- whole-epoch fused driver ----------------------------------------

    @staticmethod
    def _collect_epoch_parts(cursors) -> List[List[Tuple[TileInfo, int, int]]]:
        """Materialise every PE's chunk list for the epoch up front (the
        dispatch order is a pure function of the per-PE chunk counts)."""
        parts: List[List[Tuple[TileInfo, int, int]]] = []
        for cursor in cursors:
            lst: List[Tuple[TileInfo, int, int]] = []
            while True:
                nxt = cursor.next_chunk()
                if nxt is None:
                    break
                lst.append(nxt)
            parts.append(lst)
        return parts

    @staticmethod
    def _coalesced_dispatch(parts) -> List[Tuple[int, int, int]]:
        """The serial round-robin chunk dispatch order, coalesced into
        maximal consecutive same-PE runs ``(pe, chunk_lo, chunk_hi)``.

        Shared levels (L2/LLC/STLB) make replay order across PEs
        observable, so only *consecutive* chunks of the same PE may be
        merged into one replay call — which happens exactly when other
        PEs have exhausted their chunk lists.  The runs are derived from
        chunk counts alone, never from queue timing, so the replayed
        stream is deterministic and bit-identical to the scalar oracle.
        """
        counts = [len(p) for p in parts]
        runs: List[Tuple[int, int, int]] = []
        remaining = sum(counts)
        ci = [0] * len(counts)
        while remaining:
            for i, count in enumerate(counts):
                if ci[i] >= count:
                    continue
                start = ci[i]
                ci[i] = start + 1
                remaining -= 1
                if runs and runs[-1][0] == i and runs[-1][2] == start:
                    runs[-1] = (i, runs[-1][1], start + 1)
                else:
                    runs.append((i, start, start + 1))
        return runs

    def _advance_chunks(self, i: int, count: int) -> int:
        """Claim ``count`` chunk ordinals for PE ``i`` and fire the
        per-chunk chaos worker faults (deterministic in (seed, pe,
        chunk), so firing them batched before generation preserves the
        fault set of the per-chunk drivers).  Returns the base ordinal.
        """
        base = self._chunk_ordinal[i]
        self._chunk_ordinal[i] = base + count
        chaos = self._chaos
        if chaos is not None:
            for c in range(count):
                try:
                    chaos.worker_fault(i, base + c, backend=self.execution)
                except SpadeError:
                    raise
                except Exception as exc:
                    raise EngineExecutionError(
                        f"{self.execution} execution failed on a chunk",
                        pe_id=i,
                        chunk_index=base + c,
                    ) from exc
        return base

    def _run_epoch_phased(
        self, executor, cursors, gen_epoch, apply_chunk, phase, epoch_idx
    ) -> int:
        """Epoch driver for the fused execution modes: Phase A derives
        each PE's *whole epoch* trace in one pass (or restores it from
        the trace store), Phase B replays the coalesced round-robin
        dispatch runs against the shared memory system.

        With an executor (pipelined mode) Phase A runs one producer
        task per PE and Phase B consumes each PE's epoch the first time
        the dispatch order needs it — generation of later PEs overlaps
        replay of earlier ones.  Results are bit-identical either way.
        Returns the number of chunks generated via the fused solver
        (for the ``spade_gen_fused_chunks`` satellite counter).
        """
        parts = self._collect_epoch_parts(cursors)
        num = len(self.pes)
        stats = self.trace_cache
        m = self.telemetry.metrics
        entry = None
        key = None
        store = self.trace_store
        if store is not None and self._store_material is not None:
            t0 = time.perf_counter()
            key = store.key_for(self._store_material, epoch_idx)
            hit, payload = store.get(key)
            if hit and self._entry_fits(payload, parts):
                entry = payload
            wall = time.perf_counter() - t0
            status = "hit" if entry is not None else "miss"
            stats["hits" if entry is not None else "misses"] += 1
            if m.enabled:
                name = (
                    "spade_trace_cache_hits"
                    if entry is not None
                    else "spade_trace_cache_misses"
                )
                m.counter(
                    name, help="trace-store probes by outcome"
                ).inc()
            if self.ledger.enabled:
                self.ledger.emit(
                    "trace_cache",
                    epoch=epoch_idx,
                    status=status,
                    key=key,
                    pes=num,
                    wall_s=wall,
                )
            if phase is not None:
                phase[0] += wall

        tracer = self.telemetry.tracer
        trace_chunks = tracer.enabled and self.config.telemetry.trace_chunks
        gen_hist = m.histogram(
            "spade_gen_chunk_seconds",
            help="wall-clock per-PE epoch trace-generation time",
        )
        depth_hist = m.histogram(
            "spade_pipeline_queue_depth",
            help="ready generated PE epochs at consume time",
        )

        traces: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [None] * num
        segs: List[Optional[List[Tuple[int, int]]]] = [None] * num
        payloads: List[Optional[dict]] = [None] * num
        fused_chunks = 0
        capture = entry is None and store is not None and key is not None
        serial_views = False
        collect_fn = None

        if entry is not None:
            from repro.memory.trace_store import unpack_pe_entry

            for i, pe in enumerate(self.pes):
                self._advance_chunks(i, len(parts[i]))
                traces[i], segs[i] = unpack_pe_entry(pe, entry["pes"][i])
        elif executor is None or isinstance(executor, _InlineExecutor):
            # Serial phase A: generate every PE's epoch in PE order;
            # the trace stays in the PE's own buffer (zero-copy views).
            # An inline executor would run the same producers eagerly at
            # submit time anyway — same order, same results — but pay a
            # take_trace() copy per PE; route it through the zero-copy
            # path instead.
            serial_views = True
            for i, pe in enumerate(self.pes):
                self._advance_chunks(i, len(parts[i]))
                span = (
                    tracer.span(
                        "gen_epoch", cat="gen", tid=i + 1,
                        args={"chunks": len(parts[i])},
                    )
                    if trace_chunks else NULL_SPAN
                )
                with span:
                    t0 = time.perf_counter()
                    segs[i], fused, payloads[i] = self._gen_pe_epoch(
                        i, pe, parts[i], gen_epoch, capture
                    )
                    gen_s = time.perf_counter() - t0
                gen_hist.observe(gen_s)
                if phase is not None:
                    phase[0] += gen_s
                if fused:
                    fused_chunks += len(parts[i])
                if parts[i]:
                    stats["gen_invocations"] += 1
                traces[i] = pe._trace.views()
        else:
            # Pipelined phase A: one producer task per PE.  Ordinals and
            # faults are claimed on this thread first so fault order is
            # deterministic; producers only run generation.
            for i in range(num):
                self._advance_chunks(i, len(parts[i]))

            def produce(i: int):
                pe = self.pes[i]
                t0 = time.perf_counter()
                seg, fused, payload = self._gen_pe_epoch(
                    i, pe, parts[i], gen_epoch, capture
                )
                lines, ops = pe.take_trace()
                return seg, fused, payload, lines, ops, (
                    time.perf_counter() - t0
                )

            futs = [executor.submit(produce, i) for i in range(num)]

            def collect(i: int) -> None:
                try:
                    seg, fused, payload, lines, ops, gen_s = futs[i].result()
                except SpadeError:
                    raise
                except Exception as exc:
                    raise EngineExecutionError(
                        "pipelined worker failed while generating an "
                        "epoch trace",
                        pe_id=i,
                    ) from exc
                depth_hist.observe(
                    sum(1 for f in futs if f.done()) - 1
                )
                gen_hist.observe(gen_s)
                segs[i] = seg
                payloads[i] = payload
                traces[i] = (lines, ops)
                nonlocal fused_chunks
                if fused:
                    fused_chunks += len(parts[i])
                if parts[i]:
                    stats["gen_invocations"] += 1
                if phase is not None:
                    # Producer-thread wall time (overlapped with
                    # replay): the phase split attributes cost, not
                    # critical-path latency.
                    phase[0] += gen_s

            collect_fn = collect

        # Phase B: coalesced round-robin replay + output math.
        chaos = self._chaos
        runs = self._coalesced_dispatch(parts)
        for i, c0, c1 in runs:
            pe = self.pes[i]
            if collect_fn is not None and traces[i] is None:
                collect_fn(i)
            base = self._chunk_ordinal[i] - len(parts[i])
            try:
                for c in range(c0, c1):
                    tile, lo, hi = parts[i][c]
                    if chaos is not None:
                        chaos.replay_delay()
                    if phase is not None:
                        t0 = time.perf_counter()
                        apply_chunk(tile, lo, hi)
                        phase[1] += time.perf_counter() - t0
                    elif trace_chunks:
                        with tracer.span(
                            "chunk", cat="replay", tid=i + 1,
                            args={"nnz": hi - lo},
                        ):
                            apply_chunk(tile, lo, hi)
                    else:
                        apply_chunk(tile, lo, hi)
                s0 = segs[i][c0][0]
                s1 = segs[i][c1 - 1][1]
                lines, ops = traces[i]
                if phase is not None:
                    t0 = time.perf_counter()
                    pe.replay_segment(lines[s0:s1], ops[s0:s1])
                    phase[2] += time.perf_counter() - t0
                else:
                    pe.replay_segment(lines[s0:s1], ops[s0:s1])
            except SpadeError:
                raise
            except Exception as exc:
                raise EngineExecutionError(
                    f"{self.execution} execution failed on a chunk",
                    pe_id=i,
                    chunk_index=base + c0,
                ) from exc
        if collect_fn is not None:
            # Drain producers the dispatch never touched (zero-chunk
            # PEs): their tasks still ran and must not straddle into
            # the next epoch's generation.
            for i in range(num):
                if traces[i] is None:
                    collect_fn(i)

        if capture and all(
            p is not None or not parts[i]
            for i, p in enumerate(payloads)
        ):
            from repro.memory.trace_store import pack_epoch_entry

            t0 = time.perf_counter()
            store.put(
                key,
                pack_epoch_entry(parts, traces, segs, payloads),
            )
            stats["stored"] += 1
            if self.ledger.enabled:
                self.ledger.emit(
                    "trace_cache",
                    epoch=epoch_idx,
                    status="stored",
                    key=key,
                    pes=num,
                    wall_s=time.perf_counter() - t0,
                )
        if serial_views:
            for pe in self.pes:
                pe._trace.clear()
        stats["fused_chunks"] += fused_chunks
        if m.enabled and fused_chunks:
            m.counter(
                "spade_gen_fused_chunks",
                help="chunks whose trace came from the fused epoch "
                "solver",
            ).inc(fused_chunks)
        return fused_chunks

    def _gen_pe_epoch(self, i, pe, parts_i, gen_epoch, capture):
        """Generate one PE's epoch trace; optionally capture the
        trace-store payload fragment (front-end counter deltas, VRF
        deltas and final state, rMatrix rows) around the generation."""
        if capture:
            vrf = pe.vrf
            c_before = (
                vrf.tag_hits, vrf.tag_misses, vrf.evictions,
                vrf.eviction_writebacks, vrf.manager_writebacks,
            )
            rows_before = set(pe._rmatrix_rows_touched)
        try:
            seg, fused = gen_epoch(pe, parts_i)
        except SpadeError:
            raise
        except Exception as exc:
            raise EngineExecutionError(
                f"{self.execution} execution failed while generating "
                f"an epoch trace",
                pe_id=i,
            ) from exc
        if not capture:
            return seg, fused, None
        vrf = pe.vrf
        c = pe.counters
        payload = {
            "counters": (
                c.tops, c.vops, c.sparse_line_reads,
                c.output_line_writes,
            ),
            "vrf_delta": (
                vrf.tag_hits - c_before[0],
                vrf.tag_misses - c_before[1],
                vrf.evictions - c_before[2],
                vrf.eviction_writebacks - c_before[3],
                vrf.manager_writebacks - c_before[4],
            ),
            "vrf_tags": list(vrf._tags.items()),
            "vrf_dirty_count": vrf._dirty_count,
            "rows": sorted(pe._rmatrix_rows_touched - rows_before),
        }
        return seg, fused, payload

    @staticmethod
    def _entry_fits(payload, parts) -> bool:
        """Cheap structural sanity on a trace-store hit (the key should
        already guarantee this; a mismatch degrades to a miss)."""
        pes = payload.get("pes") if isinstance(payload, dict) else None
        if not isinstance(pes, list) or len(pes) != len(parts):
            return False
        return all(
            len(p.get("segs", ())) == len(parts_i)
            for p, parts_i in zip(pes, parts)
        )

    def _trace_material(self, primitive: str) -> Dict[str, Any]:
        """Canonical key material for the content-addressed trace
        store: everything generation depends on (workload identity,
        schedule structure, chunking, GenConfig, op encodings) and
        nothing it does not (cache geometry, replay backend, execution
        mode, telemetry)."""
        import hashlib

        tiled = self.tiled
        dig = hashlib.sha256()
        dig.update(np.ascontiguousarray(tiled.r_ids).tobytes())
        dig.update(np.ascontiguousarray(tiled.c_ids).tobytes())
        pe0 = self.pes[0]
        schedule = self._schedule
        return {
            "primitive": primitive,
            "chunk_nnz": int(self.chunk_nnz),
            "k": int(self.init.dense_row_size),
            "sizeof_indices": int(self.init.sizeof_indices),
            "sizeof_vals": int(self.init.sizeof_vals),
            "num_rows": int(tiled.num_rows),
            "num_cols": int(tiled.num_cols),
            "nnz": int(len(tiled.r_ids)),
            "out_vals_length": int(tiled.out_vals_length),
            "matrix_sha256": dig.hexdigest(),
            "schedule": [
                [
                    [
                        [
                            int(t.sparse_in_start_offset),
                            int(t.nnz),
                            int(t.sparse_out_start_offset),
                        ]
                        for t in tiles
                    ]
                    for tiles in epoch
                ]
                for epoch in schedule.epochs
            ],
            "gen": gen_config(self.config).as_key_dict(),
            "ops": [
                int(pe0._op_sparse),
                int(pe0._op_rmatrix_read),
                int(pe0._op_cmatrix_read),
                int(pe0._op_store),
            ],
        }

    def _record_epoch_telemetry(
        self, epoch_idx: int, timing: EpochTiming, dram_lines: int
    ) -> None:
        """Per-epoch metrics: barrier waits and simulated-time facts."""
        tel = self.telemetry
        if not tel.enabled:
            return
        m = tel.metrics
        m.counter(
            "spade_epochs_total", help="barrier epochs executed"
        ).inc()
        wait_hist = m.histogram(
            "spade_epoch_barrier_wait_ns",
            help="per-PE simulated wait at each epoch barrier "
            "(epoch time minus the PE's own time)",
        )
        for t in timing.pe_times_ns:
            wait_hist.observe(timing.epoch_time_ns - t)
        tel.tracer.instant(
            f"barrier[{epoch_idx}]", cat="epoch",
            args={
                "epoch_time_ns": timing.epoch_time_ns,
                "bandwidth_time_ns": timing.bandwidth_time_ns,
                "critical_pe": timing.critical_pe,
                "dram_lines": dram_lines,
                "total_requests": timing.total_requests,
            },
        )

    def _terminate(self) -> Tuple[float, int]:
        """WB&Invalidate on every PE; returns (flush time, dirty lines)."""
        dirty = 0
        with self.telemetry.tracer.span("wb_invalidate", cat="flush"):
            for pe in self.pes:
                pe.counters = PECounters()
                dirty += pe.writeback_invalidate()
        # VRF drain stores count as DRAM/cache writes already; the flush
        # time models draining the dirty L1/BBF lines to memory.
        return flush_time_ns(dirty, self.config), dirty

    def _publish_run(
        self, stats: AccessStats, time_ns: float, term_ns: float
    ) -> None:
        """End-of-run metric snapshot: the memory hierarchy's counters
        plus whole-run simulated-time gauges."""
        m = self.telemetry.metrics
        if not m.enabled:
            return
        self.memory.publish_metrics(m)
        m.gauge(
            "spade_run_time_ns", help="simulated kernel time"
        ).set(time_ns)
        m.gauge(
            "spade_run_termination_ns",
            help="simulated SPADE->CPU transition time",
        ).set(term_ns)

    def _merged_counters(self) -> PECounters:
        merged = PECounters()
        for per_pe in getattr(self, "_epoch_counters", []):
            for c in per_pe:
                merged = merged.merged(c)
        return merged
