"""Execution engine: runs a schedule on the PEs and the shared memory
system, producing the numeric result and a timing/traffic report.

Within a barrier epoch all PEs run concurrently; the engine emulates
that concurrency by interleaving fixed-size nonzero chunks of the PEs'
tile streams round-robin, so their access streams contend realistically
in the shared L2s and LLC.  Epoch boundaries are scheduling barriers:
the epoch's time is the slowest PE (load imbalance is paid there), and
epochs accumulate (Section 4.3, Figure 5b).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.config import SpadeConfig, replay_backend_spec
from repro.core.bypass import BypassPolicy
from repro.core.cpe import Schedule
from repro.core.instructions import InitializationInstruction, Primitive
from repro.core.pe import PECounters, ProcessingElement
from repro.core.timing import EpochTiming, epoch_timing, flush_time_ns
from repro.errors import CheckpointError, ConfigError, EngineExecutionError, SpadeError
from repro.kernels.reference import sddmm_chunk_vals, spmm_chunk_update
from repro.memory.address import AddressMap
from repro.memory.hierarchy import MemorySystem
from repro.memory.stats import AccessStats
from repro.obs.ledger import NULL_LEDGER
from repro.resilience.checkpoint import CheckpointManager, checkpoint_fingerprint
from repro.sparse.tiled import TiledMatrix, TileInfo
from repro.telemetry import Telemetry
from repro.telemetry.tracer import NULL_SPAN

DEFAULT_CHUNK_NNZ = 4096
"""Interleaving granularity across PEs inside an epoch."""


@dataclass
class EngineResult:
    """Everything one kernel execution produced."""

    primitive: Primitive
    output_dense: Optional[np.ndarray]
    output_vals: Optional[np.ndarray]
    time_ns: float
    epoch_timings: List[EpochTiming]
    stats: AccessStats
    counters: PECounters
    per_pe_time_ns: List[float]
    termination_ns: float
    dirty_lines_flushed: int

    @property
    def compute_time_ns(self) -> float:
        """Kernel time without the termination (mode-transition) cost."""
        return self.time_ns - self.termination_ns

    @property
    def dram_bytes(self) -> int:
        return (self.stats.dram_reads + self.stats.dram_writes) * 64

    def bandwidth_utilization(self, peak_gbps: float) -> float:
        if self.time_ns <= 0:
            return 0.0
        return (self.dram_bytes / self.time_ns) / peak_gbps


@dataclass
class _ChunkCursor:
    """Walks one PE's tile list in fixed-size nonzero chunks."""

    tiles: List[TileInfo]
    chunk_nnz: int
    tile_idx: int = 0
    offset_in_tile: int = 0

    def next_chunk(self) -> Optional[Tuple[TileInfo, int, int]]:
        """Return (tile, lo, hi) nnz-range of the next chunk, or None."""
        while self.tile_idx < len(self.tiles):
            tile = self.tiles[self.tile_idx]
            if self.offset_in_tile >= tile.nnz:
                self.tile_idx += 1
                self.offset_in_tile = 0
                continue
            lo = self.offset_in_tile
            hi = min(lo + self.chunk_nnz, tile.nnz)
            self.offset_in_tile = hi
            return tile, lo, hi
        return None


class _InlineExecutor:
    """Executor twin for ``pipeline.pool == "serial"``: runs each
    submitted task synchronously on the caller's thread, so the whole
    producer/consumer machinery executes deterministically without
    threads (done-callbacks fire inline; the chained re-submission
    recursion is bounded by the lookahead)."""

    def submit(self, fn, *args) -> Future:
        fut: Future = Future()
        try:
            fut.set_result(fn(*args))
        except BaseException as exc:  # mirror ThreadPoolExecutor
            fut.set_exception(exc)
        return fut

    def shutdown(self, wait: bool = True) -> None:
        pass


class Engine:
    """Binds a config, memory system, and PEs to execute one kernel."""

    def __init__(
        self,
        config: SpadeConfig,
        tiled: TiledMatrix,
        init: InitializationInstruction,
        address_map: AddressMap,
        policy: BypassPolicy,
        chunk_nnz: int = DEFAULT_CHUNK_NNZ,
        telemetry: Optional[Telemetry] = None,
        chaos=None,
        ledger=None,
    ) -> None:
        self.config = config
        self.tiled = tiled
        self.init = init
        self.address_map = address_map
        self.policy = policy
        self.chunk_nnz = max(1, chunk_nnz)
        self.memory = MemorySystem(config)
        # Run-ledger session (off by default): attached to the memory
        # system so the replay dispatch audit and the per-epoch phase
        # timers below record into one correlated event stream.
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        self.memory.ledger = self.ledger
        # Telemetry session: a caller-provided one (SpadeSystem shares
        # its session across runs) or a fresh one from the config.
        self.telemetry = (
            telemetry if telemetry is not None
            else Telemetry(config.telemetry)
        )
        self._chaos = chaos
        # Epoch checkpointing: snapshots land in resilience.checkpoint_dir
        # after every checkpoint_interval-th epoch; resumed_from_epoch
        # records the snapshot a run restarted from (None = fresh run).
        self.resumed_from_epoch: Optional[int] = None
        res = config.resilience
        self._ckpt: Optional[CheckpointManager] = None
        if res.checkpoint_dir is not None:
            self._ckpt = CheckpointManager(
                res.checkpoint_dir,
                interval=res.checkpoint_interval,
                fingerprint=checkpoint_fingerprint(config),
                telemetry=self.telemetry,
                chaos=chaos,
            )
        # Replay mode: non-direct backends ("batched", "array") buffer
        # each PE chunk's trace and replay it in one call per chunk;
        # "scalar" is the per-access reference oracle (bit-identical
        # results).  Which backends exist is the registry's business
        # (repro.config), not ours.
        # Execution mode: "scalar" walks every nonzero in Python;
        # "vectorized" derives the chunk trace with NumPy + a reduced
        # tight loop; "pipelined" additionally overlaps generation with
        # replay (bit-identical results in all combinations).
        self.batched_replay = not replay_backend_spec(config.replay).direct
        self.execution = config.execution
        self.buffered = self.batched_replay or self.execution != "scalar"
        self.pes = [
            ProcessingElement(
                i, config.pe, self.memory, init, address_map, policy,
                batched=self.batched_replay,
                execution=self.execution,
                telemetry=self.telemetry,
            )
            for i in range(config.num_pes)
        ]

    # -- public entry points ---------------------------------------------

    def run_spmm(
        self, schedule: Schedule, b_dense: np.ndarray
    ) -> EngineResult:
        """Execute D = A @ B over the schedule."""
        if self.init.primitive is not Primitive.SPMM:
            raise ConfigError("engine was initialised for a different primitive")
        d_accum = np.zeros(
            (self.tiled.num_rows, self.init.dense_row_size), dtype=np.float64
        )
        b64 = np.asarray(b_dense, dtype=np.float64)

        def gen_chunk(pe: ProcessingElement, tile: TileInfo, lo: int, hi: int):
            off = tile.sparse_in_start_offset
            r = self.tiled.r_ids[off + lo : off + hi]
            c = self.tiled.c_ids[off + lo : off + hi]
            pe.execute_spmm_chunk(r, c, off + lo)

        def apply_chunk(tile: TileInfo, lo: int, hi: int):
            off = tile.sparse_in_start_offset
            r = self.tiled.r_ids[off + lo : off + hi]
            c = self.tiled.c_ids[off + lo : off + hi]
            v = self.tiled.vals[off + lo : off + hi]
            spmm_chunk_update(d_accum, r, c, v, b64)

        epochs, per_pe_time = self._run_epochs(
            gen_chunk, apply_chunk, d_accum, "spmm"
        )
        term_ns, dirty = self._terminate()
        stats = self.memory.collect_stats()
        time_ns = sum(e.epoch_time_ns for e in epochs) + term_ns
        self._publish_run(stats, time_ns, term_ns)
        return EngineResult(
            primitive=Primitive.SPMM,
            output_dense=d_accum.astype(np.float32),
            output_vals=None,
            time_ns=time_ns,
            epoch_timings=epochs,
            stats=stats,
            counters=self._merged_counters(),
            per_pe_time_ns=per_pe_time,
            termination_ns=term_ns,
            dirty_lines_flushed=dirty,
        )

    def run_sddmm(
        self,
        schedule: Schedule,
        b_dense: np.ndarray,
        c_dense: np.ndarray,
    ) -> EngineResult:
        """Execute D = A o (B @ C^T) over the schedule."""
        if self.init.primitive is not Primitive.SDDMM:
            raise ConfigError("engine was initialised for a different primitive")
        out_vals = np.zeros(self.tiled.out_vals_length, dtype=np.float64)
        b64 = np.asarray(b_dense, dtype=np.float64)
        c64 = np.asarray(c_dense, dtype=np.float64)

        def gen_chunk(pe: ProcessingElement, tile: TileInfo, lo: int, hi: int):
            off = tile.sparse_in_start_offset
            r = self.tiled.r_ids[off + lo : off + hi]
            c = self.tiled.c_ids[off + lo : off + hi]
            out_offsets = tile.sparse_out_start_offset + np.arange(
                lo, hi, dtype=np.int64
            )
            pe.execute_sddmm_chunk(r, c, off + lo, out_offsets)

        def apply_chunk(tile: TileInfo, lo: int, hi: int):
            off = tile.sparse_in_start_offset
            r = self.tiled.r_ids[off + lo : off + hi]
            c = self.tiled.c_ids[off + lo : off + hi]
            v = self.tiled.vals[off + lo : off + hi]
            out_offsets = tile.sparse_out_start_offset + np.arange(
                lo, hi, dtype=np.int64
            )
            sddmm_chunk_vals(out_vals, out_offsets, r, c, v, b64, c64)

        epochs, per_pe_time = self._run_epochs(
            gen_chunk, apply_chunk, out_vals, "sddmm"
        )
        term_ns, dirty = self._terminate()
        stats = self.memory.collect_stats()
        time_ns = sum(e.epoch_time_ns for e in epochs) + term_ns
        self._publish_run(stats, time_ns, term_ns)
        return EngineResult(
            primitive=Primitive.SDDMM,
            output_dense=None,
            output_vals=out_vals.astype(np.float32),
            time_ns=time_ns,
            epoch_timings=epochs,
            stats=stats,
            counters=self._merged_counters(),
            per_pe_time_ns=per_pe_time,
            termination_ns=term_ns,
            dirty_lines_flushed=dirty,
        )

    # -- internals ------------------------------------------------------------

    _schedule: Optional[Schedule] = None

    def bind_schedule(self, schedule: Schedule) -> None:
        self._schedule = schedule

    def _run_epochs(
        self, gen_chunk, apply_chunk, output: np.ndarray, primitive: str
    ) -> Tuple[List[EpochTiming], List[float]]:
        schedule = self._schedule
        if schedule is None:
            raise RuntimeError("bind_schedule() must be called before running")
        if schedule.num_pes != self.config.num_pes:
            raise ConfigError(
                f"schedule is for {schedule.num_pes} PEs but the system "
                f"has {self.config.num_pes}"
            )
        epoch_results: List[EpochTiming] = []
        per_pe_total = [0.0] * self.config.num_pes
        self._epoch_counters: List[List[PECounters]] = []
        start_epoch = 0
        if self._ckpt is not None and self.config.resilience.resume:
            loaded = self._ckpt.load_latest()
            if loaded is not None:
                header, state = loaded
                self._check_resume_meta(header, primitive)
                self._restore_snapshot(
                    state, output, epoch_results, per_pe_total
                )
                start_epoch = state["next_epoch"]
                self.resumed_from_epoch = header["epoch"]
        # Run-global per-PE chunk ordinals: EngineExecutionError's
        # chunk_index (and chaos targeting) identifies the n-th chunk a
        # PE processed this run, across epochs.
        self._chunk_ordinal = [0] * self.config.num_pes
        pipelined = self.execution == "pipelined"
        executor = None
        if pipelined:
            if self.config.pipeline.pool == "thread":
                executor = ThreadPoolExecutor(
                    max_workers=self.config.pipeline.workers,
                    thread_name_prefix="spade-gen",
                )
            else:
                executor = _InlineExecutor()
        try:
            for epoch_idx, epoch in enumerate(schedule.epochs):
                if epoch_idx < start_epoch:
                    continue
                for pe in self.pes:
                    pe.counters = PECounters()
                dram_before = self.memory.dram.accesses
                cursors = [
                    _ChunkCursor(tiles, self.chunk_nnz) for tiles in epoch
                ]
                # Host-side phase split (gen / merge / replay seconds)
                # accumulated by the epoch drivers when a ledger is
                # attached; None keeps the hot loops on their original
                # paths.
                phase = [0.0, 0.0, 0.0] if self.ledger.enabled else None
                with self.telemetry.tracer.span(
                    f"epoch[{epoch_idx}]", cat="epoch",
                    args={"epoch": epoch_idx},
                ):
                    if pipelined:
                        self._run_epoch_pipelined(
                            executor, cursors, gen_chunk, apply_chunk,
                            phase,
                        )
                    else:
                        self._run_epoch_serial(
                            cursors, gen_chunk, apply_chunk, phase
                        )
                per_pe = [pe.counters for pe in self.pes]
                self._epoch_counters.append(per_pe)
                dram_lines = self.memory.dram.accesses - dram_before
                timing = epoch_timing(
                    per_pe, dram_lines, self.config, self.memory
                )
                epoch_results.append(timing)
                for i, t in enumerate(timing.pe_times_ns):
                    per_pe_total[i] += t
                self._record_epoch_telemetry(epoch_idx, timing, dram_lines)
                if phase is not None:
                    self.ledger.emit(
                        "epoch",
                        epoch=epoch_idx,
                        gen_s=phase[0],
                        merge_s=phase[1],
                        replay_s=phase[2],
                        epoch_time_ns=float(timing.epoch_time_ns),
                        dram_lines=int(dram_lines),
                        critical_pe=int(timing.critical_pe),
                    )
                if self._ckpt is not None and self._ckpt.should_write(
                    epoch_idx
                ):
                    ckpt_t0 = time.perf_counter()
                    self._ckpt.write(
                        epoch_idx,
                        self._snapshot(
                            epoch_idx + 1, output, epoch_results,
                            per_pe_total,
                        ),
                        meta=self._ckpt_meta(primitive),
                    )
                    if phase is not None:
                        self.ledger.emit(
                            "checkpoint",
                            epoch=epoch_idx,
                            wall_s=time.perf_counter() - ckpt_t0,
                        )
                if self._chaos is not None:
                    self._chaos.after_epoch(epoch_idx)
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
        return epoch_results, per_pe_total

    # -- checkpoint plumbing ---------------------------------------------

    def _ckpt_meta(self, primitive: str) -> dict:
        """Workload identity stored in the checkpoint header, checked
        before resuming so a snapshot is never applied to a different
        kernel, schedule shape, or chunking."""
        return {
            "primitive": primitive,
            "chunk_nnz": self.chunk_nnz,
            "num_pes": self.config.num_pes,
            "nnz": int(len(self.tiled.r_ids)),
        }

    def _check_resume_meta(self, header: dict, primitive: str) -> None:
        expected = self._ckpt_meta(primitive)
        actual = header.get("meta", {})
        for key, want in expected.items():
            got = actual.get(key)
            if got != want:
                raise CheckpointError(
                    f"checkpoint epoch {header.get('epoch')} does not match "
                    f"this run: {key} is {got!r} in the snapshot but "
                    f"{want!r} here"
                )

    def _snapshot(
        self,
        next_epoch: int,
        output: np.ndarray,
        epoch_results: List[EpochTiming],
        per_pe_total: List[float],
    ) -> dict:
        """Full architectural + accumulator state at an epoch boundary.

        Safe exactly here: trace buffers are empty (flushed or taken per
        chunk), the pipelined queues are drained, and each finished
        epoch's PE counters are already archived in _epoch_counters —
        so caches, STLBs, BBFs, VRFs, the output accumulator, and the
        schedule cursor (= next_epoch, since chunking restarts per
        epoch) capture everything the remaining epochs depend on.
        """
        return {
            "next_epoch": next_epoch,
            "output": np.array(output, copy=True),
            "epoch_timings": list(epoch_results),
            "per_pe_total": list(per_pe_total),
            "epoch_counters": [list(c) for c in self._epoch_counters],
            "memory": self.memory.state_dict(),
            "pes": [pe.state_dict() for pe in self.pes],
        }

    def _restore_snapshot(
        self,
        state: dict,
        output: np.ndarray,
        epoch_results: List[EpochTiming],
        per_pe_total: List[float],
    ) -> None:
        restored = state["output"]
        if restored.shape != output.shape:
            raise CheckpointError(
                f"checkpoint output has shape {restored.shape}, "
                f"this run produces {output.shape}"
            )
        output[...] = restored
        epoch_results.extend(state["epoch_timings"])
        per_pe_total[:] = state["per_pe_total"]
        self._epoch_counters.extend(state["epoch_counters"])
        try:
            self.memory.load_state_dict(state["memory"])
            for pe, pe_state in zip(self.pes, state["pes"]):
                pe.load_state_dict(pe_state)
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint state does not fit this system: {exc}"
            ) from exc

    # -- epoch drivers ---------------------------------------------------

    def _run_epoch_serial(
        self, cursors, gen_chunk, apply_chunk, phase=None
    ) -> None:
        """Round-robin chunk interleave with generation and replay in
        line (the scalar and vectorized execution modes).

        ``phase`` (ledger runs only) accumulates host seconds as
        ``[gen, merge, replay]``; the un-timed loop is untouched when
        it is None.
        """
        tracer = self.telemetry.tracer
        trace_chunks = tracer.enabled and self.config.telemetry.trace_chunks
        buffered = self.buffered
        chaos = self._chaos
        execution = self.execution
        chunk_ordinal = self._chunk_ordinal
        active = True
        while active:
            active = False
            for pe, cursor in zip(self.pes, cursors):
                nxt = cursor.next_chunk()
                if nxt is None:
                    continue
                active = True
                tile, lo, hi = nxt
                chunk_idx = chunk_ordinal[pe.pe_id]
                chunk_ordinal[pe.pe_id] += 1
                try:
                    if chaos is not None:
                        chaos.worker_fault(
                            pe.pe_id, chunk_idx, backend=execution
                        )
                        chaos.replay_delay()
                    if phase is not None:
                        span = (
                            tracer.span(
                                "chunk", cat="replay", tid=pe.pe_id + 1,
                                args={"nnz": hi - lo},
                            )
                            if trace_chunks else NULL_SPAN
                        )
                        with span:
                            t0 = time.perf_counter()
                            gen_chunk(pe, tile, lo, hi)
                            t1 = time.perf_counter()
                            apply_chunk(tile, lo, hi)
                            t2 = time.perf_counter()
                            if buffered:
                                pe.flush_trace()
                            t3 = time.perf_counter()
                        phase[0] += t1 - t0
                        phase[1] += t2 - t1
                        phase[2] += t3 - t2
                        continue
                    if trace_chunks:
                        with tracer.span(
                            "chunk", cat="replay", tid=pe.pe_id + 1,
                            args={"nnz": hi - lo},
                        ):
                            gen_chunk(pe, tile, lo, hi)
                            apply_chunk(tile, lo, hi)
                            pe.flush_trace()
                        continue
                    gen_chunk(pe, tile, lo, hi)
                    apply_chunk(tile, lo, hi)
                    if buffered:
                        # One memory-system hand-off per PE chunk:
                        # replay the chunk's buffered trace before the
                        # next PE's chunk contends for the shared
                        # levels.
                        pe.flush_trace()
                except SpadeError:
                    raise
                except Exception as exc:
                    raise EngineExecutionError(
                        f"{execution} execution failed on a chunk",
                        pe_id=pe.pe_id,
                        chunk_index=chunk_idx,
                    ) from exc

    def _run_epoch_pipelined(
        self, executor, cursors, gen_chunk, apply_chunk, phase=None
    ) -> None:
        """Overlapped generate/replay epoch driver.

        Chunk-trace generation only touches per-PE state (VRF, trace
        buffer, front-end counters), so producers for different PEs are
        independent and may run ahead of the shared-memory replay
        cascade; the consumer (this thread) drains the per-PE queues in
        exactly the serial round-robin order, so the replayed access
        stream — and every downstream counter and float accumulation —
        is bit-identical to the serial drivers.  Per PE, at most one
        generation task is in flight (VRF state is carried chunk to
        chunk) and at most ``lookahead`` ready segments may queue.
        """
        tracer = self.telemetry.tracer
        trace_chunks = tracer.enabled and self.config.telemetry.trace_chunks
        lookahead = self.config.pipeline.lookahead
        num = len(self.pes)
        queues: List[queue.Queue] = [queue.Queue() for _ in range(num)]
        locks = [threading.RLock() for _ in range(num)]
        chained = [True] * num
        exhausted = [False] * num
        m = self.telemetry.metrics
        depth_hist = m.histogram(
            "spade_pipeline_queue_depth",
            help="ready generated chunk segments per PE at consume time",
        )
        gen_hist = m.histogram(
            "spade_gen_chunk_seconds",
            help="wall-clock chunk trace-generation time",
        )

        chaos = self._chaos
        chunk_ordinal = self._chunk_ordinal

        def produce(i: int):
            nxt = cursors[i].next_chunk()
            if nxt is None:
                return None
            tile, lo, hi = nxt
            # Safe without a lock: at most one generation task per PE is
            # in flight, so only one thread touches this PE's ordinal.
            chunk_idx = chunk_ordinal[i]
            chunk_ordinal[i] = chunk_idx + 1
            t0 = time.perf_counter()
            try:
                if chaos is not None:
                    chaos.worker_fault(i, chunk_idx, backend="pipelined")
                gen_chunk(self.pes[i], tile, lo, hi)
            except SpadeError:
                raise
            except Exception as exc:
                raise EngineExecutionError(
                    "pipelined worker failed while generating a chunk "
                    "trace",
                    pe_id=i,
                    chunk_index=chunk_idx,
                ) from exc
            lines, ops = self.pes[i].take_trace()
            return tile, lo, hi, lines, ops, time.perf_counter() - t0

        def submit(i: int) -> None:
            fut = executor.submit(produce, i)
            fut.add_done_callback(lambda f, i=i: on_done(i, f))

        def on_done(i: int, fut) -> None:
            exc = fut.exception()
            with locks[i]:
                if exc is not None:
                    queues[i].put(("error", exc))
                    chained[i] = False
                    return
                res = fut.result()
                if res is None:
                    queues[i].put(("done",))
                    exhausted[i] = True
                    chained[i] = False
                    return
                queues[i].put(("chunk", res))
                if queues[i].qsize() < lookahead:
                    submit(i)
                else:
                    chained[i] = False

        for i in range(num):
            with locks[i]:
                submit(i)

        remaining = num
        live = [True] * num
        while remaining:
            for i, pe in enumerate(self.pes):
                if not live[i]:
                    continue
                item = queues[i].get()
                with locks[i]:
                    if not exhausted[i] and not chained[i]:
                        chained[i] = True
                        submit(i)
                kind = item[0]
                if kind == "done":
                    live[i] = False
                    remaining -= 1
                    continue
                if kind == "error":
                    exc = item[1]
                    if isinstance(exc, SpadeError):
                        raise exc
                    # Anything the producer wrapper did not classify
                    # (e.g. a take_trace failure) still surfaces typed,
                    # with the original traceback chained.
                    raise EngineExecutionError(
                        "pipelined worker failed", pe_id=i
                    ) from exc
                tile, lo, hi, lines, ops, gen_s = item[1]
                depth_hist.observe(queues[i].qsize())
                gen_hist.observe(gen_s)
                if chaos is not None:
                    chaos.replay_delay()
                if phase is not None:
                    # gen_s is producer-thread wall time (overlapped
                    # with replay), so the phase split attributes cost,
                    # not critical-path latency.
                    phase[0] += gen_s
                    span = (
                        tracer.span(
                            "chunk", cat="replay", tid=pe.pe_id + 1,
                            args={"nnz": hi - lo},
                        )
                        if trace_chunks else NULL_SPAN
                    )
                    with span:
                        t1 = time.perf_counter()
                        apply_chunk(tile, lo, hi)
                        t2 = time.perf_counter()
                        pe.replay_segment(lines, ops)
                        t3 = time.perf_counter()
                    phase[1] += t2 - t1
                    phase[2] += t3 - t2
                    continue
                if trace_chunks:
                    with tracer.span(
                        "chunk", cat="replay", tid=pe.pe_id + 1,
                        args={"nnz": hi - lo},
                    ):
                        apply_chunk(tile, lo, hi)
                        pe.replay_segment(lines, ops)
                    continue
                apply_chunk(tile, lo, hi)
                pe.replay_segment(lines, ops)

    def _record_epoch_telemetry(
        self, epoch_idx: int, timing: EpochTiming, dram_lines: int
    ) -> None:
        """Per-epoch metrics: barrier waits and simulated-time facts."""
        tel = self.telemetry
        if not tel.enabled:
            return
        m = tel.metrics
        m.counter(
            "spade_epochs_total", help="barrier epochs executed"
        ).inc()
        wait_hist = m.histogram(
            "spade_epoch_barrier_wait_ns",
            help="per-PE simulated wait at each epoch barrier "
            "(epoch time minus the PE's own time)",
        )
        for t in timing.pe_times_ns:
            wait_hist.observe(timing.epoch_time_ns - t)
        tel.tracer.instant(
            f"barrier[{epoch_idx}]", cat="epoch",
            args={
                "epoch_time_ns": timing.epoch_time_ns,
                "bandwidth_time_ns": timing.bandwidth_time_ns,
                "critical_pe": timing.critical_pe,
                "dram_lines": dram_lines,
                "total_requests": timing.total_requests,
            },
        )

    def _terminate(self) -> Tuple[float, int]:
        """WB&Invalidate on every PE; returns (flush time, dirty lines)."""
        dirty = 0
        with self.telemetry.tracer.span("wb_invalidate", cat="flush"):
            for pe in self.pes:
                pe.counters = PECounters()
                dirty += pe.writeback_invalidate()
        # VRF drain stores count as DRAM/cache writes already; the flush
        # time models draining the dirty L1/BBF lines to memory.
        return flush_time_ns(dirty, self.config), dirty

    def _publish_run(
        self, stats: AccessStats, time_ns: float, term_ns: float
    ) -> None:
        """End-of-run metric snapshot: the memory hierarchy's counters
        plus whole-run simulated-time gauges."""
        m = self.telemetry.metrics
        if not m.enabled:
            return
        self.memory.publish_metrics(m)
        m.gauge(
            "spade_run_time_ns", help="simulated kernel time"
        ).set(time_ns)
        m.gauge(
            "spade_run_termination_ns",
            help="simulated SPADE->CPU transition time",
        ).set(term_ns)

    def _merged_counters(self) -> PECounters:
        merged = PECounters()
        for per_pe in getattr(self, "_epoch_counters", []):
            for c in per_pe:
                merged = merged.merged(c)
        return merged
