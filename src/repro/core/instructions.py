"""The SPADE tile-based ISA (Section 4.2, Figure 4c).

Five instructions: Initialization, Tile, Scheduling Barrier,
WB&Invalidate, and Termination.  They are deliberately coarse-grained —
a PE receives a whole tile of work per instruction and decomposes it
into micro-operations internally, so there is no fetch/decode overhead
and no instruction cache.

The CPE writes instructions into per-PE memory-mapped Input registers
(an MWAIT-like notification wakes the PE); the dataclasses here are the
payloads of those registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Primitive(Enum):
    """The primitive type argument of the Initialization instruction."""

    SPMM = "spmm"
    SDDMM = "sddmm"


@dataclass(frozen=True)
class InitializationInstruction:
    """Broadcast to all PEs before any tile work (Figure 4c, left).

    Carries everything tile instructions reference relative to: base
    virtual addresses of the operand arrays, element sizes, the dense
    row size K, and the cache-bypass strategy for each dense operand.
    """

    primitive: Primitive
    rmatrix_base: int
    cmatrix_base: int
    sparse_r_ids_base: int
    sparse_c_ids_base: int
    sparse_vals_base: int
    sparse_out_vals_base: int  # SDDMM only; 0 for SpMM
    rmatrix_bypass: bool
    cmatrix_bypass: bool
    sizeof_indices: int
    sizeof_vals: int
    dense_row_size: int

    def __post_init__(self) -> None:
        if self.dense_row_size < 1:
            raise ValueError("dense row size K must be >= 1")
        if self.sizeof_indices not in (2, 4, 8):
            raise ValueError("sizeof_indices must be 2, 4, or 8 bytes")
        if self.sizeof_vals not in (2, 4, 8):
            raise ValueError("sizeof_vals must be 2, 4, or 8 bytes")
        if self.primitive is Primitive.SDDMM and not self.sparse_out_vals_base:
            raise ValueError("SDDMM requires a sparse output base address")


@dataclass(frozen=True)
class TileInstruction:
    """One tile of SpMM/SDDMM work for one PE (Figure 4c, right).

    Arguments come straight from the Appendix A tiling metadata: the
    offset of the tile's first nonzero in the entry arrays, the offset
    of its first output value (SDDMM), and its nonzero count.  There are
    no upper/lower bounds on tile size (Section 4.2).
    """

    sparse_in_start_offset: int
    sparse_out_start_offset: int
    nnz_num: int

    def __post_init__(self) -> None:
        if self.nnz_num < 1:
            raise ValueError("a tile instruction must cover >= 1 nonzero")
        if self.sparse_in_start_offset < 0 or self.sparse_out_start_offset < 0:
            raise ValueError("offsets must be non-negative")


@dataclass(frozen=True)
class SchedulingBarrierInstruction:
    """Barrier: the CPE sends no further tiles to *any* PE until every
    PE has read its barrier (Section 4.3, Figure 5b)."""

    barrier_id: int = 0


@dataclass(frozen=True)
class WBInvalidateInstruction:
    """Write back and invalidate the PE's L1 and BBF (end of a
    SPADE-mode section, Section 4.3)."""


@dataclass(frozen=True)
class TerminationInstruction:
    """Pause the PE; read only after WB&Invalidate completes."""


from typing import Union

Instruction = Union[
    InitializationInstruction,
    TileInstruction,
    SchedulingBarrierInstruction,
    WBInvalidateInstruction,
    TerminationInstruction,
]
