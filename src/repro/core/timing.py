"""Analytic latency-tolerance timing model (Sections 4.4, 7.B).

The PE pipeline is built to overlap memory accesses with each other and
with computation: the sparse front-end, the dense load path, and the
store path each sustain as many in-flight requests as their queue
capacities allow, and all three overlap with SIMD execution.  The model
therefore computes, per PE and per barrier epoch:

``t_compute``
    tOps and vOps issue at one per cycle (Table 1).
``t_sparse / t_dense / t_store``
    latency-limited time of each request class: total latency of its
    requests divided by the class's memory-level parallelism (MLP),
    which is bounded by the corresponding queue/RS capacities.
``t_pe = max(...)``
    because the pipeline overlaps all classes with compute.

System epoch time is the slowest PE, floored by the DRAM-bandwidth
service time of the epoch's traffic; epochs are separated by barriers
and therefore add up.  This reproduces the CFG0-CFG5 behaviour of
Figure 10: growing queue sizes raise MLP, which cuts the latency-limited
terms without changing traffic, and the benefit grows with link latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.config import CACHE_LINE_BYTES, SpadeConfig
from repro.core.pe import PECounters
from repro.memory.hierarchy import MemorySystem, ServiceLevel

_LEVELS = list(ServiceLevel)


@dataclass(frozen=True)
class EpochTiming:
    """Timing decomposition of one barrier epoch."""

    pe_times_ns: List[float]
    bandwidth_time_ns: float
    epoch_time_ns: float
    total_requests: int

    @property
    def critical_pe(self) -> int:
        return max(
            range(len(self.pe_times_ns)), key=self.pe_times_ns.__getitem__
        )


@dataclass(frozen=True)
class TimingBreakdown:
    """Per-PE decomposition (for tests and pipeline analysis)."""

    compute_ns: float
    sparse_ns: float
    dense_ns: float
    store_ns: float

    @property
    def total_ns(self) -> float:
        return max(
            self.compute_ns, self.sparse_ns, self.dense_ns, self.store_ns
        )


def _weighted_latency(
    by_level: Sequence[int], memory: MemorySystem
) -> float:
    """Total round-trip nanoseconds of a request-count histogram."""
    return sum(
        count * memory.latency_ns(level)
        for level, count in zip(_LEVELS, by_level)
        if count
    )


def pe_breakdown(
    counters: PECounters, config: SpadeConfig, memory: MemorySystem
) -> TimingBreakdown:
    """Latency-tolerance decomposition for one PE's counters."""
    pe = config.pe
    cycle_ns = pe.cycle_ns

    issue_cycles = max(
        counters.tops, counters.vops / max(pe.issue_vops_per_cycle, 1)
    )
    compute_ns = issue_cycles * cycle_ns

    # MLP of each request class is bounded by its queue capacity; the
    # dense path is additionally bounded by how many vOps can wait in
    # the reservation stations for their operands.
    mlp_sparse = max(1, pe.sparse_load_queue_entries)
    mlp_dense = max(1, min(pe.dense_load_queue_entries, pe.vop_rs_entries))
    mlp_store = max(1, pe.store_queue_entries)

    sparse_ns = _weighted_latency(counters.sparse_by_level, memory) / mlp_sparse
    dense_ns = _weighted_latency(counters.dense_reads_by_level, memory) / mlp_dense
    store_ns = _weighted_latency(counters.stores_by_level, memory) / mlp_store
    return TimingBreakdown(compute_ns, sparse_ns, dense_ns, store_ns)


def pe_time_ns(
    counters: PECounters, config: SpadeConfig, memory: MemorySystem
) -> float:
    """Execution time of one PE over one epoch's assigned work."""
    return pe_breakdown(counters, config, memory).total_ns


def epoch_timing(
    per_pe: Sequence[PECounters],
    dram_lines: int,
    config: SpadeConfig,
    memory: MemorySystem,
) -> EpochTiming:
    """Combine per-PE times and the shared DRAM bandwidth bound."""
    pe_times = [pe_time_ns(c, config, memory) for c in per_pe]
    dram_bytes = dram_lines * CACHE_LINE_BYTES
    bw_time = dram_bytes / config.memory.dram_achievable_gbps
    epoch_time = max(max(pe_times, default=0.0), bw_time)
    return EpochTiming(
        pe_times_ns=pe_times,
        bandwidth_time_ns=bw_time,
        epoch_time_ns=epoch_time,
        total_requests=sum(c.total_requests for c in per_pe),
    )


def requests_per_cycle(
    total_requests: int, total_time_ns: float, config: SpadeConfig
) -> float:
    """The Figure 10 'requests per cycle' metric: requests collectively
    issued by all PE pipelines per PE clock cycle."""
    if total_time_ns <= 0:
        return 0.0
    cycles = total_time_ns * config.pe.frequency_ghz
    return total_requests / cycles


def flush_time_ns(dirty_lines: int, config: SpadeConfig) -> float:
    """Time to write back ``dirty_lines`` at DRAM bandwidth plus one
    round trip — the SPADE->CPU transition cost (Section 7.D)."""
    mem = config.memory
    bytes_moved = dirty_lines * CACHE_LINE_BYTES
    return (
        bytes_moved / mem.dram_achievable_gbps
        + mem.dram_latency_ns
        + mem.link_latency_ns
    )
