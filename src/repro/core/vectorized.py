"""Vectorized chunk-trace generation for the PE layer.

The scalar executors in :mod:`repro.core.pe` walk every nonzero in
Python and push each operand through ``VectorRegisterFile.access``.
This module derives the same per-chunk VRF access stream *as NumPy
arrays* straight from the tile's CSR/COO index slices (line-id
arithmetic through :class:`~repro.memory.address.AddressMap`), elides
accesses that are provably invisible hits, and drives one generic
tight loop over what remains.  The emitted ``(lines, ops)`` trace, the
VRF state and counters, and therefore everything downstream (replay,
``AccessStats``, ``PECounters``, timing) are bit-identical to the
scalar oracle — the parity suite in ``tests/test_execution_parity.py``
pins this per access.

Why elision is exact (full argument in DESIGN.md section 7): CSR order
makes the rMatrix operand of consecutive nonzeros repeat in long runs,
and SDDMM output lines repeat in runs of ``CACHE_LINE_BYTES/4``.  An
intermediate touch of such a run is a guaranteed VRF *hit* on an
already-dirty (or clean, for read-only slots) line, so it emits
nothing and leaves the dirty count unchanged; its only effect is an
LRU move of the run's own line.  As long as the line is re-touched
before ``capacity`` distinct other lines intervene, it can never reach
the LRU head (never evicted) and — being the youngest dirty line —
can never enter a Write-back Manager drain set (which keeps the
youngest ``low`` dirty lines).  Hence dropping the intermediate
touches, while keeping the first, the last, and every ``cadence``-th
touch of each run, changes no hit/miss outcome, no eviction victim,
no drain set, and no emission: only ``tag_hits`` must be credited for
the skipped touches, which is done in bulk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.config import CACHE_LINE_BYTES
from repro.memory.replay_array import _radix_argsort

_OUT_VALS_PER_LINE = CACHE_LINE_BYTES // 4

_OP_NONE = -1
"""Emission sentinel: a VRF miss that allocates without a memory read
(the SDDMM output slot is write-only)."""

_EPOCH_BLOCK = 256
"""Block width of the per-block distinct-line bound used by the epoch
VRF solver's hit/miss classifier."""

_EPOCH_QUERY_VOLUME_CAP = 1 << 24
"""Upper bound on total window positions the epoch solver will probe
exactly; streams that exceed it (adversarial reuse distances around the
VRF capacity for most accesses) fall back to the per-chunk walker."""


class TraceBuffer:
    """Growable int64 ``(lines, ops)`` trace storage for one PE.

    Replaces the per-chunk Python-list buffers: storage is preallocated
    and reused across chunks (amortised-doubling growth), the dtype is
    pinned to int64 (no silent float64 upcast on empty extends), and
    ``views()`` hands zero-copy slices to the replay call.
    """

    __slots__ = ("_lines", "_ops", "_n")

    def __init__(self, capacity: int = 4096) -> None:
        cap = max(16, capacity)
        self._lines = np.empty(cap, dtype=np.int64)
        self._ops = np.empty(cap, dtype=np.int64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        cap = self._lines.shape[0]
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for name in ("_lines", "_ops"):
            old = getattr(self, name)
            arr = np.empty(cap, dtype=np.int64)
            arr[: self._n] = old[: self._n]
            setattr(self, name, arr)

    def extend(self, lines: List[int], ops: List[int]) -> None:
        """Append parallel Python lists (the tight loop's emissions)."""
        k = len(lines)
        if k == 0:
            return
        self._reserve(k)
        n = self._n
        self._lines[n : n + k] = lines
        self._ops[n : n + k] = ops
        self._n = n + k

    def extend_range(self, first: int, count: int, op: int) -> None:
        """Append ``count`` consecutive lines sharing one op (streams)."""
        if count <= 0:
            return
        self._reserve(count)
        n = self._n
        self._lines[n : n + count] = np.arange(
            first, first + count, dtype=np.int64
        )
        self._ops[n : n + count] = op
        self._n = n + count

    def views(self) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy (lines, ops) views of the buffered trace."""
        return self._lines[: self._n], self._ops[: self._n]

    def extend_arrays(self, lines: np.ndarray, ops: np.ndarray) -> None:
        """Append parallel int64 arrays (whole-epoch solver emissions)."""
        k = int(lines.shape[0])
        if k == 0:
            return
        self._reserve(k)
        n = self._n
        self._lines[n : n + k] = lines
        self._ops[n : n + k] = ops
        self._n = n + k

    def take(self) -> Tuple[np.ndarray, np.ndarray]:
        """Hand the buffered trace out and reset with fresh storage of
        the same capacity (pipelined mode hands whole-epoch traces
        across the generate/replay queue; swapping the storage out
        instead of copying keeps ``take`` O(1) and the next epoch
        reuses the warmed-up capacity)."""
        n = self._n
        lines = self._lines[:n]
        ops = self._ops[:n]
        cap = self._lines.shape[0]
        self._lines = np.empty(cap, dtype=np.int64)
        self._ops = np.empty(cap, dtype=np.int64)
        self._n = 0
        return lines, ops

    def clear(self) -> None:
        self._n = 0


def _elision_cadence(
    vrf, slots_per_nnz: int, live_lines: int, dirty_live: int
) -> int:
    """Largest safe re-touch cadence (in nonzeros) for run elision, or
    1 when elision must stay off.

    Between two kept touches of a live run, at most
    ``slots_per_nnz * (cadence + 1)`` other accesses intervene; the
    safety condition keeps that strictly below the VRF capacity minus
    the live lines themselves (so no live line can sink to the LRU
    head), and requires the slot's dirty live lines to fit inside the
    drain floor (the Write-back Manager never drains the youngest
    ``low`` dirty lines, so live dirty lines are never drained).
    """
    if dirty_live > vrf._low:
        return 1
    cadence = (vrf.num_registers - live_lines - 2) // slots_per_nnz - 1
    return cadence if cadence >= 2 else 1


def _run_keep_mask(ids: np.ndarray, cadence: int) -> np.ndarray:
    """Touch schedule over consecutive same-value runs: keep the first
    element of each run, every ``cadence``-th after it, and the last."""
    n = ids.shape[0]
    first = np.empty(n, dtype=bool)
    first[0] = True
    np.not_equal(ids[1:], ids[:-1], out=first[1:])
    last = np.empty(n, dtype=bool)
    last[-1] = True
    last[:-1] = first[1:]
    idx = np.arange(n, dtype=np.int32)
    run_start = np.maximum.accumulate(np.where(first, idx, np.int32(0)))
    d = idx - run_start
    keep = first | last
    # Mid-run cadence touches exist only in runs longer than the
    # cadence; the full-array modulo is wasted on typical short runs.
    ext = np.flatnonzero(d >= cadence)
    if ext.size:
        keep[ext] |= (d[ext] % cadence) == 0
    return keep


def _run_vrf_stream(
    pe,
    lines: np.ndarray,
    dirties: np.ndarray,
    emit_ops: np.ndarray,
    skipped_hits: int,
) -> None:
    """Drive the PE's VRF over a derived access stream, appending trace
    emissions (miss loads, eviction stores, drain stores) to the PE's
    trace buffer in exact scalar order.

    Mirrors ``VectorRegisterFile.access`` state-transition for
    state-transition, but inlined over the whole chunk: the insertion
    order of ``vrf._tags`` IS the LRU order, a hit reinserts at MRU, a
    miss evicts the head, and any access that raises the dirty count
    past the high watermark immediately drains the oldest dirty lines
    to the low watermark (dirty count can only cross the watermark on
    an increment, so the drain check is needed on those paths only).
    """
    vrf = pe.vrf
    tags = vrf._tags
    pop = tags.pop
    cap = vrf.num_registers
    high = vrf._high
    low = vrf._low
    dc = vrf._dirty_count
    hits = misses = evc = evw = mwb = 0
    out_lines: List[int] = []
    out_ops: List[int] = []
    lapp = out_lines.append
    oapp = out_ops.append
    op_store = pe._op_store

    def drain(to_drain: int) -> List[int]:
        drained: List[int] = []
        for tagged_line, is_dirty in tags.items():
            if len(drained) >= to_drain:
                break
            if is_dirty:
                drained.append(tagged_line)
        for tagged_line in drained:
            tags[tagged_line] = False
        return drained

    for line, dm, op in zip(
        lines.tolist(), dirties.tolist(), emit_ops.tolist()
    ):
        d = pop(line, None)
        if d is not None:
            hits += 1
            if d:
                tags[line] = True
                continue
            tags[line] = dm
            if dm:
                dc += 1
                if dc > high:
                    dr = drain(dc - low)
                    dc -= len(dr)
                    mwb += len(dr)
                    for s in dr:
                        lapp(s)
                        oapp(op_store)
            continue
        misses += 1
        if op >= 0:
            lapp(line)
            oapp(op)
        if len(tags) >= cap:
            evc += 1
            victim = next(iter(tags))
            if pop(victim):
                dc -= 1
                evw += 1
                lapp(victim)
                oapp(op_store)
        tags[line] = dm
        if dm:
            dc += 1
            if dc > high:
                dr = drain(dc - low)
                dc -= len(dr)
                mwb += len(dr)
                for s in dr:
                    lapp(s)
                    oapp(op_store)

    vrf._dirty_count = dc
    vrf.tag_hits += hits + skipped_hits
    vrf.tag_misses += misses
    vrf.evictions += evc
    vrf.eviction_writebacks += evw
    vrf.manager_writebacks += mwb
    pe._trace.extend(out_lines, out_ops)


def buffer_sparse_stream(pe, start_offset: int, nnz: int) -> None:
    """Vectorized Sparse Data Loader: append the tile's r_ids/c_ids/vals
    stream line ranges to the trace buffer as arrays."""
    counters = pe.counters
    idx_b = pe.init.sizeof_indices
    val_b = pe.init.sizeof_vals
    op = pe._op_sparse
    buf = pe._trace
    for region, elem_bytes in (
        ("sparse_r_ids", idx_b),
        ("sparse_c_ids", idx_b),
        ("sparse_vals", val_b),
    ):
        first, count = pe.address_map.stream_lines(
            region, start_offset * elem_bytes, nnz * elem_bytes
        )
        counters.sparse_line_reads += count
        buf.extend_range(first, count, op)


def generate_spmm_chunk(
    pe, r_ids: np.ndarray, c_ids: np.ndarray, start_offset: int
) -> None:
    """Vectorized twin of ``ProcessingElement.execute_spmm_chunk``.

    Per nonzero the scalar pipeline touches, in order,
    ``r+0, c+0, r+1, c+1, ...`` for ``lines_per_row`` line pairs; the
    rMatrix slot is read-modify-write (dirty), the cMatrix slot is
    read-only.  CSR runs of equal r_id make the rMatrix touches of
    elided nonzeros guaranteed dirty hits (see module docstring).
    """
    n = len(r_ids)
    buffer_sparse_stream(pe, start_offset, n)
    lpr = pe.lines_per_row
    counters = pe.counters
    counters.tops += n
    counters.vops += n * lpr
    pe._rmatrix_rows_touched.update(np.unique(r_ids).tolist())
    if n == 0:
        return
    amap = pe.address_map
    k = pe.init.dense_row_size
    r_lines = amap.dense_row_base_lines("rmatrix", r_ids, k)
    c_lines = amap.dense_row_base_lines("cmatrix", c_ids, k)

    offs = np.arange(lpr, dtype=np.int64)
    cols = 2 * lpr
    lines_mat = np.empty((n, cols), dtype=np.int64)
    lines_mat[:, 0::2] = r_lines[:, None] + offs
    lines_mat[:, 1::2] = c_lines[:, None] + offs
    dirty_mat = np.empty((n, cols), dtype=bool)
    dirty_mat[:, 0::2] = True
    dirty_mat[:, 1::2] = False
    ops_mat = np.empty((n, cols), dtype=np.int64)
    ops_mat[:, 0::2] = pe._op_rmatrix_read
    ops_mat[:, 1::2] = pe._op_cmatrix_read

    cadence = _elision_cadence(
        pe.vrf, slots_per_nnz=cols, live_lines=lpr, dirty_live=lpr
    )
    skipped = 0
    if cadence >= 2:
        keep_r = _run_keep_mask(r_lines, cadence)
        n_kept = int(keep_r.sum())
        if n_kept < n:
            skipped = (n - n_kept) * lpr
            keep_mat = np.empty((n, cols), dtype=bool)
            keep_mat[:, 0::2] = keep_r[:, None]
            keep_mat[:, 1::2] = True
            _run_vrf_stream(
                pe,
                lines_mat[keep_mat],
                dirty_mat[keep_mat],
                ops_mat[keep_mat],
                skipped,
            )
            return
    _run_vrf_stream(
        pe, lines_mat.ravel(), dirty_mat.ravel(), ops_mat.ravel(), 0
    )


def generate_sddmm_chunk(
    pe,
    r_ids: np.ndarray,
    c_ids: np.ndarray,
    start_offset: int,
    out_offsets: np.ndarray,
) -> None:
    """Vectorized twin of ``ProcessingElement.execute_sddmm_chunk``.

    Per nonzero: ``lines_per_row`` read-only (r, c) line pairs followed
    by one write-only output-line touch (dirty, no load on miss).  Both
    the rMatrix CSR runs and the 16-nonzeros-per-line output runs are
    elidable.
    """
    n = len(r_ids)
    buffer_sparse_stream(pe, start_offset, n)
    lpr = pe.lines_per_row
    counters = pe.counters
    counters.tops += n
    counters.vops += n * lpr
    counters.output_line_writes += n
    if n == 0:
        return
    amap = pe.address_map
    k = pe.init.dense_row_size
    r_lines = amap.dense_row_base_lines("rmatrix", r_ids, k)
    c_lines = amap.dense_row_base_lines("cmatrix", c_ids, k)
    out_region = amap.regions["sparse_out_vals"]
    out_base_line = out_region.base // CACHE_LINE_BYTES
    out_lines = out_base_line + np.asarray(
        out_offsets, dtype=np.int64
    ) // _OUT_VALS_PER_LINE

    offs = np.arange(lpr, dtype=np.int64)
    cols = 2 * lpr + 1
    lines_mat = np.empty((n, cols), dtype=np.int64)
    lines_mat[:, 0 : 2 * lpr : 2] = r_lines[:, None] + offs
    lines_mat[:, 1 : 2 * lpr : 2] = c_lines[:, None] + offs
    lines_mat[:, -1] = out_lines
    dirty_mat = np.zeros((n, cols), dtype=bool)
    dirty_mat[:, -1] = True
    ops_mat = np.empty((n, cols), dtype=np.int64)
    ops_mat[:, 0 : 2 * lpr : 2] = pe._op_rmatrix_read
    ops_mat[:, 1 : 2 * lpr : 2] = pe._op_cmatrix_read
    ops_mat[:, -1] = _OP_NONE

    cadence = _elision_cadence(
        pe.vrf, slots_per_nnz=cols, live_lines=lpr + 1, dirty_live=1
    )
    skipped = 0
    if cadence >= 2:
        keep_r = _run_keep_mask(r_lines, cadence)
        keep_o = _run_keep_mask(out_lines, cadence)
        skipped_r = n - int(keep_r.sum())
        skipped_o = n - int(keep_o.sum())
        if skipped_r or skipped_o:
            skipped = skipped_r * lpr + skipped_o
            keep_mat = np.empty((n, cols), dtype=bool)
            keep_mat[:, 0 : 2 * lpr : 2] = keep_r[:, None]
            keep_mat[:, 1 : 2 * lpr : 2] = True
            keep_mat[:, -1] = keep_o
            _run_vrf_stream(
                pe,
                lines_mat[keep_mat],
                dirty_mat[keep_mat],
                ops_mat[keep_mat],
                skipped,
            )
            return
    _run_vrf_stream(
        pe, lines_mat.ravel(), dirty_mat.ravel(), ops_mat.ravel(), 0
    )


# -- whole-epoch fused generation ---------------------------------------------
#
# The per-chunk path above still walks every kept access through the
# Python loop in ``_run_vrf_stream``.  The epoch solver below replaces
# that walk with an offline solve of the *entire epoch's* access stream
# per PE: hit/miss classification via stack-distance analysis over the
# fully-associative LRU tag CAM, eviction/victim reconstruction via
# residency periods, and a reduced Python loop that only visits dirty
# events (dirty touches + dirty-capable evictions) to replay the
# Write-back Manager exactly.  The emitted trace, counters and final
# VRF state are bit-identical to the scalar oracle; the solver declines
# (returns None, caller falls back to the per-chunk walker) on streams
# whose structure it cannot prove cheap or safe.


def _solve_vrf_epoch(
    cap: int,
    high: int,
    low: int,
    residents: List[Tuple[int, bool]],
    dc0: int,
    lines: np.ndarray,
    dirty: np.ndarray,
    emit: np.ndarray,
    op_store: int,
) -> Optional[tuple]:
    """Solve one PE's whole-epoch VRF access stream offline.

    ``residents`` is the warm VRF content as ``(line, dirty)`` pairs in
    LRU order (oldest first) — they are prepended as virtual accesses so
    the classic cold-start stack-distance machinery covers the warm
    cache exactly (same trick as ``replay_array``).  Returns ``None``
    when a precondition fails (caller must fall back), else::

        (hits, misses, evictions, eviction_writebacks,
         manager_writebacks, dirty_count, new_tags,
         e_lines, e_ops, e_pos)

    where ``e_*`` are the emissions (miss loads, eviction stores, drain
    stores) in exact scalar order and ``e_pos`` maps each emission to
    the index of the kept access that produced it.

    Preconditions checked here:

    - the warm dirty count must not already exceed the high watermark
      (the scalar walker would drain mid-access-one; never happens at
      epoch boundaries but cheap to refuse);
    - per line, the ``mark_dirty`` flag must be constant across the
      epoch (clean warm residents are wildcards: their first dirty
      touch inserts at write-order MRU exactly like the scalar dict).
      A dirty line receiving a clean touch would reorder the scalar
      LRU without reordering the solver's write-order dict and skew
      drain victim order; kernel streams never do this (dirtiness is a
      per-region constant) but the check makes the solver safe on any
      stream;
    - the exact reuse-window probes must stay under
      ``_EPOCH_QUERY_VOLUME_CAP`` total positions.
    """
    n = int(lines.shape[0])
    nv = len(residents)
    if dc0 > high or nv > cap:
        return None
    if nv:
        vlines = np.fromiter(
            (ln for ln, _ in residents), count=nv, dtype=np.int64
        )
        vdirty = np.fromiter(
            (d for _, d in residents), count=nv, dtype=np.bool_
        )
        all_lines = np.concatenate([vlines, lines])
        all_dirty = np.concatenate([vdirty, dirty])
        emit_full = np.concatenate(
            [np.full(nv, _OP_NONE, dtype=np.int64), emit]
        )
    else:
        vdirty = np.zeros(0, dtype=np.bool_)
        all_lines = lines
        all_dirty = dirty
        emit_full = emit
    total = n + nv

    # Chain previous-occurrence pointers: stable sort by line groups
    # equal lines in position order.
    order = _radix_argsort(all_lines)
    sl = all_lines[order]
    same = np.empty(total, dtype=bool)
    same[0] = False
    np.equal(sl[1:], sl[:-1], out=same[1:])
    prev = np.full(total, -1, dtype=np.int64)
    prev[order[1:]] = np.where(same[1:], order[:-1], -1)

    # Per-line dm-constancy precondition (see docstring).
    d_chain = all_dirty[order]
    mism = same[1:] & (d_chain[1:] != d_chain[:-1])
    if nv:
        wild = np.zeros(total, dtype=bool)
        wild[:nv] = ~vdirty
        mism &= ~wild[order][:-1]
    if mism.any():
        return None

    # Hit/miss classification.  An access hits iff its reuse window
    # (exclusive positions between this and the previous occurrence of
    # the same line) holds < cap distinct lines (LRU stack property;
    # drains clean in place and never perturb recency order).
    idx = np.arange(total, dtype=np.int64)
    has_prev = prev >= 0
    gap = idx - prev
    hit = has_prev & (gap <= cap)  # window size gap-1 <= cap-1 < cap
    und = has_prev & ~hit
    if und.any():
        # Sure-miss bound: first-ever occurrences inside the window are
        # pairwise-distinct lines (none equal to this one).
        first_cum = np.cumsum(~has_prev, dtype=np.int32)
        ui = np.flatnonzero(und)
        pq = prev[ui]
        new_in = first_cum[ui - 1] - first_cum[pq]
        ui = ui[new_in < cap]
        if ui.size:
            # Heavy-block bound: a fully-contained block with >= cap
            # distinct lines forces a miss.  Distinct lines in an
            # aligned block are exactly its within-block first touches
            # — positions whose previous occurrence falls before the
            # block — so one reduceat over ``prev < block_start``
            # counts every block without sorting.  A ladder of widths
            # starting at the first power of two >= 2*cap: any window
            # of length >= 2w-1 contains a full aligned w-block, so
            # the smallest rung alone covers every undecided window
            # once blocks at that scale are line-diverse (the common
            # case for cache-unfriendly streams); larger rungs catch
            # windows whose diversity only shows at coarser scales.
            w = 1 << max(6, (2 * int(cap) - 1).bit_length())
            while ui.size and w <= max(_EPOCH_BLOCK, total):
                # A window only contains an aligned w-block if it
                # spans at least w positions, so wider rungs are
                # pointless once every leftover window is shorter.
                if int((ui - prev[ui]).max()) - 1 < w:
                    break
                nb = (total + w - 1) // w
                starts = np.arange(nb, dtype=np.int64) * w
                first_touch = prev < (idx & ~(w - 1))
                dcount = np.add.reduceat(first_touch, starts)
                heavy = np.flatnonzero(dcount >= cap)
                if heavy.size:
                    pq = prev[ui]
                    # Only windows spanning >= w positions can contain
                    # an aligned w-block; check just those candidates.
                    cand = np.flatnonzero(ui - pq > w)
                    uc = ui[cand]
                    bmin = (pq[cand] + w) // w  # first block after prev
                    kk = np.searchsorted(heavy, bmin)
                    kk_c = np.minimum(kk, heavy.size - 1)
                    covered = (kk < heavy.size) & (
                        (heavy[kk_c] + 1) * w <= uc
                    )
                    keep = np.ones(ui.size, dtype=bool)
                    keep[cand[covered]] = False
                    ui = ui[keep]
                if heavy.size == nb:
                    # Every block heavy: any aligned 4w-block is a
                    # union of heavy w-blocks, so wider rungs cannot
                    # cover anything this one did not.
                    break
                w *= 4
        if ui.size:
            # Exact resolution of the leftovers: count distinct lines
            # in each window as positions j with prev[j] <= window
            # start, batched by power-of-two window length.  The probe
            # rows are *contiguous* slices of ``prev`` —
            # sliding_window_view + a row gather copies them at memcpy
            # speed instead of materialising an element-wise index
            # matrix — and an int32 shadow of ``prev`` halves the
            # traffic (positions always fit).  Windows are gathered
            # *right-aligned* (ending at the access): the head overhang
            # then lands in [0, pw] where prev[j] < j <= pw holds for
            # every real position, so the overhang contributes the
            # closed-form count min(pw+1, width-L) and no validity mask
            # is needed.  Front padding of INT32_MAX absorbs negative
            # positions without contributing.
            pq = prev[ui]
            wlen = ui - pq - 1
            if int(wlen.sum()) > _EPOCH_QUERY_VOLUME_CAP:
                return None

            def _bucket_width(length: int) -> int:
                # Multiple-of-64 buckets keep padding waste under
                # ~1.5x where the queries live and give 256-byte
                # aligned int32 probe rows (measurably faster than
                # finer or power-of-two row widths); power-of-two
                # buckets above 1024 bound the bucket count for wide
                # spreads.
                if length <= 1024:
                    return max(64, -(-length // 64) * 64)
                return 1 << (length - 1).bit_length()

            # Suffix kill-pass: the last W window positions form a
            # sub-window (threshold a = i-W-1 >= p) whose distinct
            # count lower-bounds the window's, so reaching cap there
            # is a certain miss.  In gap space the compare is
            # row-independent — prev[j] <= a iff gap[j] >= j-a = c+1
            # for suffix column c — so a uint8 shadow of min(gap, 255)
            # probes at a quarter of the int32 traffic (clamping is
            # safe: the ramp stays <= W <= 254).  W = cap + 8: the
            # smallest suffix that can hold cap distinct lines is cap,
            # and a small margin past that already kills nearly every
            # marginal window on cache-hostile streams; survivors fall
            # through to the exact bucket probes.
            _SUF_W = cap + 8
            wide = wlen >= _SUF_W
            if _SUF_W <= 254 and np.count_nonzero(wide) >= 256:
                g8 = np.minimum(gap, 255).astype(np.uint8)
                uw = ui[wide]  # i >= wlen+1 > W: windows never clip
                sprobe = sliding_window_view(g8, _SUF_W)[uw - _SUF_W]
                ramp = np.arange(1, _SUF_W + 1, dtype=np.uint8)
                scnt = np.count_nonzero(sprobe >= ramp, axis=1)
                dead = np.zeros(ui.size, dtype=bool)
                dead[wide] = scnt >= cap
                # Dead queries are misses; drop them before bucketing.
                keep_q = ~dead
                ui = ui[keep_q]
                pq = pq[keep_q]
                wlen = wlen[keep_q]
        if ui.size:
            qord = _radix_argsort(wlen)
            wl_sorted = wlen[qord]
            qhit = np.zeros(ui.size, dtype=bool)
            nq = int(ui.size)
            max_w = _bucket_width(int(wl_sorted[-1]))
            prev_pad = np.empty(total + max_w, dtype=np.int32)
            prev_pad[:max_w] = np.iinfo(np.int32).max  # never <= pw
            prev_pad[max_w:] = prev
            lo_q = 0
            while lo_q < nq:
                width = _bucket_width(int(wl_sorted[lo_q]))
                hi_q = int(
                    np.searchsorted(wl_sorted, width, side="right")
                )
                sel = qord[lo_q:hi_q]
                uq = ui[sel]
                pw = pq[sel]
                probe = sliding_window_view(prev_pad, width)[
                    uq - width + max_w
                ]
                cnt = np.count_nonzero(
                    probe <= pw[:, None].astype(np.int32),
                    axis=1,
                )
                head = np.minimum(pw + 1, width - wlen[sel])
                qhit[sel] = cnt - head < cap
                lo_q = hi_q
            hit[ui] = qhit

    miss = ~hit
    miss_pos = np.flatnonzero(miss)
    n_periods = int(miss_pos.size)
    n_ev = n_periods - cap if n_periods > cap else 0
    evict_pos = miss_pos[cap:] if n_ev else miss_pos[:0]

    # Residency periods: each miss starts one; a period's accesses are
    # the chain-consecutive occurrences of its line up to the line's
    # next miss.  Period end order equals eviction order (a period ends
    # because its line sank to the LRU head and was evicted).
    begins_chain = miss[order]
    pstart_ci = np.flatnonzero(begins_chain)
    pend_ci = np.empty(n_periods, dtype=np.int64)
    pend_ci[:-1] = pstart_ci[1:] - 1
    pend_ci[-1] = total - 1
    p_start = order[pstart_ci]
    p_end = order[pend_ci]
    p_line = all_lines[p_start]
    p_dm = np.logical_or.reduceat(d_chain, pstart_ci)
    # Eviction order = periods sorted by end position.  Ends are
    # pairwise distinct (a position closes at most one period), so a
    # boolean scatter + flatnonzero replaces an argsort.
    is_end = np.zeros(total, dtype=bool)
    is_end[p_end] = True
    pid_at = np.empty(total, dtype=np.int64)
    pid_at[p_end] = np.arange(n_periods, dtype=np.int64)
    eorder = pid_at[np.flatnonzero(is_end)]
    evicted_p = eorder[:n_ev]
    surv_p = eorder[n_ev:]
    victim_lines = p_line[evicted_p]
    victim_dm = p_dm[evicted_p]

    # Miss loads (virtual accesses never load; _OP_NONE slots do not
    # load either).  flatnonzero yields sorted positions, so the
    # virtual prefix is a slice rather than another mask pass.
    load_pos = np.flatnonzero(miss & (emit_full >= 0))
    load_pos = load_pos[np.searchsorted(load_pos, nv):]
    load_lines = all_lines[load_pos]
    load_ops = emit_full[load_pos]

    # Write-back Manager replay over dirty events only.  ``wr`` mirrors
    # the scalar tag dict restricted to lines that ever carried dirty
    # state: insertion order tracks the scalar dict's dirty-insertion
    # order exactly under the dm-constancy precondition.
    dm_pos = nv + np.flatnonzero(dirty)
    evk = np.flatnonzero(victim_dm)
    ev_pos = evict_pos[evk]
    ev_lines = victim_lines[evk]
    ne = int(ev_pos.size)
    nd = int(dm_pos.size)
    if ne or nd:
        # Both event streams are position-sorted; merge with evictions
        # first at equal positions (the scalar order: the eviction's
        # writeback happens before the incoming access re-dirties).
        ei = np.arange(ne, dtype=np.int64)
        ei += np.searchsorted(dm_pos, ev_pos, side="left")
        di = np.arange(nd, dtype=np.int64)
        di += np.searchsorted(ev_pos, dm_pos, side="right")
        mkey = np.empty(ne + nd, dtype=np.int64)
        mkey[ei] = ev_pos
        mkey[di] = dm_pos
        mline = np.empty(ne + nd, dtype=np.int64)
        mline[ei] = ev_lines
        mline[di] = all_lines[dm_pos]
        misev = np.zeros(ne + nd, dtype=bool)
        misev[ei] = True
        seq_pos = mkey.tolist()
        seq_line = mline.tolist()
        seq_isev = misev.tolist()
    else:
        seq_pos = seq_line = seq_isev = []
    wr: Dict[int, bool] = {
        int(ln): True for ln, d in residents if d
    }
    dc = dc0
    evw = mwb = 0
    store_pos: List[int] = []
    store_lines: List[int] = []
    sp_app = store_pos.append
    sl_app = store_lines.append
    wpop = wr.pop
    for pos, line, isev in zip(seq_pos, seq_line, seq_isev):
        if isev:
            if wpop(line, False):
                dc -= 1
                evw += 1
                sp_app(pos)
                sl_app(line)
            continue
        was = wpop(line, False)
        wr[line] = True
        if was:
            continue
        dc += 1
        if dc > high:
            to_drain = dc - low
            drained: List[int] = []
            for wl, wd in wr.items():
                if len(drained) >= to_drain:
                    break
                if wd:
                    drained.append(wl)
            for wl in drained:
                wr[wl] = False
                sp_app(pos)
                sl_app(wl)
            dc -= len(drained)
            mwb += len(drained)

    # Emission assembly: loads sort before stores at equal positions
    # (scalar order: miss load, then eviction store, then drain stores).
    # Both position arrays are already sorted (flatnonzero order and
    # event-scan order), so this is a stable two-way merge: each load
    # shifts right by the stores strictly before it, each store by the
    # loads at-or-before it.
    spos = np.asarray(store_pos, dtype=np.int64)
    slin = np.asarray(store_lines, dtype=np.int64)
    nl = load_pos.size
    ns = spos.size
    li = np.arange(nl, dtype=np.int64)
    li += np.searchsorted(spos, load_pos, side="left")
    si = np.arange(ns, dtype=np.int64)
    si += np.searchsorted(load_pos, spos, side="right")
    e_lines = np.empty(nl + ns, dtype=np.int64)
    e_lines[li] = load_lines
    e_lines[si] = slin
    e_ops = np.full(nl + ns, op_store, dtype=np.int64)
    e_ops[li] = load_ops
    e_pos = np.empty(nl + ns, dtype=np.int64)
    e_pos[li] = load_pos
    e_pos[si] = spos
    e_pos -= nv

    # Final VRF state: survivors ordered by last touch = LRU insertion
    # order of the scalar dict at epoch end.
    new_tags = {
        int(ln): wr.get(int(ln), False)
        for ln in p_line[surv_p].tolist()
    }
    hits_total = int(np.count_nonzero(hit))
    return (
        hits_total,
        n_periods - nv,
        n_ev,
        evw,
        mwb,
        dc,
        new_tags,
        e_lines,
        e_ops,
        e_pos,
    )


def _apply_epoch_solution(
    pe,
    sol: tuple,
    skipped: int,
    parts_nnz: Sequence[int],
    start_offsets: Sequence[int],
    kept_bounds: np.ndarray,
) -> List[Tuple[int, int]]:
    """Credit counters/VRF from a solver result and assemble the
    per-chunk trace segments (sparse stream ranges + the chunk's slice
    of the epoch emissions)."""
    (
        hits,
        misses,
        evc,
        evw,
        mwb,
        dc,
        new_tags,
        e_lines,
        e_ops,
        e_pos,
    ) = sol
    vrf = pe.vrf
    vrf.tag_hits += hits + skipped
    vrf.tag_misses += misses
    vrf.evictions += evc
    vrf.eviction_writebacks += evw
    vrf.manager_writebacks += mwb
    vrf._dirty_count = dc
    tags = vrf._tags
    tags.clear()
    tags.update(new_tags)

    e_bounds = np.searchsorted(e_pos, kept_bounds)
    buf = pe._trace
    segs: List[Tuple[int, int]] = []
    for ci, nnz in enumerate(parts_nnz):
        s0 = len(buf)
        buffer_sparse_stream(pe, start_offsets[ci], nnz)
        lo = int(e_bounds[ci])
        hi = int(e_bounds[ci + 1])
        buf.extend_arrays(e_lines[lo:hi], e_ops[lo:hi])
        segs.append((s0, len(buf)))
    return segs


def generate_spmm_epoch(
    pe, parts: Sequence[Tuple[np.ndarray, np.ndarray, int]]
) -> Tuple[List[Tuple[int, int]], bool]:
    """Derive one PE's full epoch trace in a single fused pass.

    ``parts`` lists the epoch's chunks as ``(r_ids, c_ids,
    start_offset)`` in dispatch order.  Returns ``(segments, fused)``
    where ``segments`` bounds each chunk's slice of ``pe._trace`` and
    ``fused`` reports whether the epoch solver ran (False: per-chunk
    fallback was used — results are identical either way)."""
    if not parts:
        return [], False
    n_per = [len(p[0]) for p in parts]
    n = int(sum(n_per))
    if n == 0:
        return _epoch_fallback_spmm(pe, parts), False
    r_all = (
        np.concatenate([p[0] for p in parts])
        if len(parts) > 1
        else parts[0][0]
    )
    c_all = (
        np.concatenate([p[1] for p in parts])
        if len(parts) > 1
        else parts[0][1]
    )
    amap = pe.address_map
    k = pe.init.dense_row_size
    lpr = pe.lines_per_row
    r_lines = amap.dense_row_base_lines("rmatrix", r_all, k)
    c_lines = amap.dense_row_base_lines("cmatrix", c_all, k)

    offs = np.arange(lpr, dtype=np.int64)
    cols = 2 * lpr
    lines_mat = np.empty((n, cols), dtype=np.int64)
    lines_mat[:, 0::2] = r_lines[:, None] + offs
    lines_mat[:, 1::2] = c_lines[:, None] + offs
    dirty_mat = np.empty((n, cols), dtype=bool)
    dirty_mat[:, 0::2] = True
    dirty_mat[:, 1::2] = False
    ops_mat = np.empty((n, cols), dtype=np.int64)
    ops_mat[:, 0::2] = pe._op_rmatrix_read
    ops_mat[:, 1::2] = pe._op_cmatrix_read

    cadence = _elision_cadence(
        pe.vrf, slots_per_nnz=cols, live_lines=lpr, dirty_live=lpr
    )
    b_nnz = np.zeros(len(parts) + 1, dtype=np.int64)
    np.cumsum(n_per, out=b_nnz[1:])
    skipped = 0
    keep_r = None
    if cadence >= 2:
        keep_r = _run_keep_mask(r_lines, cadence)
        n_kept = int(keep_r.sum())
        if n_kept < n:
            skipped = (n - n_kept) * lpr
        else:
            keep_r = None
    if keep_r is not None:
        keep_mat = np.empty((n, cols), dtype=bool)
        keep_mat[:, 0::2] = keep_r[:, None]
        keep_mat[:, 1::2] = True
        stream_lines = lines_mat[keep_mat]
        stream_dirty = dirty_mat[keep_mat]
        stream_emit = ops_mat[keep_mat]
        kr_cs = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(keep_r, out=kr_cs[1:])
        kept_bounds = lpr * (b_nnz + kr_cs[b_nnz])
    else:
        stream_lines = lines_mat.ravel()
        stream_dirty = dirty_mat.ravel()
        stream_emit = ops_mat.ravel()
        kept_bounds = cols * b_nnz

    vrf = pe.vrf
    sol = _solve_vrf_epoch(
        vrf.num_registers,
        vrf._high,
        vrf._low,
        list(vrf._tags.items()),
        vrf._dirty_count,
        stream_lines,
        stream_dirty,
        stream_emit,
        pe._op_store,
    )
    if sol is None:
        return _epoch_fallback_spmm(pe, parts), False
    counters = pe.counters
    counters.tops += n
    counters.vops += n * lpr
    pe._rmatrix_rows_touched.update(np.unique(r_all).tolist())
    segs = _apply_epoch_solution(
        pe,
        sol,
        skipped,
        n_per,
        [p[2] for p in parts],
        kept_bounds,
    )
    return segs, True


def _epoch_fallback_spmm(pe, parts) -> List[Tuple[int, int]]:
    buf = pe._trace
    segs: List[Tuple[int, int]] = []
    for r_ids, c_ids, start_offset in parts:
        s0 = len(buf)
        generate_spmm_chunk(pe, r_ids, c_ids, start_offset)
        segs.append((s0, len(buf)))
    return segs


def generate_sddmm_epoch(
    pe,
    parts: Sequence[Tuple[np.ndarray, np.ndarray, int, np.ndarray]],
) -> Tuple[List[Tuple[int, int]], bool]:
    """SDDMM twin of :func:`generate_spmm_epoch`; ``parts`` entries are
    ``(r_ids, c_ids, start_offset, out_offsets)``."""
    if not parts:
        return [], False
    n_per = [len(p[0]) for p in parts]
    n = int(sum(n_per))
    if n == 0:
        return _epoch_fallback_sddmm(pe, parts), False
    r_all = (
        np.concatenate([p[0] for p in parts])
        if len(parts) > 1
        else parts[0][0]
    )
    c_all = (
        np.concatenate([p[1] for p in parts])
        if len(parts) > 1
        else parts[0][1]
    )
    out_all = np.concatenate(
        [np.asarray(p[3], dtype=np.int64) for p in parts]
    )
    amap = pe.address_map
    k = pe.init.dense_row_size
    lpr = pe.lines_per_row
    r_lines = amap.dense_row_base_lines("rmatrix", r_all, k)
    c_lines = amap.dense_row_base_lines("cmatrix", c_all, k)
    out_region = amap.regions["sparse_out_vals"]
    out_base_line = out_region.base // CACHE_LINE_BYTES
    out_lines = out_base_line + out_all // _OUT_VALS_PER_LINE

    cols = 2 * lpr + 1
    cadence = _elision_cadence(
        pe.vrf, slots_per_nnz=cols, live_lines=lpr + 1, dirty_live=1
    )
    b_nnz = np.zeros(len(parts) + 1, dtype=np.int64)
    np.cumsum(n_per, out=b_nnz[1:])
    skipped = 0
    keep_r = keep_o = None
    if cadence >= 2:
        keep_r = _run_keep_mask(r_lines, cadence)
        keep_o = _run_keep_mask(out_lines, cadence)
        skipped_r = n - int(keep_r.sum())
        skipped_o = n - int(keep_o.sum())
        if skipped_r or skipped_o:
            skipped = skipped_r * lpr + skipped_o
        else:
            keep_r = keep_o = None
    if lpr == 1:
        # One line per dense row (the common k): build the access stream
        # directly with scatter indices, skipping the (n, cols)
        # intermediates and their boolean compaction.  Slot order per
        # nonzero is r, c, out — the same row-major order the matrix
        # path compacts in.
        if keep_r is not None:
            kr_cs = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(keep_r, out=kr_cs[1:])
            ko_cs = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(keep_o, out=ko_cs[1:])
            total = int(n + kr_cs[n] + ko_cs[n])
            # Kept-stream position of nonzero i's c slot: kept r slots
            # through i (inclusive) + c slots before i + kept out slots
            # before i.
            idx_c = kr_cs[1:] + np.arange(n, dtype=np.int64) + ko_cs[:n]
            stream_lines = np.empty(total, dtype=np.int64)
            stream_emit = np.empty(total, dtype=np.int64)
            stream_dirty = np.zeros(total, dtype=bool)
            stream_lines[idx_c] = c_lines
            stream_emit[idx_c] = pe._op_cmatrix_read
            idx_r = idx_c[keep_r] - 1
            stream_lines[idx_r] = r_lines[keep_r]
            stream_emit[idx_r] = pe._op_rmatrix_read
            idx_o = (idx_c + 1)[keep_o]
            stream_lines[idx_o] = out_lines[keep_o]
            stream_emit[idx_o] = _OP_NONE
            stream_dirty[idx_o] = True
            kept_bounds = b_nnz + kr_cs[b_nnz] + ko_cs[b_nnz]
        else:
            stream_lines = np.empty(3 * n, dtype=np.int64)
            stream_lines[0::3] = r_lines
            stream_lines[1::3] = c_lines
            stream_lines[2::3] = out_lines
            stream_emit = np.empty(3 * n, dtype=np.int64)
            stream_emit[0::3] = pe._op_rmatrix_read
            stream_emit[1::3] = pe._op_cmatrix_read
            stream_emit[2::3] = _OP_NONE
            stream_dirty = np.zeros(3 * n, dtype=bool)
            stream_dirty[2::3] = True
            kept_bounds = 3 * b_nnz
    else:
        offs = np.arange(lpr, dtype=np.int64)
        lines_mat = np.empty((n, cols), dtype=np.int64)
        lines_mat[:, 0 : 2 * lpr : 2] = r_lines[:, None] + offs
        lines_mat[:, 1 : 2 * lpr : 2] = c_lines[:, None] + offs
        lines_mat[:, -1] = out_lines
        dirty_mat = np.zeros((n, cols), dtype=bool)
        dirty_mat[:, -1] = True
        ops_mat = np.empty((n, cols), dtype=np.int64)
        ops_mat[:, 0 : 2 * lpr : 2] = pe._op_rmatrix_read
        ops_mat[:, 1 : 2 * lpr : 2] = pe._op_cmatrix_read
        ops_mat[:, -1] = _OP_NONE
        if keep_r is not None:
            keep_mat = np.empty((n, cols), dtype=bool)
            keep_mat[:, 0 : 2 * lpr : 2] = keep_r[:, None]
            keep_mat[:, 1 : 2 * lpr : 2] = True
            keep_mat[:, -1] = keep_o
            stream_lines = lines_mat[keep_mat]
            stream_dirty = dirty_mat[keep_mat]
            stream_emit = ops_mat[keep_mat]
            kr_cs = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(keep_r, out=kr_cs[1:])
            ko_cs = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(keep_o, out=ko_cs[1:])
            kept_bounds = (
                lpr * (b_nnz + kr_cs[b_nnz]) + ko_cs[b_nnz]
            )
        else:
            stream_lines = lines_mat.ravel()
            stream_dirty = dirty_mat.ravel()
            stream_emit = ops_mat.ravel()
            kept_bounds = cols * b_nnz

    vrf = pe.vrf
    sol = _solve_vrf_epoch(
        vrf.num_registers,
        vrf._high,
        vrf._low,
        list(vrf._tags.items()),
        vrf._dirty_count,
        stream_lines,
        stream_dirty,
        stream_emit,
        pe._op_store,
    )
    if sol is None:
        return _epoch_fallback_sddmm(pe, parts), False
    counters = pe.counters
    counters.tops += n
    counters.vops += n * lpr
    counters.output_line_writes += n
    segs = _apply_epoch_solution(
        pe,
        sol,
        skipped,
        n_per,
        [p[2] for p in parts],
        kept_bounds,
    )
    return segs, True


def _epoch_fallback_sddmm(pe, parts) -> List[Tuple[int, int]]:
    buf = pe._trace
    segs: List[Tuple[int, int]] = []
    for r_ids, c_ids, start_offset, out_offsets in parts:
        s0 = len(buf)
        generate_sddmm_chunk(pe, r_ids, c_ids, start_offset, out_offsets)
        segs.append((s0, len(buf)))
    return segs
