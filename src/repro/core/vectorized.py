"""Vectorized chunk-trace generation for the PE layer.

The scalar executors in :mod:`repro.core.pe` walk every nonzero in
Python and push each operand through ``VectorRegisterFile.access``.
This module derives the same per-chunk VRF access stream *as NumPy
arrays* straight from the tile's CSR/COO index slices (line-id
arithmetic through :class:`~repro.memory.address.AddressMap`), elides
accesses that are provably invisible hits, and drives one generic
tight loop over what remains.  The emitted ``(lines, ops)`` trace, the
VRF state and counters, and therefore everything downstream (replay,
``AccessStats``, ``PECounters``, timing) are bit-identical to the
scalar oracle — the parity suite in ``tests/test_execution_parity.py``
pins this per access.

Why elision is exact (full argument in DESIGN.md section 7): CSR order
makes the rMatrix operand of consecutive nonzeros repeat in long runs,
and SDDMM output lines repeat in runs of ``CACHE_LINE_BYTES/4``.  An
intermediate touch of such a run is a guaranteed VRF *hit* on an
already-dirty (or clean, for read-only slots) line, so it emits
nothing and leaves the dirty count unchanged; its only effect is an
LRU move of the run's own line.  As long as the line is re-touched
before ``capacity`` distinct other lines intervene, it can never reach
the LRU head (never evicted) and — being the youngest dirty line —
can never enter a Write-back Manager drain set (which keeps the
youngest ``low`` dirty lines).  Hence dropping the intermediate
touches, while keeping the first, the last, and every ``cadence``-th
touch of each run, changes no hit/miss outcome, no eviction victim,
no drain set, and no emission: only ``tag_hits`` must be credited for
the skipped touches, which is done in bulk.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.config import CACHE_LINE_BYTES

_OUT_VALS_PER_LINE = CACHE_LINE_BYTES // 4

_OP_NONE = -1
"""Emission sentinel: a VRF miss that allocates without a memory read
(the SDDMM output slot is write-only)."""


class TraceBuffer:
    """Growable int64 ``(lines, ops)`` trace storage for one PE.

    Replaces the per-chunk Python-list buffers: storage is preallocated
    and reused across chunks (amortised-doubling growth), the dtype is
    pinned to int64 (no silent float64 upcast on empty extends), and
    ``views()`` hands zero-copy slices to the replay call.
    """

    __slots__ = ("_lines", "_ops", "_n")

    def __init__(self, capacity: int = 4096) -> None:
        cap = max(16, capacity)
        self._lines = np.empty(cap, dtype=np.int64)
        self._ops = np.empty(cap, dtype=np.int64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        cap = self._lines.shape[0]
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for name in ("_lines", "_ops"):
            old = getattr(self, name)
            arr = np.empty(cap, dtype=np.int64)
            arr[: self._n] = old[: self._n]
            setattr(self, name, arr)

    def extend(self, lines: List[int], ops: List[int]) -> None:
        """Append parallel Python lists (the tight loop's emissions)."""
        k = len(lines)
        if k == 0:
            return
        self._reserve(k)
        n = self._n
        self._lines[n : n + k] = lines
        self._ops[n : n + k] = ops
        self._n = n + k

    def extend_range(self, first: int, count: int, op: int) -> None:
        """Append ``count`` consecutive lines sharing one op (streams)."""
        if count <= 0:
            return
        self._reserve(count)
        n = self._n
        self._lines[n : n + count] = np.arange(
            first, first + count, dtype=np.int64
        )
        self._ops[n : n + count] = op
        self._n = n + count

    def views(self) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy (lines, ops) views of the buffered trace."""
        return self._lines[: self._n], self._ops[: self._n]

    def take(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copy the buffered trace out and clear the buffer (pipelined
        mode hands these segments across the generate/replay queue)."""
        lines, ops = self.views()
        seg = (lines.copy(), ops.copy())
        self._n = 0
        return seg

    def clear(self) -> None:
        self._n = 0


def _elision_cadence(
    vrf, slots_per_nnz: int, live_lines: int, dirty_live: int
) -> int:
    """Largest safe re-touch cadence (in nonzeros) for run elision, or
    1 when elision must stay off.

    Between two kept touches of a live run, at most
    ``slots_per_nnz * (cadence + 1)`` other accesses intervene; the
    safety condition keeps that strictly below the VRF capacity minus
    the live lines themselves (so no live line can sink to the LRU
    head), and requires the slot's dirty live lines to fit inside the
    drain floor (the Write-back Manager never drains the youngest
    ``low`` dirty lines, so live dirty lines are never drained).
    """
    if dirty_live > vrf._low:
        return 1
    cadence = (vrf.num_registers - live_lines - 2) // slots_per_nnz - 1
    return cadence if cadence >= 2 else 1


def _run_keep_mask(ids: np.ndarray, cadence: int) -> np.ndarray:
    """Touch schedule over consecutive same-value runs: keep the first
    element of each run, every ``cadence``-th after it, and the last."""
    n = ids.shape[0]
    first = np.empty(n, dtype=bool)
    first[0] = True
    np.not_equal(ids[1:], ids[:-1], out=first[1:])
    last = np.empty(n, dtype=bool)
    last[-1] = True
    last[:-1] = first[1:]
    idx = np.arange(n, dtype=np.int64)
    run_start = np.maximum.accumulate(np.where(first, idx, 0))
    return first | last | ((idx - run_start) % cadence == 0)


def _run_vrf_stream(
    pe,
    lines: np.ndarray,
    dirties: np.ndarray,
    emit_ops: np.ndarray,
    skipped_hits: int,
) -> None:
    """Drive the PE's VRF over a derived access stream, appending trace
    emissions (miss loads, eviction stores, drain stores) to the PE's
    trace buffer in exact scalar order.

    Mirrors ``VectorRegisterFile.access`` state-transition for
    state-transition, but inlined over the whole chunk: the insertion
    order of ``vrf._tags`` IS the LRU order, a hit reinserts at MRU, a
    miss evicts the head, and any access that raises the dirty count
    past the high watermark immediately drains the oldest dirty lines
    to the low watermark (dirty count can only cross the watermark on
    an increment, so the drain check is needed on those paths only).
    """
    vrf = pe.vrf
    tags = vrf._tags
    pop = tags.pop
    cap = vrf.num_registers
    high = vrf._high
    low = vrf._low
    dc = vrf._dirty_count
    hits = misses = evc = evw = mwb = 0
    out_lines: List[int] = []
    out_ops: List[int] = []
    lapp = out_lines.append
    oapp = out_ops.append
    op_store = pe._op_store

    def drain(to_drain: int) -> List[int]:
        drained: List[int] = []
        for tagged_line, is_dirty in tags.items():
            if len(drained) >= to_drain:
                break
            if is_dirty:
                drained.append(tagged_line)
        for tagged_line in drained:
            tags[tagged_line] = False
        return drained

    for line, dm, op in zip(
        lines.tolist(), dirties.tolist(), emit_ops.tolist()
    ):
        d = pop(line, None)
        if d is not None:
            hits += 1
            if d:
                tags[line] = True
                continue
            tags[line] = dm
            if dm:
                dc += 1
                if dc > high:
                    dr = drain(dc - low)
                    dc -= len(dr)
                    mwb += len(dr)
                    for s in dr:
                        lapp(s)
                        oapp(op_store)
            continue
        misses += 1
        if op >= 0:
            lapp(line)
            oapp(op)
        if len(tags) >= cap:
            evc += 1
            victim = next(iter(tags))
            if pop(victim):
                dc -= 1
                evw += 1
                lapp(victim)
                oapp(op_store)
        tags[line] = dm
        if dm:
            dc += 1
            if dc > high:
                dr = drain(dc - low)
                dc -= len(dr)
                mwb += len(dr)
                for s in dr:
                    lapp(s)
                    oapp(op_store)

    vrf._dirty_count = dc
    vrf.tag_hits += hits + skipped_hits
    vrf.tag_misses += misses
    vrf.evictions += evc
    vrf.eviction_writebacks += evw
    vrf.manager_writebacks += mwb
    pe._trace.extend(out_lines, out_ops)


def buffer_sparse_stream(pe, start_offset: int, nnz: int) -> None:
    """Vectorized Sparse Data Loader: append the tile's r_ids/c_ids/vals
    stream line ranges to the trace buffer as arrays."""
    counters = pe.counters
    idx_b = pe.init.sizeof_indices
    val_b = pe.init.sizeof_vals
    op = pe._op_sparse
    buf = pe._trace
    for region, elem_bytes in (
        ("sparse_r_ids", idx_b),
        ("sparse_c_ids", idx_b),
        ("sparse_vals", val_b),
    ):
        first, count = pe.address_map.stream_lines(
            region, start_offset * elem_bytes, nnz * elem_bytes
        )
        counters.sparse_line_reads += count
        buf.extend_range(first, count, op)


def generate_spmm_chunk(
    pe, r_ids: np.ndarray, c_ids: np.ndarray, start_offset: int
) -> None:
    """Vectorized twin of ``ProcessingElement.execute_spmm_chunk``.

    Per nonzero the scalar pipeline touches, in order,
    ``r+0, c+0, r+1, c+1, ...`` for ``lines_per_row`` line pairs; the
    rMatrix slot is read-modify-write (dirty), the cMatrix slot is
    read-only.  CSR runs of equal r_id make the rMatrix touches of
    elided nonzeros guaranteed dirty hits (see module docstring).
    """
    n = len(r_ids)
    buffer_sparse_stream(pe, start_offset, n)
    lpr = pe.lines_per_row
    counters = pe.counters
    counters.tops += n
    counters.vops += n * lpr
    pe._rmatrix_rows_touched.update(np.unique(r_ids).tolist())
    if n == 0:
        return
    amap = pe.address_map
    k = pe.init.dense_row_size
    r_lines = amap.dense_row_base_lines("rmatrix", r_ids, k)
    c_lines = amap.dense_row_base_lines("cmatrix", c_ids, k)

    offs = np.arange(lpr, dtype=np.int64)
    cols = 2 * lpr
    lines_mat = np.empty((n, cols), dtype=np.int64)
    lines_mat[:, 0::2] = r_lines[:, None] + offs
    lines_mat[:, 1::2] = c_lines[:, None] + offs
    dirty_mat = np.empty((n, cols), dtype=bool)
    dirty_mat[:, 0::2] = True
    dirty_mat[:, 1::2] = False
    ops_mat = np.empty((n, cols), dtype=np.int64)
    ops_mat[:, 0::2] = pe._op_rmatrix_read
    ops_mat[:, 1::2] = pe._op_cmatrix_read

    cadence = _elision_cadence(
        pe.vrf, slots_per_nnz=cols, live_lines=lpr, dirty_live=lpr
    )
    skipped = 0
    if cadence >= 2:
        keep_r = _run_keep_mask(r_lines, cadence)
        n_kept = int(keep_r.sum())
        if n_kept < n:
            skipped = (n - n_kept) * lpr
            keep_mat = np.empty((n, cols), dtype=bool)
            keep_mat[:, 0::2] = keep_r[:, None]
            keep_mat[:, 1::2] = True
            _run_vrf_stream(
                pe,
                lines_mat[keep_mat],
                dirty_mat[keep_mat],
                ops_mat[keep_mat],
                skipped,
            )
            return
    _run_vrf_stream(
        pe, lines_mat.ravel(), dirty_mat.ravel(), ops_mat.ravel(), 0
    )


def generate_sddmm_chunk(
    pe,
    r_ids: np.ndarray,
    c_ids: np.ndarray,
    start_offset: int,
    out_offsets: np.ndarray,
) -> None:
    """Vectorized twin of ``ProcessingElement.execute_sddmm_chunk``.

    Per nonzero: ``lines_per_row`` read-only (r, c) line pairs followed
    by one write-only output-line touch (dirty, no load on miss).  Both
    the rMatrix CSR runs and the 16-nonzeros-per-line output runs are
    elidable.
    """
    n = len(r_ids)
    buffer_sparse_stream(pe, start_offset, n)
    lpr = pe.lines_per_row
    counters = pe.counters
    counters.tops += n
    counters.vops += n * lpr
    counters.output_line_writes += n
    if n == 0:
        return
    amap = pe.address_map
    k = pe.init.dense_row_size
    r_lines = amap.dense_row_base_lines("rmatrix", r_ids, k)
    c_lines = amap.dense_row_base_lines("cmatrix", c_ids, k)
    out_region = amap.regions["sparse_out_vals"]
    out_base_line = out_region.base // CACHE_LINE_BYTES
    out_lines = out_base_line + np.asarray(
        out_offsets, dtype=np.int64
    ) // _OUT_VALS_PER_LINE

    offs = np.arange(lpr, dtype=np.int64)
    cols = 2 * lpr + 1
    lines_mat = np.empty((n, cols), dtype=np.int64)
    lines_mat[:, 0 : 2 * lpr : 2] = r_lines[:, None] + offs
    lines_mat[:, 1 : 2 * lpr : 2] = c_lines[:, None] + offs
    lines_mat[:, -1] = out_lines
    dirty_mat = np.zeros((n, cols), dtype=bool)
    dirty_mat[:, -1] = True
    ops_mat = np.empty((n, cols), dtype=np.int64)
    ops_mat[:, 0 : 2 * lpr : 2] = pe._op_rmatrix_read
    ops_mat[:, 1 : 2 * lpr : 2] = pe._op_cmatrix_read
    ops_mat[:, -1] = _OP_NONE

    cadence = _elision_cadence(
        pe.vrf, slots_per_nnz=cols, live_lines=lpr + 1, dirty_live=1
    )
    skipped = 0
    if cadence >= 2:
        keep_r = _run_keep_mask(r_lines, cadence)
        keep_o = _run_keep_mask(out_lines, cadence)
        skipped_r = n - int(keep_r.sum())
        skipped_o = n - int(keep_o.sum())
        if skipped_r or skipped_o:
            skipped = skipped_r * lpr + skipped_o
            keep_mat = np.empty((n, cols), dtype=bool)
            keep_mat[:, 0 : 2 * lpr : 2] = keep_r[:, None]
            keep_mat[:, 1 : 2 * lpr : 2] = True
            keep_mat[:, -1] = keep_o
            _run_vrf_stream(
                pe,
                lines_mat[keep_mat],
                dirty_mat[keep_mat],
                ops_mat[keep_mat],
                skipped,
            )
            return
    _run_vrf_stream(
        pe, lines_mat.ravel(), dirty_mat.ravel(), ops_mat.ravel(), 0
    )
