"""Structured metrics registry: counters, gauges, and histograms.

Every layer of the simulator publishes its counters here — per-PE and
per-level cache traffic, replay-batch sizes, STLB/BBF fast-path hit
ratios, epoch barrier waits — so one run produces a single, queryable,
tool-consumable metric set (exported via :mod:`repro.telemetry.exporters`).

Label semantics follow the Prometheus data model: a metric *family* is
identified by its name and has one fixed kind (counter/gauge/histogram)
and one fixed label-key set, both pinned at first registration; each
distinct label-value combination owns one child instrument, and asking
for the same combination again returns the *same* child (identity, not
equality).

When the registry is disabled, every ``counter()``/``gauge()``/
``histogram()`` call returns one shared no-op instrument without
recording anything — publishing sites keep a single unconditional
method call on their path, which is the near-zero-overhead contract
pinned by the telemetry tests.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class NullInstrument:
    """Shared no-op stand-in for every instrument kind when disabled."""

    __slots__ = ()

    kind = "null"

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


NULL_INSTRUMENT = NullInstrument()
"""The one instance handed out by a disabled registry."""


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-written value (e.g. schedule load imbalance)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount


DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    4.0 ** e for e in range(13)
)
"""Power-of-four upper bounds: 1 .. 16.7M, +Inf implicit.  Wide enough
for both replay-batch access counts and nanosecond-scale waits."""


class Histogram:
    """Cumulative-bucket histogram plus count/sum/min/max."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS):
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        # One slot per finite bound plus the +Inf overflow slot.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def value(self) -> float:
        """Histogram 'value' for uniform queries: the sum."""
        return self.total

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style (le, cumulative count) pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds, self.bucket_counts):
            running += c
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


class MetricSample:
    """One (family, labelset, instrument) row from ``samples()``."""

    __slots__ = ("name", "kind", "help", "labels", "instrument")

    def __init__(self, name, kind, help_text, labels, instrument):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labels = labels
        self.instrument = instrument

    @property
    def value(self) -> float:
        return self.instrument.value


class _Family:
    __slots__ = ("name", "kind", "help", "label_names", "children")

    def __init__(self, name, kind, help_text, label_names):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.children: Dict[LabelKey, object] = {}


class MetricsRegistry:
    """Holds every metric family of one telemetry session."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: Dict[str, _Family] = {}

    # -- registration ------------------------------------------------------

    def _child(self, name, kind, factory, help_text, labels):
        fam = self._families.get(name)
        label_names = frozenset(labels)
        if fam is None:
            fam = _Family(name, kind, help_text, label_names)
            self._families[name] = fam
        else:
            if fam.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {fam.kind}, not a {kind}"
                )
            if fam.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} has labels "
                    f"{sorted(fam.label_names)}, got {sorted(label_names)}"
                )
        key = _label_key(labels)
        child = fam.children.get(key)
        if child is None:
            child = factory()
            fam.children[key] = child
        return child

    def counter(self, name: str, help: Optional[str] = None, **labels):
        if not self.enabled:
            return NULL_INSTRUMENT
        return self._child(name, "counter", Counter, help, labels)

    def gauge(self, name: str, help: Optional[str] = None, **labels):
        if not self.enabled:
            return NULL_INSTRUMENT
        return self._child(name, "gauge", Gauge, help, labels)

    def histogram(
        self,
        name: str,
        help: Optional[str] = None,
        bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS,
        **labels,
    ):
        if not self.enabled:
            return NULL_INSTRUMENT
        return self._child(
            name, "histogram", lambda: Histogram(bounds), help, labels
        )

    # -- queries -----------------------------------------------------------

    def samples(self) -> Iterator[MetricSample]:
        for name in sorted(self._families):
            fam = self._families[name]
            for key in sorted(fam.children):
                yield MetricSample(
                    fam.name, fam.kind, fam.help, dict(key),
                    fam.children[key],
                )

    def value(self, name: str, **labels) -> float:
        """The value of one child (0 if it was never registered)."""
        fam = self._families.get(name)
        if fam is None:
            return 0.0
        child = fam.children.get(_label_key(labels))
        return child.value if child is not None else 0.0

    def total(self, name: str, **label_filter) -> float:
        """Sum of every child of ``name`` matching the label filter."""
        fam = self._families.get(name)
        if fam is None:
            return 0.0
        want = set(_label_key(label_filter))
        return sum(
            child.value
            for key, child in fam.children.items()
            if want <= set(key)
        )

    def __len__(self) -> int:
        return sum(len(f.children) for f in self._families.values())

    def as_dict(self) -> dict:
        """Plain-data snapshot (the JSON exporter's payload)."""
        metrics = []
        for s in self.samples():
            row = {"name": s.name, "kind": s.kind, "labels": s.labels}
            if s.help:
                row["help"] = s.help
            if s.kind == "histogram":
                h = s.instrument
                row.update(
                    count=h.count, sum=h.total, min=h.min, max=h.max,
                    mean=h.mean,
                    buckets=[
                        {"le": le if le != float("inf") else "+Inf",
                         "count": c}
                        for le, c in h.cumulative_buckets()
                    ],
                )
            else:
                row["value"] = s.instrument.value
            metrics.append(row)
        return {"schema_version": 1, "metrics": metrics}
