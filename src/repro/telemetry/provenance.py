"""Run provenance manifests.

A manifest stamps one performance record — a ``BENCH_*.json`` payload,
a CLI run's metrics/trace export — with everything needed to compare it
against past and future records: a schema version, the exact system
configuration (flattened and content-hashed), the workload spec and
seed, the repository's git SHA, and the host that produced it.  Two
runs whose manifests agree on config fingerprint + workload are
comparable; anything else is apples to oranges, and
:func:`diff_manifests` says exactly which axis moved.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

MANIFEST_SCHEMA_VERSION = 1
"""Bump when manifest keys change meaning; CI rejects records without it."""

_REQUIRED_KEYS = ("schema_version", "created_utc", "host")


def config_fingerprint(config) -> str:
    """Content hash of a :class:`~repro.config.SpadeConfig` (or any
    dataclass): sha256 of its canonical-JSON flattening.  Equal configs
    hash equal regardless of how they were constructed."""
    if dataclasses.is_dataclass(config):
        flat = dataclasses.asdict(config)
    elif isinstance(config, dict):
        flat = config
    else:
        raise TypeError(f"cannot fingerprint {type(config).__name__}")
    blob = json.dumps(flat, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def git_revision(repo_dir: Optional[Path] = None) -> Optional[str]:
    """The current git SHA, or None outside a repo / without git."""
    if repo_dir is None:
        repo_dir = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def host_info() -> Dict[str, Any]:
    """Wall-clock host identity: enough to explain perf deltas."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "node": platform.node(),
        "python": sys.version.split()[0],
        "numpy": numpy_version,
    }


def run_manifest(
    config=None,
    workload: Optional[Dict[str, Any]] = None,
    seed: Optional[int] = None,
    argv: Optional[list] = None,
    extra: Optional[Dict[str, Any]] = None,
    ledger=None,
) -> Dict[str, Any]:
    """Build one provenance manifest.

    ``config`` is a SpadeConfig (or plain dict); ``workload`` is a
    free-form spec of what ran (matrix generator + parameters, kernel,
    K); ``extra`` lands under ``"extra"`` untouched.  ``ledger`` is a
    run ledger whose :meth:`summary` (path, run id, event count, file
    digest) cross-links the flight recording that this record came
    from; disabled/null ledgers contribute nothing.
    """
    manifest: Dict[str, Any] = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created_utc": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "git_sha": git_revision(),
        "host": host_info(),
    }
    if config is not None:
        summary: Dict[str, Any] = {
            "fingerprint": config_fingerprint(config)
        }
        for key in ("name", "num_pes", "replay"):
            value = getattr(config, key, None)
            if value is not None:
                summary[key] = value
        manifest["config"] = summary
    if workload is not None:
        manifest["workload"] = workload
    if seed is not None:
        manifest["seed"] = seed
    if argv is not None:
        manifest["argv"] = list(argv)
    if extra:
        manifest["extra"] = dict(extra)
    if ledger is not None:
        summary = ledger.summary()
        if summary is not None:
            manifest["ledger"] = summary
    return manifest


def stamp(payload: Dict[str, Any], **manifest_kwargs) -> Dict[str, Any]:
    """Shallow-copy ``payload`` with a ``"manifest"`` key added.  All
    existing keys (the measured numbers) pass through unchanged."""
    out = dict(payload)
    out["manifest"] = run_manifest(**manifest_kwargs)
    return out


def validate_manifest(manifest: Any) -> Dict[str, Any]:
    """Raise ValueError unless ``manifest`` is a structurally valid
    provenance record; returns it for chaining."""
    if not isinstance(manifest, dict):
        raise ValueError("manifest must be a JSON object")
    for key in _REQUIRED_KEYS:
        if key not in manifest:
            raise ValueError(f"manifest missing required key {key!r}")
    version = manifest["schema_version"]
    if not isinstance(version, int) or version < 1:
        raise ValueError(
            f"manifest schema_version must be a positive int, "
            f"got {version!r}"
        )
    return manifest


def diff_manifests(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Dict[str, Tuple[Any, Any]]:
    """Flat {dotted.key: (a_value, b_value)} of every differing leaf.
    ``created_utc`` and ``host`` differences are expected between runs
    and included like any other — callers decide what matters."""
    diff: Dict[str, Tuple[Any, Any]] = {}

    def walk(prefix: str, x: Any, y: Any) -> None:
        if isinstance(x, dict) and isinstance(y, dict):
            for key in sorted(set(x) | set(y)):
                walk(
                    f"{prefix}.{key}" if prefix else key,
                    x.get(key), y.get(key),
                )
        elif x != y:
            diff[prefix] = (x, y)

    walk("", a, b)
    return diff
