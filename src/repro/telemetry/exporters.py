"""Metric exporters: JSON, CSV, and Prometheus text format.

All three render the same :meth:`MetricsRegistry.samples` surface;
JSON is the lossless interchange form (histograms keep their buckets),
CSV flattens to one row per child for spreadsheets, and the Prometheus
text format feeds scrape-based dashboards (histograms expand to the
conventional ``_bucket``/``_sum``/``_count`` series).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Optional

from repro.telemetry.registry import MetricsRegistry

FORMATS = ("json", "csv", "prom")


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    return json.dumps(registry.as_dict(), indent=indent) + "\n"


def _labels_csv(labels: dict) -> str:
    return ";".join(f"{k}={v}" for k, v in sorted(labels.items()))


def to_csv(registry: MetricsRegistry) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        ["name", "kind", "labels", "value", "count", "min", "max", "mean"]
    )
    for s in registry.samples():
        if s.kind == "histogram":
            h = s.instrument
            writer.writerow([
                s.name, s.kind, _labels_csv(s.labels),
                h.total, h.count, h.min, h.max, h.mean,
            ])
        else:
            writer.writerow([
                s.name, s.kind, _labels_csv(s.labels),
                s.instrument.value, "", "", "", "",
            ])
    return buf.getvalue()


def _prom_escape(value) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote, and newline must be backslash-escaped."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_prom_escape(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _prom_number(value) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus/OpenMetrics text exposition of the registry."""
    lines = []
    seen_headers = set()
    for s in registry.samples():
        if s.name not in seen_headers:
            seen_headers.add(s.name)
            if s.help:
                lines.append(f"# HELP {s.name} {s.help}")
            lines.append(f"# TYPE {s.name} {s.kind}")
        if s.kind == "histogram":
            h = s.instrument
            for le, c in h.cumulative_buckets():
                lines.append(
                    f"{s.name}_bucket"
                    f"{_prom_labels(s.labels, {'le': _prom_number(le)})}"
                    f" {c}"
                )
            lines.append(
                f"{s.name}_sum{_prom_labels(s.labels)} "
                f"{_prom_number(h.total)}"
            )
            lines.append(
                f"{s.name}_count{_prom_labels(s.labels)} {h.count}"
            )
        else:
            lines.append(
                f"{s.name}{_prom_labels(s.labels)} "
                f"{_prom_number(s.instrument.value)}"
            )
    return "\n".join(lines) + "\n"


def infer_format(path) -> str:
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return "csv"
    if suffix in (".prom", ".txt"):
        return "prom"
    return "json"


def write_metrics(
    registry: MetricsRegistry, path, fmt: Optional[str] = None
) -> Path:
    """Write the registry to ``path`` in ``fmt`` (inferred from the
    file suffix when omitted: .csv, .prom/.txt, else JSON)."""
    fmt = fmt or infer_format(path)
    if fmt not in FORMATS:
        raise ValueError(f"format must be one of {FORMATS}, got {fmt!r}")
    render = {"json": to_json, "csv": to_csv, "prom": to_prometheus}[fmt]
    path = Path(path)
    path.write_text(render(registry))
    return path
