"""repro.telemetry: metrics registry, event tracing, run provenance.

The simulator's evaluation is read off internal counters; this package
turns those counters into *telemetry* — structured, labelled,
exportable, and provenance-stamped — so every performance record is
measurable and comparable across PRs:

- :class:`MetricsRegistry` (``registry``): counters / gauges /
  histograms with Prometheus-style labels, published by the memory
  hierarchy, PEs, scheduler, and engine; near-zero overhead when
  disabled (one shared no-op instrument).
- :class:`EventTracer` (``tracer``): wall-clock spans emitted as Chrome
  trace-event JSON, loadable in Perfetto / ``chrome://tracing``, plus a
  terminal ``--profile`` top-N summary.
- :mod:`~repro.telemetry.provenance`: run manifests carrying schema
  version, config hash, git SHA, workload seed/spec, and host info.
- :mod:`~repro.telemetry.exporters`: JSON / CSV / Prometheus text.

A :class:`Telemetry` session bundles one registry + one tracer and is
selected by :class:`repro.config.TelemetryConfig` (all-off by default);
``SpadeSystem`` owns one per instance and every ``ExecutionReport``
carries a reference.
"""

from __future__ import annotations

from typing import Optional

from repro.config import TelemetryConfig
from repro.telemetry.exporters import (
    to_csv,
    to_json,
    to_prometheus,
    write_metrics,
)
from repro.telemetry.provenance import (
    MANIFEST_SCHEMA_VERSION,
    config_fingerprint,
    diff_manifests,
    run_manifest,
    stamp,
    validate_manifest,
)
from repro.telemetry.registry import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracer import NULL_SPAN, EventTracer, PhaseSummary


class Telemetry:
    """One session: a registry and a tracer driven by one config."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        self.metrics = MetricsRegistry(enabled=self.config.metrics)
        self.tracer = EventTracer(enabled=self.config.trace)

    @property
    def enabled(self) -> bool:
        return self.config.enabled


NULL_TELEMETRY = Telemetry()
"""Fully disabled session, shared by code paths given no telemetry."""


def ensure(telemetry: Optional[Telemetry]) -> Telemetry:
    """Coalesce None to the shared disabled session."""
    return telemetry if telemetry is not None else NULL_TELEMETRY


__all__ = [
    "Telemetry",
    "TelemetryConfig",
    "NULL_TELEMETRY",
    "ensure",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_INSTRUMENT",
    "EventTracer",
    "PhaseSummary",
    "NULL_SPAN",
    "MANIFEST_SCHEMA_VERSION",
    "run_manifest",
    "stamp",
    "validate_manifest",
    "diff_manifests",
    "config_fingerprint",
    "to_json",
    "to_csv",
    "to_prometheus",
    "write_metrics",
]
