"""Event tracer emitting Chrome trace-event JSON (Perfetto-loadable).

The tracer records *host wall-clock* spans around the phases of a
simulation — kernel, schedule build, epochs, per-chunk replay calls,
the terminating flush — so a run can be opened in Perfetto or
``chrome://tracing`` and inspected like any profiled program: where the
3.15x of the batched replay path goes, which epoch dominates, which PE
chunk stalls the round-robin.  Simulated-time quantities ride along in
span ``args`` rather than on the timeline (the simulator's virtual
nanoseconds and the host's microseconds must not be mixed on one axis).

The emitted JSON object format is the Trace Event Format understood by
Perfetto: ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` with
complete events (``ph: "X"``, microsecond ``ts``/``dur``), instants
(``"i"``), and thread-name metadata (``"M"``).  PE-parallel work is
mapped onto trace *threads* via ``tid`` so per-PE tracks line up.

Disabled tracers hand out one shared no-op span, so tracing sites cost
a single method call when tracing is off.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple


class _NullSpan:
    """Shared no-op context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("tracer", "name", "cat", "tid", "args", "_start")

    def __init__(self, tracer, name, cat, tid, args):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self.tracer._now_us()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self.tracer
        end = tracer._now_us()
        event = {
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "ts": self._start,
            "dur": end - self._start,
            "pid": tracer.pid,
            "tid": self.tid,
        }
        if self.args:
            event["args"] = self.args
        tracer._events.append(event)


class PhaseSummary:
    """One row of the aggregated profile (``--profile``)."""

    __slots__ = ("name", "cat", "count", "total_us", "max_us")

    def __init__(self, name: str, cat: str) -> None:
        self.name = name
        self.cat = cat
        self.count = 0
        self.total_us = 0.0
        self.max_us = 0.0

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0


class EventTracer:
    """Collects trace events for one telemetry session."""

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        pid: int = 0,
    ) -> None:
        self.enabled = enabled
        self.pid = pid
        self._clock = clock
        self._t0 = clock() if enabled else 0.0
        self._events: List[dict] = []
        self._thread_names: Dict[int, str] = {}
        self._process_meta: Dict[int, Tuple[str, Optional[int]]] = {}

    def _now_us(self) -> float:
        return (self._clock() - self._t0) * 1e6

    # -- recording ---------------------------------------------------------

    def span(
        self,
        name: str,
        cat: str = "sim",
        tid: int = 0,
        args: Optional[dict] = None,
    ):
        """Context manager recording one complete ("X") event."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, cat, tid, args)

    def instant(
        self,
        name: str,
        cat: str = "sim",
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        if not self.enabled:
            return
        event = {
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": self._now_us(), "pid": self.pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def set_thread_name(self, tid: int, name: str) -> None:
        if self.enabled:
            self._thread_names[tid] = name

    def set_process_name(
        self, pid: int, name: str, sort_index: Optional[int] = None
    ) -> None:
        """Label a trace process row (e.g. one sweep worker).

        ``sort_index`` pins the row's position in the Perfetto process
        list; unnamed processes sort after named ones by pid.
        """
        if self.enabled:
            self._process_meta[pid] = (name, sort_index)

    @property
    def events(self) -> List[dict]:
        return list(self._events)

    # -- export ------------------------------------------------------------

    def to_chrome(self, metadata: Optional[dict] = None) -> dict:
        """The full Trace Event Format object."""
        meta_events = []
        for pid, (name, sort_index) in sorted(self._process_meta.items()):
            meta_events.append(
                {
                    "name": "process_name", "ph": "M", "pid": pid,
                    "tid": 0, "args": {"name": name},
                }
            )
            if sort_index is not None:
                meta_events.append(
                    {
                        "name": "process_sort_index", "ph": "M",
                        "pid": pid, "tid": 0,
                        "args": {"sort_index": sort_index},
                    }
                )
        meta_events += [
            {
                "name": "thread_name", "ph": "M", "pid": self.pid,
                "tid": tid, "args": {"name": name},
            }
            for tid, name in sorted(self._thread_names.items())
        ]
        payload = {
            "traceEvents": meta_events + self._events,
            "displayTimeUnit": "ms",
        }
        if metadata:
            payload["otherData"] = metadata
        return payload

    def write(self, path, metadata: Optional[dict] = None) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_chrome(metadata), indent=1) + "\n"
        )
        return path

    # -- profile -----------------------------------------------------------

    def profile(self, top_n: Optional[int] = None) -> List[PhaseSummary]:
        """Spans aggregated by (category, name), hottest total first."""
        acc: Dict[Tuple[str, str], PhaseSummary] = {}
        for e in self._events:
            if e.get("ph") != "X":
                continue
            key = (e.get("cat", ""), e["name"])
            row = acc.get(key)
            if row is None:
                row = acc[key] = PhaseSummary(e["name"], key[0])
            dur = e.get("dur", 0.0)
            row.count += 1
            row.total_us += dur
            if dur > row.max_us:
                row.max_us = dur
        rows = sorted(acc.values(), key=lambda r: -r.total_us)
        return rows[:top_n] if top_n is not None else rows

    def format_profile(self, top_n: int = 10) -> str:
        """Aligned text table of the hottest phases."""
        rows = self.profile(top_n)
        if not rows:
            return "(no spans recorded)"
        headers = ("phase", "cat", "count", "total ms", "mean us", "max us")
        table = [
            (
                r.name, r.cat, str(r.count),
                f"{r.total_us / 1e3:.3f}",
                f"{r.mean_us:.1f}", f"{r.max_us:.1f}",
            )
            for r in rows
        ]
        widths = [
            max(len(h), *(len(t[i]) for t in table))
            for i, h in enumerate(headers)
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        lines += [
            "  ".join(c.ljust(w) for c, w in zip(row, widths))
            for row in table
        ]
        return "\n".join(lines)
