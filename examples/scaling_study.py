"""Strong scaling and the cost of host-device data transfers.

Two studies in one script:

1. **Strong scaling** (Figure 12): the same SpMM on SPADE systems with
   1x/2x/4x the PEs, DRAM bandwidth, LLC, and link latency.  Regular
   matrices scale near-linearly; the few-row Mycielskian stalls on
   row-panel load imbalance.

2. **Transfer overhead** (Figures 2/13): what the same kernel costs on
   the modelled V100 and ideal Sextans once PCIe transfers are counted —
   the overhead SPADE's tight CPU coupling eliminates.

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro import SpadeSystem
from repro.baselines.gpu import GPUModel
from repro.baselines.sextans import SextansModel
from repro.config import scaled_config
from repro.core.accelerator import KernelSettings
from repro.sparse.generators import mycielskian_graph, social_network


def strong_scaling() -> None:
    print("=== strong scaling (Figure 12) ===")
    matrices = {
        "social network": social_network(num_nodes=8192, seed=5),
        "mycielskian": mycielskian_graph(iterations=9),
    }
    k = 32
    settings = KernelSettings(row_panel_size=32)
    for name, a in matrices.items():
        b = np.random.default_rng(0).random((a.num_cols, k), np.float32)
        base = SpadeSystem(scaled_config(4, cache_shrink=32))
        base_ns = base.spmm(a, b, settings).time_ns
        row = [f"{name:<16}"]
        for factor in (2, 4):
            cfg = scaled_config(4, cache_shrink=32).scaled(factor)
            rep = SpadeSystem(cfg).spmm(a, b, settings)
            speedup = base_ns / rep.time_ns
            row.append(
                f"SPADE{factor}: {speedup:.2f}x "
                f"({speedup / factor:.0%} of linear)"
            )
        print("  ".join(row))
    print("(few-row matrices scale poorly: row-panel load imbalance)\n")


def transfer_overhead() -> None:
    print("=== host-device transfer overhead (Figures 2/13) ===")
    a = social_network(num_nodes=8192, seed=5)
    k = 32
    ratio = 8 / 224
    gpu = GPUModel(scale_ratio=ratio, cache_shrink=32)
    sextans = SextansModel(
        dram_peak_gbps=410 * ratio, scale_ratio=ratio, cache_shrink=32
    )
    b = np.random.default_rng(0).random((a.num_cols, k), np.float32)
    spade = SpadeSystem(scaled_config(8, cache_shrink=32))
    spade_ns = spade.spmm(a, b, KernelSettings(row_panel_size=32)).time_ns

    gpu_res = gpu.spmm(a, k)
    sx_res = sextans.spmm(a, k)
    print(f"{'machine':<16} {'kernel (ms)':>12} {'with PCIe (ms)':>15}")
    print(f"{'SPADE (8 PE)':<16} {spade_ns / 1e6:>12.4f} "
          f"{spade_ns / 1e6:>15.4f}   (no transfers by design)")
    print(f"{'V100 model':<16} {gpu_res.kernel_ns / 1e6:>12.4f} "
          f"{gpu_res.total_ns / 1e6:>15.4f}   "
          f"({gpu_res.transfer_fraction:.0%} transfer)")
    print(f"{'ideal Sextans':<16} {sx_res.kernel_ns / 1e6:>12.4f} "
          f"{sx_res.total_ns / 1e6:>15.4f}")
    print(
        f"\nend-to-end, SPADE is {gpu_res.total_ns / spade_ns:.1f}x faster "
        f"than the GPU and {sx_res.total_ns / spade_ns:.1f}x faster than "
        f"Sextans for one iteration (paper: 43.4x and 52.4x at full scale)"
    )


if __name__ == "__main__":
    strong_scaling()
    transfer_overhead()
