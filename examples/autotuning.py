"""Flexibility knobs: how the best SPADE configuration depends on the
input matrix (Sections 2.2, 7.A, 7.C).

Runs the SPADE Opt parameter search on three structurally different
matrices — a power-law Kronecker graph (high Restructuring Utility), a
banded mesh (low RU), and a dense small-row-count Mycielskian — and
shows that each picks a different point in the Table 3 space, with very
different gains over SPADE Base.

Run:  python examples/autotuning.py
"""

from repro import SpadeSystem
from repro.sparse.analysis import estimate_ru, reuse_stats
from repro.sparse.generators import (
    delaunay_like,
    mycielskian_graph,
    rmat_graph,
)
from repro.tuning.autotune import autotune


def main() -> None:
    matrices = {
        "kronecker (KRO-like)": rmat_graph(scale=11, edge_factor=16, seed=2),
        "mesh (DEL-like)": delaunay_like(num_nodes=8192, seed=4),
        "mycielskian (MYC-like)": mycielskian_graph(iterations=9),
    }
    system = SpadeSystem.scaled(num_pes=8)
    k = 32

    print(f"{'matrix':<24} {'RU est.':<8} {'best setting':<38} gain")
    print("-" * 84)
    for name, a in matrices.items():
        result = autotune(system, a, "spmm", k, row_panel_divisor=8)
        stats = reuse_stats(a)
        print(
            f"{name:<24} {estimate_ru(a).value:<8} "
            f"{result.best_settings.describe():<38} "
            f"{result.speedup_over_base:.2f}x over Base"
        )
        ranked = result.ranked()
        best, worst = ranked[0], ranked[-1]
        print(
            f"  {a!r}\n"
            f"  column-degree gini {stats.col_gini:.2f}, "
            f"bandedness {stats.bandedness:.2f}\n"
            f"  best tried  : {best[0].describe()} "
            f"({best[1] / 1e6:.4f} ms)\n"
            f"  worst tried : {worst[0].describe()} "
            f"({worst[1] / 1e6:.4f} ms) "
            f"-> {worst[1] / best[1]:.2f}x spread across the space"
        )
    print(
        "\nThe input-dependent winners are the paper's core argument for "
        "a programmable, tile-based ISA (Section 7.C)."
    )


if __name__ == "__main__":
    main()
