"""Quickstart: run SpMM and SDDMM on a simulated SPADE system.

Builds a power-law graph, executes both kernels on an 8-PE SPADE
system, verifies the results against the golden numpy kernels, and
prints the execution report — simulated time, memory traffic by level,
and pipeline statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import KernelSettings, SpadeSystem, sddmm_output_to_coo
from repro.kernels import sddmm_reference, spmm_reference
from repro.sparse.generators import rmat_graph
from repro.sparse.tiled import tile_matrix


def main() -> None:
    # 1. A sparse input: a Graph500-style Kronecker graph.
    a = rmat_graph(scale=10, edge_factor=12, seed=7)
    print(f"input matrix: {a}")

    # 2. Dense operands (K = dense matrix row size).
    k = 32
    rng = np.random.default_rng(0)
    b = rng.random((a.num_cols, k), dtype=np.float32)

    # 3. A SPADE system: 8 PEs, proportionally scaled caches/bandwidth.
    system = SpadeSystem.scaled(num_pes=8)

    # 4. SpMM with the default (SPADE Base) settings.
    report = system.spmm(a, b)
    expected = spmm_reference(a, b)
    assert np.allclose(report.output, expected, rtol=1e-4, atol=1e-4)
    print(f"\nSpMM ({report.settings.describe()}):")
    print(f"  simulated time      : {report.time_ms:.4f} ms")
    print(f"  DRAM accesses       : {report.dram_accesses}")
    print(f"  bandwidth utilization: {report.bandwidth_utilization:.1%}")
    print(f"  requests per cycle  : {report.requests_per_cycle:.2f}")
    print(report.stats.summary())

    # 5. The same SpMM with flexibility knobs: small tiles, barriers.
    tuned = KernelSettings(
        row_panel_size=32,
        col_panel_size=a.num_cols // 8,
        use_barriers=True,
    )
    report_opt = system.spmm(a, b, tuned)
    assert np.allclose(report_opt.output, expected, rtol=1e-4, atol=1e-4)
    speedup = report.time_ns / report_opt.time_ns
    print(f"\nSpMM ({tuned.describe()}):")
    print(f"  simulated time: {report_opt.time_ms:.4f} ms "
          f"({speedup:.2f}x vs Base)")

    # 6. SDDMM: D = A o (B @ C^T).
    b_rows = rng.random((a.num_rows, k), dtype=np.float32)
    c = rng.random((a.num_cols, k), dtype=np.float32)
    report_sddmm = system.sddmm(a, b_rows, c)
    tiled = tile_matrix(a, 256, None)
    got = sddmm_output_to_coo(tiled, report_sddmm.output)
    want = sddmm_reference(a, b_rows, c)
    assert got == want
    print(f"\nSDDMM: simulated time {report_sddmm.time_ms:.4f} ms, "
          f"{report_sddmm.dram_accesses} DRAM accesses")
    print("\nall results verified against the golden numpy kernels")


if __name__ == "__main__":
    main()
