"""Combining graph reordering with SPADE's flexibility knobs.

Section 8.E of the paper notes that input-aware locality techniques
such as reordering are orthogonal to SPADE.  This example demonstrates
the combination: a bandwidth-reducing BFS renumbering turns a shuffled
mesh's distant reuse back into local reuse, changing both the matrix's
estimated Restructuring Utility and the settings the autotuner picks —
and the two techniques compose (reorder first, then tune).

Run:  python examples/reordering.py
"""

import numpy as np

from repro import SpadeSystem
from repro.config import scaled_config
from repro.sparse.analysis import estimate_ru, reuse_stats
from repro.sparse.generators import banded
from repro.sparse.reorder import (
    apply_ordering,
    bandwidth,
    bfs_order,
    random_permutation,
)
from repro.tuning.autotune import autotune


def describe(label, matrix):
    stats = reuse_stats(matrix)
    print(
        f"{label:<22} bandwidth={bandwidth(matrix):>6} "
        f"bandedness={stats.bandedness:.2f} "
        f"RU estimate={estimate_ru(matrix).value}"
    )


def main() -> None:
    # A mesh-like banded matrix whose vertex numbering was lost
    # (as happens with crawled or hashed node ids).
    ordered = banded(num_rows=4096, bandwidth=8, seed=11)
    shuffled = apply_ordering(
        ordered, random_permutation(ordered.num_rows, seed=12)
    )
    recovered = apply_ordering(shuffled, bfs_order(shuffled))

    print("matrix structure:")
    describe("original (banded)", ordered)
    describe("shuffled ids", shuffled)
    describe("BFS-recovered", recovered)

    system = SpadeSystem(scaled_config(8, cache_shrink=32))
    k = 32
    print("\nSPADE Opt on each variant (SpMM, K=32):")
    times = {}
    for label, matrix in (
        ("shuffled", shuffled),
        ("BFS-recovered", recovered),
    ):
        result = autotune(system, matrix, "spmm", k, row_panel_divisor=8)
        times[label] = result.best_time_ns
        print(
            f"  {label:<16} best={result.best_settings.describe():<36} "
            f"time={result.best_time_ns / 1e6:.4f} ms "
            f"(opt gain {result.speedup_over_base:.2f}x)"
        )
    gain = times["shuffled"] / times["BFS-recovered"]
    print(
        f"\nreordering alone buys {gain:.2f}x on the tuned system — "
        "orthogonal to, and composable with, SPADE's own knobs "
        "(paper Section 8.E)"
    )


if __name__ == "__main__":
    main()
