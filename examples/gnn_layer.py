"""GNN message passing on SPADE: the motivating workload of the paper.

In Graph Neural Networks, vertex aggregation is an SpMM and edge
feature computation (e.g. attention scores) is an SDDMM (Section 1).
This example runs one simplified graph-attention-style layer on a
social-network graph, interleaving CPU-mode sections (weight updates)
with SPADE-mode kernel executions, and accounts for the CPU<->SPADE
mode-transition overheads of Section 7.D.

Run:  python examples/gnn_layer.py
"""

import numpy as np

from repro import SpadeSystem, sddmm_output_to_coo
from repro.core.instructions import Primitive
from repro.core.modes import round_trip_costs
from repro.memory.address import padded_row_bytes
from repro.sparse.generators import social_network
from repro.sparse.tiled import tile_matrix


def normalize_adjacency(a):
    """Symmetric degree normalisation, as in GCN aggregation."""
    deg = np.maximum(a.row_nnz_counts(), 1).astype(np.float32)
    scale = 1.0 / np.sqrt(deg)
    vals = a.vals * scale[a.r_ids] * scale[a.c_ids]
    from repro.sparse.coo import COOMatrix

    return COOMatrix(a.num_rows, a.num_cols, a.r_ids, a.c_ids, vals)


def main() -> None:
    hidden = 32
    graph = normalize_adjacency(social_network(num_nodes=4096, seed=3))
    print(f"graph: {graph}")

    rng = np.random.default_rng(1)
    features = rng.standard_normal((graph.num_rows, hidden)).astype(
        np.float32
    )
    weight = rng.standard_normal((hidden, hidden)).astype(np.float32)

    system = SpadeSystem.scaled(num_pes=8)
    total_kernel_ns = 0.0
    total_transition_ns = 0.0

    for layer in range(2):
        # CPU-mode section: the dense projection H @ W runs on the host.
        projected = (features @ weight).astype(np.float32)

        # SPADE-mode section 1: attention-style edge scores via SDDMM,
        # e_uv = a_uv * <h_u, h_v>.
        rep_sddmm = system.sddmm(graph, projected, projected)
        tiled = tile_matrix(graph, 256, None)
        edge_scores = sddmm_output_to_coo(tiled, rep_sddmm.output)
        total_kernel_ns += rep_sddmm.time_ns
        # cold_dram_lines=0: the simulated kernel time above already
        # includes the cold-cache start-up (the engine starts cold).
        costs = round_trip_costs(
            Primitive.SDDMM,
            rmatrix_bytes=graph.num_rows * padded_row_bytes(hidden),
            dirty_lines_flushed=rep_sddmm.result.dirty_lines_flushed,
            cold_dram_lines=0,
            config=system.config,
        )
        total_transition_ns += costs.total_overhead_ns()

        # SPADE-mode section 2: aggregation via SpMM with the scored
        # adjacency, H' = E @ H.
        rep_spmm = system.spmm(edge_scores, projected)
        features = np.tanh(rep_spmm.output)
        total_kernel_ns += rep_spmm.time_ns
        costs = round_trip_costs(
            Primitive.SPMM,
            rmatrix_bytes=0,
            dirty_lines_flushed=rep_spmm.result.dirty_lines_flushed,
            cold_dram_lines=0,
            config=system.config,
        )
        total_transition_ns += costs.total_overhead_ns()

        print(
            f"layer {layer}: SDDMM {rep_sddmm.time_ms:.3f} ms, "
            f"SpMM {rep_spmm.time_ms:.3f} ms, "
            f"feature norm {np.linalg.norm(features):.1f}"
        )

    overhead = total_transition_ns / total_kernel_ns
    print(
        f"\ntotal kernel time {total_kernel_ns / 1e6:.3f} ms; "
        f"mode-transition overhead {overhead:.1%} of SPADE-mode time "
        f"(paper Section 7.D: small, ~0.2-3.4%)"
    )
    print(
        "On a PCIe accelerator every layer would pay host<->device "
        "transfers instead (Figure 2: ~97% of single-iteration time)."
    )


if __name__ == "__main__":
    main()
