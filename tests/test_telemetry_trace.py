"""Tracer (Chrome trace-event JSON) and provenance manifest tests."""

import json

import pytest

from repro.config import scaled_config
from repro.telemetry import (
    MANIFEST_SCHEMA_VERSION,
    NULL_SPAN,
    EventTracer,
    config_fingerprint,
    diff_manifests,
    run_manifest,
    stamp,
    validate_manifest,
)


class FakeClock:
    """Deterministic perf_counter stand-in (seconds)."""

    def __init__(self):
        self.t = 100.0

    def advance(self, seconds):
        self.t += seconds

    def __call__(self):
        return self.t


@pytest.fixture()
def clock():
    return FakeClock()


class TestTracer:
    def test_span_records_complete_event(self, clock):
        tr = EventTracer(clock=clock)
        with tr.span("epoch[0]", cat="epoch", tid=3, args={"epoch": 0}):
            clock.advance(0.002)
        (e,) = tr.events
        assert e["ph"] == "X"
        assert e["name"] == "epoch[0]"
        assert e["cat"] == "epoch"
        assert e["tid"] == 3
        assert e["ts"] == pytest.approx(0.0)
        assert e["dur"] == pytest.approx(2000.0)  # 2 ms in us
        assert e["args"] == {"epoch": 0}

    def test_instant_event(self, clock):
        tr = EventTracer(clock=clock)
        clock.advance(0.001)
        tr.instant("barrier[0]", cat="epoch", args={"critical_pe": 2})
        (e,) = tr.events
        assert e["ph"] == "i" and e["s"] == "t"
        assert e["ts"] == pytest.approx(1000.0)

    def test_disabled_tracer_shares_null_span(self, clock):
        tr = EventTracer(enabled=False, clock=clock)
        assert tr.span("x") is NULL_SPAN
        with tr.span("x"):
            pass
        tr.instant("y")
        tr.set_thread_name(1, "pe1")
        assert tr.events == []
        assert tr.to_chrome()["traceEvents"] == []

    def test_chrome_trace_schema(self, clock, tmp_path):
        tr = EventTracer(clock=clock)
        tr.set_thread_name(1, "pe0")
        with tr.span("kernel", cat="kernel", args={"nnz": 9}):
            clock.advance(0.01)
        path = tr.write(tmp_path / "t.json", metadata={"note": "hi"})
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"note": "hi"}
        events = doc["traceEvents"]
        assert isinstance(events, list)
        # Thread-name metadata event comes first.
        assert events[0]["ph"] == "M"
        assert events[0]["args"] == {"name": "pe0"}
        for e in events:
            assert {"name", "ph", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert e["dur"] >= 0 and e["ts"] >= 0

    def test_profile_aggregates_by_cat_and_name(self, clock):
        tr = EventTracer(clock=clock)
        for dur in (0.001, 0.003):
            with tr.span("chunk", cat="replay"):
                clock.advance(dur)
        with tr.span("epoch[0]", cat="epoch"):
            clock.advance(0.01)
        rows = tr.profile()
        assert [r.name for r in rows] == ["epoch[0]", "chunk"]
        chunk = rows[1]
        assert chunk.count == 2
        assert chunk.total_us == pytest.approx(4000.0)
        assert chunk.max_us == pytest.approx(3000.0)
        assert chunk.mean_us == pytest.approx(2000.0)
        assert tr.profile(top_n=1)[0].name == "epoch[0]"

    def test_format_profile(self, clock):
        tr = EventTracer(clock=clock)
        assert tr.format_profile() == "(no spans recorded)"
        with tr.span("kernel", cat="kernel"):
            clock.advance(0.005)
        text = tr.format_profile()
        assert "phase" in text and "kernel" in text and "total ms" in text


class TestProvenance:
    def test_manifest_has_required_fields(self):
        cfg = scaled_config(4)
        m = run_manifest(
            config=cfg, workload={"matrix": "KRO"}, seed=7,
            argv=["run", "--matrix", "KRO"],
        )
        validate_manifest(m)
        assert m["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert m["config"]["fingerprint"] == config_fingerprint(cfg)
        assert m["config"]["num_pes"] == 4
        assert m["workload"] == {"matrix": "KRO"}
        assert m["seed"] == 7
        assert m["argv"] == ["run", "--matrix", "KRO"]
        assert m["host"]["python"]
        assert json.loads(json.dumps(m)) == m  # JSON-serialisable

    def test_fingerprint_stable_and_sensitive(self):
        a = scaled_config(4)
        b = scaled_config(4)
        c = scaled_config(8)
        assert config_fingerprint(a) == config_fingerprint(b)
        assert config_fingerprint(a) != config_fingerprint(c)
        with pytest.raises(TypeError):
            config_fingerprint("not a config")

    def test_validate_rejects_bad_manifests(self):
        with pytest.raises(ValueError):
            validate_manifest([])
        with pytest.raises(ValueError, match="schema_version"):
            validate_manifest({"created_utc": "x", "host": {}})
        with pytest.raises(ValueError, match="positive int"):
            validate_manifest(
                {"schema_version": 0, "created_utc": "x", "host": {}}
            )

    def test_stamp_preserves_measured_numbers(self):
        payload = {"headline_speedup": 3.19, "workloads": [1, 2]}
        stamped = stamp(payload, workload={"w": 1})
        assert stamped["headline_speedup"] == 3.19
        assert stamped["workloads"] == [1, 2]
        assert "manifest" not in payload  # original untouched
        validate_manifest(stamped["manifest"])

    def test_diff_manifests_reports_dotted_leaves(self):
        a = run_manifest(config=scaled_config(4), seed=1)
        b = run_manifest(config=scaled_config(8), seed=1)
        d = diff_manifests(a, b)
        assert "config.fingerprint" in d
        assert "config.num_pes" in d
        assert d["config.num_pes"] == (4, 8)
        assert "seed" not in d
        assert diff_manifests(a, a) == {}


class TestBackfill:
    def _load_backfill(self):
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "backfill_manifests.py"
        )
        spec = importlib.util.spec_from_file_location("backfill", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def test_backfill_adds_manifest_without_touching_numbers(
        self, tmp_path
    ):
        mod = self._load_backfill()
        path = tmp_path / "BENCH_x.json"
        original = {"headline_speedup": 3.19, "workloads": [{"a": 1}]}
        path.write_text(json.dumps(original))

        assert mod.backfill_file(path, write=False) == "missing"
        assert mod.backfill_file(path) == "stamped"
        stamped = json.loads(path.read_text())
        assert stamped["headline_speedup"] == 3.19
        assert stamped["workloads"] == [{"a": 1}]
        validate_manifest(stamped["manifest"])
        assert stamped["manifest"]["extra"]["backfilled"] is True
        # Second pass is idempotent.
        assert mod.backfill_file(path) == "ok"

    def test_backfill_check_mode_exit_codes(self, tmp_path, capsys):
        mod = self._load_backfill()
        good = tmp_path / "BENCH_good.json"
        good.write_text(json.dumps(stamp({"v": 1})))
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"v": 2}))
        assert mod.main([str(good), "--check"]) == 0
        assert mod.main([str(bad), "--check"]) == 1
        assert mod.main([str(bad)]) == 0  # stamps it
        assert mod.main([str(bad), "--check"]) == 0
