"""Unit tests for the CPU, GPU, and Sextans baseline models."""

import numpy as np
import pytest

from repro.baselines.cpu import CPUModel
from repro.baselines.gpu import GPUModel, TransferModel
from repro.baselines.sextans import SextansModel
from repro.baselines.traffic import (
    TrafficEstimate,
    dense_operand_traffic,
    gathered_traffic,
    kernel_flops,
    sddmm_traffic,
    spmm_traffic,
)
from repro.config import paper_config
from repro.sparse.generators import banded, rmat_graph


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=9, edge_factor=8, seed=5)


class TestTrafficEstimation:
    def test_flops(self, graph):
        assert kernel_flops(graph, 32) == 2 * graph.nnz * 32

    def test_capacity_model_fits_in_cache(self):
        # 100 rows of 128 B = 12.8 KB fits a 1 MB cache: read once.
        traffic = dense_operand_traffic(100, 100000, 128, 1 << 20)
        assert traffic == 100 * 128

    def test_capacity_model_overflow(self):
        fits = dense_operand_traffic(1000, 100000, 128, 1000 * 128)
        overflow = dense_operand_traffic(1000, 100000, 128, 100 * 128)
        assert overflow > fits

    def test_gathered_traffic_credits_local_reuse(self):
        """A banded access stream reuses columns locally; a big cache
        should collapse traffic to the compulsory footprint."""
        m = banded(512, 4, seed=1)
        order = np.argsort(m.r_ids, kind="stable")
        rows, cols = m.r_ids[order], m.c_ids[order]
        big = gathered_traffic(rows, cols, 128, 10 * 1024 * 1024)
        tiny = gathered_traffic(rows, cols, 128, 4 * 128)
        footprint = len(np.unique(cols)) * 128
        assert big == footprint
        assert tiny > big

    def test_gathered_traffic_empty(self):
        assert gathered_traffic(np.array([]), np.array([]), 128, 1e6) == 0

    def test_spmm_traffic_components(self, graph):
        t = spmm_traffic(graph, 32, cache_bytes=1 << 20)
        assert t.sparse_bytes == graph.nnz * 12
        assert t.rmatrix_bytes == 2 * graph.num_rows * 128
        assert t.cmatrix_bytes > 0
        assert t.output_bytes == 0
        assert t.total_bytes == (
            t.sparse_bytes + t.rmatrix_bytes + t.cmatrix_bytes
        )

    def test_sddmm_traffic_has_output(self, graph):
        t = sddmm_traffic(graph, 32, cache_bytes=1 << 20)
        assert t.output_bytes > 0

    def test_bigger_cache_less_traffic(self, graph):
        small = spmm_traffic(graph, 32, cache_bytes=1 << 14)
        big = spmm_traffic(graph, 32, cache_bytes=1 << 26)
        assert big.cmatrix_bytes <= small.cmatrix_bytes


class TestCPUModel:
    @pytest.fixture()
    def cpu(self):
        return CPUModel(paper_config().host)

    def test_spmm_returns_positive_time(self, cpu, graph):
        res = cpu.spmm(graph, 32)
        assert res.time_ns > 0
        assert res.time_ms == pytest.approx(res.time_ns / 1e6)
        assert res.bound in ("memory", "compute")

    def test_time_is_roofline_max(self, cpu, graph):
        res = cpu.spmm(graph, 32)
        assert res.time_ns == max(res.compute_ns, res.memory_ns)

    def test_k_scales_time(self, cpu, graph):
        assert cpu.spmm(graph, 128).time_ns > cpu.spmm(graph, 32).time_ns

    def test_sddmm_taco_penalty(self, cpu, graph):
        """TACO (SDDMM) runs below the plain roofline: the model applies
        a penalty factor on top of the traffic-derived memory time."""
        from repro.baselines.cpu import TACO_SDDMM_PENALTY
        from repro.baselines.traffic import sddmm_traffic

        res = cpu.sddmm(graph, 32)
        traffic = sddmm_traffic(
            graph, 32, cpu.host.llc_total_bytes, sparse_bytes_per_nnz=8
        )
        plain_memory_ns = traffic.total_bytes / cpu.effective_bandwidth
        assert TACO_SDDMM_PENALTY > 1.0
        assert res.memory_ns == pytest.approx(
            plain_memory_ns * TACO_SDDMM_PENALTY
        )

    def test_peak_flops_formula(self, cpu):
        h = paper_config().host
        expected = h.num_cores * 3 * 16 * 2 * 2.6
        assert cpu.peak_flops_per_ns == pytest.approx(expected)


class TestGPUModel:
    @pytest.fixture()
    def gpu(self):
        return GPUModel(scale_ratio=1.0)

    def test_kernel_faster_than_transfer(self, gpu, graph):
        """The Figure 2 result: transfers dominate single iterations."""
        res = gpu.spmm(graph, 32)
        assert res.transfer_ns > res.kernel_ns
        assert res.transfer_fraction > 0.5

    def test_transfer_model_both_directions(self):
        t = TransferModel(bytes_to_device=1000, bytes_to_host=500)
        assert t.total_bytes == 1500
        assert t.time_ns > 1500 / t.pcie_gbps

    def test_memory_capacity_check(self, gpu, graph):
        assert gpu.fits_in_memory(graph, 32)
        tiny_gpu = GPUModel(scale_ratio=1e-6)
        assert not tiny_gpu.fits_in_memory(graph, 128)

    def test_scale_ratio_scales_everything(self, graph):
        full = GPUModel(1.0).spmm(graph, 32)
        half = GPUModel(0.5).spmm(graph, 32)
        assert half.kernel_ns > full.kernel_ns

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            GPUModel(scale_ratio=0)

    def test_sddmm_transfers_both_dense(self, gpu, graph):
        spmm = gpu.spmm(graph, 32)
        sddmm = gpu.sddmm(graph, 32)
        assert sddmm.transfer_ns > spmm.transfer_ns * 0.9


class TestSextansModel:
    @pytest.fixture()
    def sextans(self):
        return SextansModel(dram_peak_gbps=410.0)

    def test_idealized_50pct_bandwidth(self, sextans):
        assert sextans.effective_gbps == pytest.approx(205.0)

    def test_sparse_rereads_grow_with_k(self, sextans, graph):
        """Section 7.F: Sextans re-reads sparse data as K grows."""
        r32 = sextans.spmm(graph, 32)
        r128 = sextans.spmm(graph, 128)
        assert r32.sparse_passes == 2
        assert r128.sparse_passes == 8

    def test_output_batching_when_scratchpad_small(self, graph):
        big = SextansModel(410.0, scale_ratio=1.0)
        small = SextansModel(410.0, scale_ratio=1e-4)
        assert small.spmm(graph, 32).output_batches > (
            big.spmm(graph, 32).output_batches
        )

    def test_batching_multiplies_dense_traffic(self, graph):
        small = SextansModel(410.0, scale_ratio=1e-4)
        big = SextansModel(410.0, scale_ratio=1.0)
        assert small.spmm(graph, 32).dram_bytes > (
            big.spmm(graph, 32).dram_bytes
        )

    def test_memory_time_only(self, sextans, graph):
        """Idealized compute: kernel time equals traffic / bandwidth."""
        res = sextans.spmm(graph, 32)
        assert res.kernel_ns == pytest.approx(
            res.dram_bytes / sextans.effective_gbps
        )

    def test_transfer_included_separately(self, sextans, graph):
        res = sextans.spmm(graph, 32)
        assert res.total_ns == res.kernel_ns + res.transfer_ns
        assert res.transfer_ns > 0
