"""Unit tests for the latency-tolerance timing model and mode
transitions."""

from dataclasses import replace

import pytest

from repro.config import scaled_config
from repro.core.instructions import Primitive
from repro.core.modes import (
    TransitionCosts,
    cpu_to_spade_cost,
    round_trip_costs,
    spade_to_cpu_cost,
)
from repro.core.pe import PECounters
from repro.core.timing import (
    epoch_timing,
    flush_time_ns,
    pe_breakdown,
    pe_time_ns,
    requests_per_cycle,
)
from repro.memory.hierarchy import MemorySystem, ServiceLevel


@pytest.fixture()
def cfg():
    return scaled_config(4)


@pytest.fixture()
def mem(cfg):
    return MemorySystem(cfg)


def counters_with(dram_reads=0, l1_reads=0, tops=0, vops=0) -> PECounters:
    c = PECounters(tops=tops, vops=vops)
    c.dense_reads_by_level[ServiceLevel.DRAM] = dram_reads
    c.dense_reads_by_level[ServiceLevel.L1] = l1_reads
    return c


class TestPEBreakdown:
    def test_compute_bound_when_no_memory(self, cfg, mem):
        c = counters_with(tops=1000, vops=2000)
        bd = pe_breakdown(c, cfg, mem)
        assert bd.total_ns == bd.compute_ns
        assert bd.compute_ns == pytest.approx(2000 * cfg.pe.cycle_ns)

    def test_memory_bound_when_many_dram_reads(self, cfg, mem):
        c = counters_with(dram_reads=100_000, vops=10)
        bd = pe_breakdown(c, cfg, mem)
        assert bd.total_ns == bd.dense_ns

    def test_mlp_divides_latency(self, cfg, mem):
        c = counters_with(dram_reads=320)
        bd = pe_breakdown(c, cfg, mem)
        lat = mem.latency_ns(ServiceLevel.DRAM)
        mlp = min(cfg.pe.dense_load_queue_entries, cfg.pe.vop_rs_entries)
        assert bd.dense_ns == pytest.approx(320 * lat / mlp)

    def test_bigger_rs_means_faster(self, cfg, mem):
        """The CFG0 -> CFG1 effect: more RS entries, more overlap."""
        c = counters_with(dram_reads=10_000)
        small_rs = replace(cfg, pe=replace(cfg.pe, vop_rs_entries=16))
        assert pe_time_ns(c, small_rs, mem) > pe_time_ns(c, cfg, mem)

    def test_link_latency_slows_memory_bound(self, cfg):
        """The Figure 10 LL sweep: higher link latency hurts more when
        MLP is low."""
        c = counters_with(dram_reads=10_000)
        slow_cfg = replace(
            cfg, memory=replace(cfg.memory, link_latency_ns=960.0)
        )
        fast = pe_time_ns(c, cfg, MemorySystem(cfg))
        slow = pe_time_ns(c, slow_cfg, MemorySystem(slow_cfg))
        assert slow > fast

    def test_l1_hits_are_cheap(self, cfg, mem):
        dram = counters_with(dram_reads=1000)
        l1 = counters_with(l1_reads=1000)
        assert pe_time_ns(l1, cfg, mem) < pe_time_ns(dram, cfg, mem)


class TestEpochTiming:
    def test_slowest_pe_dominates(self, cfg, mem):
        fast = counters_with(tops=10, vops=10)
        slow = counters_with(tops=10_000, vops=20_000)
        timing = epoch_timing([fast, slow], 0, cfg, mem)
        assert timing.critical_pe == 1
        assert timing.epoch_time_ns == max(timing.pe_times_ns)

    def test_bandwidth_floor(self, cfg, mem):
        tiny = counters_with(tops=1, vops=1)
        dram_lines = 10_000_000
        timing = epoch_timing([tiny], dram_lines, cfg, mem)
        expected_bw = dram_lines * 64 / cfg.memory.dram_achievable_gbps
        assert timing.epoch_time_ns == pytest.approx(expected_bw)

    def test_total_requests_summed(self, cfg, mem):
        a = counters_with(dram_reads=10)
        b = counters_with(dram_reads=5)
        timing = epoch_timing([a, b], 0, cfg, mem)
        assert timing.total_requests == 15


class TestMetrics:
    def test_requests_per_cycle(self, cfg):
        # 800 requests over 1000 ns at 0.8 GHz = 800 cycles -> 1.0 rpc.
        assert requests_per_cycle(800, 1000.0, cfg) == pytest.approx(1.0)
        assert requests_per_cycle(800, 0.0, cfg) == 0.0

    def test_flush_time_scales_with_dirty_lines(self, cfg):
        assert flush_time_ns(1000, cfg) > flush_time_ns(10, cfg)


class TestModeTransitions:
    def test_spade_to_cpu_scales_with_dirty(self, cfg):
        assert spade_to_cpu_cost(1000, cfg) > spade_to_cpu_cost(0, cfg)

    def test_sddmm_transition_more_expensive(self, cfg):
        """Section 7.D: SDDMM must also write back the rMatrix."""
        rmatrix = 10 * 1024 * 1024
        spmm = cpu_to_spade_cost(Primitive.SPMM, rmatrix, cfg)
        sddmm = cpu_to_spade_cost(Primitive.SDDMM, rmatrix, cfg)
        assert sddmm > spmm

    def test_round_trip_composition(self, cfg):
        costs = round_trip_costs(
            Primitive.SDDMM,
            rmatrix_bytes=1024,
            dirty_lines_flushed=10,
            cold_dram_lines=100,
            config=cfg,
        )
        assert isinstance(costs, TransitionCosts)
        assert costs.total_overhead_ns() == pytest.approx(
            costs.cpu_to_spade_ns + costs.spade_to_cpu_ns + costs.startup_ns
        )
        assert costs.overhead_fraction(1e9) > 0
        assert costs.overhead_fraction(0) == 0.0
