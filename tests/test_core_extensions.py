"""Unit tests for the SpMV / SDDVV extension primitives (Section 9)."""

import numpy as np
import pytest

from repro.core.extensions import sddvv, spmv


class TestSpMV:
    def test_matches_dense_matvec(self, small_system, small_graph, rng):
        x = rng.random(small_graph.num_cols).astype(np.float32)
        y, report = spmv(small_system, small_graph, x)
        expected = small_graph.to_dense() @ x
        np.testing.assert_allclose(y, expected, rtol=1e-4, atol=1e-4)
        assert report.time_ns > 0

    def test_one_vop_per_nonzero(self, small_system, small_graph, rng):
        """K=1 pads to a single line per row: exactly one vOp per tOp."""
        x = rng.random(small_graph.num_cols).astype(np.float32)
        _, report = spmv(small_system, small_graph, x)
        assert report.counters.vops == report.counters.tops

    def test_rectangular(self, small_system, random_rect, rng):
        x = rng.random(random_rect.num_cols).astype(np.float32)
        y, _ = spmv(small_system, random_rect, x)
        assert y.shape == (random_rect.num_rows,)

    def test_shape_validation(self, small_system, small_graph):
        with pytest.raises(ValueError, match="shape"):
            spmv(small_system, small_graph, np.ones(3, dtype=np.float32))
        with pytest.raises(ValueError, match="shape"):
            spmv(
                small_system, small_graph,
                np.ones((small_graph.num_cols, 2), dtype=np.float32),
            )


class TestSDDVV:
    def test_matches_outer_product_sampling(
        self, small_system, small_graph, rng
    ):
        u = rng.random(small_graph.num_rows).astype(np.float32)
        v = rng.random(small_graph.num_cols).astype(np.float32)
        out, report = sddvv(small_system, small_graph, u, v)
        expected = small_graph.to_dense() * np.outer(u, v)
        np.testing.assert_allclose(
            out.to_dense(), expected, rtol=1e-4, atol=1e-5
        )
        assert report.time_ns > 0

    def test_preserves_structure(self, small_system, small_graph, rng):
        u = rng.random(small_graph.num_rows).astype(np.float32)
        v = rng.random(small_graph.num_cols).astype(np.float32)
        out, _ = sddvv(small_system, small_graph, u, v)
        np.testing.assert_array_equal(
            np.sort(out.r_ids), np.sort(small_graph.r_ids)
        )

    def test_shape_validation(self, small_system, random_rect):
        u_bad = np.ones(random_rect.num_rows + 1, dtype=np.float32)
        v = np.ones(random_rect.num_cols, dtype=np.float32)
        with pytest.raises(ValueError, match="u must"):
            sddvv(small_system, random_rect, u_bad, v)
