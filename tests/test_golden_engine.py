"""Golden end-to-end regression fixtures for the execution engine.

Small seeded SpMM and SDDMM runs on three generator domains are frozen
as JSON under ``tests/golden/``: ``time_ns``, ``dram_bytes``, per-level
hit/miss counts, and ``dirty_lines_flushed``.  Any silent drift in any
replay path — scalar oracle, batched fast path, or the array-native
stack-distance solver — fails loudly here, and because ONE golden file
serves ALL replay modes, these tests also pin the bit-identical
equivalence guarantee end to end.  A second fixture family
(``fingerprint_*.json``) freezes the full EngineResult surface —
simulated time, epoch count, merged PECounters and an output digest —
and holds ALL THREE execution backends (scalar, vectorized, pipelined)
crossed with ALL THREE replay backends to it.

Regenerate after an intentional model change (from the repo root)::

    PYTHONPATH=src python tests/test_golden_engine.py --regen

then review the JSON diff like any other code change.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.config import EXECUTION_MODES, scaled_config
from repro.core.accelerator import KernelSettings, SpadeSystem
from repro.sparse.generators import banded, rmat_graph, uniform_random

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

# Three generator domains: power-law graph, regular banded FEM-like,
# rectangular uniform random.  Small enough for full simulation.
DOMAINS = {
    "rmat": lambda: rmat_graph(scale=8, edge_factor=8, seed=99),
    "banded": lambda: banded(num_rows=512, bandwidth=8, seed=3),
    "uniform": lambda: uniform_random(num_rows=256, num_cols=192, nnz=3000, seed=21),
}
KERNELS = ("spmm", "sddmm")
REPLAY_MODES = ("scalar", "batched", "array")
K = 16


def run_case(
    domain: str,
    kernel: str,
    replay: str,
    execution: str = "vectorized",
    settings: KernelSettings = None,
):
    cfg = dataclasses.replace(
        scaled_config(4, cache_shrink=8), replay=replay, execution=execution
    )
    system = SpadeSystem(cfg)
    a = DOMAINS[domain]()
    rng = np.random.default_rng(2024)
    if kernel == "spmm":
        b = rng.random((a.num_cols, K), dtype=np.float32)
        return system.spmm(a, b, settings=settings)
    b = rng.random((a.num_rows, K), dtype=np.float32)
    c = rng.random((a.num_cols, K), dtype=np.float32)
    return system.sddmm(a, b, c, settings=settings)


def metrics(report) -> dict:
    """The frozen metric surface of one run."""
    result = report.result
    stats = result.stats
    levels = {}
    for name in ("l1", "l2", "llc", "victim", "bbf_stream"):
        level = getattr(stats, name)
        levels[name] = {
            "hits": level.hits,
            "misses": level.misses,
            "writebacks": level.writebacks,
            "hit_rate": round(level.hit_rate, 10),
        }
    return {
        "time_ns": round(result.time_ns, 6),
        "dram_bytes": result.dram_bytes,
        "dram_reads": stats.dram_reads,
        "dram_writes": stats.dram_writes,
        "stlb_misses": stats.stlb_misses,
        "dirty_lines_flushed": result.dirty_lines_flushed,
        "levels": levels,
    }


def fingerprint(report) -> dict:
    """The frozen EngineResult surface pinned across execution modes:
    simulated time, epoch count, merged PECounters, the metric surface
    of :func:`metrics`, and a digest of the raw output bytes."""
    result = report.result
    out = (
        result.output_dense
        if result.output_dense is not None
        else result.output_vals
    )
    return {
        "time_ns": round(result.time_ns, 6),
        "compute_time_ns": round(result.compute_time_ns, 6),
        "epochs": len(result.epoch_timings),
        "counters": dataclasses.asdict(result.counters),
        "output_sha256": hashlib.sha256(
            np.ascontiguousarray(out).tobytes()
        ).hexdigest(),
        "metrics": metrics(report),
    }


# One SpMM and one SDDMM workload; the SDDMM case uses barrier epochs
# so the pinned epoch count exercises the multi-epoch driver path.
FINGERPRINT_CASES = {
    "spmm_rmat": ("rmat", "spmm", None),
    "sddmm_uniform": (
        "uniform",
        "sddmm",
        KernelSettings(
            row_panel_size=64, col_panel_size=64, use_barriers=True
        ),
    ),
}


def golden_path(domain: str, kernel: str) -> Path:
    return GOLDEN_DIR / f"{kernel}_{domain}.json"


def fingerprint_path(case: str) -> Path:
    return GOLDEN_DIR / f"fingerprint_{case}.json"


def assert_matches_golden(got: dict, want: dict, where: str) -> None:
    assert got.keys() == want.keys(), where
    for key, expected in want.items():
        actual = got[key]
        if isinstance(expected, dict):
            assert_matches_golden(actual, expected, f"{where}.{key}")
        elif isinstance(expected, float):
            assert actual == pytest.approx(expected, rel=1e-9), (
                f"{where}.{key}: {actual} != {expected}"
            )
        else:
            assert actual == expected, (
                f"{where}.{key}: {actual} != {expected}"
            )


@pytest.mark.parametrize("replay", REPLAY_MODES)
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("domain", sorted(DOMAINS))
def test_engine_matches_golden(domain, kernel, replay):
    path = golden_path(domain, kernel)
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with "
        f"`PYTHONPATH=src python tests/test_golden_engine.py --regen`"
    )
    want = json.loads(path.read_text())
    got = metrics(run_case(domain, kernel, replay))
    assert_matches_golden(got, want, f"{kernel}/{domain}[{replay}]")


@pytest.mark.parametrize("replay", REPLAY_MODES)
@pytest.mark.parametrize("execution", EXECUTION_MODES)
@pytest.mark.parametrize("case", sorted(FINGERPRINT_CASES))
def test_engine_fingerprint_matches_golden(case, execution, replay):
    """ONE pinned fingerprint per workload holds ALL execution backends
    crossed with ALL replay backends to the same simulated time, epoch
    count, stats, counters and output bits."""
    path = fingerprint_path(case)
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with "
        f"`PYTHONPATH=src python tests/test_golden_engine.py --regen`"
    )
    want = json.loads(path.read_text())
    domain, kernel, settings = FINGERPRINT_CASES[case]
    got = fingerprint(
        run_case(domain, kernel, replay, execution, settings)
    )
    assert_matches_golden(
        got, want, f"fingerprint/{case}[{execution}+{replay}]"
    )


def test_replay_modes_agree_on_numerics():
    """Beyond the counters: the numeric kernel output is identical."""
    scalar = run_case("uniform", "spmm", "scalar")
    for replay in ("batched", "array"):
        other = run_case("uniform", "spmm", replay)
        np.testing.assert_array_equal(
            scalar.result.output_dense, other.result.output_dense
        )


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for domain in sorted(DOMAINS):
        for kernel in KERNELS:
            # Golden values come from the scalar oracle; the parametrized
            # test then holds both modes to them.
            got = metrics(run_case(domain, kernel, "scalar", "scalar"))
            path = golden_path(domain, kernel)
            path.write_text(json.dumps(got, indent=2) + "\n")
            print(f"wrote {path}")
    for case, (domain, kernel, settings) in sorted(
        FINGERPRINT_CASES.items()
    ):
        got = fingerprint(
            run_case(domain, kernel, "batched", "scalar", settings)
        )
        path = fingerprint_path(case)
        path.write_text(json.dumps(got, indent=2) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
