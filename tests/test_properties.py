"""Property-based tests (hypothesis) on core data structures and
simulator invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.core.vrf import VectorRegisterFile
from repro.kernels.reference import sddmm_reference, spmm_reference
from repro.memory.bbf import BypassBuffer
from repro.memory.cache import Cache
from repro.sparse.coo import COOMatrix
from repro.sparse.tiled import tile_matrix


@st.composite
def coo_matrices(draw, max_dim=64, max_nnz=200):
    rows = draw(st.integers(1, max_dim))
    cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, min(max_nnz, rows * cols)))
    cells = draw(
        st.lists(
            st.tuples(
                st.integers(0, rows - 1), st.integers(0, cols - 1)
            ),
            min_size=nnz, max_size=nnz, unique=True,
        )
    )
    vals = draw(
        st.lists(
            st.floats(
                min_value=-100, max_value=100,
                allow_nan=False, width=32,
            ),
            min_size=len(cells), max_size=len(cells),
        )
    )
    r = np.array([c[0] for c in cells], dtype=np.int64)
    c = np.array([c[1] for c in cells], dtype=np.int64)
    return COOMatrix(rows, cols, r, c, np.array(vals, dtype=np.float32))


class TestTilingProperties:
    @given(coo=coo_matrices(), rp=st.integers(1, 70), cp=st.integers(1, 70))
    @settings(max_examples=60, deadline=None)
    def test_tiling_is_lossless(self, coo, rp, cp):
        tiled = tile_matrix(coo, rp, cp)
        tiled.validate()
        assert tiled.to_coo() == coo

    @given(coo=coo_matrices(), rp=st.integers(1, 70))
    @settings(max_examples=30, deadline=None)
    def test_row_panel_partition(self, coo, rp):
        """Each tile belongs to exactly one row panel, and panels
        partition the nonzeros."""
        tiled = tile_matrix(coo, rp, None)
        total = sum(
            t.nnz
            for panel in range(tiled.num_row_panels)
            for t in tiled.tiles_in_row_panel(panel)
        )
        assert total == coo.nnz

    @given(coo=coo_matrices(), rp=st.integers(1, 40), cp=st.integers(1, 40))
    @settings(max_examples=30, deadline=None)
    def test_output_offsets_monotone_aligned(self, coo, rp, cp):
        tiled = tile_matrix(coo, rp, cp)
        offsets = [t.sparse_out_start_offset for t in tiled.tiles]
        assert offsets == sorted(offsets)
        assert all(off % 16 == 0 for off in offsets)


class TestKernelProperties:
    @given(coo=coo_matrices(max_dim=32, max_nnz=100), k=st.integers(1, 24))
    @settings(max_examples=40, deadline=None)
    def test_spmm_matches_dense(self, coo, k):
        rng = np.random.default_rng(0)
        b = rng.random((coo.num_cols, k), dtype=np.float32)
        got = spmm_reference(coo, b)
        want = coo.to_dense().astype(np.float64) @ b.astype(np.float64)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    @given(coo=coo_matrices(max_dim=32, max_nnz=100), k=st.integers(1, 24))
    @settings(max_examples=40, deadline=None)
    def test_sddmm_structure_preserved(self, coo, k):
        rng = np.random.default_rng(1)
        b = rng.random((coo.num_rows, k), dtype=np.float32)
        c = rng.random((coo.num_cols, k), dtype=np.float32)
        out = sddmm_reference(coo, b, c)
        assert out.nnz == coo.nnz
        np.testing.assert_array_equal(out.r_ids, coo.r_ids)

    @given(coo=coo_matrices(max_dim=24, max_nnz=60))
    @settings(max_examples=25, deadline=None)
    def test_spmm_linearity(self, coo):
        """SpMM is linear in B: A @ (x + y) == A @ x + A @ y."""
        rng = np.random.default_rng(2)
        x = rng.random((coo.num_cols, 4), dtype=np.float32)
        y = rng.random((coo.num_cols, 4), dtype=np.float32)
        lhs = spmm_reference(coo, x + y)
        rhs = spmm_reference(coo, x) + spmm_reference(coo, y)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-3, atol=1e-3)


class TestCacheProperties:
    @given(
        accesses=st.lists(st.integers(0, 500), min_size=1, max_size=300),
        assoc=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=50, deadline=None)
    def test_counters_consistent(self, accesses, assoc):
        cache = Cache(CacheConfig(size_bytes=4096, associativity=assoc))
        for line in accesses:
            cache.access(line)
        assert cache.hits + cache.misses == len(accesses)
        assert cache.occupancy() <= cache.num_sets * cache.ways
        assert cache.fills == cache.misses

    @given(accesses=st.lists(st.integers(0, 100), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_repeat_access_always_hits(self, accesses):
        """Accessing the same line twice in a row always hits."""
        cache = Cache(CacheConfig(size_bytes=4096, associativity=2))
        for line in accesses:
            cache.access(line)
            hit, _ = cache.access(line)
            assert hit

    @given(
        writes=st.lists(st.integers(0, 50), min_size=0, max_size=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_flush_conserves_dirty_lines(self, writes):
        cache = Cache(CacheConfig(size_bytes=65536, associativity=16))
        for line in writes:
            cache.access(line, is_write=True)
        resident_dirty = cache.dirty_lines()
        assert cache.flush() == resident_dirty


class TestVRFProperties:
    @given(
        lines=st.lists(
            st.tuples(st.integers(0, 200), st.booleans()),
            min_size=1, max_size=400,
        ),
        regs=st.sampled_from([4, 16, 64]),
    )
    @settings(max_examples=50, deadline=None)
    def test_dirty_fraction_bounded(self, lines, regs):
        """The Write-back Manager keeps the dirty fraction at or below
        the high threshold after every access."""
        vrf = VectorRegisterFile(
            regs, wb_high_threshold=0.25, wb_low_threshold=0.15
        )
        for line, dirty in lines:
            vrf.access(line, mark_dirty=dirty)
            assert vrf.dirty_fraction <= 0.25 + 1.0 / regs
        assert vrf.occupancy <= regs

    @given(
        lines=st.lists(
            st.tuples(st.integers(0, 200), st.booleans()),
            min_size=1, max_size=300,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_dirty_line_eventually_stored(self, lines):
        """No dirty data is lost: each line marked dirty is either
        stored by the manager/eviction or flushed at the end."""
        vrf = VectorRegisterFile(8)
        stored = []
        dirtied = set()
        for line, dirty in lines:
            if dirty:
                dirtied.add(line)
            _, stores = vrf.access(line, mark_dirty=dirty)
            stored.extend(stores)
        stored.extend(vrf.invalidate_all())
        assert dirtied.issubset(set(stored))


class TestBBFProperties:
    @given(stream=st.lists(st.integers(0, 100), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_stream_counters(self, stream):
        bbf = BypassBuffer(
            4, CacheConfig(size_bytes=512, associativity=2)
        )
        for line in stream:
            bbf.stream_access(line)
        assert bbf.stream_hits + bbf.stream_misses == len(stream)
        assert bbf.occupancy <= 4
